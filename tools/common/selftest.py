"""Self-test check harness shared by the tools/ scripts.

Each tool ships a --self-test mode that exercises its own rejection
and acceptance paths without external fixtures (the lint CI job runs
them all). This is the one copy of the label/status bookkeeping they
used to duplicate.
"""

import sys


class Checker:
    """Collects named pass/fail checks and renders the summary."""

    def __init__(self):
        self.failures = []
        self.count = 0

    def check(self, label, condition):
        self.count += 1
        status = "ok" if condition else "FAIL"
        print(f"  [{status}] {label}")
        if not condition:
            self.failures.append(label)
        return bool(condition)

    def finish(self):
        """Print the summary; return the process exit code."""
        if self.failures:
            print(f"self-test: {len(self.failures)} of {self.count} "
                  f"check(s) failed", file=sys.stderr)
            return 1
        print(f"self-test: all {self.count} checks passed")
        return 0
