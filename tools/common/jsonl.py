"""Schema-v1 JSONL reading shared by the tools/ scripts.

Every bench harness emits one JSON object per line, each carrying a
"record" kind tag ("run", "perf", "timeseries", ...). The readers here
centralize the three behaviours the tools used to each implement
privately:

  - blank lines are skipped;
  - malformed JSON is a hard error naming path:line (the file is
    damaged, not merely incomplete);
  - callers filter by record kind without re-spelling the loop.
"""

import json
import sys


def warn(message):
    """Uniform warning line on stderr, as the tools have always printed."""
    print(f"warning: {message}", file=sys.stderr)


def iter_records(path, kinds=None):
    """Yield (lineno, record) for each JSON object line of @p path.

    With @p kinds (an iterable of "record" values), only matching
    records are yielded. Malformed JSON raises SystemExit naming the
    file and line; an unreadable file raises SystemExit naming the
    error.
    """
    wanted = set(kinds) if kinds is not None else None
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as err:
        raise SystemExit(f"cannot read {path}: {err}")
    with handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{lineno}: malformed JSON: {err}")
            if wanted is not None and record.get("record") not in wanted:
                continue
            yield lineno, record


def load_records(path, kinds=None):
    """List of records (without line numbers); see iter_records."""
    return [record for _, record in iter_records(path, kinds)]
