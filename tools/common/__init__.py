"""Shared plumbing for the tools/ scripts.

One copy of the schema-v1 JSONL reading loop (jsonl.py) and of the
self-test check harness (selftest.py), imported by perf_compare.py,
validate_trace.py, plot_timeseries.py and the tools/analyze framework.
Scripts put the tools/ directory on sys.path and import `common.*`.
"""
