#!/usr/bin/env python3
"""Validate a telemetry JSONL file written by `sweep_serve --metrics-out`.

The daemon's MetricsFlusher (src/metrics/flusher.*) writes one
"store_open" record when the store is opened, then periodic "metrics"
records built by SweepService::metricsRecord, with a final one (the
"final": true flush) on shutdown. This checker proves the file is
usable by tools/metrics_report.py and that the telemetry invariants
the service promises (DESIGN.md §16) actually held:

  - every line is a schema-v1 record of kind "metrics" or "store_open"
  - "seq" is strictly increasing and "elapsed_seconds" non-decreasing
    across metrics records, and only the last one may carry
    "final": true
  - each record's service stats conserve outcomes:
      accepted == hits + executed + deduped + shed + expired
                  + poisoned + failed + rejected
    and the record's own "conserved" member says so. "requests"
    counts at intake, "accepted" at response delivery, so mid-run
    flushes may show requests > accepted + stats_ops (the difference
    is in-flight work); a "final" flush happens after drain, where
    equality must hold exactly
  - counters and histogram counts never decrease between consecutive
    records (they are cumulative, not deltas)
  - every histogram's "count" equals the sum of its bucket counts and
    its bucket lower bounds are strictly increasing
  - with --require-final, at least one metrics record is final: the CI
    chaos job uses this to assert the shutdown flush really ran

Usage:
    tools/validate_metrics.py METRICS.jsonl [--require-final]
    tools/validate_metrics.py --self-test

Exit code 0 when the file is valid, 1 otherwise.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from common.jsonl import iter_records  # noqa: E402
from common.selftest import Checker  # noqa: E402

#: Exactly-one-outcome classes on the conservation invariant's right
#: side; every accepted request lands in exactly one of them.
OUTCOMES = ("hits", "executed", "deduped", "shed", "expired",
            "poisoned", "failed", "rejected")


def is_uint(value):
    return isinstance(value, int) and not isinstance(value, bool) \
        and value >= 0


def check_histogram(name, histogram, where, errors):
    """Validate one serialized histogram's internal consistency."""
    if not isinstance(histogram, dict):
        errors.append(f"{where}: histogram '{name}' is not an object")
        return None
    count = histogram.get("count")
    if not is_uint(count) or not is_uint(histogram.get("sum_us")):
        errors.append(f"{where}: histogram '{name}' needs integer "
                      f"'count' and 'sum_us'")
        return None
    buckets = histogram.get("buckets")
    if not isinstance(buckets, list):
        errors.append(f"{where}: histogram '{name}' needs a 'buckets' "
                      f"array")
        return None
    total = 0
    previous_lower = -1
    for bucket in buckets:
        if not (isinstance(bucket, list) and len(bucket) == 2
                and is_uint(bucket[0]) and is_uint(bucket[1])):
            errors.append(f"{where}: histogram '{name}' bucket must be "
                          f"[lower, count], got {bucket!r}")
            return None
        if bucket[0] <= previous_lower:
            errors.append(f"{where}: histogram '{name}' bucket lower "
                          f"bounds must be strictly increasing")
            return None
        previous_lower = bucket[0]
        total += bucket[1]
    if total != count:
        errors.append(f"{where}: histogram '{name}' count {count} != "
                      f"sum of bucket counts {total}")
    return count


def check_service(service, where, errors, final=False):
    """Conservation invariant on one record's service stats."""
    if not isinstance(service, dict):
        errors.append(f"{where}: 'service' must be an object")
        return
    for key in ("requests", "accepted", "stats_ops") + OUTCOMES:
        if not is_uint(service.get(key)):
            errors.append(f"{where}: service.{key} must be a "
                          f"non-negative integer")
            return
    outcome_sum = sum(service[key] for key in OUTCOMES)
    if service["accepted"] != outcome_sum:
        errors.append(f"{where}: outcome conservation violated: "
                      f"accepted {service['accepted']} != outcome sum "
                      f"{outcome_sum}")
    # "requests" counts at intake, "accepted" at response delivery, so
    # a mid-run flush may legitimately run ahead by its in-flight work;
    # after drain (the final flush) the two must reconcile exactly.
    resolved = service["accepted"] + service["stats_ops"]
    if service["requests"] < resolved or \
            (final and service["requests"] != resolved):
        errors.append(f"{where}: requests {service['requests']} != "
                      f"accepted {service['accepted']} + stats_ops "
                      f"{service['stats_ops']}"
                      + ("" if final else " (mid-run flushes may only "
                         "exceed, never trail)"))
    if service.get("conserved") is not True:
        errors.append(f"{where}: the service did not report "
                      f"'conserved': true")


def check_metrics_record(record, where, state, errors):
    """One "metrics" record: sequencing plus cumulative monotonicity."""
    seq = record.get("seq")
    if not is_uint(seq):
        errors.append(f"{where}: 'seq' must be a non-negative integer")
        seq = None
    elif state["seq"] is not None and seq <= state["seq"]:
        errors.append(f"{where}: seq {seq} not greater than previous "
                      f"{state['seq']}")
    elapsed = record.get("elapsed_seconds")
    if not isinstance(elapsed, (int, float)) or isinstance(elapsed, bool) \
            or elapsed < 0:
        errors.append(f"{where}: 'elapsed_seconds' must be a "
                      f"non-negative number")
    elif state["elapsed"] is not None and elapsed < state["elapsed"]:
        errors.append(f"{where}: elapsed_seconds {elapsed} went "
                      f"backwards from {state['elapsed']}")
    else:
        state["elapsed"] = elapsed
    final = record.get("final")
    if not isinstance(final, bool):
        errors.append(f"{where}: 'final' must be a boolean")
        final = False
    if state["saw_final"]:
        errors.append(f"{where}: metrics record after the final one")

    check_service(record.get("service"), where, errors, final=final)
    if not isinstance(record.get("store"), dict):
        errors.append(f"{where}: 'store' must be an object")

    counts = {}
    counters = record.get("counters")
    if not isinstance(counters, dict):
        errors.append(f"{where}: 'counters' must be an object")
    else:
        for name, value in counters.items():
            if not is_uint(value):
                errors.append(f"{where}: counter '{name}' must be a "
                              f"non-negative integer")
            else:
                counts[("counter", name)] = value
    if not isinstance(record.get("gauges"), dict):
        errors.append(f"{where}: 'gauges' must be an object")
    histograms = record.get("histograms")
    if not isinstance(histograms, dict):
        errors.append(f"{where}: 'histograms' must be an object")
    else:
        for name, histogram in histograms.items():
            count = check_histogram(name, histogram, where, errors)
            if count is not None:
                counts[("histogram", name)] = count

    # Counters and histogram counts are cumulative: a decrease means
    # the writer restarted or the file mixes two runs.
    for key, value in counts.items():
        previous = state["counts"].get(key)
        if previous is not None and value < previous:
            kind, name = key
            errors.append(f"{where}: {kind} '{name}' decreased from "
                          f"{previous} to {value}; cumulative values "
                          f"must not go backwards")
    state["counts"] = counts
    if seq is not None:
        state["seq"] = seq
    state["saw_final"] = state["saw_final"] or final
    state["metrics_records"] += 1


def check_store_open(record, where, errors):
    store = record.get("store")
    if not isinstance(store, dict):
        errors.append(f"{where}: store_open needs a 'store' object")
        return
    for key in ("records", "generation", "segments_loaded",
                "corrupt_frames"):
        if not is_uint(store.get(key)):
            errors.append(f"{where}: store_open store.{key} must be a "
                          f"non-negative integer")
    for key in ("torn_tail", "recovered"):
        if not isinstance(store.get(key), bool):
            errors.append(f"{where}: store_open store.{key} must be a "
                          f"boolean")


def validate_records(rows, require_final=False, path="metrics"):
    """Return a list of problems for (lineno, record) pairs."""
    errors = []
    state = {"seq": None, "elapsed": None, "saw_final": False,
             "counts": {}, "metrics_records": 0}
    for lineno, record in rows:
        where = f"{path}:{lineno}"
        if record.get("schema_version") != 1:
            errors.append(f"{where}: schema_version must be 1, got "
                          f"{record.get('schema_version')!r}")
            continue
        kind = record.get("record")
        if kind == "metrics":
            check_metrics_record(record, where, state, errors)
        elif kind == "store_open":
            check_store_open(record, where, errors)
        else:
            errors.append(f"{where}: unknown record kind {kind!r} "
                          f"(expected 'metrics' or 'store_open')")
    if state["metrics_records"] == 0:
        errors.append(f"{path}: no metrics records found")
    elif require_final and not state["saw_final"]:
        errors.append(f"{path}: no final metrics record (the shutdown "
                      f"flush never ran)")
    return errors


def validate_file(path, require_final=False):
    return validate_records(iter_records(path), require_final, path)


def self_test():
    """Exercise acceptance and every rejection path without fixtures."""
    checker = Checker()
    check = checker.check

    def service(accepted=4, stats_ops=1, **overrides):
        stats = {"requests": accepted + stats_ops, "accepted": accepted,
                 "stats_ops": stats_ops, "hits": 1, "executed": 2,
                 "deduped": 1, "shed": 0, "expired": 0, "poisoned": 0,
                 "failed": 0, "rejected": 0, "queue_depth": 0,
                 "inflight": 0, "conserved": True}
        stats.update(overrides)
        return stats

    def store():
        return {"records": 2, "generation": 1, "segments_loaded": 1,
                "corrupt_frames": 0, "duplicate_puts": 0,
                "append_attempts": 2, "compactions": 0,
                "stale_generations_removed": 0, "torn_tail": False,
                "recovered": False}

    def metrics(seq, elapsed, final=False, **overrides):
        record = {"schema_version": 1, "record": "metrics",
                  "label": "sweep_serve", "seq": seq,
                  "elapsed_seconds": elapsed, "final": final,
                  "service": service(), "store": store(),
                  "counters": {"socket.accepts": seq + 1},
                  "gauges": {"service.workers": 4},
                  "histograms": {"store.put_us": {
                      "count": 3, "sum_us": 30,
                      "buckets": [[8, 1], [10, 2]]}}}
        record.update(overrides)
        return record

    open_record = {"schema_version": 1, "record": "store_open",
                   "dir": "/tmp/x", "store": store()}
    good = [(1, open_record), (2, metrics(0, 0.0)),
            (3, metrics(1, 2.0)), (4, metrics(2, 4.0, final=True))]
    check("valid telemetry file passes", validate_records(good) == [])
    check("--require-final passes with a final record",
          validate_records(good, require_final=True) == [])

    errors = validate_records(good[:3], require_final=True)
    check("--require-final rejects a file without one",
          any("final" in e for e in errors))
    check("missing final accepted without the flag",
          validate_records(good[:3]) == [])

    errors = validate_records([(1, open_record)])
    check("file without metrics records rejected",
          any("no metrics records" in e for e in errors))

    errors = validate_records([(1, dict(metrics(0, 0.0),
                                        schema_version=2))])
    check("wrong schema_version rejected",
          any("schema_version" in e for e in errors))

    errors = validate_records([(1, {"schema_version": 1,
                                    "record": "mystery"})])
    check("unknown record kind rejected",
          any("mystery" in e for e in errors))

    errors = validate_records([(1, metrics(1, 0.0)),
                               (2, metrics(1, 1.0))])
    check("non-increasing seq rejected",
          any("seq" in e for e in errors))

    errors = validate_records([(1, metrics(0, 5.0)),
                               (2, metrics(1, 1.0))])
    check("backwards elapsed_seconds rejected",
          any("backwards" in e for e in errors))

    errors = validate_records([(1, metrics(0, 0.0, final=True)),
                               (2, metrics(1, 1.0))])
    check("record after final rejected",
          any("after the final" in e for e in errors))

    bad = metrics(0, 0.0)
    bad["service"] = service(accepted=5)  # outcome sum stays 4
    errors = validate_records([(1, bad)])
    check("outcome conservation violation rejected",
          any("conservation" in e for e in errors))

    live = metrics(0, 0.0)
    live["service"]["requests"] = 9  # 4 in flight beyond accepted+stats
    check("in-flight requests tolerated on a mid-run flush",
          validate_records([(1, live)]) == [])

    bad = metrics(0, 0.0, final=True)
    bad["service"]["requests"] = 9  # final flush must reconcile exactly
    errors = validate_records([(1, bad)])
    check("unreconciled requests rejected on the final flush",
          any("stats_ops" in e for e in errors))

    bad = metrics(0, 0.0)
    bad["service"]["requests"] = 3  # < accepted + stats_ops: impossible
    errors = validate_records([(1, bad)])
    check("requests trailing accepted rejected even mid-run",
          any("never trail" in e for e in errors))

    bad = metrics(0, 0.0)
    bad["service"]["conserved"] = False
    errors = validate_records([(1, bad)])
    check("self-reported conservation failure rejected",
          any("conserved" in e for e in errors))

    bad = metrics(0, 0.0)
    bad["histograms"]["store.put_us"]["count"] = 7
    errors = validate_records([(1, bad)])
    check("histogram count != bucket sum rejected",
          any("bucket counts" in e for e in errors))

    bad = metrics(0, 0.0)
    bad["histograms"]["store.put_us"]["buckets"] = [[10, 2], [8, 1]]
    errors = validate_records([(1, bad)])
    check("unsorted histogram buckets rejected",
          any("strictly increasing" in e for e in errors))

    errors = validate_records([(1, metrics(0, 0.0)),
                               (2, metrics(1, 1.0, counters={
                                   "socket.accepts": 0}))])
    check("decreasing counter rejected",
          any("decreased" in e for e in errors))

    bad = metrics(0, 0.0)
    bad["counters"]["socket.accepts"] = -3
    errors = validate_records([(1, bad)])
    check("negative counter rejected",
          any("socket.accepts" in e for e in errors))

    bad_open = {"schema_version": 1, "record": "store_open",
                "store": {"records": "two"}}
    errors = validate_records([(1, bad_open), (2, metrics(0, 0.0))])
    check("malformed store_open rejected",
          any("store_open" in e for e in errors))

    return checker.finish()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Validate a --metrics-out telemetry JSONL file")
    parser.add_argument("metrics", nargs="?", help="metrics JSONL file")
    parser.add_argument("--require-final", action="store_true",
                        help="fail unless a final metrics record exists "
                             "(the shutdown flush ran)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.metrics is None:
        parser.error("METRICS is required (or use --self-test)")

    errors = validate_file(args.metrics, args.require_final)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        print(f"{args.metrics}: INVALID ({len(errors)} problem(s))",
              file=sys.stderr)
        return 1
    print(f"{args.metrics}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
