#!/usr/bin/env python3
"""Regenerate bench/perf_baseline.json with measurement provenance.

The perf baseline is only meaningful on the machine that measured it,
against the compiler that built it, at the commit it reflects — a
comparison against a baseline from anywhere else is noise dressed up
as a verdict. This script is the one sanctioned way to refresh the
baseline: it runs perf_microbench with the gated-CI settings (median
of --repeats, default 5) and stamps the perf_meta record with a
"provenance" object recording

  - git_sha       the commit the measured binary was built from
                  (suffixed "-dirty" when the tree had local edits)
  - compiler      the C++ compiler id and version from the build tree
  - cpu_model     the machine's CPU model name
  - repeats/stat  the measurement settings

tools/perf_compare.py prints this block whenever a comparison flags a
regression, so a CI failure names exactly which measurement it was
judged against, and --diff-out copies it into the uploaded artifact.

Usage:
    tools/perf_baseline.py [--build build] [--out bench/perf_baseline.json]
                           [--repeats 5] [--budget N] [--benchmark gcc]
    tools/perf_baseline.py --self-test
"""

import argparse
import json
import os
import re
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from common.selftest import Checker  # noqa: E402


def run_capture(argv, cwd=None):
    """stdout of @p argv, or None if the command cannot run/fails."""
    try:
        proc = subprocess.run(argv, cwd=cwd, capture_output=True,
                              text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def git_sha(repo):
    """Commit id of @p repo, '-dirty' suffixed, or 'unknown'."""
    sha = run_capture(["git", "rev-parse", "--short=12", "HEAD"],
                      cwd=repo)
    if sha is None or not sha.strip():
        return "unknown"
    sha = sha.strip()
    status = run_capture(["git", "status", "--porcelain"], cwd=repo)
    if status is None:
        return sha
    # Ignore the baseline file itself: regenerating it should not make
    # the measurement look dirty.
    lines = [line for line in status.splitlines()
             if line.strip() and
             not line.endswith("bench/perf_baseline.json")]
    return sha + ("-dirty" if lines else "")


def compiler_id(build_dir):
    """Compiler id/version from the CMake cache, or 'unknown'."""
    cache = os.path.join(build_dir, "CMakeCache.txt")
    compiler = None
    try:
        with open(cache, encoding="utf-8") as handle:
            for line in handle:
                if line.startswith("CMAKE_CXX_COMPILER:"):
                    compiler = line.split("=", 1)[1].strip()
                    break
    except OSError:
        return "unknown"
    if not compiler:
        return "unknown"
    version = run_capture([compiler, "--version"])
    if version:
        first = version.splitlines()[0].strip()
        if first:
            return first
    return compiler


def cpu_model(cpuinfo_path="/proc/cpuinfo"):
    """CPU model name from /proc/cpuinfo, or 'unknown'."""
    try:
        with open(cpuinfo_path, encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    _, _, value = line.partition(":")
                    value = re.sub(r"\s+", " ", value).strip()
                    if value:
                        return value
    except OSError:
        pass
    return "unknown"


def stamp_meta(lines, provenance):
    """Insert @p provenance into the perf_meta record of a JSONL
    document given as a list of raw lines; returns new lines.

    Raises SystemExit if no perf_meta record is present — a perf file
    without one is not a valid baseline and must not be installed.
    """
    out = []
    stamped = False
    for line in lines:
        text = line.strip()
        if not text:
            continue
        record = json.loads(text)
        if record.get("record") == "perf_meta":
            record["provenance"] = provenance
            stamped = True
        out.append(json.dumps(record, sort_keys=True))
    if not stamped:
        raise SystemExit("error: measured output has no perf_meta "
                         "record; refusing to install it as a baseline")
    return out


def self_test():
    import tempfile

    checker = Checker()
    check = checker.check

    with tempfile.TemporaryDirectory() as tmp:
        # 1. Provenance stamping rewrites exactly the meta record.
        lines = [
            '{"record":"perf_meta","benchmark":"gcc","budget":1}',
            "",
            '{"record":"perf","stage":"x","rate":1.0}',
        ]
        provenance = {"git_sha": "abc", "cpu_model": "TestCPU"}
        stamped = [json.loads(line)
                   for line in stamp_meta(lines, provenance)]
        check("meta record stamped",
              stamped[0]["provenance"] == provenance)
        check("perf records untouched",
              stamped[1] == {"record": "perf", "stage": "x",
                             "rate": 1.0})
        check("blank lines dropped", len(stamped) == 2)

        # 2. A document without perf_meta is refused.
        try:
            stamp_meta(['{"record":"perf","stage":"x","rate":1}'], {})
            check("missing perf_meta refused", False)
        except SystemExit as err:
            check("missing perf_meta refused", "perf_meta" in str(err))

        # 3. CPU model parsing: whitespace collapsed; missing file and
        #    missing key degrade to 'unknown'.
        cpuinfo = os.path.join(tmp, "cpuinfo")
        with open(cpuinfo, "w", encoding="utf-8") as handle:
            handle.write("processor : 0\n"
                         "model name\t: Fast   CPU @ 2GHz\n")
        check("cpu model parsed",
              cpu_model(cpuinfo) == "Fast CPU @ 2GHz")
        check("cpu model unknown without the key",
              cpu_model(os.path.join(tmp, "absent")) == "unknown")

        # 4. Compiler id degrades to 'unknown' without a CMake cache.
        check("compiler unknown without a cache",
              compiler_id(os.path.join(tmp, "nobuild")) == "unknown")

        # 5. git_sha degrades to 'unknown' outside a repository.
        check("git sha unknown outside a repo",
              git_sha(tmp) == "unknown")

    return checker.finish()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Regenerate the perf baseline with provenance")
    parser.add_argument("--build", default="build",
                        help="CMake build tree holding perf_microbench "
                             "(default: build)")
    parser.add_argument("--out", default="bench/perf_baseline.json",
                        help="baseline path to (over)write")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per stage (default 5, "
                             "matching the gated CI job)")
    parser.add_argument("--budget", type=int, default=None,
                        help="instructions per stage (default: the "
                             "binary's default)")
    parser.add_argument("--benchmark", default=None,
                        help="workload profile (default: the binary's "
                             "default)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    bench = os.path.join(args.build, "bench", "perf_microbench")
    if not os.path.exists(bench):
        raise SystemExit(
            f"error: {bench} not found; build it first "
            f"(cmake --build {args.build} --target perf_microbench)")

    measured = args.out + ".tmp"
    cmd = [bench, "--repeats", str(args.repeats), "--stat", "median",
           "--json", measured]
    if args.budget is not None:
        cmd += ["--budget", str(args.budget)]
    if args.benchmark is not None:
        cmd += ["--benchmark", args.benchmark]
    print("running:", " ".join(cmd))
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        raise SystemExit(f"error: perf_microbench exited "
                         f"{proc.returncode}")

    provenance = {
        "git_sha": git_sha(repo),
        "compiler": compiler_id(args.build),
        "cpu_model": cpu_model(),
        "repeats": args.repeats,
        "stat": "median",
    }
    with open(measured, encoding="utf-8") as handle:
        lines = handle.readlines()
    stamped = stamp_meta(lines, provenance)
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write("\n".join(stamped) + "\n")
    os.remove(measured)
    print(f"baseline -> {args.out}")
    for key in sorted(provenance):
        print(f"  {key}: {provenance[key]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
