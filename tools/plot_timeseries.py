#!/usr/bin/env python3
"""Render the `timeseries` records of a --sample-interval run.

Input is a schema-v1 JSONL file written by a bench harness with
`--sample-interval N --json PATH`: each timeseries record carries one
run's identity (workload, policy, prefetch) and its epoch series —
per-epoch deltas of every counter plus derived metrics (src/obs,
DESIGN.md §11). This tool turns those rows into something a human can
look at without a notebook:

  - the default mode draws an ASCII chart of one metric over retired
    instructions, one labelled series per selected run, on stdout
    (no third-party plotting dependency required);
  - --tsv PATH instead dumps the selected series as tab-separated
    columns (instruction x-axis plus one column per run) ready for
    gnuplot / pandas / a spreadsheet.

When the file also carries `adaptive` records (an --adaptive run's
choice log, DESIGN.md §12), the chart overlays a '|' column at every
epoch boundary where the selector switched policy for the selected
runs; --no-switch-markers suppresses the overlay.

Metrics name either a derived value ("ispi", "miss_rate_percent",
"cond_accuracy", "bus_wait_fraction", "ispi.rt_icache", ...) or any
raw per-epoch counter ("demand_misses", "wrong_fills", ...).

Usage:
    tools/plot_timeseries.py RESULTS.jsonl [--metric ispi]
        [--workload gcc] [--policy Fetch] [--prefetch none]
        [--width 72] [--height 16] [--list] [--tsv OUT.tsv]
    tools/plot_timeseries.py --self-test
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from common.jsonl import load_records, warn  # noqa: E402
from common.selftest import Checker  # noqa: E402


def load_timeseries(path):
    """Return the list of timeseries records of a JSONL file."""
    return load_records(path, kinds=("timeseries",))


def load_adaptive(path):
    """Return the list of adaptive records of a JSONL file."""
    return load_records(path, kinds=("adaptive",))


def run_identity(record):
    """The members that pair a timeseries row with an adaptive row."""
    return (record.get("workload"), record.get("policy"),
            record.get("prefetch"), record.get("run_seed"))


def switch_positions(adaptive_record):
    """Instruction counts where the choice log changed policy."""
    choices = adaptive_record.get("choices", [])
    return [choice.get("first_instruction", 0)
            for prev, choice in zip(choices, choices[1:])
            if choice.get("policy") != prev.get("policy")]


def run_label(record):
    label = f"{record.get('workload')}/{record.get('policy')}"
    if record.get("prefetch") not in (None, "none"):
        label += f"+{record.get('prefetch')}"
    return label


def metric_value(epoch, metric):
    """Extract @p metric from one epoch; None when absent."""
    derived = epoch.get("derived", {})
    if metric.startswith("ispi."):
        return derived.get("ispi_components", {}).get(metric[5:])
    if metric in derived:
        return derived.get(metric)
    if metric in epoch.get("penalty_slots", {}):
        return epoch["penalty_slots"][metric]
    value = epoch.get(metric)
    return value if isinstance(value, (int, float)) \
        and not isinstance(value, bool) else None


def extract_series(record, metric):
    """Return ([x instruction], [y metric]) for one run's epochs."""
    xs, ys = [], []
    for epoch in record.get("epochs", []):
        value = metric_value(epoch, metric)
        if value is None:
            return None
        xs.append(epoch.get("last_instruction", 0))
        ys.append(float(value))
    return (xs, ys) if xs else None


def select(records, workload, policy, prefetch):
    out = []
    for record in records:
        if workload and record.get("workload") != workload:
            continue
        if policy and record.get("policy") != policy:
            continue
        if prefetch and record.get("prefetch") != prefetch:
            continue
        out.append(record)
    return out


def ascii_chart(series, metric, width, height, switch_xs=None):
    """Render labelled series as text; returns the chart as a string.

    @p series is a list of (label, xs, ys) with a shared x domain.
    @p switch_xs (optional) lists instruction counts where an adaptive
    selector switched policy; each is overlaid as a '|' column.
    """
    marks = "*+ox#%@&"
    xmax = max(max(xs) for _, xs, _ in series)
    ymax = max(max(ys) for _, _, ys in series)
    ymin = min(min(ys) for _, _, ys in series)
    if ymax == ymin:
        ymax = ymin + 1.0
    grid = [[" "] * width for _ in range(height)]
    for x in switch_xs or []:
        col = min(width - 1, int(x / xmax * (width - 1))) if xmax else 0
        for row in grid:
            row[col] = "|"
    for index, (_, xs, ys) in enumerate(series):
        mark = marks[index % len(marks)]
        for x, y in zip(xs, ys):
            col = min(width - 1, int(x / xmax * (width - 1)))
            row = min(height - 1,
                      int((ymax - y) / (ymax - ymin) * (height - 1)))
            grid[row][col] = mark
    lines = [f"{metric} (min {ymin:g}, max {ymax:g})"]
    for rownum, row in enumerate(grid):
        tick = ymax - (ymax - ymin) * rownum / (height - 1)
        lines.append(f"{tick:>10.4g} |{''.join(row)}")
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 11 + f"0 .. {xmax:,} instructions")
    for index, (label, _, _) in enumerate(series):
        lines.append(f"  {marks[index % len(marks)]} {label}")
    if switch_xs:
        lines.append(f"  | policy switch ({len(switch_xs)} total)")
    return "\n".join(lines)


def write_tsv(series, metric, path):
    """Dump the series as instruction-indexed TSV columns."""
    xs = series[0][1]
    for label, other_xs, _ in series[1:]:
        if other_xs != xs:
            warn(f"series '{label}' has a different epoch grid; TSV "
                 f"rows align by index, not instruction")
            break
    with open(path, "w", encoding="utf-8") as handle:
        header = ["instruction"] + [label for label, _, _ in series]
        handle.write("\t".join(header) + "\n")
        rows = max(len(s[1]) for s in series)
        for i in range(rows):
            cells = [str(xs[i]) if i < len(xs) else ""]
            for _, sxs, sys_ in series:
                cells.append(repr(sys_[i]) if i < len(sys_) else "")
            handle.write("\t".join(cells) + "\n")
    print(f"{len(series)} series ({metric}) -> {path}")


def self_test():
    """Exercise selection, extraction and rendering on synthetic rows."""
    checker = Checker()
    check = checker.check

    def epoch(n, ispi, misses):
        return {"epoch": n, "first_instruction": n * 100,
                "last_instruction": (n + 1) * 100, "slots": 150,
                "penalty_slots": {"rt_icache": 25, "bus": 5},
                "demand_misses": misses, "partial": False,
                "derived": {"ispi": ispi,
                            "ispi_components": {"rt_icache": 0.25},
                            "miss_rate_percent": misses / 1.0}}

    rec = {"record": "timeseries", "workload": "gcc", "policy": "Fetch",
           "prefetch": "none",
           "epochs": [epoch(0, 0.5, 10), epoch(1, 0.75, 20)]}
    other = dict(rec, policy="Stall")

    check("derived metric extracted",
          extract_series(rec, "ispi") == ([100, 200], [0.5, 0.75]))
    check("raw counter extracted",
          extract_series(rec, "demand_misses") == ([100, 200],
                                                   [10.0, 20.0]))
    check("component metric extracted",
          extract_series(rec, "ispi.rt_icache") == ([100, 200],
                                                    [0.25, 0.25]))
    check("penalty-slot counter extracted",
          extract_series(rec, "rt_icache") == ([100, 200],
                                               [25.0, 25.0]))
    check("unknown metric yields None",
          extract_series(rec, "no_such") is None)
    check("bool member not mistaken for a metric",
          extract_series(rec, "partial") is None)

    check("policy filter selects",
          select([rec, other], None, "Stall", None) == [other])
    check("workload filter selects",
          select([rec, other], "gcc", None, None) == [rec, other])
    check("prefetch filter selects",
          select([rec, other], None, None, "next_line") == [])

    series = [("gcc/Fetch",) + extract_series(rec, "ispi"),
              ("gcc/Stall",) + extract_series(other, "demand_misses")]
    chart = ascii_chart(series, "ispi", 40, 8)
    check("chart renders every series marker",
          "*" in chart and "+" in chart)
    check("chart carries the labels",
          "gcc/Fetch" in chart and "gcc/Stall" in chart)
    check("chart names the metric and range",
          "ispi (min 0.5, max 20)" in chart)

    flat = [("flat",) + extract_series(rec, "ispi.rt_icache")]
    check("constant series does not divide by zero",
          "flat" in ascii_chart(flat, "ispi.rt_icache", 20, 4))

    adaptive = {"record": "adaptive", "workload": "gcc",
                "policy": "Fetch", "prefetch": "none", "run_seed": 42,
                "choices": [
                    {"epoch": 0, "policy": "Fetch",
                     "first_instruction": 0, "last_instruction": 100},
                    {"epoch": 1, "policy": "Stall",
                     "first_instruction": 100,
                     "last_instruction": 200},
                    {"epoch": 2, "policy": "Stall",
                     "first_instruction": 200,
                     "last_instruction": 300}]}
    check("switch positions found at policy changes",
          switch_positions(adaptive) == [100])
    check("unchanged epochs yield no switch",
          switch_positions({"choices": adaptive["choices"][1:]}) == [])
    check("run identity pairs timeseries with adaptive rows",
          run_identity(adaptive) ==
          ("gcc", "Fetch", "none", 42))
    marked = ascii_chart(series, "ispi", 40, 8, [100])
    check("switch marker column overlaid", "|" in
          marked.splitlines()[2][12:])
    check("switch marker legend present",
          "policy switch (1 total)" in marked)
    check("series marks win over the marker column",
          "*" in marked)

    import os
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        jsonl = os.path.join(tmp, "rows.jsonl")
        with open(jsonl, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(rec) + "\n")
            handle.write(json.dumps({"record": "run"}) + "\n")
            handle.write(json.dumps(adaptive) + "\n")
            handle.write("\n")
        loaded = load_timeseries(jsonl)
        check("loader keeps only timeseries records",
              loaded == [rec])
        check("adaptive loader keeps only adaptive records",
              load_adaptive(jsonl) == [adaptive])

        tsv = os.path.join(tmp, "out.tsv")
        write_tsv(series, "ispi", tsv)
        with open(tsv, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        check("tsv header names the series",
              lines[0] == "instruction\tgcc/Fetch\tgcc/Stall")
        check("tsv rows carry the values",
              lines[1].startswith("100\t0.5\t10"))

    return checker.finish()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Chart the timeseries records of a "
                    "--sample-interval run")
    parser.add_argument("results", nargs="?", help="schema-v1 JSONL file")
    parser.add_argument("--metric", default="ispi",
                        help="derived metric, 'ispi.<component>' or raw "
                             "counter to plot (default ispi)")
    parser.add_argument("--workload", help="only this workload")
    parser.add_argument("--policy", help="only this fetch policy")
    parser.add_argument("--prefetch", help="only this prefetch mode "
                                           "(e.g. none, next_line)")
    parser.add_argument("--width", type=int, default=72,
                        help="chart width in columns (default 72)")
    parser.add_argument("--height", type=int, default=16,
                        help="chart height in rows (default 16)")
    parser.add_argument("--list", action="store_true",
                        help="list the selectable runs and exit")
    parser.add_argument("--tsv", metavar="PATH",
                        help="write the series as TSV instead of a chart")
    parser.add_argument("--no-switch-markers", action="store_true",
                        help="do not overlay adaptive policy-switch "
                             "columns on the chart")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.results is None:
        parser.error("RESULTS is required (or use --self-test)")

    records = load_timeseries(args.results)
    if not records:
        raise SystemExit(f"{args.results}: no timeseries records (was "
                         f"the run made with --sample-interval?)")
    selected = select(records, args.workload, args.policy, args.prefetch)
    if args.list:
        for record in selected:
            epochs = len(record.get("epochs", []))
            print(f"{run_label(record):<28} {epochs} epochs, interval "
                  f"{record.get('sample_interval')}")
        return 0
    if not selected:
        raise SystemExit("no runs match the selection; try --list")

    series = []
    for record in selected:
        extracted = extract_series(record, args.metric)
        if extracted is None:
            warn(f"run {run_label(record)} has no metric "
                 f"'{args.metric}'; skipping it")
            continue
        series.append((run_label(record),) + extracted)
    if not series:
        raise SystemExit(f"metric '{args.metric}' matched nothing; "
                         f"known: ispi, miss_rate_percent, "
                         f"cond_accuracy, bus_wait_fraction, "
                         f"ispi.<component>, or any epoch counter")

    if args.tsv:
        write_tsv(series, args.metric, args.tsv)
        return 0

    switch_xs = []
    if not args.no_switch_markers:
        adaptive = {run_identity(r): r for r in
                    load_adaptive(args.results)}
        for record in selected:
            match = adaptive.get(run_identity(record))
            if match:
                switch_xs.extend(switch_positions(match))
    print(ascii_chart(series, args.metric, args.width, args.height,
                      sorted(set(switch_xs))))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `--list | head`
        sys.exit(0)
