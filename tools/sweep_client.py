#!/usr/bin/env python3
"""Submit a JSONL batch to a running sweep_serve daemon.

The daemon (bench/sweep_serve.cc) speaks one JSON object per line
over a Unix socket: requests {"id":..,"benchmark":..,"config":{..}}
in, schema-v1 responses out, in request order (DESIGN.md §15). This
client is the scriptable counterpart of `bench_suite --store`: it
ships a prepared request file (or stdin) as one connection, writes
the response lines to stdout (or --output), and summarizes the
status mix on stderr.

Degradation rules match the service's contract: an `error` response
is a *reported outcome*, not a client failure — the exit code stays 0
unless --expect-ok is given (CI mode: any non-ok status, or a
response count that does not match the request count, exits 1).
A connection problem is always a hard error naming the socket.

--stats switches to the live-telemetry probe: it sends the one-line
control request {"op":"stats"} (DESIGN.md §16) and pretty-prints the
daemon's stats body — service outcome counters, store stats, and the
metrics registry snapshot — without submitting any run. The exit code
is 0 only for an "ok" response carrying a stats object.

Usage:
    tools/sweep_client.py SOCKET [--requests FILE] [--output FILE]
                          [--expect-ok] [--timeout SECONDS]
    tools/sweep_client.py SOCKET --stats
    tools/sweep_client.py --self-test

Exit code 0 on success, 1 otherwise.
"""

import argparse
import json
import os
import socket
import sys
import tempfile
import threading

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from common.jsonl import warn  # noqa: E402
from common.selftest import Checker  # noqa: E402


def read_requests(path):
    """Request lines from @p path ('-' = stdin), blank lines skipped.

    Each line must parse as a JSON object — shipping garbage would
    only round-trip as a malformed_json response per line; catching
    it here names the offending line instead."""
    if path == "-":
        handle = sys.stdin
    else:
        try:
            handle = open(path, "r", encoding="utf-8")
        except OSError as err:
            raise SystemExit(f"cannot read {path}: {err}")
    lines = []
    with handle:
        for lineno, raw in enumerate(handle, 1):
            line = raw.strip()
            if not line:
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(
                    f"{path}:{lineno}: request is not JSON: {err}")
            if not isinstance(parsed, dict):
                raise SystemExit(
                    f"{path}:{lineno}: request is not a JSON object")
            lines.append(line)
    return lines


def exchange(socket_path, request_lines, timeout):
    """One connection: all requests, half-close, read every response
    line. Returns the response lines; raises SystemExit on transport
    trouble."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(socket_path)
    except OSError as err:
        sock.close()
        raise SystemExit(
            f"cannot connect to sweep daemon at {socket_path}: {err}")
    try:
        payload = "".join(line + "\n" for line in request_lines)
        sock.sendall(payload.encode("utf-8"))
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    except OSError as err:
        raise SystemExit(f"socket error talking to {socket_path}: {err}")
    finally:
        sock.close()
    text = b"".join(chunks).decode("utf-8", errors="replace")
    return [line for line in text.split("\n") if line.strip()]


def summarize(request_count, response_lines):
    """(counts dict, problems list): status mix plus anything that
    violates the wire contract."""
    counts = {"ok": 0, "cached": 0, "error": 0}
    problems = []
    for index, line in enumerate(response_lines):
        try:
            response = json.loads(line)
        except json.JSONDecodeError:
            problems.append(f"response {index} is not JSON")
            continue
        status = response.get("status")
        if status == "ok":
            counts["ok"] += 1
            if response.get("cached"):
                counts["cached"] += 1
        elif status == "error":
            counts["error"] += 1
            kind = response.get("error", {}).get("type", "?")
            warn(f"response {index}: {kind}: "
                 f"{response.get('error', {}).get('message', '')}")
        else:
            problems.append(f"response {index} has status {status!r}")
    if len(response_lines) != request_count:
        problems.append(f"sent {request_count} request(s) but received "
                        f"{len(response_lines)} response(s)")
    return counts, problems


def run_client(args):
    requests = read_requests(args.requests)
    if not requests:
        raise SystemExit("no requests to send")
    responses = exchange(args.socket, requests, args.timeout)
    sink = sys.stdout if args.output == "-" \
        else open(args.output, "w", encoding="utf-8")
    with sink if sink is not sys.stdout else sink:
        for line in responses:
            print(line, file=sink)
        if sink is not sys.stdout:
            sink.flush()
    counts, problems = summarize(len(requests), responses)
    print(f"sweep_client: {len(requests)} request(s): "
          f"{counts['ok']} ok ({counts['cached']} cached), "
          f"{counts['error']} error", file=sys.stderr)
    for problem in problems:
        warn(problem)
    if problems:
        return 1
    if args.expect_ok and counts["error"]:
        warn(f"--expect-ok: {counts['error']} error response(s)")
        return 1
    return 0


def run_stats(socket_path, timeout, out=sys.stdout):
    """Send {"op":"stats"}; pretty-print the stats body. Returns the
    exit code."""
    responses = exchange(socket_path, ['{"op":"stats"}'], timeout)
    if len(responses) != 1:
        warn(f"expected one stats response, got {len(responses)}")
        return 1
    try:
        response = json.loads(responses[0])
    except json.JSONDecodeError as err:
        warn(f"stats response is not JSON: {err}")
        return 1
    if response.get("status") != "ok":
        kind = response.get("error", {}).get("type", "?")
        warn(f"stats request failed: {kind}: "
             f"{response.get('error', {}).get('message', '')}")
        return 1
    stats = response.get("stats")
    if not isinstance(stats, dict):
        warn("ok response without a stats object")
        return 1
    print(json.dumps(stats, indent=2, sort_keys=True), file=out)
    service = stats.get("service", {})
    print(f"sweep_client: {service.get('requests', 0)} request(s) "
          f"seen, {service.get('accepted', 0)} accepted, "
          f"queue depth {service.get('queue_depth', 0)}, "
          f"conserved={service.get('conserved')}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# Self-test


def _serve_canned(socket_path, replies, ready):
    """Toy daemon: accept one connection, drain it, answer the canned
    reply lines."""
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    server.bind(socket_path)
    server.listen(1)
    ready.set()
    conn, _ = server.accept()
    received = []
    while True:
        chunk = conn.recv(65536)
        if not chunk:
            break
        received.append(chunk)
    requests = [line for line in
                b"".join(received).decode("utf-8").split("\n")
                if line.strip()]
    for line in replies(requests):
        conn.sendall((line + "\n").encode("utf-8"))
    conn.close()
    server.close()


def self_test():
    print("sweep_client self-test:")
    c = Checker()

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "toy.sock")
        ready = threading.Event()

        def echo_ok(requests):
            out = []
            for line in requests:
                request = json.loads(line)
                out.append(json.dumps({
                    "schema_version": 1, "record": "response",
                    "id": request.get("id"), "status": "ok",
                    "key": "k", "cached": False, "run": {}}))
            return out

        server = threading.Thread(
            target=_serve_canned, args=(path, echo_ok, ready))
        server.start()
        ready.wait()
        requests = [json.dumps({"id": i, "benchmark": "li"})
                    for i in range(3)]
        responses = exchange(path, requests, timeout=10.0)
        server.join()
        c.check("round trip: one response per request",
                len(responses) == 3)
        ids = [json.loads(line).get("id") for line in responses]
        c.check("round trip: request order preserved", ids == [0, 1, 2])
        counts, problems = summarize(3, responses)
        c.check("summary: ok counted", counts["ok"] == 3)
        c.check("summary: clean exchange has no problems",
                problems == [])

        counts, problems = summarize(2, ["{not json", responses[0]])
        c.check("summary: malformed response line reported",
                any("not JSON" in p for p in problems))
        counts, problems = summarize(
            1, [json.dumps({"status": "error",
                            "error": {"type": "overloaded",
                                      "message": "shed"}})])
        c.check("summary: error response counted, not fatal",
                counts["error"] == 1 and problems == [])
        counts, problems = summarize(2, [])
        c.check("summary: short response count is a problem",
                any("received 0" in p for p in problems))

        try:
            exchange(os.path.join(tmp, "nobody-home.sock"), ["{}"], 1.0)
            c.check("transport: refused connection is a hard error",
                    False)
        except SystemExit as err:
            c.check("transport: refused connection is a hard error",
                    "cannot connect" in str(err))

        bad = os.path.join(tmp, "bad.jsonl")
        with open(bad, "w", encoding="utf-8") as handle:
            handle.write('{"id": 0}\nnot json\n')
        try:
            read_requests(bad)
            c.check("requests: malformed input line rejected", False)
        except SystemExit as err:
            c.check("requests: malformed input line rejected",
                    "not JSON" in str(err))

        # --stats: the control request goes out, the stats body is
        # pretty-printed, and non-ok answers fail.
        import contextlib
        import io

        def stats_reply(requests):
            request = json.loads(requests[0])
            if request != {"op": "stats"}:
                return [json.dumps({"status": "error",
                                    "error": {"type": "bad_request",
                                              "message": "not stats"}})]
            return [json.dumps({
                "schema_version": 1, "record": "response",
                "status": "ok",
                "stats": {"service": {"requests": 7, "accepted": 6,
                                      "queue_depth": 0,
                                      "conserved": True},
                          "store": {"records": 3},
                          "counters": {"socket.accepts": 2}}})]

        stats_path = os.path.join(tmp, "stats.sock")
        ready = threading.Event()
        server = threading.Thread(
            target=_serve_canned, args=(stats_path, stats_reply, ready))
        server.start()
        ready.wait()
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stderr(err):
            code = run_stats(stats_path, timeout=10.0, out=out)
        server.join()
        c.check("stats: ok response exits 0", code == 0)
        c.check("stats: body pretty-printed",
                '"socket.accepts": 2' in out.getvalue()
                and '"records": 3' in out.getvalue())
        c.check("stats: summary names the service counters",
                "7 request(s)" in err.getvalue()
                and "conserved=True" in err.getvalue())

        def error_reply(requests):
            return [json.dumps({"status": "error",
                                "error": {"type": "shutting_down",
                                          "message": "draining"}})]

        err_path = os.path.join(tmp, "err.sock")
        ready = threading.Event()
        server = threading.Thread(
            target=_serve_canned, args=(err_path, error_reply, ready))
        server.start()
        ready.wait()
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stderr(err):
            code = run_stats(err_path, timeout=10.0, out=out)
        server.join()
        c.check("stats: error response exits 1", code == 1
                and "shutting_down" in err.getvalue())

        def no_stats_reply(requests):
            return [json.dumps({"status": "ok"})]

        missing_path = os.path.join(tmp, "missing.sock")
        ready = threading.Event()
        server = threading.Thread(
            target=_serve_canned,
            args=(missing_path, no_stats_reply, ready))
        server.start()
        ready.wait()
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stderr(err):
            code = run_stats(missing_path, timeout=10.0, out=out)
        server.join()
        c.check("stats: ok without a stats object exits 1",
                code == 1 and "stats object" in err.getvalue())

    return c.finish()


def main():
    parser = argparse.ArgumentParser(
        description="JSONL batch client for the sweep_serve daemon")
    parser.add_argument("socket", nargs="?",
                        help="Unix socket path of the daemon")
    parser.add_argument("--requests", default="-",
                        help="request JSONL file ('-' = stdin)")
    parser.add_argument("--output", default="-",
                        help="response destination ('-' = stdout)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="socket timeout in seconds")
    parser.add_argument("--expect-ok", action="store_true",
                        help="exit 1 on any error response (CI mode)")
    parser.add_argument("--stats", action="store_true",
                        help="send {\"op\":\"stats\"} and pretty-print "
                             "the daemon's live telemetry")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in checks and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.socket:
        parser.error("SOCKET is required (or use --self-test)")
    if args.stats:
        return run_stats(args.socket, args.timeout)
    return run_client(args)


if __name__ == "__main__":
    sys.exit(main())
