#!/usr/bin/env python3
"""Render a `sweep_serve --metrics-out` telemetry file for humans.

tools/validate_metrics.py proves a telemetry file is well-formed; this
tool answers the operator's questions about it: what did the daemon do,
where did the time go, and did the books balance. It reads the last
"metrics" record (the shutdown flush when present — counters are
cumulative, so the last record summarizes the whole run) and prints:

  - the run header and the service outcome table (every request class
    on the conservation invariant's right side, with shares);
  - the conservation check itself:
      accepted == hits + executed + deduped + shed + expired
                  + poisoned + failed + rejected
  - a store summary from the "store_open" record and final gauges;
  - a percentile table per latency histogram (count, mean, p50, p90,
    p99, max). Percentiles are bucket lower bounds — the log-linear
    buckets keep them within 12.5% of the true value (DESIGN.md §16);
  - with --chart NAME (repeatable, or --charts for all), an ASCII
    bucket-count bar chart of the named histogram.

Usage:
    tools/metrics_report.py METRICS.jsonl [--chart store.put_us ...]
    tools/metrics_report.py METRICS.jsonl --charts
    tools/metrics_report.py --self-test

Exit code 0 on a readable report, 1 when the file has no metrics
record or the conservation check fails (a report you cannot trust).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from common.jsonl import load_records, warn  # noqa: E402
from common.selftest import Checker  # noqa: E402

OUTCOMES = ("hits", "executed", "deduped", "shed", "expired",
            "poisoned", "failed", "rejected")

#: Percentiles shown in the histogram table.
PERCENTILES = (0.50, 0.90, 0.99)


def percentile(buckets, count, q):
    """Lower-bound estimate of the q-quantile from [[lower, n], ...]."""
    if count == 0:
        return None
    rank = max(1, int(q * count + 0.5))
    cumulative = 0
    for lower, n in buckets:
        cumulative += n
        if cumulative >= rank:
            return lower
    return buckets[-1][0] if buckets else None


def format_us(value):
    """Human microseconds: 950us, 1.2ms, 3.4s."""
    if value is None:
        return "-"
    if value < 1000:
        return f"{value:.0f}us"
    if value < 1_000_000:
        return f"{value / 1000:.1f}ms"
    return f"{value / 1_000_000:.2f}s"


def outcome_table(service):
    """The per-class outcome table plus the conservation verdict."""
    lines = []
    accepted = service.get("accepted", 0)
    lines.append(f"{'outcome':<12} {'count':>10} {'share':>7}")
    for key in OUTCOMES:
        value = service.get(key, 0)
        share = value / accepted if accepted else 0.0
        lines.append(f"{key:<12} {value:>10} {share:>6.1%}")
    outcome_sum = sum(service.get(key, 0) for key in OUTCOMES)
    conserved = accepted == outcome_sum
    lines.append(f"{'accepted':<12} {accepted:>10}")
    lines.append(
        f"conservation: accepted {accepted} vs outcome sum "
        f"{outcome_sum} -> {'OK' if conserved else 'VIOLATED'}")
    lines.append(f"requests: {service.get('requests', 0)} "
                 f"(+ {service.get('stats_ops', 0)} stats ops)")
    return lines, conserved


def histogram_table(histograms):
    """Percentile table, one row per histogram, sorted by name."""
    lines = [f"{'histogram':<32} {'count':>8} {'mean':>8} "
             f"{'p50':>8} {'p90':>8} {'p99':>8} {'max':>8}"]
    for name in sorted(histograms):
        histogram = histograms[name]
        count = histogram.get("count", 0)
        buckets = histogram.get("buckets", [])
        mean = histogram.get("sum_us", 0) / count if count else None
        cells = [format_us(percentile(buckets, count, q))
                 for q in PERCENTILES]
        top = buckets[-1][0] if buckets else None
        lines.append(f"{name:<32} {count:>8} {format_us(mean):>8} "
                     f"{cells[0]:>8} {cells[1]:>8} {cells[2]:>8} "
                     f"{format_us(top):>8}")
    return lines


def chart(name, histogram, width=40):
    """ASCII bucket-count bar chart for one histogram."""
    buckets = histogram.get("buckets", [])
    lines = [f"{name} (count {histogram.get('count', 0)})"]
    if not buckets:
        lines.append("  (empty)")
        return lines
    peak = max(n for _, n in buckets)
    for lower, n in buckets:
        bar = "#" * max(1, round(n / peak * width))
        lines.append(f"  >= {format_us(lower):>8} {n:>8} {bar}")
    return lines


def render(records, charts=(), all_charts=False, out=sys.stdout):
    """Print the report; returns the process exit code."""
    store_open = None
    last = None
    for record in records:
        kind = record.get("record")
        if kind == "store_open" and store_open is None:
            store_open = record
        elif kind == "metrics":
            last = record
    if last is None:
        warn("no metrics record found; nothing to report")
        return 1

    label = last.get("label", "?")
    print(f"telemetry report: {label}, seq {last.get('seq')}, "
          f"{last.get('elapsed_seconds', 0):.1f}s elapsed"
          + (" (final flush)" if last.get("final") else
             " (NOT a final flush; the run may still be live)"),
          file=out)
    if store_open is not None:
        store = store_open.get("store", {})
        print(f"store open: {store.get('records', 0)} record(s), "
              f"generation {store.get('generation', 0)}, "
              f"recovered={store.get('recovered', False)}, "
              f"torn_tail={store.get('torn_tail', False)}, "
              f"corrupt_frames={store.get('corrupt_frames', 0)}",
              file=out)
    print(file=out)

    lines, conserved = outcome_table(last.get("service", {}))
    for line in lines:
        print(line, file=out)
    print(file=out)

    store = last.get("store", {})
    print(f"store now: {store.get('records', 0)} record(s), "
          f"{store.get('duplicate_puts', 0)} duplicate put(s), "
          f"{store.get('compactions', 0)} compaction(s)", file=out)
    gauges = last.get("gauges", {})
    if gauges:
        print("gauges: " + ", ".join(
            f"{name}={value}" for name, value in sorted(gauges.items())),
            file=out)
    print(file=out)

    histograms = last.get("histograms", {})
    if histograms:
        for line in histogram_table(histograms):
            print(line, file=out)
    else:
        print("(no histograms; the daemon ran without instruments "
              "firing)", file=out)

    wanted = list(charts)
    if all_charts:
        wanted = sorted(histograms)
    for name in wanted:
        print(file=out)
        if name not in histograms:
            warn(f"no histogram named '{name}' "
                 f"(present: {', '.join(sorted(histograms)) or 'none'})")
            continue
        for line in chart(name, histograms[name]):
            print(line, file=out)

    if not conserved:
        warn("outcome conservation is violated; the counts above "
             "cannot be trusted")
        return 1
    return 0


def self_test():
    """Exercise the math and rendering without external fixtures."""
    import contextlib
    import io

    checker = Checker()
    check = checker.check

    # Percentile math: 10 observations, buckets [8]*4 [16]*5 [32]*1.
    buckets = [[8, 4], [16, 5], [32, 1]]
    check("p50 lands in the middle bucket",
          percentile(buckets, 10, 0.50) == 16)
    check("p10 lands in the first bucket",
          percentile(buckets, 10, 0.10) == 8)
    check("p99 lands in the last bucket",
          percentile(buckets, 10, 0.99) == 32)
    check("empty histogram has no percentile",
          percentile([], 0, 0.50) is None)

    check("microseconds format plain", format_us(950) == "950us")
    check("milliseconds format", format_us(12_500) == "12.5ms")
    check("seconds format", format_us(2_340_000) == "2.34s")

    service = {"requests": 11, "accepted": 10, "stats_ops": 1,
               "hits": 4, "executed": 3, "deduped": 2, "shed": 1,
               "expired": 0, "poisoned": 0, "failed": 0, "rejected": 0}
    lines, conserved = outcome_table(service)
    check("balanced books report OK", conserved
          and any("-> OK" in line for line in lines))
    check("outcome shares rendered",
          any("40.0%" in line for line in lines))
    service["accepted"] = 12
    lines, conserved = outcome_table(service)
    check("imbalanced books report VIOLATED", not conserved
          and any("VIOLATED" in line for line in lines))

    bars = chart("store.put_us", {"count": 10, "buckets": buckets})
    check("chart scales bars to the peak bucket",
          bars[2].count("#") == 40 and bars[1].count("#") == 32)
    check("chart never drops a non-empty bucket to zero width",
          bars[3].count("#") >= 1)
    check("empty chart degrades",
          chart("x", {"count": 0, "buckets": []})[1].strip()
          == "(empty)")

    def metrics(seq, final=False):
        return {"schema_version": 1, "record": "metrics",
                "label": "sweep_serve", "seq": seq,
                "elapsed_seconds": float(seq), "final": final,
                "service": dict(service, accepted=10),
                "store": {"records": 3, "duplicate_puts": 0,
                          "compactions": 1},
                "counters": {}, "gauges": {"service.workers": 2},
                "histograms": {"store.put_us": {
                    "count": 10, "sum_us": 140, "buckets": buckets}}}

    open_record = {"schema_version": 1, "record": "store_open",
                   "store": {"records": 0, "generation": 1,
                             "recovered": True, "torn_tail": False,
                             "corrupt_frames": 0}}
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stderr(err):
        code = render([open_record, metrics(0), metrics(1, final=True)],
                      all_charts=True, out=out)
    text = out.getvalue()
    check("full report exits 0", code == 0)
    check("report uses the final record", "seq 1" in text
          and "final flush" in text)
    check("store_open surfaced", "recovered=True" in text)
    check("histogram table rendered", "p99" in text
          and "store.put_us" in text)
    check("charts rendered with --charts", "####" in text)
    check("gauges rendered", "service.workers=2" in text)

    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stderr(err):
        code = render([metrics(0)], charts=["no.such"], out=out)
    check("non-final report still renders", code == 0
          and "may still be live" in out.getvalue())
    check("unknown chart name warns", "no.such" in err.getvalue())

    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stderr(err):
        code = render([open_record], out=out)
    check("no metrics record exits 1", code == 1)

    broken = metrics(0)
    broken["service"] = dict(service, accepted=99)
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stderr(err):
        code = render([broken], out=out)
    check("conservation violation exits 1", code == 1
          and "VIOLATED" in out.getvalue())

    return checker.finish()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Render a --metrics-out telemetry file")
    parser.add_argument("metrics", nargs="?", help="metrics JSONL file")
    parser.add_argument("--chart", action="append", default=[],
                        metavar="NAME",
                        help="ASCII bar chart of this histogram "
                             "(repeatable)")
    parser.add_argument("--charts", action="store_true",
                        help="chart every histogram")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.metrics is None:
        parser.error("METRICS is required (or use --self-test)")
    return render(load_records(args.metrics), charts=args.chart,
                  all_charts=args.charts)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `report.py metrics.jsonl | head`
        sys.exit(0)
