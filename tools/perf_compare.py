#!/usr/bin/env python3
"""Compare a perf_microbench run against a checked-in baseline.

Both inputs are JSONL files produced by `perf_microbench --json`: one
"perf_meta" record (benchmark, budget, repeats) followed by one "perf"
record per stage carrying its throughput ("rate", work units per
second). The comparison prints a per-stage table of the rate ratio
current/baseline and flags stages whose throughput dropped by more
than --tolerance (default 25%).

By default the exit code is 0 even when stages regressed: CI machines
are shared and noisy, so the perf-smoke job is warn-only — the table
and the uploaded BENCH_perf.json artifact are the signal, and a human
decides whether a flagged drop is real. --strict turns flagged
regressions into exit code 1 for local A/B runs on quiet machines.

Mismatched measurement settings (different benchmark or budget in the
two meta records) are a hard error in both modes: the ratio would be
meaningless.

Usage:
    tools/perf_compare.py BASELINE CURRENT [--tolerance 0.25] [--strict]
"""

import argparse
import json
import sys


def load_perf(path):
    """Return (meta, {stage: record}) from a perf JSONL file."""
    meta = None
    stages = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{lineno}: malformed JSON: {err}")
            kind = record.get("record")
            if kind == "perf_meta":
                meta = record
            elif kind == "perf":
                stages[record["stage"]] = record
    if meta is None:
        raise SystemExit(f"{path}: no perf_meta record found")
    if not stages:
        raise SystemExit(f"{path}: no perf records found")
    return meta, stages


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Compare perf_microbench output against a baseline")
    parser.add_argument("baseline", help="baseline perf JSONL")
    parser.add_argument("current", help="current perf JSONL")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="flag throughput drops beyond this fraction "
                             "(default 0.25)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any stage is flagged "
                             "(default: warn only)")
    args = parser.parse_args(argv)

    base_meta, base = load_perf(args.baseline)
    cur_meta, cur = load_perf(args.current)

    for key in ("benchmark", "budget"):
        if base_meta.get(key) != cur_meta.get(key):
            raise SystemExit(
                f"error: measurement settings differ: {key} is "
                f"{base_meta.get(key)!r} in {args.baseline} but "
                f"{cur_meta.get(key)!r} in {args.current}")

    flagged = []
    print(f"{'stage':<16} {'baseline/s':>14} {'current/s':>14} "
          f"{'ratio':>7}")
    for stage in base:
        if stage not in cur:
            flagged.append(stage)
            print(f"{stage:<16} {base[stage]['rate']:>14.0f} "
                  f"{'MISSING':>14} {'-':>7}")
            continue
        base_rate = base[stage]["rate"]
        cur_rate = cur[stage]["rate"]
        ratio = cur_rate / base_rate if base_rate > 0 else float("inf")
        mark = ""
        if ratio < 1.0 - args.tolerance:
            flagged.append(stage)
            mark = "  << regressed"
        print(f"{stage:<16} {base_rate:>14.0f} {cur_rate:>14.0f} "
              f"{ratio:>7.2f}{mark}")
    for stage in cur:
        if stage not in base:
            print(f"{stage:<16} {'(new)':>14} {cur[stage]['rate']:>14.0f} "
                  f"{'-':>7}")

    if flagged:
        drops = ", ".join(flagged)
        print(f"warning: throughput dropped >"
              f"{args.tolerance:.0%} on: {drops}", file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
