#!/usr/bin/env python3
"""Compare a perf_microbench run against a checked-in baseline.

Both inputs are JSONL files produced by `perf_microbench --json`: one
"perf_meta" record (benchmark, budget, repeats) followed by one "perf"
record per stage carrying its throughput ("rate", work units per
second). The comparison prints a per-stage table of the rate ratio
current/baseline and flags stages whose throughput dropped by more
than --tolerance (default 25%).

Damaged inputs degrade instead of crashing: a perf record without a
usable "stage" or "rate" member is skipped with a warning naming the
file and line, and a stage present on only one side is reported as a
warning naming the stage (MISSING / new in the table) — never a
KeyError. Mismatched measurement settings (different benchmark or
budget in the two meta records) remain a hard error in both modes:
the ratio would be meaningless.

By default the exit code is 0 even when stages regressed, for
exploratory local runs. CI's perf-gate job passes --strict, which
turns any flagged regression into exit code 1: the gated stages
(sim_replay, grid) carry a tightened --stage-tolerance and the
per-stage ratios land in the perf_diff.jsonl artifact via --diff-out.

--overhead switches to the observability cost check (DESIGN.md §11):
BASELINE is a perf_microbench run with the sampler off and CURRENT
the same binary with --sample-interval armed. Only the simulation
stages that actually execute the sampler (sim_live, sim_replay, grid)
are held to the bound — default 5% instead of 25% — while the
untouched stages are printed as a machine-noise floor. The CURRENT
meta must carry "sample_interval" (proof the flag was really on);
benchmark and budget must still match.

--adaptive-overhead takes ONE perf file and bounds the adaptive
decision point's cost within it (DESIGN.md §12): the sim_adaptive
stage runs the same simulation as sim_live with a StaticSelector
armed, so any throughput difference is pure epoch-ticker and
choice-log bookkeeping. The bound defaults to 3%.

--metrics-overhead bounds the service-telemetry cost (DESIGN.md §16):
OFF is a `perf_microbench --serve-stage` run without --metrics and ON
the same run with it, so the serve_hit stage measures the full
submit -> hit -> respond path with and without the registry armed.
Only serve_hit is held to the bound — default 3% — and the ON meta
must carry "metrics": true (and the OFF meta must not), proof the
flag really differed between the two runs.

--stage-tolerance overrides the global tolerance per stage (repeatable,
e.g. --stage-tolerance sim_replay=0.15 --stage-tolerance grid=0.15):
the gated CI job holds the two simulation-throughput stages to a tight
bound while leaving the global default for the noisier fixed-cost
stages. --diff-out writes the comparison as machine-readable JSONL
(one "perf_diff" record per stage plus a "perf_diff_meta" summary) for
artifact upload. When a stage is flagged and the baseline's meta
record carries a "provenance" object (written by
tools/perf_baseline.py: git sha, compiler, CPU model, repeats), it is
printed so the failure names exactly which measurement it was judged
against.

Usage:
    tools/perf_compare.py BASELINE CURRENT [--tolerance 0.25] [--strict]
        [--stage-tolerance STAGE=FRAC ...] [--diff-out DIFF.json]
    tools/perf_compare.py --overhead OFF.json ON.json [--strict]
    tools/perf_compare.py --adaptive-overhead PERF.json [--strict]
    tools/perf_compare.py --metrics-overhead OFF.json ON.json [--strict]
    tools/perf_compare.py --self-test
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from common.jsonl import iter_records, warn  # noqa: E402
from common.selftest import Checker  # noqa: E402


def load_perf(path):
    """Return (meta, {stage: record}) from a perf JSONL file."""
    meta = None
    stages = {}
    for lineno, record in iter_records(path, kinds=("perf_meta", "perf")):
        if record["record"] == "perf_meta":
            meta = record
            continue
        stage = record.get("stage")
        rate = record.get("rate")
        if not isinstance(stage, str) or stage == "":
            warn(f"{path}:{lineno}: perf record without a "
                 f"usable 'stage'; skipping it")
            continue
        if not isinstance(rate, (int, float)) \
                or isinstance(rate, bool):
            warn(f"{path}:{lineno}: stage '{stage}' has no "
                 f"numeric 'rate'; skipping it")
            continue
        stages[stage] = record
    if meta is None:
        raise SystemExit(f"{path}: no perf_meta record found")
    if not stages:
        raise SystemExit(f"{path}: no usable perf records found")
    return meta, stages


def parse_stage_tolerances(pairs):
    """Turn ['sim_replay=0.15', ...] into {stage: fraction}."""
    table = {}
    for pair in pairs or ():
        stage, sep, value = pair.partition("=")
        if not sep or not stage:
            raise SystemExit(
                f"error: --stage-tolerance needs STAGE=FRACTION, "
                f"got {pair!r}")
        try:
            fraction = float(value)
        except ValueError:
            raise SystemExit(
                f"error: --stage-tolerance fraction for "
                f"'{stage}' is not a number: {value!r}") from None
        if not 0.0 <= fraction < 1.0:
            raise SystemExit(
                f"error: --stage-tolerance fraction for '{stage}' "
                f"must be in [0, 1), got {fraction}")
        table[stage] = fraction
    return table


def print_provenance(meta, name):
    """Show where a baseline came from, so a flagged regression names
    the measurement it was judged against."""
    provenance = meta.get("provenance")
    if not isinstance(provenance, dict):
        return
    print(f"baseline provenance ({name}):")
    for key in sorted(provenance):
        print(f"  {key}: {provenance[key]}")


def write_diff(path, records):
    """Write the comparison as JSONL for artifact upload."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def compare(base_meta, base, cur_meta, cur, baseline_name, current_name,
            tolerance, strict, stage_tolerance=None, diff_out=None):
    for key in ("benchmark", "budget"):
        if base_meta.get(key) != cur_meta.get(key):
            raise SystemExit(
                f"error: measurement settings differ: {key} is "
                f"{base_meta.get(key)!r} in {baseline_name} but "
                f"{cur_meta.get(key)!r} in {current_name}")
    if base_meta.get("stat", "best") != cur_meta.get("stat", "best"):
        warn(f"statistic differs: {base_meta.get('stat', 'best')!r} in "
             f"{baseline_name} vs {cur_meta.get('stat', 'best')!r} in "
             f"{current_name}; the ratio mixes statistics")

    stage_tolerance = stage_tolerance or {}
    flagged = []
    diff = []
    print(f"{'stage':<16} {'baseline/s':>14} {'current/s':>14} "
          f"{'ratio':>7}")
    for stage in base:
        bound = stage_tolerance.get(stage, tolerance)
        if stage not in cur:
            flagged.append(stage)
            warn(f"stage '{stage}' is in {baseline_name} but missing "
                 f"from {current_name}")
            print(f"{stage:<16} {base[stage]['rate']:>14.0f} "
                  f"{'MISSING':>14} {'-':>7}")
            diff.append({"record": "perf_diff", "stage": stage,
                         "baseline_rate": base[stage]["rate"],
                         "current_rate": None, "ratio": None,
                         "tolerance": bound, "flagged": True})
            continue
        base_rate = base[stage]["rate"]
        cur_rate = cur[stage]["rate"]
        ratio = cur_rate / base_rate if base_rate > 0 else float("inf")
        mark = ""
        over = ratio < 1.0 - bound
        if over:
            flagged.append(stage)
            mark = f"  << regressed (>{bound:.0%})"
        print(f"{stage:<16} {base_rate:>14.0f} {cur_rate:>14.0f} "
              f"{ratio:>7.2f}{mark}")
        diff.append({"record": "perf_diff", "stage": stage,
                     "baseline_rate": base_rate,
                     "current_rate": cur_rate,
                     "ratio": ratio if ratio != float("inf") else None,
                     "tolerance": bound, "flagged": over})
    for stage in cur:
        if stage not in base:
            warn(f"stage '{stage}' is new in {current_name} (not in "
                 f"{baseline_name})")
            print(f"{stage:<16} {'(new)':>14} {cur[stage]['rate']:>14.0f} "
                  f"{'-':>7}")
            diff.append({"record": "perf_diff", "stage": stage,
                         "baseline_rate": None,
                         "current_rate": cur[stage]["rate"],
                         "ratio": None, "tolerance": None,
                         "flagged": False})

    if diff_out:
        summary = {"record": "perf_diff_meta",
                   "baseline": baseline_name, "current": current_name,
                   "benchmark": base_meta.get("benchmark"),
                   "budget": base_meta.get("budget"),
                   "tolerance": tolerance,
                   "stage_tolerance": stage_tolerance,
                   "flagged": flagged}
        if isinstance(base_meta.get("provenance"), dict):
            summary["baseline_provenance"] = base_meta["provenance"]
        write_diff(diff_out, [summary] + diff)

    if flagged:
        drops = ", ".join(flagged)
        warn(f"throughput dropped past its tolerance or stage missing "
             f"on: {drops}")
        print_provenance(base_meta, baseline_name)
        if strict:
            return 1
    return 0


#: Stages whose inner loop runs the interval sampler; only these are
#: held to the --overhead bound.
SAMPLED_STAGES = ("sim_live", "sim_replay", "grid")


def compare_overhead(base_meta, base, cur_meta, cur, baseline_name,
                     current_name, tolerance, strict):
    """Bound the slowdown the armed sampler causes on the sim stages."""
    for key in ("benchmark", "budget"):
        if base_meta.get(key) != cur_meta.get(key):
            raise SystemExit(
                f"error: measurement settings differ: {key} is "
                f"{base_meta.get(key)!r} in {baseline_name} but "
                f"{cur_meta.get(key)!r} in {current_name}")
    if not cur_meta.get("sample_interval"):
        raise SystemExit(
            f"error: {current_name} was not measured with "
            f"--sample-interval; its meta record has no "
            f"'sample_interval'")
    if base_meta.get("sample_interval"):
        raise SystemExit(
            f"error: {baseline_name} was measured with the sampler "
            f"armed (sample_interval "
            f"{base_meta['sample_interval']!r}); the overhead "
            f"baseline must have it off")

    flagged = []
    print(f"sampler overhead at interval "
          f"{cur_meta['sample_interval']} (bound {tolerance:.0%} on "
          f"sampled stages)")
    print(f"{'stage':<16} {'off/s':>14} {'on/s':>14} {'overhead':>9}")
    for stage in base:
        if stage not in cur:
            warn(f"stage '{stage}' is in {baseline_name} but missing "
                 f"from {current_name}")
            continue
        base_rate = base[stage]["rate"]
        cur_rate = cur[stage]["rate"]
        overhead = 1.0 - cur_rate / base_rate if base_rate > 0 else 0.0
        sampled = stage in SAMPLED_STAGES
        mark = "" if sampled else "  (noise floor)"
        if sampled and overhead > tolerance:
            flagged.append(stage)
            mark = "  << over budget"
        print(f"{stage:<16} {base_rate:>14.0f} {cur_rate:>14.0f} "
              f"{overhead:>8.1%}{mark}")

    if flagged:
        drops = ", ".join(flagged)
        warn(f"sampler overhead exceeds {tolerance:.0%} on: {drops}")
        if strict:
            return 1
    return 0


def compare_adaptive(stages, name, tolerance, strict):
    """Bound the adaptive decision point's bookkeeping cost within one
    perf file: sim_adaptive (StaticSelector armed) vs sim_live."""
    for stage in ("sim_live", "sim_adaptive"):
        if stage not in stages:
            raise SystemExit(
                f"error: {name} has no '{stage}' perf record; run a "
                f"perf_microbench that measures both")
    live = stages["sim_live"]["rate"]
    adaptive = stages["sim_adaptive"]["rate"]
    overhead = 1.0 - adaptive / live if live > 0 else 0.0
    print(f"adaptive decision-point overhead (bound {tolerance:.0%})")
    print(f"{'stage':<16} {'rate/s':>14}")
    print(f"{'sim_live':<16} {live:>14.0f}")
    print(f"{'sim_adaptive':<16} {adaptive:>14.0f}")
    print(f"overhead: {overhead:.1%}")
    if overhead > tolerance:
        warn(f"adaptive selector overhead {overhead:.1%} exceeds "
             f"{tolerance:.0%}")
        if strict:
            return 1
    return 0


#: The one stage whose inner loop runs the instrumented request path;
#: only it is held to the --metrics-overhead bound.
METRICS_STAGE = "serve_hit"


def compare_metrics_overhead(base_meta, base, cur_meta, cur,
                             baseline_name, current_name, tolerance,
                             strict):
    """Bound the slowdown the armed metrics registry causes on the
    service's hit-serving path (the serve_hit stage)."""
    for key in ("benchmark", "budget"):
        if base_meta.get(key) != cur_meta.get(key):
            raise SystemExit(
                f"error: measurement settings differ: {key} is "
                f"{base_meta.get(key)!r} in {baseline_name} but "
                f"{cur_meta.get(key)!r} in {current_name}")
    if not cur_meta.get("metrics"):
        raise SystemExit(
            f"error: {current_name} was not measured with --metrics; "
            f"its meta record has no 'metrics': true")
    if base_meta.get("metrics"):
        raise SystemExit(
            f"error: {baseline_name} was measured with the metrics "
            f"registry armed; the overhead baseline must have it off")
    for name, stages in ((baseline_name, base), (current_name, cur)):
        if METRICS_STAGE not in stages:
            raise SystemExit(
                f"error: {name} has no '{METRICS_STAGE}' perf record; "
                f"run perf_microbench with --serve-stage")

    flagged = []
    print(f"service telemetry overhead (bound {tolerance:.0%} on "
          f"{METRICS_STAGE})")
    print(f"{'stage':<16} {'off/s':>14} {'on/s':>14} {'overhead':>9}")
    for stage in base:
        if stage not in cur:
            warn(f"stage '{stage}' is in {baseline_name} but missing "
                 f"from {current_name}")
            continue
        base_rate = base[stage]["rate"]
        cur_rate = cur[stage]["rate"]
        overhead = 1.0 - cur_rate / base_rate if base_rate > 0 else 0.0
        gated = stage == METRICS_STAGE
        mark = "" if gated else "  (noise floor)"
        if gated and overhead > tolerance:
            flagged.append(stage)
            mark = "  << over budget"
        print(f"{stage:<16} {base_rate:>14.0f} {cur_rate:>14.0f} "
              f"{overhead:>8.1%}{mark}")

    if flagged:
        warn(f"telemetry overhead exceeds {tolerance:.0%} on: "
             f"{', '.join(flagged)}")
        if strict:
            return 1
    return 0


def self_test():
    """Exercise the degradation paths without external fixtures."""
    import contextlib
    import io
    import os
    import tempfile

    def write_jsonl(directory, name, records):
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return path

    meta = {"record": "perf_meta", "benchmark": "gcc", "budget": 1000}
    checker = Checker()
    check = checker.check

    with tempfile.TemporaryDirectory() as tmp:
        # 1. Records without stage/rate are skipped with a warning,
        #    not a KeyError.
        path = write_jsonl(tmp, "damaged.json", [
            meta,
            {"record": "perf", "rate": 5.0},
            {"record": "perf", "stage": "no_rate"},
            {"record": "perf", "stage": "bool_rate", "rate": True},
            {"record": "perf", "stage": "good", "rate": 100.0},
        ])
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            _, stages = load_perf(path)
        check("damaged records skipped", set(stages) == {"good"})
        check("skip warnings name the problem",
              "usable 'stage'" in err.getvalue()
              and "no_rate" in err.getvalue()
              and "bool_rate" in err.getvalue())

        # 2. A stage missing from one side warns by name and flags.
        base = {"a": {"stage": "a", "rate": 100.0},
                "gone": {"stage": "gone", "rate": 50.0}}
        cur = {"a": {"stage": "a", "rate": 100.0},
               "fresh": {"stage": "fresh", "rate": 10.0}}
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = compare(meta, base, meta, cur, "base", "cur",
                           0.25, False)
        check("missing stage is warn-only by default", code == 0)
        check("missing stage named in warning",
              "'gone'" in err.getvalue() and "missing" in err.getvalue())
        check("new stage named in warning", "'fresh'" in err.getvalue())
        check("missing stage rendered in table",
              "MISSING" in out.getvalue())

        # 3. --strict turns the same situation into exit 1.
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = compare(meta, base, meta, cur, "base", "cur",
                           0.25, True)
        check("missing stage fails under --strict", code == 1)

        # 4. Regression math: a 50% drop is flagged, a 10% drop is not
        #    at the default tolerance.
        base = {"x": {"stage": "x", "rate": 100.0},
                "y": {"stage": "y", "rate": 100.0}}
        cur = {"x": {"stage": "x", "rate": 50.0},
               "y": {"stage": "y", "rate": 90.0}}
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = compare(meta, base, meta, cur, "base", "cur",
                           0.25, True)
        check("50% drop flagged strictly", code == 1)
        check("regression marked in table",
              "<< regressed" in out.getvalue())
        check("10% drop not flagged", "y" not in err.getvalue())

        # 4b. Per-stage tolerance: the same 10% drop passes globally
        #     but fails a 5% stage bound; the bound applies only to
        #     its stage. The diff JSONL mirrors the verdicts.
        diff_path = os.path.join(tmp, "diff.json")
        prov_meta = dict(meta, provenance={"git_sha": "abc1234",
                                           "cpu": "TestCPU"})
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = compare(prov_meta, base, meta, cur, "base", "cur",
                           0.25, True,
                           stage_tolerance={"y": 0.05},
                           diff_out=diff_path)
        check("stage tolerance tightens its stage", code == 1
              and "y" in err.getvalue())
        check("provenance printed on flagged regression",
              "abc1234" in out.getvalue()
              and "TestCPU" in out.getvalue())
        with open(diff_path, encoding="utf-8") as handle:
            diff = [json.loads(line) for line in handle]
        by_stage = {d.get("stage"): d for d in diff
                    if d["record"] == "perf_diff"}
        check("diff meta lists flagged stages",
              diff[0]["record"] == "perf_diff_meta"
              and set(diff[0]["flagged"]) == {"x", "y"})
        check("diff meta carries baseline provenance",
              diff[0].get("baseline_provenance", {}).get("git_sha")
              == "abc1234")
        check("diff records carry per-stage verdicts",
              by_stage["x"]["flagged"] and by_stage["y"]["flagged"]
              and by_stage["x"]["tolerance"] == 0.25
              and by_stage["y"]["tolerance"] == 0.05)

        # 4c. Loose per-stage tolerance relaxes below the global bound.
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = compare(meta, base, meta, cur, "base", "cur",
                           0.25, True,
                           stage_tolerance={"x": 0.60})
        check("loose stage tolerance passes its stage", code == 0)

        # 4d. Malformed --stage-tolerance inputs are hard errors.
        for bad in ("sim_replay", "=0.1", "x=lots", "x=1.5"):
            try:
                parse_stage_tolerances([bad])
                check(f"stage tolerance {bad!r} rejected", False)
            except SystemExit:
                check(f"stage tolerance {bad!r} rejected", True)
        check("stage tolerance parses valid pairs",
              parse_stage_tolerances(["a=0.15", "b=0"])
              == {"a": 0.15, "b": 0.0})

        # 4e. Differing statistics warn but do not abort.
        median_meta = dict(meta, stat="median")
        ok = {"x": {"stage": "x", "rate": 100.0},
              "y": {"stage": "y", "rate": 100.0}}
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = compare(meta, ok, median_meta, ok, "base", "cur",
                           0.25, True)
        check("stat mismatch warns but passes", code == 0
              and "statistic differs" in err.getvalue())

        # 5. Mismatched measurement settings stay a hard error.
        other_meta = dict(meta, budget=2000)
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                compare(meta, base, other_meta, cur, "base", "cur",
                        0.25, False)
            check("meta mismatch raises", False)
        except SystemExit as err:
            check("meta mismatch raises",
                  "budget" in str(err))

        # 6. Overhead mode: only sampled stages are held to the bound.
        on_meta = dict(meta, sample_interval=10000)
        base = {"sim_live": {"stage": "sim_live", "rate": 100.0},
                "sim_replay": {"stage": "sim_replay", "rate": 100.0},
                "executor_step": {"stage": "executor_step",
                                  "rate": 100.0}}
        cur = {"sim_live": {"stage": "sim_live", "rate": 90.0},
               "sim_replay": {"stage": "sim_replay", "rate": 97.0},
               "executor_step": {"stage": "executor_step",
                                 "rate": 80.0}}
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = compare_overhead(meta, base, on_meta, cur,
                                    "off", "on", 0.05, True)
        check("10% sampler slowdown flagged strictly", code == 1)
        check("over-budget stage named",
              "'sim_live'" in err.getvalue()
              or "sim_live" in err.getvalue())
        check("3% slowdown within the bound",
              "sim_replay" not in err.getvalue())
        check("unsampled stage is noise floor, never flagged",
              "executor_step" not in err.getvalue()
              and "noise floor" in out.getvalue())

        cur = {"sim_live": {"stage": "sim_live", "rate": 97.0},
               "sim_replay": {"stage": "sim_replay", "rate": 98.0},
               "executor_step": {"stage": "executor_step",
                                 "rate": 99.0}}
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = compare_overhead(meta, base, on_meta, cur,
                                    "off", "on", 0.05, True)
        check("in-budget overhead passes strictly", code == 0)

        # 7. Overhead mode refuses runs measured the wrong way round.
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                compare_overhead(meta, base, meta, cur, "off", "on",
                                 0.05, False)
            check("sampler-off CURRENT raises", False)
        except SystemExit as err:
            check("sampler-off CURRENT raises",
                  "sample_interval" in str(err))
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                compare_overhead(on_meta, base, on_meta, cur,
                                 "off", "on", 0.05, False)
            check("sampler-on BASELINE raises", False)
        except SystemExit as err:
            check("sampler-on BASELINE raises",
                  "baseline" in str(err) or "off" in str(err))

        # 8. Adaptive-overhead mode: bounded within one file.
        stages = {"sim_live": {"stage": "sim_live", "rate": 100.0},
                  "sim_adaptive": {"stage": "sim_adaptive",
                                   "rate": 98.0}}
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = compare_adaptive(stages, "perf", 0.03, True)
        check("2% adaptive overhead within the 3% bound", code == 0)
        stages["sim_adaptive"]["rate"] = 90.0
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = compare_adaptive(stages, "perf", 0.03, True)
        check("10% adaptive overhead flagged strictly", code == 1)
        check("adaptive overhead named in warning",
              "adaptive" in err.getvalue())
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                compare_adaptive({"sim_live": {"stage": "sim_live",
                                               "rate": 100.0}},
                                 "perf", 0.03, False)
            check("missing sim_adaptive raises", False)
        except SystemExit as err:
            check("missing sim_adaptive raises",
                  "sim_adaptive" in str(err))

        # 9. Metrics-overhead mode: serve_hit gated, others noise floor.
        metrics_meta = dict(meta, metrics=True)
        base = {"serve_hit": {"stage": "serve_hit", "rate": 1000.0},
                "sim_live": {"stage": "sim_live", "rate": 100.0}}
        cur = {"serve_hit": {"stage": "serve_hit", "rate": 985.0},
               "sim_live": {"stage": "sim_live", "rate": 80.0}}
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = compare_metrics_overhead(meta, base, metrics_meta,
                                            cur, "off", "on", 0.03,
                                            True)
        check("1.5% telemetry overhead within the 3% bound", code == 0)
        check("ungated stage is noise floor, never flagged",
              "sim_live" not in err.getvalue()
              and "noise floor" in out.getvalue())
        cur["serve_hit"]["rate"] = 900.0
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = compare_metrics_overhead(meta, base, metrics_meta,
                                            cur, "off", "on", 0.03,
                                            True)
        check("10% telemetry overhead flagged strictly", code == 1)
        check("over-budget serve_hit named",
              "serve_hit" in err.getvalue())

        # 10. Metrics-overhead refuses mismeasured inputs.
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                compare_metrics_overhead(meta, base, meta, cur,
                                         "off", "on", 0.03, False)
            check("metrics-off CURRENT raises", False)
        except SystemExit as err:
            check("metrics-off CURRENT raises", "metrics" in str(err))
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                compare_metrics_overhead(metrics_meta, base,
                                         metrics_meta, cur,
                                         "off", "on", 0.03, False)
            check("metrics-on BASELINE raises", False)
        except SystemExit as err:
            check("metrics-on BASELINE raises", "off" in str(err))
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                compare_metrics_overhead(
                    meta, {"sim_live": {"stage": "sim_live",
                                        "rate": 100.0}},
                    metrics_meta, cur, "off", "on", 0.03, False)
            check("missing serve_hit raises", False)
        except SystemExit as err:
            check("missing serve_hit raises", "serve_hit" in str(err))

    return checker.finish()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Compare perf_microbench output against a baseline")
    parser.add_argument("baseline", nargs="?",
                        help="baseline perf JSONL")
    parser.add_argument("current", nargs="?",
                        help="current perf JSONL")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="flag throughput drops beyond this fraction "
                             "(default 0.25, or 0.05 with --overhead)")
    parser.add_argument("--stage-tolerance", action="append",
                        metavar="STAGE=FRACTION",
                        help="per-stage override of --tolerance "
                             "(repeatable; e.g. sim_replay=0.15)")
    parser.add_argument("--diff-out", metavar="PATH",
                        help="write the comparison as JSONL diff records "
                             "(for CI artifact upload)")
    parser.add_argument("--overhead", action="store_true",
                        help="check sampler overhead: BASELINE measured "
                             "with the sampler off, CURRENT with "
                             "--sample-interval armed")
    parser.add_argument("--adaptive-overhead", action="store_true",
                        help="bound sim_adaptive vs sim_live within ONE "
                             "perf file (default tolerance 0.03)")
    parser.add_argument("--metrics-overhead", action="store_true",
                        help="check service telemetry overhead: OFF "
                             "and ON are --serve-stage runs without "
                             "and with --metrics (default tolerance "
                             "0.03)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any stage is flagged "
                             "(default: warn only)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.adaptive_overhead:
        if args.baseline is None:
            parser.error("--adaptive-overhead needs one perf JSONL file")
        if args.current is not None:
            parser.error("--adaptive-overhead compares stages within "
                         "ONE file; drop the second path")
        tolerance = args.tolerance if args.tolerance is not None else 0.03
        _, stages = load_perf(args.baseline)
        return compare_adaptive(stages, args.baseline, tolerance,
                                args.strict)
    if args.baseline is None or args.current is None:
        parser.error("BASELINE and CURRENT are required "
                     "(or use --self-test)")
    if args.tolerance is None:
        args.tolerance = 0.25
        if args.overhead:
            args.tolerance = 0.05
        elif args.metrics_overhead:
            args.tolerance = 0.03

    base_meta, base = load_perf(args.baseline)
    cur_meta, cur = load_perf(args.current)
    if args.metrics_overhead:
        return compare_metrics_overhead(base_meta, base, cur_meta, cur,
                                        args.baseline, args.current,
                                        args.tolerance, args.strict)
    if args.overhead:
        return compare_overhead(base_meta, base, cur_meta, cur,
                                args.baseline, args.current,
                                args.tolerance, args.strict)
    return compare(base_meta, base, cur_meta, cur, args.baseline,
                   args.current, args.tolerance, args.strict,
                   stage_tolerance=parse_stage_tolerances(
                       args.stage_tolerance),
                   diff_out=args.diff_out)


if __name__ == "__main__":
    sys.exit(main())
