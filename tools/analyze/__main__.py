"""Entry point so `python3 tools/analyze` works directly.

When invoked as a directory, Python runs this file without package
context; bootstrap the package by putting tools/ on sys.path.
"""

import os
import sys

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    from analyze.cli import main
else:
    from .cli import main

sys.exit(main())
