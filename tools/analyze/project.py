"""Project-wide model: the cross-file facts the semantic rules need.

Single-file pattern rules only need tokens; the project rules
(stat-conservation, config-plumbing, error-boundary) need to relate
declarations in one file to uses in another. This module builds those
relations once per run:

  - the analyzed file set (from compile_commands.json when available,
    else a tree walk);
  - struct member extraction (SimConfig, SimResults, EpochRecord...);
  - method names declared `virtual` anywhere under src/ headers;
  - a name-keyed call graph with a can-throw fixed point, used to ask
    whether a sweep worker can reach a panic()/throw outside an error
    boundary.
"""

import json
import os

from . import scopes as scp
from . import tokenizer as tok
from .source import SourceFile

SOURCE_SUFFIXES = (".cc", ".cpp", ".hh", ".h")
# Directories holding simulator code that must stay deterministic and
# reproducible. bench/ and tools/ are excluded by design: harness
# timing and report timestamps live there.
SIM_DIRS = (
    "src/core", "src/cache", "src/branch", "src/adaptive", "src/trace",
    "src/workload", "src/isa", "src/check", "src/stats", "src/util",
    "src/report", "src/obs", "src/fault", "src/metrics",
)
# Directories whose code runs on parallel sweep worker threads.
# src/serve is worker code (the service's pool calls into the
# simulator) but deliberately NOT in SIM_DIRS: deadlines, backoff and
# heartbeats make wall-clock reads legal there.
WORKER_DIRS = (
    "src/core", "src/cache", "src/branch", "src/adaptive", "src/trace",
    "src/workload", "src/isa", "src/check", "src/stats", "src/util",
    "src/obs", "src/fault", "src/serve", "src/metrics",
)
# The per-instruction hot path (loop-alloc / loop-virtual scope).
HOT_DIRS = ("src/core",)

_CALL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "alignof", "decltype", "static_cast", "dynamic_cast",
    "reinterpret_cast", "const_cast", "static_assert", "assert",
    "defined", "new", "delete", "throw", "co_await", "co_return",
))


def _norm(path):
    return path.replace(os.sep, "/")


class FunctionInfo:
    __slots__ = ("name", "qualname", "rel_path", "scope", "calls",
                 "can_throw", "throw_reason")

    def __init__(self, name, qualname, rel_path, scope):
        self.name = name
        self.qualname = qualname
        self.rel_path = rel_path
        self.scope = scope
        self.calls = []  # [(name, token_index, line)]
        self.can_throw = False
        self.throw_reason = ""


def discover_files(root, build_dir):
    """Relative paths of the sources to analyze.

    Primary source of truth is the CMake-exported compile_commands.json
    (every translation unit the build actually compiles), augmented
    with the headers under src/; when no database exists we fall back
    to walking the tree. Returns (rel_paths, used_database)."""
    rels = set()
    used_db = False
    db_path = os.path.join(root, build_dir, "compile_commands.json")
    if os.path.isfile(db_path):
        try:
            with open(db_path, encoding="utf-8") as handle:
                entries = json.load(handle)
        except (OSError, json.JSONDecodeError):
            entries = []
        for entry in entries:
            path = entry.get("file", "")
            if not os.path.isabs(path):
                path = os.path.join(entry.get("directory", root), path)
            path = os.path.realpath(path)
            rel = _norm(os.path.relpath(path, os.path.realpath(root)))
            if rel.startswith("src/") and rel.endswith(SOURCE_SUFFIXES):
                rels.add(rel)
                used_db = True
    # Headers never appear in the database; tests and tools are out of
    # scope for the simulator rules. Walk src/ for anything the
    # database missed (or everything, without a database).
    base = os.path.join(root, "src")
    for dirpath, _, names in os.walk(base):
        for name in sorted(names):
            if name.endswith(SOURCE_SUFFIXES):
                rels.add(_norm(os.path.relpath(
                    os.path.join(dirpath, name), root)))
    return sorted(rels), used_db


class Project:
    def __init__(self, root, build_dir="build", rel_paths=None):
        self.root = os.path.abspath(root)
        self.build_dir = build_dir
        if rel_paths is None:
            rel_paths, self.used_database = \
                discover_files(self.root, build_dir)
        else:
            self.used_database = False
        self.rel_paths = rel_paths
        self._files = {}
        self._virtual_names = None
        self._functions = None
        self._reference_idents = {}

    # ------------------------------------------------------------------
    # Files

    def file(self, rel_path):
        """The SourceFile for @p rel_path, or None when unreadable."""
        rel_path = _norm(rel_path)
        if rel_path not in self._files:
            path = os.path.join(self.root, rel_path)
            try:
                with open(path, encoding="utf-8") as handle:
                    text = handle.read()
            except OSError:
                self._files[rel_path] = None
            else:
                self._files[rel_path] = SourceFile(path, rel_path, text)
        return self._files[rel_path]

    def files(self, dirs=None, suffixes=SOURCE_SUFFIXES):
        """SourceFiles under @p dirs (prefix match), sorted by path."""
        out = []
        for rel in self.rel_paths:
            if not rel.endswith(suffixes):
                continue
            if dirs is not None and not any(
                    rel.startswith(d + "/") or rel == d for d in dirs):
                continue
            source = self.file(rel)
            if source is not None:
                out.append(source)
        return out

    def reference_idents(self, *dirs):
        """Every identifier appearing under the given directories
        (which need not be part of the analyzed file set — bench/ and
        examples/ serve as reference corpora for plumbing rules)."""
        key = tuple(dirs)
        if key not in self._reference_idents:
            idents = set()
            for d in dirs:
                base = os.path.join(self.root, d)
                if not os.path.isdir(base):
                    continue
                for dirpath, _, names in os.walk(base):
                    for name in sorted(names):
                        if not name.endswith(SOURCE_SUFFIXES):
                            continue
                        rel = _norm(os.path.relpath(
                            os.path.join(dirpath, name), self.root))
                        source = self.file(rel)
                        if source is not None:
                            idents |= source.idents()
            self._reference_idents[key] = idents
        return self._reference_idents[key]

    # ------------------------------------------------------------------
    # Declarations

    def struct_fields(self, rel_path, struct_name):
        """Data members of @p struct_name declared in @p rel_path, as
        (name, type_text, line, has_initializer). Member functions,
        using-declarations and access specifiers are skipped."""
        source = self.file(rel_path)
        if source is None:
            return []
        ctoks = source.ctoks
        body = None
        for scope in source.scopes.walk():
            if scope.kind == scp.CLASS and scope.name == struct_name:
                body = scope
                break
        if body is None:
            return []

        fields = []
        decl = []  # tokens of the declaration being accumulated
        skip_ranges = sorted((c.open, c.close) for c in body.children)
        i = body.open + 1
        end = body.close - 1
        while i < end:
            # Child scopes (member function bodies, default-initializer
            # lambdas, init braces) contribute nothing to declarations.
            skipped = False
            for lo, hi in skip_ranges:
                if lo <= i < hi:
                    i = hi
                    skipped = True
                    break
            if skipped:
                # A member function body ends its declaration.
                if decl and not any(
                        t.kind == tok.PUNCT and t.text == "="
                        for t in decl):
                    decl = []
                continue
            t = ctoks[i]
            if t.kind == tok.PUNCT and t.text == ";":
                field = self._parse_member(decl)
                if field is not None:
                    fields.append(field)
                decl = []
            elif t.kind == tok.PUNCT and t.text == ":" and len(decl) == 1 \
                    and decl[0].text in ("public", "private", "protected"):
                decl = []
            else:
                decl.append(t)
            i += 1
        return fields

    @staticmethod
    def _parse_member(decl):
        if not decl:
            return None
        texts = [t.text for t in decl]
        if texts[0] in ("using", "typedef", "friend", "template",
                        "static_assert", "enum", "class", "struct"):
            return None
        # Split off a default initializer.
        if "=" in texts:
            head = decl[:texts.index("=")]
            has_init = True
        else:
            head = decl
            has_init = False
        head_texts = [t.text for t in head]
        # A parameter list before any '=' marks a member function.
        if "(" in head_texts:
            return None
        # Array members: name precedes the '['.
        if "[" in head_texts:
            head = head[:head_texts.index("[")]
        if not head or head[-1].kind != tok.IDENT:
            return None
        name_tok = head[-1]
        type_text = " ".join(t.text for t in head[:-1])
        if not type_text:
            return None
        return (name_tok.text, type_text, name_tok.line, has_init)

    @property
    def virtual_names(self):
        """Method names declared `virtual` in any analyzed header."""
        if self._virtual_names is None:
            names = set()
            for source in self.files(suffixes=(".hh", ".h")):
                ctoks = source.ctoks
                for i, t in enumerate(ctoks):
                    if t.kind != tok.IDENT or t.text != "virtual":
                        continue
                    # virtual <ret-type tokens> name '(' — the name is
                    # the last ident before the first '(' after it.
                    for j in range(i + 1, min(i + 24, len(ctoks))):
                        if ctoks[j].kind == tok.PUNCT \
                                and ctoks[j].text in ("(", ";", "{", "}"):
                            if ctoks[j].text == "(" and j > i + 1 \
                                    and ctoks[j - 1].kind == tok.IDENT \
                                    and ctoks[j - 2].text != "~" \
                                    and not ctoks[j - 1].text.startswith(
                                        "operator"):
                                names.add(ctoks[j - 1].text)
                            break
            self._virtual_names = names
        return self._virtual_names

    # ------------------------------------------------------------------
    # Call graph / throw analysis

    @staticmethod
    def calls_in(source, start, end):
        """Call sites in ctoks[start:end) as (name, index, line):
        identifiers directly followed by '(' (or by a short template
        argument list then '('), keywords excluded."""
        ctoks = source.ctoks
        out = []
        for i in range(start, min(end, len(ctoks))):
            t = ctoks[i]
            if t.kind != tok.IDENT or t.text in _CALL_KEYWORDS:
                continue
            j = i + 1
            if j < len(ctoks) and ctoks[j].kind == tok.PUNCT \
                    and ctoks[j].text == "<":
                # Possible template arguments: accept a short balanced
                # <...> run with no statement punctuation inside.
                depth = 0
                for k in range(j, min(j + 32, len(ctoks))):
                    text = ctoks[k].text
                    if ctoks[k].kind == tok.PUNCT and text == "<":
                        depth += 1
                    elif ctoks[k].kind == tok.PUNCT and text == ">":
                        depth -= 1
                        if depth == 0:
                            j = k + 1
                            break
                    elif text in (";", "{", "}"):
                        break
                else:
                    continue
                if depth != 0:
                    continue
            if j < len(ctoks) and ctoks[j].kind == tok.PUNCT \
                    and ctoks[j].text == "(":
                out.append((t.text, i, t.line))
        return out

    def functions(self, dirs=WORKER_DIRS):
        """FunctionInfo for every function under @p dirs, with the
        can-throw fixed point computed; returns {bare name: [infos]}."""
        if self._functions is not None:
            return self._functions
        infos = []
        for source in self.files(dirs=dirs):
            for scope in scp.functions(source.scopes):
                if scope.kind != scp.FUNCTION:
                    continue  # lambdas belong to their enclosing fn
                info = FunctionInfo(scope.name, scope.qualname,
                                    source.rel_path, scope)
                info.calls = self.calls_in(source, scope.open + 1,
                                           scope.close - 1)
                infos.append(info)
        by_name = {}
        for info in infos:
            by_name.setdefault(info.name, []).append(info)

        # Direct throwers: a `throw` expression or a panic()/fatal()
        # call in the body, not absorbed by an enclosing try block.
        for info in infos:
            source = self.file(info.rel_path)
            reason = self._unguarded_throw(source, info.scope)
            if reason:
                info.can_throw = True
                info.throw_reason = reason

        # Propagate: calling a can-throw function outside a try block
        # makes the caller can-throw.
        changed = True
        while changed:
            changed = False
            for info in infos:
                if info.can_throw:
                    continue
                source = self.file(info.rel_path)
                for name, index, line in info.calls:
                    callees = by_name.get(name, ())
                    if not any(c.can_throw for c in callees):
                        continue
                    if self._index_guarded(source, info.scope, index):
                        continue
                    info.can_throw = True
                    info.throw_reason = (f"calls {name}() "
                                         f"({info.rel_path}:{line})")
                    changed = True
                    break
        self._functions = by_name
        return by_name

    @staticmethod
    def _index_guarded(source, fn_scope, index):
        """True when ctoks[index] inside @p fn_scope sits under a try
        block or after a ScopedThrowOnError declaration in scope."""
        scope = scp.innermost(source.scopes, index)
        while scope is not None and scope is not fn_scope.parent:
            if scope.kind == scp.TRY:
                return True
            for i in range(scope.open, index):
                t = source.ctoks[i]
                if t.kind == tok.IDENT and t.text == "ScopedThrowOnError":
                    return True
            scope = scope.parent
        return False

    @classmethod
    def _unguarded_throw(cls, source, fn_scope):
        """Reason string when @p fn_scope contains a throw/panic/fatal
        not absorbed by a try block, else ''."""
        ctoks = source.ctoks
        for i in range(fn_scope.open + 1, fn_scope.close - 1):
            t = ctoks[i]
            if t.kind != tok.IDENT:
                continue
            is_throw = t.text == "throw"
            is_panic = t.text in ("panic", "fatal", "panic_if",
                                  "fatal_if") and i + 1 < len(ctoks) \
                and ctoks[i + 1].kind == tok.PUNCT \
                and ctoks[i + 1].text == "("
            if not (is_throw or is_panic):
                continue
            if cls._index_guarded(source, fn_scope, i):
                continue
            kind = "throw" if is_throw else t.text + "()"
            return f"{kind} at {source.rel_path}:{t.line}"
        return ""
