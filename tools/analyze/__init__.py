"""specfetch-analyze: project-aware static analysis for the
speculative-fetch simulator.

Unlike generic linters, these rules know the project's contracts —
bit-exact determinism, stat conservation into schema-v1 records,
sweep-worker error boundaries, content-addressed run keys — and
enforce them across file boundaries on a real token/scope model of
the C++ sources. See DESIGN.md §13.
"""

__version__ = "1.0.0"
