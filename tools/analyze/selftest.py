"""Self-test: tokenizer/scope unit checks, the violation corpus, the
baseline round-trip, and SARIF validation.

The corpus under tools/analyze/corpus/ is the executable spec of the
rules. Each case directory is a miniature project tree (files at
their project-relative paths) plus an EXPECT file listing exactly
the findings the engine must produce, one per line:

    <rule> <path>:<line>

An empty EXPECT (comments allowed) means the case must analyze
clean — that is how known-good snippets and suppression behavior are
locked in. Every rule has at least one known-bad case that fires and
one known-good case that stays silent; a rule change that breaks
either fails CI before it reaches the tree.
"""

import json
import os
import sys
import tempfile

from . import scopes as scp
from . import tokenizer as tok
from .engine import Baseline, run_rules
from .project import Project
from .rules import all_rules
from .sarif import make_sarif, validate_sarif

CORPUS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "corpus")


def _checker():
    try:
        from common.selftest import Checker
    except ImportError:
        sys.path.insert(0, os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        from common.selftest import Checker
    return Checker()


# ----------------------------------------------------------------------
# Tokenizer / scope unit checks


def _check_tokenizer(c):
    toks = tok.tokenize('auto s = R"x(rand() "quoted")x";')
    strings = [t for t in toks if t.kind == tok.STRING]
    c.check("tokenizer: raw string is one literal",
            len(strings) == 1 and "rand()" in strings[0].text)
    c.check("tokenizer: raw string hides banned names",
            not any(t.kind == tok.IDENT and t.text == "rand"
                    for t in toks))

    toks = tok.tokenize("int n = 1'000'000;")
    numbers = [t for t in toks if t.kind == tok.NUMBER]
    c.check("tokenizer: digit separators merge into one number",
            len(numbers) == 1 and numbers[0].text == "1'000'000")

    toks = tok.tokenize("#ifdef FOO\nint x;\n#endif\nint y;\n")
    x = next(t for t in toks if t.text == "x")
    y = next(t for t in toks if t.text == "y")
    c.check("tokenizer: conditional depth tracked",
            x.pp_depth == 1 and y.pp_depth == 0)

    toks = tok.tokenize("#define FOO \\\n    1\nint z;\n")
    pps = [t for t in toks if t.kind == tok.PP]
    z = next(t for t in toks if t.text == "z")
    c.check("tokenizer: continued directive is one token",
            len(pps) == 1 and pps[0].directive == "define"
            and z.line == 3)

    toks = tok.tokenize("// rand() in a comment\nint w = 0;\n")
    c.check("tokenizer: comments carry no identifiers",
            not any(t.kind == tok.IDENT and t.text == "rand"
                    for t in tok.code_tokens(toks)))


def _check_scopes(c):
    text = (
        "namespace outer {\n"
        "struct Widget {\n"
        "  int run(int n) {\n"
        "    for (int i = 0; i < n; ++i) step(i);\n"
        "    return n;\n"
        "  }\n"
        "};\n"
        "Widget::Widget(int x) : a_(x), b_{x} {\n"
        "  init();\n"
        "}\n"
        "}\n"
    )
    root = scp.build_scopes(tok.code_tokens(tok.tokenize(text)))
    kinds = {}
    for s in root.walk():
        kinds.setdefault(s.kind, []).append(s)
    c.check("scopes: namespace/class/function/loop all found",
            scp.NAMESPACE in kinds and scp.CLASS in kinds
            and scp.FUNCTION in kinds and scp.LOOP in kinds)
    fn_names = {s.qualname for s in kinds.get(scp.FUNCTION, ())}
    c.check("scopes: ctor with initializer list named",
            "Widget::Widget" in fn_names)
    loops = kinds.get(scp.LOOP, [])
    c.check("scopes: braceless loop body has extent",
            loops and loops[0].close > loops[0].open)


# ----------------------------------------------------------------------
# Corpus


def _load_expect(case_dir):
    expected = set()
    with open(os.path.join(case_dir, "EXPECT"),
              encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            rule, loc = line.split(None, 1)
            path, lineno = loc.rsplit(":", 1)
            expected.add((rule, path, int(lineno)))
    return expected


def _run_case(case_dir):
    project = Project(case_dir, build_dir="no-such-build-dir")
    result = run_rules(project, all_rules(), baseline=None)
    return project, result


def _check_corpus(c):
    cases = sorted(
        name for name in os.listdir(CORPUS_DIR)
        if os.path.isdir(os.path.join(CORPUS_DIR, name)))
    c.check("corpus: case directories present", bool(cases))
    rules_fired = set()
    for name in cases:
        case_dir = os.path.join(CORPUS_DIR, name)
        expected = _load_expect(case_dir)
        _, result = _run_case(case_dir)
        found = {(f.rule, f.path, f.line) for f in result.findings}
        ok = c.check(f"corpus {name}: findings match EXPECT",
                     found == expected)
        if not ok:
            for item in sorted(expected - found):
                print(f"      missing:    {item[0]} {item[1]}:{item[2]}")
            for item in sorted(found - expected):
                print(f"      unexpected: {item[0]} {item[1]}:{item[2]}")
        rules_fired |= {rule for rule, _, _ in found}
    every_rule = {r.rule_id for r in all_rules()} | {"bad-suppression"}
    missing = every_rule - rules_fired
    c.check("corpus: every rule has a firing known-bad case "
            + (f"(missing: {', '.join(sorted(missing))})"
               if missing else ""),
            not missing)


# ----------------------------------------------------------------------
# Baseline round-trip


def _check_baseline(c):
    case_dir = os.path.join(CORPUS_DIR, "determinism-bad")
    project, result = _run_case(case_dir)
    c.check("baseline: corpus case has findings to baseline",
            len(result.findings) > 0)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "baseline.json")
        Baseline.dump(result.findings, project, path)
        baseline = Baseline.load(path)
        rebaselined = run_rules(Project(case_dir,
                                        build_dir="no-such-build-dir"),
                                all_rules(), baseline)
        c.check("baseline: round-trip silences every finding",
                not rebaselined.findings
                and len(rebaselined.baselined) == len(result.findings))
        # Damaged baseline must be a hard error, not an empty set.
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{\"version\": 99}")
        try:
            Baseline.load(path)
            c.check("baseline: damaged file rejected", False)
        except SystemExit:
            c.check("baseline: damaged file rejected", True)
    c.check("baseline: missing file is empty baseline",
            not Baseline.load(os.path.join(case_dir,
                                           "no-such-file.json")).entries)


# ----------------------------------------------------------------------
# SARIF


def _check_sarif(c):
    case_dir = os.path.join(CORPUS_DIR, "determinism-bad")
    _, result = _run_case(case_dir)
    doc = make_sarif(result, "file:///tmp/case/")
    c.check("sarif: emitted document validates",
            validate_sarif(doc) == [])
    c.check("sarif: one result per finding",
            len(doc["runs"][0]["results"]) == len(result.findings))
    c.check("sarif: document survives JSON round-trip",
            validate_sarif(json.loads(json.dumps(doc))) == [])

    broken = json.loads(json.dumps(doc))
    del broken["version"]
    c.check("sarif: missing version rejected",
            validate_sarif(broken) != [])
    broken = json.loads(json.dumps(doc))
    if broken["runs"][0]["results"]:
        broken["runs"][0]["results"][0]["ruleId"] = "no-such-rule"
        c.check("sarif: result with uncataloged rule rejected",
                validate_sarif(broken) != [])
    broken = json.loads(json.dumps(doc))
    if broken["runs"][0]["results"]:
        broken["runs"][0]["results"][0]["locations"] = []
        c.check("sarif: result without location rejected",
                validate_sarif(broken) != [])


def run_self_test():
    print("analyze self-test:")
    c = _checker()
    _check_tokenizer(c)
    _check_scopes(c)
    _check_corpus(c)
    _check_baseline(c)
    _check_sarif(c)
    return c.finish()
