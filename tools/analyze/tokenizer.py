"""Preprocessor-aware C++ tokenizer.

Turns source text into a flat token stream the scope tracker and the
rules consume. This is deliberately not a parser: the rules need
identifiers, punctuation and structure (braces, parens), with comments
and string/char literals lifted out so a banned name mentioned in a
docstring or a log message can never fire a rule — the failure mode
the old line-regex lint could only approximate.

Preprocessor handling: a directive (with its backslash continuations)
becomes a single token of kind PP carrying the directive name, so
`#include <unordered_map>` is visible to rules as a directive, not as
an identifier soup, and conditional-compilation depth is tracked per
token (Token.pp_depth) so a rule can tell code under `#if`/`#ifdef`
from unconditional code.

Token kinds:
  IDENT   identifiers and keywords (text is the spelling)
  NUMBER  numeric literals (incl. digit separators, suffixes)
  STRING  string literals (incl. raw strings); text is the literal
  CHAR    character literals
  PUNCT   one punctuation character ('::' arrives as two ':' tokens)
  PP      one whole preprocessor directive; .text is the full
          directive, .directive is its name ("include", "if", ...)
  COMMENT one comment (// to end of line, or a whole /* */ block);
          multi-line block comments produce one token at their first
          line
"""

IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"
PP = "pp"
COMMENT = "comment"

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")

# Conditional-compilation directives that open/continue/close a region.
_PP_OPEN = frozenset(("if", "ifdef", "ifndef"))
_PP_ELSE = frozenset(("else", "elif", "elifdef", "elifndef"))


class Token:
    __slots__ = ("kind", "text", "line", "pp_depth", "directive")

    def __init__(self, kind, text, line, pp_depth=0, directive=None):
        self.kind = kind
        self.text = text
        self.line = line
        self.pp_depth = pp_depth
        self.directive = directive

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def _scan_string(text, i, line):
    """Scan a quoted literal starting at text[i] (a quote); returns the
    index one past the closing quote and the number of newlines seen."""
    quote = text[i]
    i += 1
    newlines = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "\\" and i + 1 < n:
            i += 2
            continue
        if c == "\n":
            newlines += 1  # unterminated literal; keep line counts sane
            i += 1
            continue
        i += 1
        if c == quote:
            break
    return i, newlines


def _scan_raw_string(text, i):
    """Scan a raw string literal R"delim(...)delim" starting at the
    R; returns (end_index, newline_count)."""
    # i points at 'R', i+1 at '"'.
    j = text.find("(", i + 2)
    if j < 0:
        return len(text), text.count("\n", i)
    delim = text[i + 2:j]
    closer = ")" + delim + '"'
    k = text.find(closer, j + 1)
    end = len(text) if k < 0 else k + len(closer)
    return end, text.count("\n", i, end)


def tokenize(text):
    """Tokenize @p text; returns a list of Token."""
    tokens = []
    i = 0
    n = len(text)
    line = 1
    pp_depth = 0
    at_line_start = True  # only whitespace seen since the last newline

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            tokens.append(Token(COMMENT, text[i:j], line, pp_depth))
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            tokens.append(Token(COMMENT, text[i:j], line, pp_depth))
            line += text.count("\n", i, j)
            i = j
            at_line_start = False
            continue

        if c == "#" and at_line_start:
            # One directive token, including backslash continuations.
            j = i
            while j < n:
                k = text.find("\n", j)
                k = n if k < 0 else k
                # A trailing backslash continues the directive.
                m = k - 1
                while m > j and text[m] in " \t\r":
                    m -= 1
                if m > j and text[m] == "\\":
                    j = k + 1
                    continue
                j = k
                break
            directive_text = text[i:j]
            body = directive_text[1:].lstrip()
            name = ""
            for ch in body:
                if ch in _IDENT_CONT:
                    name += ch
                else:
                    break
            if name in _PP_ELSE:
                pass  # same region depth
            elif name in _PP_OPEN:
                pp_depth += 1
            tokens.append(Token(PP, directive_text, line,
                                pp_depth, directive=name))
            if name == "endif":
                pp_depth = max(0, pp_depth - 1)
            line += directive_text.count("\n")
            i = j
            at_line_start = False
            continue

        at_line_start = False

        if c == '"' or (c == "R" and i + 1 < n and text[i + 1] == '"'):
            if c == "R":
                j, newlines = _scan_raw_string(text, i)
            else:
                j, newlines = _scan_string(text, i, line)
            tokens.append(Token(STRING, text[i:j], line, pp_depth))
            line += newlines
            i = j
            continue
        if c == "'":
            # Heuristic: a quote directly between digits/idents is a
            # C++14 digit separator, not a char literal.
            prev = text[i - 1] if i > 0 else ""
            nxt = text[i + 1] if i + 1 < n else ""
            if prev in _IDENT_CONT and nxt in _IDENT_CONT and tokens \
                    and tokens[-1].kind == NUMBER:
                tokens[-1].text += "'"
                i += 1
                continue
            j, newlines = _scan_string(text, i, line)
            tokens.append(Token(CHAR, text[i:j], line, pp_depth))
            line += newlines
            i = j
            continue

        if c in _IDENT_START:
            j = i + 1
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            word = text[i:j]
            # Merge continued numeric literal after a digit separator.
            if tokens and tokens[-1].kind == NUMBER \
                    and tokens[-1].text.endswith("'"):
                tokens[-1].text += word
            else:
                tokens.append(Token(IDENT, word, line, pp_depth))
            i = j
            continue
        if c in _DIGITS:
            j = i + 1
            while j < n and (text[j] in _IDENT_CONT or text[j] == "."):
                j += 1
            # Continue a numeric literal split by a digit separator.
            if tokens and tokens[-1].kind == NUMBER \
                    and tokens[-1].text.endswith("'"):
                tokens[-1].text += text[i:j]
            else:
                tokens.append(Token(NUMBER, text[i:j], line, pp_depth))
            i = j
            continue

        tokens.append(Token(PUNCT, c, line, pp_depth))
        i += 1

    return tokens


def code_tokens(tokens):
    """The token stream without comments and directives — what most
    rules iterate."""
    return [t for t in tokens if t.kind not in (COMMENT, PP)]
