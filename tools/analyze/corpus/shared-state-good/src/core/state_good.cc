#include <cstdint>
#include <mutex>

namespace specfetch {

static const uint64_t kLimit = 64;
static std::mutex cacheLock;
static thread_local uint64_t scratch = 0;
// SPECFETCH-ALLOW(shared-state): lazily filled once, guarded by cacheLock
static uint64_t cachedValue = 0;

uint64_t lookup() {
    std::lock_guard<std::mutex> lock(cacheLock);
    static uint64_t hits = 0;
    return ++hits + cachedValue + kLimit + scratch;
}

static int helper(int x) {
    return x + static_cast<int>(kLimit);
}

}  // namespace specfetch
