// Deterministic counterparts: nothing in this file may fire.
#include <chrono>

namespace specfetch {

// rand() and system_clock mentioned in a comment are fine.
void stamp() {
    auto t0 = std::chrono::steady_clock::now();
    const char* label = "time(nullptr) inside a string literal";
    (void)t0;
    (void)label;
}

}  // namespace specfetch
