// Ordered container with a value key: deterministic iteration.
#include <cstdint>
#include <map>

namespace specfetch {

std::map<uint64_t, int> histogram;

}  // namespace specfetch
