#include "../src/core/config.hh"

int main() {
    specfetch::SimConfig config;
    config.fetchWidth = 8;
    config.secretKnob = 3;
    return static_cast<int>(config.fetchWidth + config.secretKnob);
}
