#pragma once
#include <cstdint>

namespace specfetch {

struct SimConfig {
    uint32_t fetchWidth = 4;
    uint32_t secretKnob = 0;
    // SPECFETCH-ALLOW(config-plumbing): derived at load time, never user-set
    uint32_t derivedMask = 0;
};

}  // namespace specfetch
