#include <chrono>

namespace specfetch {

void stamp() {
    // SPECFETCH-ALLOW(wall-clock)
    auto t0 = std::chrono::system_clock::now();
    (void)t0;
}

}  // namespace specfetch
