#include "hot.hh"

namespace specfetch {

struct Cache {
    int access(int line) { return line; }
};

int drive(Source& src, Cache& cache, int n) {
    int* scratch = new int(0);
    for (int i = 0; i < n; ++i) {
        *scratch += cache.access(i);
    }
    int inst = 0;
    for (int i = 0; i < n; ++i) {
        // lint: allow(loop-virtual)
        if (src.next(inst)) {
            *scratch += inst;
        }
    }
    for (int i = 0; i < n; ++i) *scratch += i;
    int* after = new int(1);
    int result = *scratch + *after;
    delete scratch;
    delete after;
    return result;
}

}  // namespace specfetch
