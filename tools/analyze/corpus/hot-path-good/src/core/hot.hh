#pragma once

namespace specfetch {

struct Source {
    virtual ~Source() = default;
    virtual bool next(int& inst) = 0;
};

}  // namespace specfetch
