#include "hot.hh"

namespace specfetch {

constexpr unsigned long kInstBytes = 4;
constexpr unsigned long LINE_BYTES = 32;

// The shapes the batched kernel is allowed to keep: divides by named
// compile-time constants (strength-reduced to shifts), sizeof, a
// division hoisted out of the loop, and a waived per-iteration
// divide with a stated reason.
unsigned long walk(const unsigned long* lines, int n,
                   unsigned long sets) {
    unsigned long inv = 1000 / sets;    // hoisted: loop-invariant
    unsigned long sum = 0;
    for (int i = 0; i < n; ++i) {
        sum += lines[i] / kInstBytes;
        sum += lines[i] % LINE_BYTES;
        sum += lines[i] / sizeof(unsigned long);
        sum += inv;
    }
    for (int i = 0; i < n; ++i) {
        // lint: allow(loop-divmod)
        sum += lines[i] % sets;
    }
    return sum;
}

}  // namespace specfetch
