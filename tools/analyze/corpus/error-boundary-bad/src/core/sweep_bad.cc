namespace specfetch {

void parallelFor(int n, void (*fn)(int));
[[noreturn]] void panic(const char* msg);

int runOne(int i) {
    if (i < 0) {
        panic("negative run index");
    }
    return i * 2;
}

void sweep(int n) {
    parallelFor(n, [](int i) {
        runOne(i);
    });
}

void sweepDirect(int n) {
    parallelFor(n, [](int i) {
        if (i > 7) {
            panic("run index out of range");
        }
    });
}

}  // namespace specfetch
