// Known-bad determinism corpus: every flagged line below must fire.
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace specfetch {

void stamp() {
    auto t0 = std::chrono::system_clock::now();
    time_t t1 = time(nullptr);
    long t2 = clock();
    int r = rand();
    std::random_device rd;
    (void)t0;
    (void)t1;
    (void)t2;
    (void)r;
    (void)rd;
}

}  // namespace specfetch
