// Hash-ordered and pointer-keyed containers must fire.
#include <map>
#include <unordered_map>

namespace specfetch {

struct Line;

std::unordered_map<int, int> histogram;
std::map<Line*, int> byPointer;

}  // namespace specfetch
