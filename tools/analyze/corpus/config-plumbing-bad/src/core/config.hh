#pragma once
#include <cstdint>

namespace specfetch {

struct SimConfig {
    uint32_t fetchWidth = 4;
    uint32_t secretKnob = 0;
};

}  // namespace specfetch
