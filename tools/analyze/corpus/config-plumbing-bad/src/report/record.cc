#include "../core/config.hh"

namespace specfetch {

int toJson(const SimConfig& config) {
    return static_cast<int>(config.fetchWidth);
}

}  // namespace specfetch
