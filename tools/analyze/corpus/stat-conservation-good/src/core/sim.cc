#include "results.hh"

namespace specfetch {

void step(SimResults& r, bool lost) {
    r.fetchCycles += 1;
    if (lost) {
        r.lostSlots += 1;
    }
}

}  // namespace specfetch
