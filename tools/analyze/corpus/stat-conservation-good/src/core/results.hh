#pragma once
#include <cstdint>

namespace specfetch {

struct SimResults {
    uint64_t fetchCycles = 0;
    uint64_t lostSlots = 0;
    // SPECFETCH-ALLOW(stat-conservation): machine parameter echoed into reports
    uint64_t slotWidth = 0;
};

}  // namespace specfetch
