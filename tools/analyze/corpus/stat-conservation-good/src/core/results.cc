#include "results.hh"

namespace specfetch {

void withStatTree(const char* name, uint64_t value);

void registerStats(const SimResults& r) {
    withStatTree("fetch_cycles", r.fetchCycles);
    withStatTree("lost_slots", r.lostSlots);
}

}  // namespace specfetch
