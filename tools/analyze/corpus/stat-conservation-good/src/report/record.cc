#include "../core/results.hh"

namespace specfetch {

int emitCounters(const SimResults& r) {
    return static_cast<int>(r.fetchCycles + r.lostSlots);
}

}  // namespace specfetch
