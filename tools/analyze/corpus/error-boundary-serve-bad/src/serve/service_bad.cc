namespace specfetch {

[[noreturn]] void panic(const char* msg);

struct Job {
    int id;
};

struct Service {
    void (*onExecute)(Job&);
};

int runOne(Job& job) {
    if (job.id < 0) {
        panic("negative job id");
    }
    return job.id * 2;
}

void start(Service& service) {
    service.onExecute = [](Job& job) {
        runOne(job);
    };
}

void startDirect(Service& service) {
    service.onExecute = [](Job& job) {
        if (job.id > 7) {
            panic("job id out of range");
        }
    };
}

}  // namespace specfetch
