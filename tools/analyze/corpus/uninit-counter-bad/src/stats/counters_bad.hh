#pragma once
#include <cstdint>

namespace specfetch {

struct FetchCounters {
    uint64_t hits = 0;
    uint64_t misses;
    double ipc;
};

}  // namespace specfetch
