#include "results.hh"

namespace specfetch {

void step(SimResults& r) {
    r.fetchCycles += 1;
}

}  // namespace specfetch
