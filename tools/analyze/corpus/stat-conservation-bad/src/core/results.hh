#pragma once
#include <cstdint>

namespace specfetch {

struct SimResults {
    uint64_t fetchCycles = 0;
    uint64_t lostSlots = 0;
};

}  // namespace specfetch
