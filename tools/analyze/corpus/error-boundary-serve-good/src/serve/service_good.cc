namespace specfetch {

struct ScopedThrowOnError {
    ScopedThrowOnError();
    ~ScopedThrowOnError();
};

[[noreturn]] void panic(const char* msg);

struct Job {
    int id;
};

struct Service {
    void (*onExecute)(Job&);
};

int runOne(Job& job) {
    if (job.id < 0) {
        panic("negative job id");
    }
    return job.id * 2;
}

void start(Service& service) {
    service.onExecute = [](Job& job) {
        try {
            runOne(job);
        } catch (...) {
        }
    };
}

void startScoped(Service& service) {
    service.onExecute = [](Job& job) {
        ScopedThrowOnError boundary;
        try {
            runOne(job);
        } catch (...) {
        }
    };
}

}  // namespace specfetch
