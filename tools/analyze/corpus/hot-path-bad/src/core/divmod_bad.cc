#include "hot.hh"

namespace specfetch {

// Per-line batch loop that pays a divide and a modulo every
// iteration: the set index and the in-line count must come from
// shift/mask and a stride add instead.
unsigned long walk(const unsigned long* lines, int n,
                   unsigned long line_bytes, unsigned long sets) {
    unsigned long sum = 0;
    for (int i = 0; i < n; ++i) {
        unsigned long set = lines[i] % sets;
        unsigned long index = lines[i] / line_bytes;
        sum += set + index;
    }
    unsigned long acc = 1000;
    while (acc > 1) {
        acc /= sets;
        sum += acc;
    }
    return sum;
}

}  // namespace specfetch
