#include "hot.hh"

namespace specfetch {

int drive(Source& src, int n) {
    int sum = 0;
    for (int i = 0; i < n; ++i) {
        int* p = new int(i);
        sum += *p;
        delete p;
    }
    int inst = 0;
    while (sum < 100) {
        if (!src.next(inst)) {
            break;
        }
        sum += inst;
    }
    return sum;
}

}  // namespace specfetch
