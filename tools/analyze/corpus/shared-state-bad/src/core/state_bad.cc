#include <cstdint>

namespace specfetch {

static uint64_t totalRuns = 0;

uint64_t bump() {
    static uint64_t calls = 0;
    return ++calls + ++totalRuns;
}

}  // namespace specfetch
