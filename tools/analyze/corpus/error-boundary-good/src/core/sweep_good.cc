namespace specfetch {

struct ScopedThrowOnError {
    ScopedThrowOnError();
    ~ScopedThrowOnError();
};

void parallelFor(int n, void (*fn)(int));
[[noreturn]] void panic(const char* msg);

int runOne(int i) {
    if (i < 0) {
        panic("negative run index");
    }
    return i * 2;
}

void sweepGuarded(int n) {
    parallelFor(n, [](int i) {
        ScopedThrowOnError guard;
        try {
            runOne(i);
        } catch (...) {
        }
    });
}

void sweepPlain(int n) {
    // SPECFETCH-ALLOW(error-boundary): plain sweep aborts on panic by contract
    parallelFor(n, [](int i) { runOne(i); });
}

void sweepPlainMultiline(int n) {
    // A waiver on the lambda's opening line covers every panic site
    // in the body: one allow per intentional-abort sweep.
    // SPECFETCH-ALLOW(error-boundary): plain sweep aborts on panic by contract
    parallelFor(n, [](int i) {
        if (i > 100) {
            panic("run index out of range");
        }
        runOne(i);
    });
}

}  // namespace specfetch
