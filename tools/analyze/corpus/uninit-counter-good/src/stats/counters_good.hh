#pragma once
#include <cstdint>

namespace specfetch {

struct FetchCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    double ipc = 0.0;
    void add(uint64_t delta);
};

inline void tally(uint64_t value) {
    uint64_t local;
    local = value;
    (void)local;
}

}  // namespace specfetch
