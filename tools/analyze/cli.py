"""Command-line interface for specfetch-analyze.

    python3 tools/analyze [--root DIR] [--build-dir DIR] [--strict]
                          [--rules a,b] [--json] [--sarif PATH]
                          [--baseline PATH] [--write-baseline]
                          [--list-rules] [--self-test]

Exit codes follow the perf_compare.py convention: without --strict
findings are warnings (exit 0); with --strict any non-baselined
finding exits 1. --self-test exits 1 when any corpus expectation is
violated.
"""

import argparse
import json
import os
import sys
import time

from . import __version__
from .engine import Baseline, run_rules
from .project import Project
from .rules import all_rules
from .sarif import make_sarif, write_sarif

DEFAULT_BASELINE = os.path.join(os.path.dirname(__file__),
                                "baseline.json")


def _select_rules(names):
    rules = all_rules()
    if not names:
        return rules
    known = {r.rule_id for r in rules}
    unknown = set(names) - known
    if unknown:
        raise SystemExit(
            f"unknown rule(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}")
    return [r for r in rules if r.rule_id in names]


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="tools/analyze",
        description="Project-aware static analysis for the "
                    "speculative-fetch simulator (see DESIGN.md §13).")
    parser.add_argument("--root", default=".",
                        help="repository root (default: .)")
    parser.add_argument("--build-dir", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any non-baselined finding")
    parser.add_argument("--rules", default="",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON on stdout")
    parser.add_argument("--sarif", metavar="PATH",
                        help="write a SARIF 2.1.0 report to PATH")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file (default: "
                             "tools/analyze/baseline.json)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="run the violation corpus and engine "
                             "self-tests")
    parser.add_argument("--version", action="version",
                        version=f"specfetch-analyze {__version__}")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id:18s} "
                  f"{rule.description.splitlines()[0]}")
        print(f"{'bad-suppression':18s} SPECFETCH-ALLOW without a "
              f"reason")
        return 0

    if args.self_test:
        from .selftest import run_self_test
        return run_self_test()

    names = [n.strip() for n in args.rules.split(",") if n.strip()]
    rules = _select_rules(names)

    started = time.monotonic()
    project = Project(args.root, build_dir=args.build_dir)
    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline = None if (args.no_baseline or args.write_baseline) \
        else Baseline.load(baseline_path)
    result = run_rules(project, rules, baseline)
    elapsed = time.monotonic() - started

    if args.write_baseline:
        Baseline.dump(result.findings, project, baseline_path)
        print(f"wrote {len(result.findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    if args.sarif:
        root_uri = "file://" + project.root.rstrip("/") + "/"
        write_sarif(result, root_uri, args.sarif)

    if args.json:
        doc = {
            "version": 1,
            "root": project.root,
            "used_compilation_database": project.used_database,
            "files_analyzed": len(project.rel_paths),
            "elapsed_seconds": round(elapsed, 3),
            "findings": [
                {"rule": f.rule, "path": f.path, "line": f.line,
                 "message": f.message}
                for f in result.findings
            ],
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        }
        json.dump(doc, sys.stdout, indent=2)
        print()
    else:
        for f in result.findings:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        db_note = "" if project.used_database \
            else " (no compile_commands.json; walked src/)"
        print(f"analyze: {len(project.rel_paths)} files, "
              f"{len(result.findings)} finding(s), "
              f"{len(result.suppressed)} suppressed, "
              f"{len(result.baselined)} baselined, "
              f"{elapsed:.1f}s{db_note}")

    if result.findings:
        if args.strict:
            return 1
        print("analyze: findings are warnings without --strict")
    return 0


if __name__ == "__main__":
    sys.exit(main())
