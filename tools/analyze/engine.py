"""Rule engine: findings, suppression, baseline, orchestration.

A rule is an object with `rule_id`, `description`, and
`run(project) -> [Finding]`. The engine runs every registered rule
over the project, drops findings carrying a SPECFETCH-ALLOW (or
legacy `lint: allow`) suppression on their line or the line above,
then drops findings matching the checked-in baseline file. What
remains are the actionable findings.

Baseline entries fingerprint a finding by rule, path and the hash of
its normalized source line — not by line number — so unrelated edits
above a baselined finding do not churn the file. Identical lines in
one file share a fingerprint; the baseline suppresses all of them,
which the docs call out as the cost of stability.
"""

import hashlib
import json


class Finding:
    __slots__ = ("rule", "path", "line", "message", "suppressed",
                 "baselined")

    def __init__(self, rule, path, line, message):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.suppressed = False
        self.baselined = False

    def key(self):
        return (self.path, self.line, self.rule, self.message)

    def __repr__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def fingerprint(finding, line_text):
    normalized = " ".join(line_text.split())
    digest = hashlib.sha1(
        f"{finding.rule}|{finding.path}|{normalized}".encode()
    ).hexdigest()
    return digest[:16]


class Baseline:
    def __init__(self, entries=None):
        self.entries = set(entries or ())

    @classmethod
    def load(cls, path):
        """Load a baseline file; a missing file is an empty baseline,
        a damaged one is a hard error (silent acceptance of stale
        suppressions is worse than failing)."""
        try:
            with open(path, encoding="utf-8") as handle:
                doc = json.load(handle)
        except FileNotFoundError:
            return cls()
        except (OSError, json.JSONDecodeError) as err:
            raise SystemExit(f"cannot read baseline {path}: {err}")
        if not isinstance(doc, dict) or doc.get("version") != 1 \
                or not isinstance(doc.get("findings"), list):
            raise SystemExit(
                f"{path}: not a version-1 analyze baseline")
        entries = set()
        for entry in doc["findings"]:
            if isinstance(entry, dict) and "fingerprint" in entry:
                entries.add(entry["fingerprint"])
        return cls(entries)

    @staticmethod
    def dump(findings, project, path):
        doc = {
            "version": 1,
            "comment": "Known findings tolerated by tools/analyze; "
                       "regenerate with --write-baseline, shrink it "
                       "whenever you fix one.",
            "findings": [],
        }
        for f in sorted(findings, key=Finding.key):
            source = project.file(f.path)
            line_text = source.line_text(f.line) if source else ""
            doc["findings"].append({
                "fingerprint": fingerprint(f, line_text),
                "rule": f.rule,
                "path": f.path,
                "message": f.message,
            })
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(doc, handle, indent=2)
            handle.write("\n")

    def contains(self, finding, line_text):
        return fingerprint(finding, line_text) in self.entries


class AnalysisResult:
    def __init__(self):
        self.findings = []      # actionable
        self.suppressed = []    # dropped by inline allows
        self.baselined = []     # dropped by the baseline file
        self.rules = []         # (rule_id, description) that ran


def run_rules(project, rules, baseline=None):
    """Run @p rules over @p project; returns an AnalysisResult."""
    result = AnalysisResult()
    raw = []
    for rule in rules:
        result.rules.append((rule.rule_id, rule.description))
        for finding in rule.run(project):
            raw.append(finding)
    result.rules.append((
        BAD_SUPPRESSION_RULE,
        "SPECFETCH-ALLOW waiver without a reason; every suppression "
        "must say why it is safe."))
    raw.extend(_bad_suppressions(project))
    raw.sort(key=Finding.key)

    seen = set()
    for finding in raw:
        if finding.key() in seen:
            continue
        seen.add(finding.key())
        source = project.file(finding.path)
        if source is not None \
                and source.suppressed(finding.rule, finding.line):
            finding.suppressed = True
            result.suppressed.append(finding)
            continue
        line_text = source.line_text(finding.line) if source else ""
        if baseline is not None and baseline.contains(finding, line_text):
            finding.baselined = True
            result.baselined.append(finding)
            continue
        result.findings.append(finding)
    return result


BAD_SUPPRESSION_RULE = "bad-suppression"


def _bad_suppressions(project):
    """A SPECFETCH-ALLOW without a `: reason` is itself a finding: the
    waiver loses its justification the moment the author moves on."""
    findings = []
    for source in project.files():
        for s in source.suppressions:
            if s.legacy or s.reason:
                continue
            findings.append(Finding(
                BAD_SUPPRESSION_RULE, source.rel_path, s.line,
                f"SPECFETCH-ALLOW({s.rule}) without a reason; write "
                f"`// SPECFETCH-ALLOW({s.rule}): <why this is safe>`"))
    return findings
