"""SARIF 2.1.0 emission (and structural validation, for the
self-test) of analyze findings.

SARIF is the interchange format CI code-scanning UIs ingest; the CI
analyze job uploads the report as an artifact. We emit the minimal
valid document: one run, the rule catalog in tool.driver.rules, one
result per finding with a physical location relative to SRCROOT.
"""

import json

TOOL_NAME = "specfetch-analyze"
TOOL_VERSION = "1.0.0"
SARIF_VERSION = "2.1.0"
SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
              "master/Schemata/sarif-schema-2.1.0.json")


def make_sarif(result, root_uri):
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": description.split("\n")[0]},
            "fullDescription": {"text": description},
        }
        for rule_id, description in sorted(set(result.rules))
    ]
    results = []
    for finding in result.findings:
        results.append({
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, finding.line)},
                },
            }],
        })
    return {
        "$schema": SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "version": TOOL_VERSION,
                    "informationUri":
                        "https://github.com/specfetch/specfetch",
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"uri": root_uri},
            },
            "results": results,
        }],
    }


def write_sarif(result, root_uri, path):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(make_sarif(result, root_uri), handle, indent=2)
        handle.write("\n")


def validate_sarif(doc):
    """Structural validation against the parts of the 2.1.0 schema we
    rely on; returns a list of problems (empty = valid). Not a full
    JSON-Schema validation — the container has no jsonschema package —
    but enough to catch emitter regressions."""
    problems = []

    def need(cond, message):
        if not cond:
            problems.append(message)
        return cond

    if not need(isinstance(doc, dict), "top level must be an object"):
        return problems
    need(doc.get("version") == SARIF_VERSION,
         f"version must be {SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not need(isinstance(runs, list) and runs, "runs must be a "
                "non-empty array"):
        return problems
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not need(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver", {}) \
            if isinstance(run.get("tool"), dict) else {}
        need(isinstance(driver.get("name"), str) and driver.get("name"),
             f"{where}.tool.driver.name must be a non-empty string")
        rules = driver.get("rules", [])
        rule_ids = set()
        if need(isinstance(rules, list),
                f"{where}.tool.driver.rules must be an array"):
            for j, rule in enumerate(rules):
                ok = isinstance(rule, dict) \
                    and isinstance(rule.get("id"), str) and rule["id"]
                need(ok, f"{where}.tool.driver.rules[{j}] needs a "
                     f"string id")
                if ok:
                    rule_ids.add(rule["id"])
        results = run.get("results")
        if not need(isinstance(results, list),
                    f"{where}.results must be an array"):
            continue
        for j, res in enumerate(results):
            rwhere = f"{where}.results[{j}]"
            if not need(isinstance(res, dict),
                        f"{rwhere} must be an object"):
                continue
            need(isinstance(res.get("ruleId"), str) and res["ruleId"],
                 f"{rwhere}.ruleId must be a non-empty string")
            if res.get("ruleId") in rule_ids or not rule_ids:
                pass
            else:
                problems.append(f"{rwhere}.ruleId {res['ruleId']!r} "
                                f"not in the driver rule catalog")
            message = res.get("message")
            need(isinstance(message, dict)
                 and isinstance(message.get("text"), str),
                 f"{rwhere}.message.text must be a string")
            locations = res.get("locations")
            if not need(isinstance(locations, list) and locations,
                        f"{rwhere}.locations must be non-empty"):
                continue
            for k, loc in enumerate(locations):
                phys = loc.get("physicalLocation", {}) \
                    if isinstance(loc, dict) else {}
                art = phys.get("artifactLocation", {}) \
                    if isinstance(phys, dict) else {}
                need(isinstance(art.get("uri"), str),
                     f"{rwhere}.locations[{k}] needs artifactLocation"
                     f".uri")
                region = phys.get("region", {}) \
                    if isinstance(phys, dict) else {}
                start = region.get("startLine")
                need(isinstance(start, int) and start >= 1,
                     f"{rwhere}.locations[{k}] region.startLine must "
                     f"be a positive integer")
    return problems
