"""Scope tracking over the token stream.

Builds a tree of lexical scopes — namespaces, classes, functions,
lambdas, loops, try blocks — by classifying every brace pair from the
tokens around it. This is what lets a rule ask real structural
questions ("is this allocation inside a loop body?", "is this call
after the ScopedThrowOnError declaration in the same function?")
instead of counting braces per line.

The tracker consumes the *code* token list (comments and preprocessor
directives stripped; see tokenizer.code_tokens). Indices stored in
Scope refer to that list.
"""

from . import tokenizer as tok

# Brace-pair kinds. "init" braces (uniform initialization, initializer
# lists) are tracked for matching but are not lexical scopes.
NAMESPACE = "namespace"
CLASS = "class"
FUNCTION = "function"
LAMBDA = "lambda"
LOOP = "loop"
TRY = "try"
CATCH = "catch"
BLOCK = "block"
INIT = "init"

_CONTROL = frozenset(("if", "for", "while", "switch", "catch"))
_CLASS_KEYS = frozenset(("class", "struct", "union", "enum"))
_QUALIFIERS = frozenset(("const", "noexcept", "override", "final",
                         "mutable", "volatile", "constexpr"))
# Tokens a trailing return type / qualifier sequence may contain,
# skipped when scanning backwards from '{' for the ')' of the header.
_TRAILING_PUNCT = frozenset((":", "<", ">", ",", "*", "&", "-"))


class Scope:
    __slots__ = ("kind", "name", "qualname", "parent", "children",
                 "head", "open", "close")

    def __init__(self, kind, name, parent, head, open_index):
        self.kind = kind
        self.name = name
        self.qualname = name
        self.parent = parent
        self.children = []
        #: Token index where the construct's header starts (the `for`
        #: keyword, the function name...); for most kinds == open.
        self.head = head
        #: Token index of the '{' (or, for a braceless loop body, the
        #: first body token).
        self.open = open_index
        #: Token index one past the closing '}' / ';'.
        self.close = open_index

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def enclosing(self, *kinds):
        scope = self
        while scope is not None:
            if scope.kind in kinds:
                return scope
            scope = scope.parent
        return None

    def contains(self, index):
        return self.open <= index < self.close

    def __repr__(self):
        return (f"Scope({self.kind}, {self.qualname or self.name!r}, "
                f"[{self.open}, {self.close}))")


def _match_back(ctoks, close_index, close_ch, open_ch):
    """Index of the opener matching ctoks[close_index] (a closer), or
    -1 when unbalanced."""
    depth = 0
    for j in range(close_index, -1, -1):
        text = ctoks[j].text
        if ctoks[j].kind != tok.PUNCT:
            continue
        if text == close_ch:
            depth += 1
        elif text == open_ch:
            depth -= 1
            if depth == 0:
                return j
    return -1


def _qualified_name(ctoks, name_index):
    """Assemble Outer::name from `ident :: ident :: name` before
    @p name_index; returns (qualname, head_index)."""
    parts = [ctoks[name_index].text]
    j = name_index
    while (j >= 2 and ctoks[j - 1].kind == tok.PUNCT
           and ctoks[j - 1].text == ":" and ctoks[j - 2].kind == tok.PUNCT
           and ctoks[j - 2].text == ":" and j >= 3
           and ctoks[j - 3].kind == tok.IDENT):
        parts.insert(0, ctoks[j - 3].text)
        j -= 3
    return "::".join(parts), j


def _function_name_before(ctoks, paren_index):
    """Given the '(' of a parameter list, identify the function name
    before it, walking back through a constructor initializer list if
    one intervenes. Returns (name, qualname, head_index) or None."""
    j = paren_index - 1
    # Hop backwards over `: member(expr), member{expr}` initializers.
    while j >= 0:
        t = ctoks[j]
        if t.kind != tok.IDENT:
            return None
        if t.text in _CONTROL or t.text in _CLASS_KEYS:
            return None
        before = j - 1
        if before >= 0 and ctoks[before].kind == tok.PUNCT \
                and ctoks[before].text in (":", ","):
            # `<sep> member (...)`: the separator belongs to a ctor
            # initializer list — unless it's `::` qualification.
            if ctoks[before].text == ":" and before >= 1 \
                    and ctoks[before - 1].text == ":":
                break  # qualified name, handled below
            prev = before - 1
            if prev >= 0 and ctoks[prev].kind == tok.PUNCT \
                    and ctoks[prev].text in (")", "}"):
                opener = "(" if ctoks[prev].text == ")" else "{"
                closer = ctoks[prev].text
                m = _match_back(ctoks, prev, closer, opener)
                if m <= 0:
                    return None
                j = m - 1
                continue
            return None
        break
    if j < 0 or ctoks[j].kind != tok.IDENT:
        return None
    qualname, head = _qualified_name(ctoks, j)
    return ctoks[j].text, qualname, head


def _statement_head(ctoks, index):
    """Texts of the tokens from the start of the current statement up
    to (not including) @p index."""
    j = index - 1
    while j >= 0:
        t = ctoks[j]
        if t.kind == tok.PUNCT and t.text in (";", "{", "}"):
            break
        j -= 1
    return [t.text for t in ctoks[j + 1:index]]


def _classify_brace(ctoks, index):
    """Classify the '{' at @p index; returns (kind, name, head_index)."""
    j = index - 1
    # Skip trailing qualifiers and simple trailing return types.
    while j >= 0 and ((ctoks[j].kind == tok.IDENT
                       and ctoks[j].text in _QUALIFIERS)
                      or (ctoks[j].kind == tok.PUNCT
                          and ctoks[j].text in _TRAILING_PUNCT)
                      or (ctoks[j].kind == tok.IDENT
                          and j >= 1 and ctoks[j - 1].kind == tok.PUNCT
                          and ctoks[j - 1].text in (">", ":"))):
        j -= 1
    if j < 0:
        return BLOCK, "", index

    t = ctoks[j]
    if t.kind == tok.IDENT:
        if t.text == "do":
            return LOOP, "do", j
        if t.text == "try":
            return TRY, "try", j
        if t.text == "else":
            return BLOCK, "else", j
        if t.text == "namespace":
            return NAMESPACE, "", j
        if j >= 1 and ctoks[j - 1].kind == tok.IDENT \
                and ctoks[j - 1].text == "namespace":
            return NAMESPACE, t.text, j - 1
        head = _statement_head(ctoks, index)
        for key in _CLASS_KEYS:
            if key in head:
                # `struct Name ... {` / `enum class Name : base {`
                at = head.index(key)
                name = ""
                for part in head[at + 1:]:
                    if part not in ("class", "struct") \
                            and part[0].isalpha() or part.startswith("_"):
                        name = part
                        break
                return CLASS, name, index - len(head)
        # Bare `ident {` is uniform initialization.
        return INIT, "", index

    if t.kind == tok.PUNCT and t.text == "]":
        return LAMBDA, "<lambda>", _match_back(ctoks, j, "]", "[")

    if t.kind == tok.PUNCT and t.text == ")":
        open_paren = _match_back(ctoks, j, ")", "(")
        if open_paren <= 0:
            return BLOCK, "", index
        before = ctoks[open_paren - 1]
        if before.kind == tok.PUNCT and before.text == "]":
            return LAMBDA, "<lambda>", \
                _match_back(ctoks, open_paren - 1, "]", "[")
        if before.kind == tok.IDENT:
            if before.text in ("for", "while"):
                return LOOP, before.text, open_paren - 1
            if before.text == "catch":
                return CATCH, "catch", open_paren - 1
            if before.text in ("if", "switch"):
                return BLOCK, before.text, open_paren - 1
            named = _function_name_before(ctoks, open_paren)
            if named is not None:
                name, qualname, head = named
                scope = Scope(FUNCTION, name, None, head, index)
                scope.qualname = qualname
                return scope, None, None  # pre-built
        return BLOCK, "", index

    if t.kind == tok.PUNCT and t.text == "}":
        # `Ctor(...) : a_(x), b_{x} {` — the initializer list ends in
        # a brace-init; walk it back to the parameter list.
        m = _match_back(ctoks, j, "}", "{")
        if m > 1 and ctoks[m - 1].kind == tok.IDENT:
            sep = ctoks[m - 2]
            list_sep = sep.kind == tok.PUNCT and (
                sep.text == ","
                or (sep.text == ":"
                    and not (m > 2 and ctoks[m - 3].text == ":")))
            if list_sep:
                named = _function_name_before(ctoks, m)
                if named is not None:
                    name, qualname, head = named
                    scope = Scope(FUNCTION, name, None, head, index)
                    scope.qualname = qualname
                    return scope, None, None
        return BLOCK, "", index

    if t.kind == tok.PUNCT and t.text in ("=", ",", "(", "{", "["):
        return INIT, "", index
    if t.kind == tok.IDENT and t.text == "return":
        return INIT, "", index
    return BLOCK, "", index


def build_scopes(ctoks):
    """Build the scope tree over a code-token list; returns the root
    Scope (kind BLOCK, name "<file>") covering every token."""
    root = Scope(BLOCK, "<file>", None, 0, 0)
    root.close = len(ctoks)
    stack = [root]
    # Open braceless loop bodies, as (scope, paren_depth_at_open).
    pending_braceless = []
    paren_depth = 0

    def push(scope):
        scope.parent = stack[-1]
        stack[-1].children.append(scope)
        stack.append(scope)

    i = 0
    n = len(ctoks)
    while i < n:
        t = ctoks[i]
        if t.kind != tok.PUNCT:
            i += 1
            continue
        c = t.text
        if c == "(":
            paren_depth += 1
        elif c == ")":
            paren_depth = max(0, paren_depth - 1)
            # `for (...)` / `while (...)` not followed by '{' or ';'
            # opens a braceless loop body ending at the next ';' at
            # this paren depth.
            opener = _match_back(ctoks, i, ")", "(")
            if opener > 0 and ctoks[opener - 1].kind == tok.IDENT \
                    and ctoks[opener - 1].text in ("for", "while") \
                    and i + 1 < n \
                    and not (ctoks[i + 1].kind == tok.PUNCT
                             and ctoks[i + 1].text in ("{", ";")):
                scope = Scope(LOOP, ctoks[opener - 1].text, None,
                              opener - 1, i + 1)
                push(scope)
                pending_braceless.append((scope, paren_depth))
        elif c == ";" and paren_depth == (pending_braceless[-1][1]
                                          if pending_braceless else -1):
            # One statement terminator closes every braceless body
            # opened at this depth (`for (...) for (...) stmt;`).
            while pending_braceless \
                    and pending_braceless[-1][1] == paren_depth \
                    and stack[-1] is pending_braceless[-1][0]:
                scope, _ = pending_braceless.pop()
                scope.close = i + 1
                stack.pop()
        elif c == "{":
            kind, name, head = _classify_brace(ctoks, i)
            if isinstance(kind, Scope):  # pre-built function scope
                scope = kind
                scope.open = i
            else:
                scope = Scope(kind, name, None, head, i)
            push(scope)
        elif c == "}":
            if len(stack) > 1:
                scope = stack.pop()
                scope.close = i + 1
                # A '}' also terminates braceless loops waiting on a
                # statement that turned out to be a block-less tail.
                while pending_braceless \
                        and pending_braceless[-1][0] is scope:
                    pending_braceless.pop()
                if stack and pending_braceless \
                        and stack[-1] is pending_braceless[-1][0] \
                        and i + 1 < n \
                        and not (ctoks[i + 1].kind == tok.PUNCT
                                 and ctoks[i + 1].text == ";"):
                    # `for (...) { ... }` never lands here; guard only.
                    pass
        i += 1

    # Unterminated scopes (unbalanced input) close at EOF.
    while len(stack) > 1:
        stack.pop().close = n
    return root


def functions(root):
    """Every function and lambda scope in the tree, in source order."""
    return [s for s in root.walk() if s.kind in (FUNCTION, LAMBDA)]


def innermost(root, index):
    """The innermost scope containing token @p index."""
    scope = root
    descended = True
    while descended:
        descended = False
        for child in scope.children:
            if child.contains(index):
                scope = child
                descended = True
                break
    return scope
