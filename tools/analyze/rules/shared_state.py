"""Shared mutable state reachable from parallel sweep workers.

Sweep workers share one address space; a mutable file-scope object or
function-local static in any translation unit they execute is a data
race unless it is a synchronization primitive itself, immutable,
thread-local, or consistently lock-guarded. The rule flags `static`
variable definitions in worker-reachable directories, with these
exemptions (checked in this order):

  - class members (a different audit: they follow their object);
  - thread_local, const, constexpr, constinit declarations;
  - synchronization types (mutex, atomic, once_flag, ...);
  - static *functions* (internal linkage, not state);
  - statics declared inside a function whose body takes a lock
    (lock_guard / unique_lock / scoped_lock / shared_lock) — the
    project convention for guarded lazy-init caches.

Deliberate process-wide singletons (trace sinks, progress reporters)
carry SPECFETCH-ALLOW(shared-state) with the reason on the
declaration line.

Known limitation, on purpose: `static T name(args);` with no `=`
is indistinguishable from a function declaration by tokens alone and
is skipped; the project writes statics with `=` or brace init.
"""

from .. import scopes as scp
from .. import tokenizer as tok
from ..engine import Finding
from ..project import WORKER_DIRS
from . import Rule

_SYNC_TYPES = frozenset((
    "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
    "atomic", "atomic_flag", "atomic_bool", "atomic_int",
    "atomic_uint", "atomic_size_t", "atomic_uint64_t",
    "once_flag", "condition_variable",
))
_LOCK_IDENTS = frozenset((
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
))
_IMMUTABLE = frozenset(("const", "constexpr", "constinit"))


class SharedState(Rule):
    rule_id = "shared-state"
    description = ("Mutable static reachable from parallel sweep "
                   "workers without synchronization; guard it, make "
                   "it thread_local, or annotate the singleton.")

    def run(self, project):
        findings = []
        for source in project.files(dirs=WORKER_DIRS,
                                    suffixes=(".cc", ".cpp")):
            findings.extend(self._check(source))
        return findings

    def _check(self, source):
        ctoks = source.ctoks
        findings = []
        for i, t in enumerate(ctoks):
            if t.kind != tok.IDENT or t.text != "static":
                continue
            scope = scp.innermost(source.scopes, i)
            if scope.kind == scp.CLASS:
                continue
            stmt, terminator = self._statement(ctoks, i + 1)
            idents = {s.text for s in stmt if s.kind == tok.IDENT}
            if i > 0 and ctoks[i - 1].text == "thread_local":
                continue
            if idents & _IMMUTABLE or "thread_local" in idents:
                continue
            if idents & _SYNC_TYPES:
                continue
            texts = [s.text for s in stmt]
            if terminator == "{":
                # `static ret name(args) {` defines a function; the
                # scope builder already classified that brace.
                brace_index = i + 1 + len(stmt)
                opened = self._scope_at(source.scopes, brace_index)
                if opened is not None \
                        and opened.kind == scp.FUNCTION:
                    continue
            elif "(" in texts and (
                    "=" not in texts
                    or texts.index("=") > texts.index("(")):
                # Function declaration / ctor-call ambiguity — skip
                # (see module docstring).
                continue
            name = self._decl_name(stmt)
            if name is None:
                continue
            where = "function-local static" \
                if scope.kind in (scp.FUNCTION, scp.LAMBDA) \
                else "file-scope static"
            if where == "function-local static" \
                    and self._lock_guarded(source, scope):
                continue
            findings.append(Finding(
                self.rule_id, source.rel_path, name.line,
                f"mutable {where} `{name.text}` is shared across "
                f"parallel sweep workers (guard it with a mutex/"
                f"atomic, make it thread_local, or annotate the "
                f"singleton)"))
        return findings

    @staticmethod
    def _statement(ctoks, start):
        """Tokens from @p start up to the terminating ';' or a
        top-level '{'; returns (tokens, terminator_text)."""
        stmt = []
        depth = 0
        for j in range(start, len(ctoks)):
            t = ctoks[j]
            if t.kind == tok.PUNCT:
                if t.text in ("(", "["):
                    depth += 1
                elif t.text in (")", "]"):
                    depth -= 1
                elif t.text == ";" and depth <= 0:
                    return stmt, ";"
                elif t.text == "{" and depth <= 0:
                    return stmt, "{"
                elif t.text == "}" and depth <= 0:
                    return stmt, "}"
            stmt.append(t)
        return stmt, ""

    @staticmethod
    def _scope_at(root, open_index):
        for scope in root.walk():
            if scope.open == open_index:
                return scope
        return None

    @staticmethod
    def _decl_name(stmt):
        """The declared variable: last IDENT before the first of
        '=', '[', '{' — or the trailing IDENT of a plain `Type name`
        declaration."""
        end = len(stmt)
        for j, t in enumerate(stmt):
            if t.kind == tok.PUNCT and t.text in ("=", "[", "{"):
                end = j
                break
        for t in reversed(stmt[:end]):
            if t.kind == tok.IDENT:
                return t
            if t.kind == tok.PUNCT and t.text in (">", ")"):
                return None
        return None

    @staticmethod
    def _lock_guarded(source, fn_scope):
        ctoks = source.ctoks
        for i in range(fn_scope.open + 1,
                       min(fn_scope.close - 1, len(ctoks))):
            if ctoks[i].kind == tok.IDENT \
                    and ctoks[i].text in _LOCK_IDENTS:
                return True
        return False


RULES = (SharedState(),)
