"""Rule registry.

Each rule module exports RULES, a tuple of rule instances. A rule has
`rule_id` (the name used in SPECFETCH-ALLOW and the baseline),
`description` (first line goes into the SARIF rule catalog), and
`run(project) -> [Finding]`.
"""


class Rule:
    rule_id = ""
    description = ""

    def run(self, project):
        raise NotImplementedError


def all_rules():
    from . import (config_plumbing, determinism, error_boundary,
                   hot_path, shared_state, stat_conservation)
    rules = []
    for module in (determinism, hot_path, stat_conservation,
                   error_boundary, shared_state, config_plumbing):
        rules.extend(module.RULES)
    return rules
