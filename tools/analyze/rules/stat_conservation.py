"""Stat conservation: every counter the simulator carries must flow
end to end.

A counter declared in SimResults that never reaches the stat tree or
the schema-v1 record is silently-lost data; one that nothing ever
updates is a dead column that reads as zero forever. Both have bitten
this codebase before (a counter added for a paper figure that only
showed up in one of statsDump/visitStats). The rule walks the struct
declaration and cross-checks three obligations per arithmetic field:

  registered   the field is referenced by the stat-tree registration
               translation unit (results.cc's withStatTree feeds both
               statsDump and visitStats);
  emitted      the field is referenced by the schema-v1 record
               emitter;
  updated      some simulator source other than the registration and
               emission files references the field at all.

Fields that are deliberately not counters (machine parameters echoed
into the results block) carry a SPECFETCH-ALLOW(stat-conservation)
on their declaration line with the reason.
"""

from ..engine import Finding
from . import Rule

_ARITH_MARKERS = (
    "uint64_t", "uint32_t", "uint16_t", "uint8_t",
    "int64_t", "int32_t", "int", "unsigned", "size_t",
    "double", "float", "bool", "Slot", "Addr",
)

# (decl header, struct, registration TUs, emission TUs, update dirs).
# Update scanning excludes the declaration header and the
# registration/emission files — results.cc's operator== mentions every
# field, so counting it as an "update" would blind the check.
STRUCTS = (
    {
        "path": "src/core/results.hh",
        "name": "SimResults",
        "registered": ("src/core/results.cc",),
        "emitted": ("src/report/record.cc",),
        "update_dirs": ("src/core", "src/cache", "src/branch",
                        "src/adaptive", "src/trace", "src/check",
                        "src/stats", "src/fault"),
    },
    {
        "path": "src/obs/epoch.hh",
        "name": "EpochRecord",
        "registered": (),
        "emitted": ("src/obs/obs_record.cc",),
        "update_dirs": ("src/obs",),
    },
)


def _arith(type_text):
    parts = type_text.split()
    return any(p in _ARITH_MARKERS for p in parts)


class StatConservation(Rule):
    rule_id = "stat-conservation"
    description = ("Counter declared in a stats struct that is not "
                   "registered in the stat tree, not emitted into "
                   "schema-v1 records, or never updated by the "
                   "simulator.")

    def run(self, project):
        findings = []
        for spec in STRUCTS:
            findings.extend(self._check(project, spec))
        return findings

    def _check(self, project, spec):
        fields = project.struct_fields(spec["path"], spec["name"])
        if not fields:
            return []
        findings = []
        reg_idents = self._idents(project, spec["registered"])
        emit_idents = self._idents(project, spec["emitted"])
        skip_updates = {spec["path"]} | set(spec["registered"]) \
            | set(spec["emitted"])
        update_sources = [
            s for s in project.files(dirs=spec["update_dirs"])
            if s.rel_path not in skip_updates
        ]
        qual = spec["name"]
        for name, type_text, line, _has_init in fields:
            if not _arith(type_text):
                continue
            if spec["registered"] and reg_idents is not None \
                    and name not in reg_idents:
                findings.append(Finding(
                    self.rule_id, spec["path"], line,
                    f"counter {qual}::{name} is not registered in the "
                    f"stat tree ({spec['registered'][0]}) — it will be "
                    f"invisible to statsDump and visitStats"))
            if spec["emitted"] and emit_idents is not None \
                    and name not in emit_idents:
                findings.append(Finding(
                    self.rule_id, spec["path"], line,
                    f"counter {qual}::{name} is not emitted into "
                    f"schema-v1 records ({spec['emitted'][0]})"))
            if update_sources and not any(
                    name in s.idents() for s in update_sources):
                findings.append(Finding(
                    self.rule_id, spec["path"], line,
                    f"counter {qual}::{name} is never updated by any "
                    f"simulator source — dead column"))
        return findings

    @staticmethod
    def _idents(project, rel_paths):
        """Union of identifiers in @p rel_paths; None when none of the
        files exist (the obligation is then unknowable, not violated)."""
        idents = None
        for rel in rel_paths:
            source = project.file(rel)
            if source is None:
                continue
            if idents is None:
                idents = set()
            idents |= source.idents()
        return idents


RULES = (StatConservation(),)
