"""Hot-path rules: per-instruction loops in src/core must not
allocate or virtually dispatch.

These guard throughput rather than determinism: a single allocation
or virtual call per simulated instruction is the difference between
minutes and hours at paper-scale budgets. Scope-aware port of the
lint.py brace counter — the loop body is a real Scope now, so
allocations in a lambda that merely *sits next to* a loop no longer
false-positive, and braceless bodies are handled by the scope
builder, not a line heuristic.
"""

from .. import scopes as scp
from .. import tokenizer as tok
from ..engine import Finding
from ..project import HOT_DIRS
from . import Rule

_ALLOC_IDENTS = frozenset(("new", "make_shared", "make_unique",
                           "malloc"))


def _loop_ranges(source):
    """Token ranges [head, close) of every loop in the file. The head
    includes the loop condition, which re-evaluates every iteration."""
    return [(s.head, s.close)
            for s in source.scopes.walk() if s.kind == scp.LOOP]


class LoopAlloc(Rule):
    rule_id = "loop-alloc"
    description = ("Heap allocation inside a hot per-instruction "
                   "loop in src/core; hoist it out of the loop.")

    def run(self, project):
        findings = []
        for source in project.files(dirs=HOT_DIRS,
                                    suffixes=(".cc", ".cpp")):
            ctoks = source.ctoks
            seen = set()
            for lo, hi in _loop_ranges(source):
                for i in range(lo, min(hi, len(ctoks))):
                    t = ctoks[i]
                    if t.kind != tok.IDENT \
                            or t.text not in _ALLOC_IDENTS:
                        continue
                    if t.text == "malloc" and not (
                            i + 1 < len(ctoks)
                            and ctoks[i + 1].text == "("):
                        continue
                    if t.line in seen:
                        continue
                    seen.add(t.line)
                    findings.append(Finding(
                        self.rule_id, source.rel_path, t.line,
                        "heap allocation inside a hot loop"))
        return findings


class LoopVirtual(Rule):
    rule_id = "loop-virtual"
    description = ("Virtual dispatch inside a hot per-instruction "
                   "loop in src/core; hoist it or use the "
                   "statically-bound path (FetchEngine::runWith).")

    def run(self, project):
        virtual_names = project.virtual_names
        if not virtual_names:
            return []
        findings = []
        for source in project.files(dirs=HOT_DIRS,
                                    suffixes=(".cc", ".cpp")):
            ctoks = source.ctoks
            seen = set()
            for lo, hi in _loop_ranges(source):
                for i in range(lo, min(hi, len(ctoks))):
                    t = ctoks[i]
                    if t.kind != tok.IDENT \
                            or t.text not in virtual_names:
                        continue
                    if not (i + 1 < len(ctoks)
                            and ctoks[i + 1].kind == tok.PUNCT
                            and ctoks[i + 1].text == "("):
                        continue
                    # Member access only: `obj.name(` or `ptr->name(`.
                    prev = ctoks[i - 1] if i > 0 else None
                    member = prev is not None \
                        and prev.kind == tok.PUNCT \
                        and (prev.text == "."
                             or (prev.text == ">" and i > 1
                                 and ctoks[i - 2].text == "-"))
                    if not member or t.line in seen:
                        continue
                    seen.add(t.line)
                    findings.append(Finding(
                        self.rule_id, source.rel_path, t.line,
                        f"virtual dispatch of {t.text}() inside a hot "
                        f"loop (hoist it or use the statically-bound "
                        f"path)"))
        return findings


class LoopDivMod(Rule):
    """Division and modulo by a non-constant inside hot loops.

    The batched fetch kernel (FetchEngine::fetchPlainRun and the
    wrong-path walker) earns its throughput by keeping the per-line
    stepping free of div/mod units: line strides are adds, and the
    only divisions left divide by named compile-time constants
    (kInstBytes), which the compiler strength-reduces to shifts. A
    division or modulo whose divisor is a runtime value (a variable,
    member, or call result) defeats that — it costs 20-90 cycles on
    the very path that retires one iteration per cache line.

    Divisors that are numeric literals, sizeof expressions, or named
    constants (kCamelCase / ALL_CAPS) are exempt; anything else inside
    a loop in src/core is flagged. Headers are scanned too: the hot
    kernels live partly in inline members (fetch_engine.hh).
    """

    rule_id = "loop-divmod"
    description = ("Division or modulo by a non-constant inside a hot "
                   "loop in src/core; replace it with a stride add, a "
                   "shift/mask, or hoist it out of the loop.")

    @staticmethod
    def _constant_divisor(ctoks, i):
        """True when the token after operator index @p i names a
        compile-time constant the optimizer folds to shift/mask."""
        if i + 1 >= len(ctoks):
            return True        # malformed tail; not our problem
        nxt = ctoks[i + 1]
        if nxt.kind == tok.NUMBER:
            return True
        if nxt.kind == tok.IDENT:
            if nxt.text == "sizeof":
                return True
            # kInstBytes-style or ALL_CAPS named constants.
            if len(nxt.text) > 1 and nxt.text[0] == "k" \
                    and nxt.text[1].isupper():
                return True
            if nxt.text.isupper():
                return True
        return False

    def run(self, project):
        findings = []
        for source in project.files(dirs=HOT_DIRS,
                                    suffixes=(".cc", ".cpp", ".hh",
                                              ".h")):
            ctoks = source.ctoks
            seen = set()
            for lo, hi in _loop_ranges(source):
                for i in range(lo, min(hi, len(ctoks))):
                    t = ctoks[i]
                    if t.kind != tok.PUNCT or t.text not in ("/", "%"):
                        continue
                    # `/=` and `%=` arrive as two PUNCT tokens; the
                    # divisor then sits after the `=`.
                    op_end = i
                    if i + 1 < len(ctoks) \
                            and ctoks[i + 1].kind == tok.PUNCT \
                            and ctoks[i + 1].text == "=":
                        op_end = i + 1
                    if self._constant_divisor(ctoks, op_end):
                        continue
                    if t.line in seen:
                        continue
                    seen.add(t.line)
                    op = "modulo" if t.text == "%" else "division"
                    findings.append(Finding(
                        self.rule_id, source.rel_path, t.line,
                        f"{op} by a non-constant inside a hot loop "
                        f"(use a stride add or shift/mask, or hoist "
                        f"it)"))
        return findings


RULES = (LoopAlloc(), LoopVirtual(), LoopDivMod())
