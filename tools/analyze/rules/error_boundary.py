"""Error boundaries: code running on parallel sweep workers must not
be able to abort the process.

The fault-tolerance layer (src/fault) converts panics into per-run
quarantine records, but only when the panic surfaces inside an error
boundary — a ScopedThrowOnError in scope or an enclosing try. A
panic() reached from a worker lambda outside any boundary takes the
whole sweep down with it, checkpoints and all.

Worker roots are found lexically: every lambda passed to
parallelFor(...) and every lambda assigned to an `onRunComplete` or
`onExecute` member (the sweep service's worker body). For each root, two checks run against the name-keyed call
graph with its can-throw fixed point (see project.functions):

  - a throw / panic / fatal directly in the lambda body, outside any
    try and before any ScopedThrowOnError declaration;
  - a call to a function whose can-throw bit is set, at a call site
    that is not itself guarded.

Sweeps that *intend* to abort on panic (the plain, non-guarded
runSweep contract) carry SPECFETCH-ALLOW(error-boundary) with that
reason at the call site. A waiver on the lambda's opening line (or
the line above it) waives the whole worker root — one reasoned allow
per intentional-abort sweep instead of one per reachable panic.
"""

from .. import scopes as scp
from .. import tokenizer as tok
from ..engine import Finding
from ..project import WORKER_DIRS
from . import Rule

_PANIC_IDENTS = frozenset(("panic", "fatal", "panic_if", "fatal_if"))
_WORKER_CALLS = frozenset(("parallelFor",))
_WORKER_ASSIGNS = frozenset(("onRunComplete", "onExecute"))


def _match_fwd(ctoks, open_index):
    depth = 0
    for j in range(open_index, len(ctoks)):
        if ctoks[j].kind != tok.PUNCT:
            continue
        if ctoks[j].text == "(":
            depth += 1
        elif ctoks[j].text == ")":
            depth -= 1
            if depth == 0:
                return j
    return len(ctoks)


def _statement_end(ctoks, index):
    depth = 0
    for j in range(index, len(ctoks)):
        if ctoks[j].kind != tok.PUNCT:
            continue
        text = ctoks[j].text
        if text in ("(", "[", "{"):
            depth += 1
        elif text in (")", "]", "}"):
            depth -= 1
        elif text == ";" and depth <= 0:
            return j
    return len(ctoks)


def worker_roots(source):
    """Lambda scopes in @p source that run on sweep worker threads."""
    ctoks = source.ctoks
    spans = []
    for i, t in enumerate(ctoks):
        if t.kind != tok.IDENT:
            continue
        if t.text in _WORKER_CALLS and i + 1 < len(ctoks) \
                and ctoks[i + 1].text == "(":
            spans.append((i + 1, _match_fwd(ctoks, i + 1)))
        elif t.text in _WORKER_ASSIGNS and i + 1 < len(ctoks) \
                and ctoks[i + 1].text == "=":
            spans.append((i + 1, _statement_end(ctoks, i + 1)))
    roots = []
    for scope in source.scopes.walk():
        if scope.kind != scp.LAMBDA:
            continue
        if any(lo < scope.open < hi for lo, hi in spans):
            # Nested lambdas are covered by walking their root.
            if not any(r.contains(scope.open) for r in roots):
                roots.append(scope)
    return roots


class ErrorBoundary(Rule):
    rule_id = "error-boundary"
    description = ("panic/fatal/throw reachable from a parallel sweep "
                   "worker without passing through ScopedThrowOnError "
                   "or an enclosing try; one bad run would abort the "
                   "whole sweep instead of being quarantined.")

    def run(self, project):
        functions = project.functions()
        findings = []
        for source in project.files(dirs=WORKER_DIRS,
                                    suffixes=(".cc", ".cpp")):
            for root in worker_roots(source):
                findings.extend(
                    self._check_root(project, functions, source, root))
        return findings

    def _check_root(self, project, functions, source, root):
        ctoks = source.ctoks
        # An allow on the lambda's opening line waives the whole root:
        # the decision "this sweep aborts on panic" is per-sweep, not
        # per-panic-site.
        if root.open < len(ctoks) \
                and source.suppressed(self.rule_id,
                                      ctoks[root.open].line):
            return []
        findings = []
        seen_lines = set()

        def report(line, message):
            if line not in seen_lines:
                seen_lines.add(line)
                findings.append(Finding(self.rule_id, source.rel_path,
                                        line, message))

        for i in range(root.open + 1, min(root.close - 1, len(ctoks))):
            t = ctoks[i]
            if t.kind != tok.IDENT:
                continue
            direct = t.text == "throw" or (
                t.text in _PANIC_IDENTS and i + 1 < len(ctoks)
                and ctoks[i + 1].text == "(")
            if direct and not project._index_guarded(source, root, i):
                what = "throw" if t.text == "throw" else t.text + "()"
                report(t.line,
                       f"{what} in a parallel sweep worker without an "
                       f"error boundary (declare ScopedThrowOnError or "
                       f"route through runSweepGuarded)")
        for name, index, line in project.calls_in(
                source, root.open + 1, root.close - 1):
            callees = [c for c in functions.get(name, ())
                       if c.can_throw]
            if not callees:
                continue
            if project._index_guarded(source, root, index):
                continue
            report(line,
                   f"calls {name}(), which can abort "
                   f"({callees[0].throw_reason}), from a parallel "
                   f"sweep worker without an error boundary")
        return findings


RULES = (ErrorBoundary(),)
