"""Config plumbing: every SimConfig field must be reachable end to
end, or say why not.

Two obligations per field:

  serialized   the field is referenced by src/report/record.cc. That
               file both writes the run manifest and feeds
               `toJson(config).dump()` into the content-addressed run
               key — an unserialized field means two runs differing
               only in that field hash to the SAME key and silently
               alias in the sweep ledger and resume checkpoints. This
               is the worst failure mode the repo has: wrong data
               that looks right.
  settable     the field is referenced somewhere under bench/ or
               examples/ — i.e. some harness can actually set it from
               a flag or sweep axis. A field nothing can set is dead
               weight or, worse, a silently-fixed experimental knob.

Derived or intentionally-internal fields carry
SPECFETCH-ALLOW(config-plumbing) with the reason on the declaration
line.
"""

from ..engine import Finding
from . import Rule

CONFIG_HEADER = "src/core/config.hh"
CONFIG_STRUCT = "SimConfig"
SERIALIZER = "src/report/record.cc"
HARNESS_DIRS = ("bench", "examples")


class ConfigPlumbing(Rule):
    rule_id = "config-plumbing"
    description = ("SimConfig field that is not serialized into the "
                   "run manifest / content-addressed run key, or that "
                   "no harness can set; unserialized fields make "
                   "distinct runs alias in the sweep ledger.")

    def run(self, project):
        fields = project.struct_fields(CONFIG_HEADER, CONFIG_STRUCT)
        if not fields:
            return []
        findings = []
        serializer = project.file(SERIALIZER)
        ser_idents = serializer.idents() if serializer else None
        harness_idents = project.reference_idents(*HARNESS_DIRS)
        for name, _type_text, line, _has_init in fields:
            if ser_idents is not None and name not in ser_idents:
                findings.append(Finding(
                    self.rule_id, CONFIG_HEADER, line,
                    f"{CONFIG_STRUCT}::{name} is not serialized in "
                    f"{SERIALIZER} — it is missing from the manifest "
                    f"AND from the content-addressed run key, so runs "
                    f"differing only in {name} alias in the sweep "
                    f"ledger"))
            if harness_idents and name not in harness_idents:
                findings.append(Finding(
                    self.rule_id, CONFIG_HEADER, line,
                    f"{CONFIG_STRUCT}::{name} cannot be set from any "
                    f"harness (bench/, examples/) — dead knob or "
                    f"missing CLI plumbing"))
        return findings


RULES = (ConfigPlumbing(),)
