"""Determinism rules over the simulation directories.

The simulator's contract (DESIGN.md, tests/integration golden tests)
is bit-exact reproducibility: the same config and seed must produce
the same counters on every machine, at every parallelism. These rules
fail CI on source patterns that historically break that contract.
Token-based successors of the tools/lint.py line regexes: comments
and strings never trip them, and the uninit-counter rule knows it is
looking at a class body rather than guessing from indentation.
"""

from .. import scopes as scp
from .. import tokenizer as tok
from ..engine import Finding
from ..project import SIM_DIRS
from . import Rule

_WALL_IDENTS = frozenset((
    "system_clock", "gettimeofday", "localtime", "gmtime",
))
_UNORDERED = frozenset((
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
))
_ORDERED = frozenset(("map", "set", "multimap", "multiset"))
# Arithmetic member types the uninit-counter rule guards; Slot and
# Addr are the project's own counter-bearing aliases.
_ARITH_TYPES = frozenset((
    "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "int8_t", "int16_t", "int32_t", "int64_t",
    "unsigned", "int", "size_t", "double", "float", "bool",
    "Slot", "Addr",
))


def _next(ctoks, i):
    return ctoks[i + 1] if i + 1 < len(ctoks) else None


class WallClock(Rule):
    rule_id = "wall-clock"
    description = ("Reads wall-clock time inside the simulation core; "
                   "steady_clock is allowed (harness-side elapsed-time "
                   "reporting only).")

    def run(self, project):
        findings = []
        for source in project.files(dirs=SIM_DIRS):
            ctoks = source.ctoks
            for i, t in enumerate(ctoks):
                if t.kind != tok.IDENT:
                    continue
                hit = t.text in _WALL_IDENTS
                if not hit and t.text in ("time", "clock"):
                    # time() / time(NULL) / time(nullptr) / time(0),
                    # clock() — but not my_time(x) or obj.time(arg).
                    n1 = _next(ctoks, i)
                    if n1 is not None and n1.kind == tok.PUNCT \
                            and n1.text == "(":
                        n2 = _next(ctoks, i + 1)
                        if n2 is not None:
                            if n2.kind == tok.PUNCT and n2.text == ")":
                                hit = True
                            elif t.text == "time" \
                                    and n2.text in ("NULL", "nullptr",
                                                    "0"):
                                n3 = _next(ctoks, i + 2)
                                hit = n3 is not None \
                                    and n3.text == ")"
                if hit:
                    findings.append(Finding(
                        self.rule_id, source.rel_path, t.line,
                        "reads wall-clock time inside the simulation "
                        "core"))
        return findings


class LibcRandom(Rule):
    rule_id = "libc-random"
    description = ("Unseeded/libc randomness in the simulation core; "
                   "all simulated randomness must flow through "
                   "util/random.hh's seeded generator.")

    def run(self, project):
        findings = []
        for source in project.files(dirs=SIM_DIRS):
            ctoks = source.ctoks
            for i, t in enumerate(ctoks):
                if t.kind != tok.IDENT:
                    continue
                hit = t.text == "random_device"
                if not hit and t.text in ("rand", "srand"):
                    n1 = _next(ctoks, i)
                    hit = n1 is not None and n1.kind == tok.PUNCT \
                        and n1.text == "("
                if hit:
                    findings.append(Finding(
                        self.rule_id, source.rel_path, t.line,
                        "uses unseeded/libc randomness (route through "
                        "util/random.hh)"))
        return findings


class Unordered(Rule):
    rule_id = "unordered"
    description = ("Hash-ordered container in the simulation core; "
                   "iteration order is libstdc++-version-dependent "
                   "and feeds results.")

    def run(self, project):
        findings = []
        for source in project.files(dirs=SIM_DIRS):
            for t in source.ctoks:
                if t.kind == tok.IDENT and t.text in _UNORDERED:
                    findings.append(Finding(
                        self.rule_id, source.rel_path, t.line,
                        "hash-ordered container in the core "
                        "(iteration order feeds results)"))
        return findings


class PointerOrder(Rule):
    rule_id = "pointer-order"
    description = ("Ordered container keyed by pointer value; "
                   "iteration order then depends on the allocator, "
                   "not on simulated state.")

    def run(self, project):
        findings = []
        for source in project.files(dirs=SIM_DIRS):
            ctoks = source.ctoks
            for i, t in enumerate(ctoks):
                if t.kind != tok.IDENT or t.text not in _ORDERED:
                    continue
                n1 = _next(ctoks, i)
                if n1 is None or n1.kind != tok.PUNCT \
                        or n1.text != "<":
                    continue
                # Scan the first template argument: a '*' before the
                # first top-level ',' or the matching '>' makes the
                # key a raw pointer.
                depth = 0
                for j in range(i + 1, min(i + 40, len(ctoks))):
                    text = ctoks[j].text
                    if ctoks[j].kind != tok.PUNCT:
                        continue
                    if text == "<":
                        depth += 1
                    elif text == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    elif text == "," and depth == 1:
                        break
                    elif text == "*" and depth == 1:
                        findings.append(Finding(
                            self.rule_id, source.rel_path, t.line,
                            f"std::{t.text} keyed by pointer value "
                            f"(key by a stable id instead)"))
                        break
                    elif text in (";", "{", "}"):
                        break
        return findings


class UninitCounter(Rule):
    rule_id = "uninit-counter"
    description = ("Arithmetic class member without an initializer; "
                   "stack-constructed stat structs then start life as "
                   "garbage, which is exactly how counter "
                   "nondeterminism enters.")

    def run(self, project):
        findings = []
        for source in project.files(dirs=SIM_DIRS,
                                    suffixes=(".hh", ".h")):
            ctoks = source.ctoks
            for i, t in enumerate(ctoks):
                if t.kind != tok.IDENT or t.text not in _ARITH_TYPES:
                    continue
                n1 = _next(ctoks, i)
                n2 = _next(ctoks, i + 1)
                if n1 is None or n2 is None or n1.kind != tok.IDENT \
                        or n2.kind != tok.PUNCT or n2.text != ";":
                    continue
                # Declaration start only: the previous token must end
                # a member or open the class body — this skips
                # parameters and multi-token types.
                prev = ctoks[i - 1] if i > 0 else None
                if prev is not None and not (
                        prev.kind == tok.PUNCT
                        and prev.text in (";", "{", "}", ":")):
                    continue
                if scp.innermost(source.scopes, i).kind != scp.CLASS:
                    continue
                findings.append(Finding(
                    self.rule_id, source.rel_path, n1.line,
                    f"arithmetic member `{n1.text}` without an "
                    f"initializer"))
        return findings


RULES = (WallClock(), LibcRandom(), Unordered(), PointerOrder(),
         UninitCounter())
