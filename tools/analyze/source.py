"""One analyzed source file: text, tokens, scopes, suppressions."""

import re

from . import scopes as scp
from . import tokenizer as tok

# Canonical suppression: `// SPECFETCH-ALLOW(rule): reason`, on the
# finding's line or the line above. The reason is mandatory — an allow
# without one is itself reported (rule "bad-suppression").
ALLOW_RE = re.compile(
    r"SPECFETCH-ALLOW\(([a-z-]+)\)(\s*:\s*(\S.*))?")
# Legacy form from tools/lint.py, honored for compatibility.
LEGACY_ALLOW_RE = re.compile(r"lint:\s*allow\(([a-z-]+)\)")


class Suppression:
    __slots__ = ("rule", "line", "reason", "legacy")

    def __init__(self, rule, line, reason, legacy):
        self.rule = rule
        self.line = line
        self.reason = reason
        self.legacy = legacy


class SourceFile:
    """Lazily tokenized view of one file under the analysis root."""

    def __init__(self, root_path, rel_path, text):
        self.root_path = root_path
        self.rel_path = rel_path  # forward-slash relative path
        self.text = text
        self._tokens = None
        self._ctoks = None
        self._scopes = None
        self._suppressions = None

    @property
    def tokens(self):
        if self._tokens is None:
            self._tokens = tok.tokenize(self.text)
        return self._tokens

    @property
    def ctoks(self):
        """Code tokens (no comments, no preprocessor directives)."""
        if self._ctoks is None:
            self._ctoks = tok.code_tokens(self.tokens)
        return self._ctoks

    @property
    def scopes(self):
        if self._scopes is None:
            self._scopes = scp.build_scopes(self.ctoks)
        return self._scopes

    @property
    def suppressions(self):
        """All SPECFETCH-ALLOW / legacy allow comments in the file."""
        if self._suppressions is None:
            found = []
            for t in self.tokens:
                if t.kind != tok.COMMENT:
                    continue
                for m in ALLOW_RE.finditer(t.text):
                    found.append(Suppression(m.group(1), t.line,
                                             m.group(3), legacy=False))
                for m in LEGACY_ALLOW_RE.finditer(t.text):
                    found.append(Suppression(m.group(1), t.line, None,
                                             legacy=True))
            self._suppressions = found
        return self._suppressions

    def suppressed(self, rule, line):
        """True when a suppression for @p rule sits on @p line or the
        line directly above it."""
        for s in self.suppressions:
            if s.rule == rule and s.line in (line, line - 1):
                return True
        return False

    def line_text(self, line):
        lines = self.text.splitlines()
        if 1 <= line <= len(lines):
            return lines[line - 1]
        return ""

    def idents(self):
        """Set of all identifier spellings in the file's code."""
        return {t.text for t in self.ctoks if t.kind == tok.IDENT}
