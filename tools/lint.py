#!/usr/bin/env python3
"""Determinism lint for the simulation core.

The simulator's contract (DESIGN.md, tests/integration/test_golden_results)
is bit-exact reproducibility: the same config and seed must produce the
same counters on every machine, at every parallelism. This lint fails CI
on source patterns that historically break that contract:

  wall-clock    Reading real time inside the simulation core
                (std::chrono::system_clock, time(), gettimeofday,
                localtime, clock()). steady_clock is allowed: the
                harness uses it for *reporting* elapsed time, which is
                outside the deterministic state.
  libc-random   rand()/srand()/random_device. All simulated randomness
                must flow through util/random.hh's seeded generator.
  unordered     Iterating std::unordered_map/set feeds hash-order (and
                therefore libstdc++-version-dependent) sequences into
                results. Ordered containers cost a log factor and keep
                runs comparable; use them in the core.
  uninit-counter A bare arithmetic member declaration without an
                initializer in a header ("uint64_t hits;") starts life
                as stack garbage when the struct is stack-constructed,
                which is exactly how counter nondeterminism enters.

A finding can be waived on its line (or the line above) with:
    // lint: allow(<rule>)
naming one of: wall-clock, libc-random, unordered, uninit-counter.

Usage:
    tools/lint.py [--root DIR]    lint the simulation core (exit 1 on
                                  findings)
    tools/lint.py --self-test     verify every rule catches its seeded
                                  violation (exit 1 if any slips by)
"""

import argparse
import os
import re
import sys

# Directories whose sources must be deterministic. bench/ and tools are
# excluded: harness timing (steady_clock) and report timestamps live
# there by design.
CORE_DIRS = [
    "src/core",
    "src/cache",
    "src/branch",
    "src/workload",
    "src/isa",
    "src/trace",
    "src/check",
    "src/stats",
    "src/util",
    "src/report",
]

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)")

RULES = [
    (
        "wall-clock",
        re.compile(
            r"system_clock|gettimeofday|\blocaltime\b|\bgmtime\b"
            r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
            r"|\bclock\s*\(\s*\)"
        ),
        "reads wall-clock time inside the simulation core",
    ),
    (
        "libc-random",
        re.compile(r"\b(?:std::)?(?:s?rand)\s*\(|random_device"),
        "uses unseeded/libc randomness (route through util/random.hh)",
    ),
    (
        "unordered",
        re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
        "hash-ordered container in the core (iteration order feeds "
        "results)",
    ),
]

# Arithmetic member without an initializer, e.g. "uint64_t hits;".
# Restricted to headers (struct/class bodies); locals in .cc files are
# the compiler's problem (-Wuninitialized / sanitizers).
UNINIT_RE = re.compile(
    r"^\s*(?:uint(?:8|16|32|64)_t|int(?:8|16|32|64)_t|unsigned|int"
    r"|size_t|double|float|bool|Slot|Addr)\s+"
    r"[A-Za-z_]\w*\s*;\s*(?://.*)?$"
)


def allowed(lines, idx, rule):
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = ALLOW_RE.search(lines[probe])
        if m and m.group(1) == rule:
            return True
    return False


def lint_text(path, text):
    """Return [(path, line_no, rule, message)] for one file's content."""
    findings = []
    lines = text.splitlines()
    in_block_comment = False
    for idx, line in enumerate(lines):
        code = line
        # Strip comments so documentation may mention the banned names.
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        while True:
            start = code.find("/*")
            if start < 0:
                break
            end = code.find("*/", start + 2)
            if end < 0:
                code = code[:start]
                in_block_comment = True
                break
            code = code[:start] + code[end + 2:]
        slash = code.find("//")
        if slash >= 0:
            code = code[:slash]
        if not code.strip():
            continue

        for rule, pattern, message in RULES:
            if pattern.search(code) and not allowed(lines, idx, rule):
                findings.append((path, idx + 1, rule, message))
        if (
            path.endswith((".hh", ".h"))
            and UNINIT_RE.match(code)
            and not allowed(lines, idx, "uninit-counter")
        ):
            findings.append(
                (
                    path,
                    idx + 1,
                    "uninit-counter",
                    "arithmetic member without an initializer",
                )
            )
    return findings


def lint_tree(root):
    findings = []
    for rel in CORE_DIRS:
        base = os.path.join(root, rel)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if not name.endswith((".cc", ".hh", ".h", ".cpp")):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8") as handle:
                    findings.extend(lint_text(path, handle.read()))
    return findings


SELF_TEST_CASES = [
    ("wall-clock", "a.cc", "auto t = std::chrono::system_clock::now();"),
    ("wall-clock", "a.cc", "time_t t = time(nullptr);"),
    ("libc-random", "a.cc", "int r = rand();"),
    ("libc-random", "a.cc", "std::random_device rd;"),
    ("unordered", "a.cc", "std::unordered_map<int, int> seen;"),
    ("uninit-counter", "a.hh", "    uint64_t hits;"),
]

SELF_TEST_CLEAN = [
    ("a.cc", "auto t = std::chrono::steady_clock::now();"),
    ("a.cc", "Random rng(seed);"),
    ("a.hh", "    uint64_t hits = 0;"),
    ("a.cc", "// rand() must never appear in the core"),
    ("a.cc", "std::unordered_map<int, int> ok; // lint: allow(unordered)"),
]


def self_test():
    failures = 0
    for rule, path, snippet in SELF_TEST_CASES:
        found = lint_text(path, snippet + "\n")
        if not any(f[2] == rule for f in found):
            print(f"self-test FAIL: {rule} missed: {snippet!r}")
            failures += 1
    for path, snippet in SELF_TEST_CLEAN:
        found = lint_text(path, snippet + "\n")
        if found:
            print(f"self-test FAIL: false positive on {snippet!r}: {found}")
            failures += 1
    if failures:
        return 1
    print(
        f"self-test OK: {len(SELF_TEST_CASES)} violations caught, "
        f"{len(SELF_TEST_CLEAN)} clean lines passed"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="check that every rule catches its seeded violation",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    for path, line, rule, message in findings:
        print(f"{path}:{line}: [{rule}] {message}")
    if findings:
        print(f"{len(findings)} determinism-lint finding(s)")
        return 1
    print("determinism lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
