#!/usr/bin/env python3
"""Determinism lint — thin wrapper over tools/analyze.

The original line-regex lint lived here; its rules (wall-clock,
libc-random, unordered, uninit-counter, loop-alloc, loop-virtual) were
ported to the token/scope-based framework in tools/analyze, which adds
the project-wide rules (stat-conservation, error-boundary,
shared-state, config-plumbing), suppression auditing, a baseline and
SARIF output. This wrapper keeps the historical CLI working:

    tools/lint.py [--root DIR]    lint the tree (exit 1 on findings)
    tools/lint.py --self-test     run the analyzer's self-test corpus

Both legacy `// lint: allow(<rule>)` waivers and the canonical
`// SPECFETCH-ALLOW(<rule>): reason` form are honored. New callers
should invoke `python3 tools/analyze` directly for the full option
set (--rules, --sarif, --baseline, --strict).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from analyze.cli import main as analyze_main  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Determinism lint (wrapper over tools/analyze)")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the analyzer self-test corpus and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return analyze_main(["--self-test"])
    # The historical contract: findings fail the build.
    return analyze_main(["--root", args.root, "--strict"])


if __name__ == "__main__":
    sys.exit(main())
