#!/usr/bin/env python3
"""Determinism lint for the simulation core.

The simulator's contract (DESIGN.md, tests/integration/test_golden_results)
is bit-exact reproducibility: the same config and seed must produce the
same counters on every machine, at every parallelism. This lint fails CI
on source patterns that historically break that contract:

  wall-clock    Reading real time inside the simulation core
                (std::chrono::system_clock, time(), gettimeofday,
                localtime, clock()). steady_clock is allowed: the
                harness uses it for *reporting* elapsed time, which is
                outside the deterministic state.
  libc-random   rand()/srand()/random_device. All simulated randomness
                must flow through util/random.hh's seeded generator.
  unordered     Iterating std::unordered_map/set feeds hash-order (and
                therefore libstdc++-version-dependent) sequences into
                results. Ordered containers cost a log factor and keep
                runs comparable; use them in the core.
  uninit-counter A bare arithmetic member declaration without an
                initializer in a header ("uint64_t hits;") starts life
                as stack garbage when the struct is stack-constructed,
                which is exactly how counter nondeterminism enters.

Two further rules guard the *hot path* rather than determinism. They
apply only to src/core/*.cc, where the per-instruction loops live and
a single allocation or virtual dispatch per instruction is the
difference between minutes and hours at paper-scale budgets:

  loop-alloc    Heap allocation (new/make_shared/make_unique/malloc)
                inside a loop body.
  loop-virtual  Call to a method that some header declares virtual
                (e.g. InstructionSource::next) inside a loop body.
                Prefer the statically-bound path (FetchEngine::runWith)
                or hoist the call; waive it when the dispatch is
                genuinely rare (e.g. only on cache misses).

A finding can be waived on its line (or the line above) with:
    // lint: allow(<rule>)
naming one of: wall-clock, libc-random, unordered, uninit-counter,
loop-alloc, loop-virtual.

Usage:
    tools/lint.py [--root DIR]    lint the simulation core (exit 1 on
                                  findings)
    tools/lint.py --self-test     verify every rule catches its seeded
                                  violation (exit 1 if any slips by)
"""

import argparse
import os
import re
import sys

# Directories whose sources must be deterministic. bench/ and tools are
# excluded: harness timing (steady_clock) and report timestamps live
# there by design.
CORE_DIRS = [
    "src/core",
    "src/cache",
    "src/branch",
    "src/workload",
    "src/isa",
    "src/trace",
    "src/check",
    "src/stats",
    "src/util",
    "src/report",
]

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z-]+)\)")

RULES = [
    (
        "wall-clock",
        re.compile(
            r"system_clock|gettimeofday|\blocaltime\b|\bgmtime\b"
            r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
            r"|\bclock\s*\(\s*\)"
        ),
        "reads wall-clock time inside the simulation core",
    ),
    (
        "libc-random",
        re.compile(r"\b(?:std::)?(?:s?rand)\s*\(|random_device"),
        "uses unseeded/libc randomness (route through util/random.hh)",
    ),
    (
        "unordered",
        re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
        "hash-ordered container in the core (iteration order feeds "
        "results)",
    ),
]

# Arithmetic member without an initializer, e.g. "uint64_t hits;".
# Restricted to headers (struct/class bodies); locals in .cc files are
# the compiler's problem (-Wuninitialized / sanitizers).
UNINIT_RE = re.compile(
    r"^\s*(?:uint(?:8|16|32|64)_t|int(?:8|16|32|64)_t|unsigned|int"
    r"|size_t|double|float|bool|Slot|Addr)\s+"
    r"[A-Za-z_]\w*\s*;\s*(?://.*)?$"
)

# Hot-path rules, applied only inside loop bodies in src/core/*.cc.
HOT_DIR = "src/core"
LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
ALLOC_RE = re.compile(
    r"\bnew\b|\bmake_shared\b|\bmake_unique\b|\bmalloc\s*\("
)
# "virtual <anything> name(" in a header: harvest name so call sites
# through a pointer/reference can be flagged. Destructors and
# operators are dispatch sites too but have no flaggable call syntax.
VIRTUAL_DECL_RE = re.compile(
    r"\bvirtual\s+[\w:<>,&*\s]*?\b([a-zA-Z_]\w*)\s*\("
)


def harvest_virtual_names(root):
    """Method names declared virtual anywhere under src/ headers."""
    names = set()
    base = os.path.join(root, "src")
    for dirpath, _, filenames in os.walk(base):
        for name in filenames:
            if not name.endswith((".hh", ".h")):
                continue
            with open(os.path.join(dirpath, name),
                      encoding="utf-8") as handle:
                for m in VIRTUAL_DECL_RE.finditer(handle.read()):
                    if not m.group(1).startswith("operator"):
                        names.add(m.group(1))
    return names


def allowed(lines, idx, rule):
    for probe in (idx, idx - 1):
        if probe < 0:
            continue
        m = ALLOW_RE.search(lines[probe])
        if m and m.group(1) == rule:
            return True
    return False


def lint_text(path, text, hot_loops=False, virtual_names=frozenset()):
    """Return [(path, line_no, rule, message)] for one file's content.

    With hot_loops set (src/core/*.cc), also run the loop-alloc and
    loop-virtual rules on code inside loop bodies, using
    @p virtual_names as the set of virtually-dispatched method names.
    """
    virtual_call_re = None
    if hot_loops and virtual_names:
        virtual_call_re = re.compile(
            r"(?:->|\.)\s*(?:"
            + "|".join(sorted(re.escape(n) for n in virtual_names))
            + r")\s*\("
        )
    findings = []
    lines = text.splitlines()
    in_block_comment = False
    brace_depth = 0
    loop_stack = []  # brace depths at which a loop body opened
    pending_loop = False  # saw for/while, waiting for its "{"
    for idx, line in enumerate(lines):
        code = line
        # Strip comments so documentation may mention the banned names.
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        while True:
            start = code.find("/*")
            if start < 0:
                break
            end = code.find("*/", start + 2)
            if end < 0:
                code = code[:start]
                in_block_comment = True
                break
            code = code[:start] + code[end + 2:]
        slash = code.find("//")
        if slash >= 0:
            code = code[:slash]
        if not code.strip():
            continue

        if hot_loops:
            # The loop header itself re-evaluates its condition every
            # iteration, so check it along with the body.
            in_loop = bool(loop_stack) or pending_loop \
                or LOOP_RE.search(code)
            if in_loop:
                if ALLOC_RE.search(code) \
                        and not allowed(lines, idx, "loop-alloc"):
                    findings.append((
                        path, idx + 1, "loop-alloc",
                        "heap allocation inside a hot loop",
                    ))
                if virtual_call_re and virtual_call_re.search(code) \
                        and not allowed(lines, idx, "loop-virtual"):
                    findings.append((
                        path, idx + 1, "loop-virtual",
                        "virtual dispatch inside a hot loop (hoist it "
                        "or use the statically-bound path)",
                    ))
            # A one-liner ("for (...) stmt;" or "} while (cond);")
            # opens no body; anything else waits for its "{".
            if LOOP_RE.search(code) and not (
                    "{" not in code and code.rstrip().endswith(";")):
                pending_loop = True
            for ch in code:
                if ch == "{":
                    brace_depth += 1
                    if pending_loop:
                        loop_stack.append(brace_depth)
                        pending_loop = False
                elif ch == "}":
                    if loop_stack and loop_stack[-1] == brace_depth:
                        loop_stack.pop()
                    brace_depth -= 1
            # A braceless loop body ends at the statement's ";".
            if pending_loop and code.rstrip().endswith(";") \
                    and not LOOP_RE.search(code):
                pending_loop = False

        for rule, pattern, message in RULES:
            if pattern.search(code) and not allowed(lines, idx, rule):
                findings.append((path, idx + 1, rule, message))
        if (
            path.endswith((".hh", ".h"))
            and UNINIT_RE.match(code)
            and not allowed(lines, idx, "uninit-counter")
        ):
            findings.append(
                (
                    path,
                    idx + 1,
                    "uninit-counter",
                    "arithmetic member without an initializer",
                )
            )
    return findings


def lint_tree(root):
    virtual_names = harvest_virtual_names(root)
    findings = []
    for rel in CORE_DIRS:
        base = os.path.join(root, rel)
        if not os.path.isdir(base):
            continue
        hot = rel == HOT_DIR
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if not name.endswith((".cc", ".hh", ".h", ".cpp")):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8") as handle:
                    findings.extend(lint_text(
                        path, handle.read(),
                        hot_loops=hot and name.endswith((".cc", ".cpp")),
                        virtual_names=virtual_names))
    return findings


SELF_TEST_CASES = [
    ("wall-clock", "a.cc", "auto t = std::chrono::system_clock::now();"),
    ("wall-clock", "a.cc", "time_t t = time(nullptr);"),
    ("libc-random", "a.cc", "int r = rand();"),
    ("libc-random", "a.cc", "std::random_device rd;"),
    ("unordered", "a.cc", "std::unordered_map<int, int> seen;"),
    ("uninit-counter", "a.hh", "    uint64_t hits;"),
]

SELF_TEST_CLEAN = [
    ("a.cc", "auto t = std::chrono::steady_clock::now();"),
    ("a.cc", "Random rng(seed);"),
    ("a.hh", "    uint64_t hits = 0;"),
    ("a.cc", "// rand() must never appear in the core"),
    ("a.cc", "std::unordered_map<int, int> ok; // lint: allow(unordered)"),
]

# Hot-loop rules run with hot_loops=True and virtual_names={"next"},
# mimicking a src/core/*.cc file. Snippets are whole fragments because
# the rules are loop-scoped, not line-scoped.
SELF_TEST_HOT_CASES = [
    ("loop-alloc",
     "for (int i = 0; i < n; ++i) {\n"
     "    auto p = std::make_unique<int>(i);\n"
     "}\n"),
    ("loop-alloc",
     "while (more) {\n"
     "    buf = new char[64];\n"
     "}\n"),
    ("loop-alloc",
     "for (int i = 0; i < n; ++i)\n"
     "    items.push_back(std::make_shared<Foo>());\n"),
    ("loop-virtual",
     "while (budget > 0) {\n"
     "    source.next(inst);\n"
     "}\n"),
    ("loop-virtual",
     "for (;;) {\n"
     "    if (!src->next(inst))\n"
     "        break;\n"
     "}\n"),
]

SELF_TEST_HOT_CLEAN = [
    # Allocation before the loop, none inside.
    "auto p = std::make_unique<int>(7);\n"
    "for (int i = 0; i < n; ++i) {\n"
    "    *p += i;\n"
    "}\n",
    # Non-virtual call inside a loop.
    "for (int i = 0; i < n; ++i) {\n"
    "    cache.access(line);\n"
    "}\n",
    # Waived virtual dispatch.
    "for (int i = 0; i < n; ++i) {\n"
    "    // lint: allow(loop-virtual)\n"
    "    source.next(inst);\n"
    "}\n",
    # One-line loop leaves no dangling body.
    "for (int i = 0; i < n; ++i) sum += i;\n"
    "auto q = std::make_unique<int>(9);\n",
    # After the loop closes, allocation is fine again.
    "while (more) {\n"
    "    step();\n"
    "}\n"
    "auto r = new Thing();\n",
]


def self_test():
    failures = 0
    for rule, path, snippet in SELF_TEST_CASES:
        found = lint_text(path, snippet + "\n")
        if not any(f[2] == rule for f in found):
            print(f"self-test FAIL: {rule} missed: {snippet!r}")
            failures += 1
    for path, snippet in SELF_TEST_CLEAN:
        found = lint_text(path, snippet + "\n")
        if found:
            print(f"self-test FAIL: false positive on {snippet!r}: {found}")
            failures += 1
    hot_names = {"next"}
    for rule, snippet in SELF_TEST_HOT_CASES:
        found = lint_text("src/core/a.cc", snippet, hot_loops=True,
                          virtual_names=hot_names)
        if not any(f[2] == rule for f in found):
            print(f"self-test FAIL: {rule} missed: {snippet!r}")
            failures += 1
    for snippet in SELF_TEST_HOT_CLEAN:
        found = lint_text("src/core/a.cc", snippet, hot_loops=True,
                          virtual_names=hot_names)
        if found:
            print(f"self-test FAIL: false positive on {snippet!r}: {found}")
            failures += 1
    if failures:
        return 1
    print(
        f"self-test OK: "
        f"{len(SELF_TEST_CASES) + len(SELF_TEST_HOT_CASES)} violations "
        f"caught, {len(SELF_TEST_CLEAN) + len(SELF_TEST_HOT_CLEAN)} "
        f"clean fragments passed"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="check that every rule catches its seeded violation",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = lint_tree(args.root)
    for path, line, rule, message in findings:
        print(f"{path}:{line}: [{rule}] {message}")
    if findings:
        print(f"{len(findings)} determinism-lint finding(s)")
        return 1
    print("determinism lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
