#!/usr/bin/env python3
"""Validate a Chrome trace-event file written by --trace-out.

The simulator's TraceEventSink (src/obs/trace_event.*) emits the JSON
object form of the trace-event format: {"traceEvents":[...],
"displayTimeUnit":"ms"} where every event is a complete ("ph":"X")
span with microsecond ts/dur, pid 1 and a small stable tid. This
checker proves a file will load in Perfetto / about:tracing and that
the sink's invariants actually held:

  - the document is a JSON object with a "traceEvents" array
  - every event has a non-empty string name/cat, ph "X", integer
    ts >= 0 and dur >= 0, and integer pid/tid
  - within one (pid, tid), spans are properly nested or disjoint —
    a partial overlap means two threads shared a tid, the exact
    attribution bug the sink exists to prevent
  - with --require-span NAME (repeatable), at least one span with
    that name exists: the CI smoke job uses this to assert the
    instrumented stages really fired

Usage:
    tools/validate_trace.py TRACE.json [--require-span simulate ...]
    tools/validate_trace.py --self-test

Exit code 0 when the file is valid, 1 otherwise.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from common.selftest import Checker  # noqa: E402


def fail(errors, message):
    errors.append(message)


def check_event(event, index, errors):
    """Validate one trace event; returns True when usable downstream."""
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        fail(errors, f"{where}: event is not an object")
        return False
    ok = True
    for key in ("name", "cat"):
        value = event.get(key)
        if not isinstance(value, str) or value == "":
            fail(errors, f"{where}: '{key}' must be a non-empty string")
            ok = False
    if event.get("ph") != "X":
        fail(errors, f"{where}: 'ph' must be 'X' (complete event), got "
             f"{event.get('ph')!r}")
        ok = False
    for key in ("ts", "dur", "pid", "tid"):
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            fail(errors, f"{where}: '{key}' must be an integer, got "
                 f"{value!r}")
            ok = False
        elif key in ("ts", "dur") and value < 0:
            fail(errors, f"{where}: '{key}' must be >= 0, got {value}")
            ok = False
    args = event.get("args")
    if args is not None and not isinstance(args, dict):
        fail(errors, f"{where}: 'args' must be an object when present")
        ok = False
    return ok


def check_nesting(events, errors):
    """Spans sharing a (pid, tid) must be disjoint or properly nested."""
    by_thread = {}
    for event in events:
        key = (event["pid"], event["tid"])
        by_thread.setdefault(key, []).append(event)
    for (pid, tid), spans in sorted(by_thread.items()):
        # Sort children after the parents that contain them: by start,
        # longest-first on ties.
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for span in spans:
            start, end = span["ts"], span["ts"] + span["dur"]
            while stack and stack[-1][1] <= start:
                stack.pop()
            if stack and end > stack[-1][1]:
                fail(errors,
                     f"pid {pid} tid {tid}: span '{span['name']}' "
                     f"[{start}, {end}) partially overlaps "
                     f"'{stack[-1][2]}' [{stack[-1][0]}, {stack[-1][1]})"
                     f" — two threads shared a tid")
                continue
            stack.append((start, end, span["name"]))


def validate(document, required_spans=()):
    """Return a list of problems; empty means the trace is valid."""
    errors = []
    if not isinstance(document, dict):
        fail(errors, "top level must be a JSON object")
        return errors
    events = document.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, "'traceEvents' must be an array")
        return errors
    usable = [e for i, e in enumerate(events)
              if check_event(e, i, errors)]
    check_nesting(usable, errors)
    names = {e["name"] for e in usable}
    for name in required_spans:
        if name not in names:
            fail(errors, f"required span '{name}' not found "
                 f"(present: {', '.join(sorted(names)) or 'none'})")
    return errors


def validate_file(path, required_spans=()):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as err:
        return [f"cannot read {path}: {err}"]
    except json.JSONDecodeError as err:
        return [f"{path}: malformed JSON: {err}"]
    return validate(document, required_spans)


def self_test():
    """Exercise every rejection path without external fixtures."""
    checker = Checker()
    check = checker.check

    def span(name, ts, dur, tid=1, **extra):
        event = {"name": name, "cat": "test", "ph": "X", "ts": ts,
                 "dur": dur, "pid": 1, "tid": tid}
        event.update(extra)
        return event

    good = {"traceEvents": [span("sweep", 0, 100),
                            span("run", 10, 30),
                            span("run", 40, 30),
                            span("other_thread", 5, 200, tid=2)],
            "displayTimeUnit": "ms"}
    check("valid nested trace passes", validate(good) == [])

    check("non-object top level rejected",
          validate([1, 2]) != [])
    check("missing traceEvents rejected",
          validate({"events": []}) != [])

    errors = validate({"traceEvents": [span("", 0, 1)]})
    check("empty name rejected", any("name" in e for e in errors))

    errors = validate({"traceEvents": [span("b", 0, 1, ph="B")]})
    check("non-X phase rejected", any("'ph'" in e for e in errors))

    errors = validate({"traceEvents": [span("neg", -5, 1)]})
    check("negative ts rejected", any("ts" in e for e in errors))

    float_ts = span("f", 0, 1)
    float_ts["ts"] = 1.5
    errors = validate({"traceEvents": [float_ts]})
    check("float ts rejected", any("integer" in e for e in errors))

    # Partial overlap on one tid: [0,50) vs [25,75).
    errors = validate({"traceEvents": [span("a", 0, 50),
                                       span("b", 25, 50)]})
    check("partial overlap rejected",
          any("partially overlaps" in e for e in errors))

    # The same two spans on different tids are fine.
    check("overlap across tids allowed",
          validate({"traceEvents": [span("a", 0, 50),
                                    span("b", 25, 50, tid=2)]}) == [])

    # Touching spans (end == next start) are disjoint, not overlapping.
    check("touching spans allowed",
          validate({"traceEvents": [span("a", 0, 10),
                                    span("b", 10, 10)]}) == [])

    errors = validate(good, required_spans=["simulate"])
    check("missing required span rejected",
          any("'simulate'" in e for e in errors))
    check("present required span accepted",
          validate(good, required_spans=["run"]) == [])

    return checker.finish()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Validate a --trace-out Chrome trace-event file")
    parser.add_argument("trace", nargs="?", help="trace JSON file")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a span with this name exists "
                             "(repeatable)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit tests and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if args.trace is None:
        parser.error("TRACE is required (or use --self-test)")

    errors = validate_file(args.trace, args.require_span)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        print(f"{args.trace}: INVALID ({len(errors)} problem(s))",
              file=sys.stderr)
        return 1
    print(f"{args.trace}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
