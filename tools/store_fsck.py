#!/usr/bin/env python3
"""Offline integrity check for a ResultStore directory.

The store (src/serve/result_store.*) keeps schema-v1 run records in
CRC-framed segment logs: one optional compacted `base-<G>.log`
(header frame, key-sorted data frames, commit frame) plus appended
`tail-<G>-<K>.log` segments (header frame, then data frames), a
`CLEAN` clean-shutdown marker, and a `quarantine.jsonl` sidecar of
frames the store itself refused. Every frame is
`<8-hex crc32> <compact JSON>`; the CRC is the reflected
0xEDB88320 polynomial, i.e. zlib's.

This checker re-derives the invariants the C++ recovery scan
enforces, so a store can be audited without (or before) opening it:

  errors — the store is damaged or the writer is buggy:
    - frame with a bad checksum or malformed framing anywhere but
      the final line of the newest tail;
    - missing/wrong header frame (generation or segment mismatch);
    - base without a commit frame, commit count != data frames,
      or base keys out of sorted order;
    - CLEAN marker naming a generation or record count that does
      not match the files on disk.

  warnings — survivable states recovery handles by design:
    - torn final line of the newest tail (kill -9 mid-append);
    - missing CLEAN marker (crash: next open runs a recovery scan);
    - duplicate key across segments (first occurrence wins);
    - leftover base-<G>.tmp (aborted compaction, deleted at open);
    - unrecognized file names.

With --json the findings go to stdout as schema-v1 JSONL instead of
text: one "fsck_finding" record per error/warning (severity +
message) followed by one "fsck_summary" record (record/error/warning
counts and the verdict), so CI jobs and dashboards can consume the
audit without scraping. The exit code contract is identical in both
modes, and the default text output is unchanged.

Usage:
    tools/store_fsck.py STORE_DIR [--strict] [--json]
    tools/store_fsck.py --self-test

Exit code 0 when no errors (warnings allowed unless --strict), 1
otherwise.
"""

import argparse
import json
import os
import re
import sys
import tempfile
import zlib

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from common.selftest import Checker  # noqa: E402

_BASE_RE = re.compile(r"^base-(\d+)\.log$")
_TMP_RE = re.compile(r"^base-(\d+)\.tmp$")
_TAIL_RE = re.compile(r"^tail-(\d+)-(\d+)\.log$")


def frame_line(payload):
    """Encode one frame exactly as the C++ frameLine() does."""
    text = json.dumps(payload, separators=(",", ":"))
    crc = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {text}"


def parse_frame(line):
    """(payload, reason): payload dict on success, else reason."""
    if len(line) < 10 or line[8] != " ":
        return None, "malformed framing"
    try:
        stored = int(line[:8], 16)
    except ValueError:
        return None, "unparsable checksum"
    text = line[9:]
    if zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF != stored:
        return None, "checksum mismatch"
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        return None, "unparsable JSON"
    if not isinstance(payload, dict):
        return None, "payload is not an object"
    return payload, ""


class Report:
    def __init__(self):
        self.errors = []
        self.warnings = []
        self.records = {}  # key -> first file seen in load order

    def error(self, message):
        self.errors.append(message)

    def warning(self, message):
        self.warnings.append(message)


def _check_header(report, name, payload, generation, segment):
    header = payload.get("store_header")
    if not isinstance(header, dict):
        report.error(f"{name}:1: first frame is not a store_header")
        return
    if header.get("generation") != generation:
        report.error(f"{name}:1: header generation "
                     f"{header.get('generation')} != file name "
                     f"{generation}")
    if header.get("segment") != segment:
        report.error(f"{name}:1: header segment "
                     f"{header.get('segment')} != file name {segment}")


def _load_lines(path):
    with open(path, "rb") as handle:
        blob = handle.read()
    text = blob.decode("utf-8", errors="replace")
    lines = text.split("\n")
    unterminated = bool(lines[-1])
    if not lines[-1]:
        lines.pop()
    return lines, unterminated


def check_base(report, directory, name, generation):
    lines, unterminated = _load_lines(os.path.join(directory, name))
    if unterminated:
        report.error(f"{name}: final line is unterminated (a base is "
                     f"renamed into place complete)")
    if not lines:
        report.error(f"{name}: empty base segment")
        return
    data_keys = []
    commit = None
    for lineno, line in enumerate(lines, 1):
        payload, reason = parse_frame(line)
        if payload is None:
            report.error(f"{name}:{lineno}: {reason}")
            continue
        if lineno == 1:
            _check_header(report, name, payload, generation, 0)
            continue
        if "store_commit" in payload:
            if lineno != len(lines):
                report.error(f"{name}:{lineno}: commit frame is not "
                             f"the final line")
            commit = payload["store_commit"]
            continue
        key = payload.get("key")
        if not isinstance(key, str) \
                or not isinstance(payload.get("record"), dict):
            report.error(f"{name}:{lineno}: data frame lacks "
                         f"key/record shape")
            continue
        data_keys.append(key)
        if key in report.records:
            report.warning(f"{name}:{lineno}: duplicate key {key!r} "
                           f"(first seen in {report.records[key]})")
        else:
            report.records[key] = name
    if commit is None:
        report.error(f"{name}: no commit frame (incomplete compaction "
                     f"that was never renamed should be a .tmp)")
    elif commit.get("records") != len(data_keys):
        report.error(f"{name}: commit says {commit.get('records')} "
                     f"record(s) but {len(data_keys)} data frame(s)")
    if data_keys != sorted(data_keys):
        report.error(f"{name}: data frames are not key-sorted")


def check_tail(report, directory, name, generation, segment):
    lines, unterminated = _load_lines(os.path.join(directory, name))
    if not lines:
        report.error(f"{name}: empty tail segment (a tail begins with "
                     f"its header frame)")
        return
    for lineno, line in enumerate(lines, 1):
        last = lineno == len(lines)
        payload, reason = parse_frame(line)
        if payload is None:
            # A torn final line is the signature of a kill mid-append.
            # Reopen rotates to a fresh segment, so the torn line can
            # sit in *any* tail, not only the newest one.
            if last and unterminated:
                report.warning(f"{name}:{lineno}: torn final line "
                               f"({reason}); recovery drops it")
            else:
                report.error(f"{name}:{lineno}: {reason}")
            continue
        if lineno == 1:
            _check_header(report, name, payload, generation, segment)
            continue
        key = payload.get("key")
        if not isinstance(key, str) \
                or not isinstance(payload.get("record"), dict):
            report.error(f"{name}:{lineno}: data frame lacks "
                         f"key/record shape")
            continue
        if key in report.records:
            report.warning(f"{name}:{lineno}: duplicate key {key!r} "
                           f"(first seen in {report.records[key]})")
        else:
            report.records[key] = name


def check_clean(report, directory, generation):
    path = os.path.join(directory, "CLEAN")
    if not os.path.exists(path):
        report.warning("no CLEAN marker: next open runs a recovery "
                       "scan (expected after a crash)")
        return
    lines, unterminated = _load_lines(path)
    if unterminated or len(lines) != 1:
        report.error("CLEAN: expected exactly one terminated frame")
        return
    payload, reason = parse_frame(lines[0])
    if payload is None:
        report.error(f"CLEAN:1: {reason}")
        return
    clean = payload.get("clean_shutdown")
    if not isinstance(clean, dict):
        report.error("CLEAN:1: frame is not a clean_shutdown marker")
        return
    if generation is not None \
            and clean.get("generation") != generation:
        report.error(f"CLEAN: marker generation "
                     f"{clean.get('generation')} != newest on-disk "
                     f"generation {generation}")
    if clean.get("records") != len(report.records):
        report.error(f"CLEAN: marker says {clean.get('records')} "
                     f"record(s) but segments hold "
                     f"{len(report.records)}")


def check_store(directory):
    report = Report()
    try:
        names = sorted(os.listdir(directory))
    except OSError as err:
        raise SystemExit(f"cannot read {directory}: {err}")
    bases = {}
    tails = {}
    for name in names:
        if match := _BASE_RE.match(name):
            bases[int(match.group(1))] = name
        elif match := _TAIL_RE.match(name):
            tails.setdefault(int(match.group(1)), {})[
                int(match.group(2))] = name
        elif match := _TMP_RE.match(name):
            report.warning(f"{name}: leftover compaction scratch "
                           f"(aborted compact; deleted at next open)")
        elif name not in ("CLEAN", "quarantine.jsonl"):
            report.warning(f"{name}: unrecognized file in store "
                           f"directory")
    generations = sorted(set(bases) | set(tails))
    if not generations:
        report.warning("no segments: empty or never-written store")
        check_clean(report, directory, None)
        return report
    live = generations[-1]
    for generation in generations[:-1]:
        report.warning(f"generation {generation} files are stale "
                       f"(superseded by {live}; swept at next open)")
    if live in bases:
        check_base(report, directory, bases[live], live)
    for segment in sorted(tails.get(live, {})):
        check_tail(report, directory, tails[live][segment], live,
                   segment)
    check_clean(report, directory, live)
    return report


def report_json_lines(report, strict):
    """The --json form: finding records, then one summary record."""
    lines = []
    for severity, messages in (("error", report.errors),
                               ("warning", report.warnings)):
        for message in messages:
            lines.append(json.dumps(
                {"schema_version": 1, "record": "fsck_finding",
                 "severity": severity, "message": message},
                sort_keys=True))
    ok = not report.errors and not (strict and report.warnings)
    lines.append(json.dumps(
        {"schema_version": 1, "record": "fsck_summary",
         "records": len(report.records), "errors": len(report.errors),
         "warnings": len(report.warnings), "strict": strict, "ok": ok},
        sort_keys=True))
    return lines


def run_fsck(directory, strict, json_out=False):
    report = check_store(directory)
    if json_out:
        for line in report_json_lines(report, strict):
            print(line)
    else:
        for message in report.errors:
            print(f"error: {message}")
        for message in report.warnings:
            print(f"warning: {message}")
        print(f"store_fsck: {len(report.records)} record(s), "
              f"{len(report.errors)} error(s), "
              f"{len(report.warnings)} warning(s)")
    if report.errors:
        return 1
    if strict and report.warnings:
        return 1
    return 0


# ----------------------------------------------------------------------
# Self-test


def _write(directory, name, lines, terminate=True):
    with open(os.path.join(directory, name), "w",
              encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
        if not terminate:
            # Re-open truncating the final newline to model a torn
            # append.
            pass
    if not terminate:
        path = os.path.join(directory, name)
        with open(path, "rb+") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.truncate()


def _header(generation, segment):
    return frame_line({"store_header": {
        "schema_version": 1, "generation": generation,
        "segment": segment}})


def _data(key, value=1):
    return frame_line({"key": key, "record": {"v": value}})


def _good_store(directory):
    _write(directory, "base-2.log", [
        _header(2, 0), _data("a"), _data("b"),
        frame_line({"store_commit": {"records": 2}})])
    _write(directory, "tail-2-1.log", [_header(2, 1), _data("c")])
    _write(directory, "CLEAN", [
        frame_line({"clean_shutdown": {"generation": 2,
                                       "records": 3}})])


def self_test():
    print("store_fsck self-test:")
    c = Checker()

    def run_case(label, build, want_errors, want_warnings):
        with tempfile.TemporaryDirectory() as tmp:
            build(tmp)
            report = check_store(tmp)
            c.check(f"{label}: errors {'present' if want_errors else 'absent'}",
                    bool(report.errors) == want_errors)
            c.check(f"{label}: warnings "
                    f"{'present' if want_warnings else 'absent'}",
                    bool(report.warnings) == want_warnings)
            return report

    report = run_case("clean store", _good_store, False, False)
    c.check("clean store: all records indexed",
            sorted(report.records) == ["a", "b", "c"])

    def torn(tmp):
        _good_store(tmp)
        os.remove(os.path.join(tmp, "CLEAN"))
        with open(os.path.join(tmp, "tail-2-1.log"), "a",
                  encoding="utf-8") as handle:
            handle.write('deadbeef {"key":"torn","rec')
    report = run_case("torn tail", torn, False, True)
    c.check("torn tail: reported as torn, not error",
            any("torn final line" in w for w in report.warnings))

    def torn_then_restart(tmp):
        # Kill mid-append, then a restart that rotated to a new tail:
        # the torn line now sits in a non-newest segment.
        torn(tmp)
        _write(tmp, "tail-2-2.log", [_header(2, 2), _data("d")])
    report = run_case("torn line in older tail", torn_then_restart,
                      False, True)
    c.check("torn line in older tail: still a torn warning",
            any("torn final line" in w for w in report.warnings))
    c.check("torn line in older tail: later records indexed",
            "d" in report.records)

    def corrupt(tmp):
        _good_store(tmp)
        path = os.path.join(tmp, "base-2.log")
        with open(path, "rb+") as handle:
            blob = bytearray(handle.read())
            first_nl = blob.index(b"\n")
            blob[first_nl + 20] ^= 0x04  # inside the first data frame
            handle.seek(0)
            handle.write(blob)
    run_case("corrupt interior frame", corrupt, True, False)

    def bad_commit(tmp):
        _good_store(tmp)
        _write(tmp, "base-2.log", [
            _header(2, 0), _data("a"),
            frame_line({"store_commit": {"records": 9}})])
    report = run_case("commit count mismatch", bad_commit, True, False)
    c.check("commit count mismatch: named in the error",
            any("commit says 9" in e for e in report.errors))

    def no_commit(tmp):
        _good_store(tmp)
        _write(tmp, "base-2.log", [_header(2, 0), _data("a")])
    run_case("base without commit", no_commit, True, False)

    def dup_key(tmp):
        _good_store(tmp)
        _write(tmp, "tail-2-1.log", [_header(2, 1), _data("a", 2)])
        _write(tmp, "CLEAN", [
            frame_line({"clean_shutdown": {"generation": 2,
                                           "records": 2}})])
    report = run_case("duplicate key", dup_key, False, True)
    c.check("duplicate key: first occurrence wins",
            report.records.get("a") == "base-2.log")

    def wrong_gen_header(tmp):
        _good_store(tmp)
        _write(tmp, "tail-2-1.log", [_header(7, 1), _data("c")])
    run_case("header generation mismatch", wrong_gen_header, True,
             False)

    def stale_gen(tmp):
        _good_store(tmp)
        _write(tmp, "tail-1-1.log", [_header(1, 1), _data("old")])
        _write(tmp, "base-1.tmp", [_header(1, 0)])
    report = run_case("stale generation + tmp", stale_gen, False, True)
    c.check("stale generation: flagged as stale",
            any("stale" in w for w in report.warnings))
    c.check("tmp leftover: flagged",
            any("scratch" in w for w in report.warnings))

    def clean_lies(tmp):
        _good_store(tmp)
        _write(tmp, "CLEAN", [
            frame_line({"clean_shutdown": {"generation": 2,
                                           "records": 99}})])
    run_case("CLEAN record-count mismatch", clean_lies, True, False)

    def empty(tmp):
        pass
    run_case("empty directory", empty, False, True)

    # --json: findings as records, summary last, same exit contract,
    # and the text mode unchanged by the flag's existence.
    import contextlib
    import io
    with tempfile.TemporaryDirectory() as tmp:
        dup_key(tmp)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = run_fsck(tmp, strict=False, json_out=True)
        rows = [json.loads(line)
                for line in out.getvalue().splitlines()]
        c.check("json: warn-only store exits 0", code == 0)
        c.check("json: every line is schema-v1",
                all(row["schema_version"] == 1 for row in rows))
        findings = [row for row in rows
                    if row["record"] == "fsck_finding"]
        c.check("json: one finding per warning",
                len(findings) >= 1
                and all(f["severity"] == "warning" for f in findings)
                and any("duplicate key" in f["message"]
                        for f in findings))
        c.check("json: summary record is last",
                rows[-1]["record"] == "fsck_summary"
                and rows[-1]["ok"] is True
                and rows[-1]["records"] == 2
                and rows[-1]["warnings"] == len(findings))
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            strict_code = run_fsck(tmp, strict=True, json_out=True)
        strict_rows = [json.loads(line)
                       for line in out.getvalue().splitlines()]
        c.check("json: --strict flips the verdict and exit code",
                strict_code == 1 and strict_rows[-1]["ok"] is False
                and strict_rows[-1]["strict"] is True)
    with tempfile.TemporaryDirectory() as tmp:
        bad_commit(tmp)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = run_fsck(tmp, strict=False, json_out=True)
        rows = [json.loads(line)
                for line in out.getvalue().splitlines()]
        c.check("json: damaged store exits 1 with error findings",
                code == 1 and rows[-1]["errors"] >= 1
                and any(row.get("severity") == "error"
                        for row in rows))
    with tempfile.TemporaryDirectory() as tmp:
        _good_store(tmp)
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            run_fsck(tmp, strict=False)
        text = out.getvalue()
        c.check("text mode unchanged: summary line intact",
                text == "store_fsck: 3 record(s), 0 error(s), "
                        "0 warning(s)\n")

    return c.finish()


def main():
    parser = argparse.ArgumentParser(
        description="integrity check for a ResultStore directory")
    parser.add_argument("store", nargs="?",
                        help="store directory to check")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as errors")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as schema-v1 JSONL instead "
                             "of text")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in checks and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not args.store:
        parser.error("STORE_DIR is required (or use --self-test)")
    return run_fsck(args.store, args.strict, json_out=args.json)


if __name__ == "__main__":
    sys.exit(main())
