/**
 * @file
 * Policy explorer: sweep one configuration axis (miss penalty, cache
 * size, or speculation depth) for a chosen policy and workload and
 * print an ISPI curve — the quickest way to find the crossover points
 * the paper's conclusion is about (aggressive wins at small latency,
 * conservative at large).
 *
 *   ./policy_explorer --benchmark=groff --axis=penalty
 *   ./policy_explorer --benchmark=gcc --axis=depth --prefetch
 *   ./policy_explorer --benchmark=li --axis=cache
 */

#include <cstdio>

#include "core/simulator.hh"
#include "core/sweep.hh"
#include "util/options.hh"
#include "util/string_utils.hh"
#include "util/table.hh"
#include "workload/registry.hh"

using namespace specfetch;

namespace {

struct AxisPoint
{
    std::string label;
    SimConfig config;
};

std::vector<AxisPoint>
axisPoints(const std::string &axis, const SimConfig &base)
{
    std::vector<AxisPoint> points;
    if (axis == "penalty") {
        for (unsigned cycles : {2u, 5u, 10u, 20u, 40u}) {
            SimConfig config = base;
            config.missPenaltyCycles = cycles;
            points.push_back({std::to_string(cycles) + "cyc", config});
        }
    } else if (axis == "cache") {
        for (unsigned kb : {4u, 8u, 16u, 32u, 64u}) {
            SimConfig config = base;
            config.icache.sizeBytes = kb * 1024;
            points.push_back({std::to_string(kb) + "K", config});
        }
    } else if (axis == "depth") {
        for (unsigned depth : {1u, 2u, 4u, 8u}) {
            SimConfig config = base;
            config.maxUnresolved = depth;
            points.push_back({"depth " + std::to_string(depth), config});
        }
    }
    return points;
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts("policy_explorer",
                      "sweep a machine axis across all five policies");
    opts.addString("benchmark", "groff", "workload profile");
    opts.addString("axis", "penalty", "penalty | cache | depth");
    opts.addCount("budget", 2'000'000, "instructions per run");
    opts.addFlag("prefetch", "enable next-line prefetching");
    if (!opts.parse(argc, argv))
        return 1;

    SimConfig base;
    base.instructionBudget = opts.getCount("budget");
    base.nextLinePrefetch = opts.getFlag("prefetch");

    std::vector<AxisPoint> points =
        axisPoints(opts.getString("axis"), base);
    if (points.empty()) {
        std::fprintf(stderr, "unknown axis '%s' (penalty|cache|depth)\n",
                     opts.getString("axis").c_str());
        return 1;
    }

    std::string benchmark = opts.getString("benchmark");
    std::vector<RunSpec> specs;
    for (const AxisPoint &point : points) {
        for (FetchPolicy policy : allPolicies()) {
            RunSpec spec{benchmark, point.config};
            spec.config.policy = policy;
            specs.push_back(spec);
        }
    }
    std::vector<SimResults> results = runSweep(specs);

    std::printf("total ISPI for '%s'%s along the %s axis:\n\n",
                benchmark.c_str(),
                base.nextLinePrefetch ? " (with prefetch)" : "",
                opts.getString("axis").c_str());

    TextTable table;
    std::vector<std::string> columns{"point"};
    for (FetchPolicy policy : allPolicies())
        columns.push_back(shortName(policy));
    columns.push_back("winner");
    table.setColumns(columns);

    size_t index = 0;
    for (const AxisPoint &point : points) {
        std::vector<std::string> row{point.label};
        double best = 1e30;
        FetchPolicy winner = FetchPolicy::Oracle;
        std::vector<double> values;
        for (size_t p = 0; p < allPolicies().size(); ++p) {
            double ispi = results[index++].ispi();
            values.push_back(ispi);
            row.push_back(formatFixed(ispi, 3));
            // Skip Oracle when crowning a winner: it is unrealizable.
            if (p > 0 && ispi < best) {
                best = ispi;
                winner = allPolicies()[p];
            }
        }
        row.push_back(toString(winner));
        table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n('winner' excludes the unrealizable Oracle)\n");
    return 0;
}
