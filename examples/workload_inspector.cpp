/**
 * @file
 * Workload inspector: reports the measurable characteristics of a
 * synthetic workload — static footprint, dynamic branch mix, working
 * set over sliding windows, and branch-architecture quality — the
 * quantities the profiles are calibrated against (paper Tables 2-3).
 *
 *   ./workload_inspector --benchmark=gcc --budget=2M
 *   ./workload_inspector --all
 */

#include <cstdio>
#include <unordered_set>

#include "core/simulator.hh"
#include "util/options.hh"
#include "util/string_utils.hh"
#include "util/table.hh"
#include "workload/executor.hh"
#include "workload/registry.hh"

using namespace specfetch;

namespace {

struct Inspection
{
    std::string name;
    uint64_t staticInsts;
    double footprintKb;
    double branchPct;
    double condPct;
    double takenPct;
    double callPct;
    uint64_t distinctLines;
    double meanWindowLinesKb;   ///< mean working set per window
    double missRate8K;
    double missRate32K;
    double condAccuracy;
    double phtIspi;
    double misfetchIspi;
    double btbMispIspi;
};

Inspection
inspect(const std::string &name, uint64_t budget)
{
    Workload workload = buildWorkload(getProfile(name));

    Inspection out;
    out.name = name;
    out.staticInsts = workload.cfg.totalInstructions();
    out.footprintKb = static_cast<double>(workload.footprintBytes()) / 1024.0;

    // Dynamic pass: branch mix + working set windows.
    Executor executor(workload.cfg, 42);
    std::unordered_set<Addr> all_lines;
    std::unordered_set<Addr> window_lines;
    const uint64_t window = 100'000;
    uint64_t windows = 0;
    uint64_t window_line_total = 0;
    DynInst inst;
    for (uint64_t i = 0; i < budget; ++i) {
        executor.next(inst);
        Addr line = inst.pc & ~Addr{31};
        all_lines.insert(line);
        window_lines.insert(line);
        if ((i + 1) % window == 0) {
            window_line_total += window_lines.size();
            window_lines.clear();
            ++windows;
        }
    }
    out.branchPct = 100.0 * executor.branchFraction();
    out.condPct = 100.0 * ratioOf(executor.condBranches.value(),
                                  executor.instructions.value());
    out.takenPct = 100.0 * ratioOf(executor.condTaken.value(),
                                   executor.condBranches.value());
    out.callPct = 100.0 * ratioOf(executor.calls.value(),
                                  executor.instructions.value());
    out.distinctLines = all_lines.size();
    out.meanWindowLinesKb = windows == 0
        ? 0.0
        : 32.0 *
            (static_cast<double>(window_line_total) /
             static_cast<double>(windows)) /
            1024.0;

    // Oracle runs for cache + predictor characterization.
    SimConfig cfg;
    cfg.policy = FetchPolicy::Oracle;
    cfg.instructionBudget = budget;
    SimResults r8 = runSimulation(workload, cfg);
    out.missRate8K = r8.missRatePercent();
    out.condAccuracy = 100.0 * r8.condAccuracy();
    out.phtIspi = r8.phtMispredictIspi();
    out.misfetchIspi = r8.btbMisfetchIspi();
    out.btbMispIspi = r8.btbMispredictIspi();

    cfg.icache.sizeBytes = 32 * 1024;
    out.missRate32K = runSimulation(workload, cfg).missRatePercent();
    return out;
}

void
addRow(TextTable &table, const Inspection &i, const WorkloadProfile &p)
{
    table.addRow({
        i.name,
        formatFixed(i.footprintKb, 1),
        formatFixed(i.branchPct, 1) + "/" + formatFixed(p.paperBranchPercent, 1),
        formatFixed(i.takenPct, 0),
        formatFixed(i.meanWindowLinesKb, 1),
        formatFixed(i.missRate8K, 2) + "/" + formatFixed(p.paperMissRate8K, 2),
        formatFixed(i.missRate32K, 2) + "/" + formatFixed(p.paperMissRate32K, 2),
        formatFixed(i.condAccuracy, 1),
        formatFixed(i.phtIspi, 2),
        formatFixed(i.misfetchIspi, 2),
        formatFixed(i.btbMispIspi, 2),
    });
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts("workload_inspector",
                      "measure synthetic-workload characteristics");
    opts.addString("benchmark", "gcc", "profile to inspect");
    opts.addCount("budget", 2'000'000, "instructions per measurement");
    opts.addFlag("all", "inspect every benchmark");
    if (!opts.parse(argc, argv))
        return 1;

    uint64_t budget = opts.getCount("budget");

    TextTable table;
    table.setColumns({"bench", "KB", "br%/paper", "tk%", "ws-KB",
                      "8K/paper", "32K/paper", "acc%", "phtISPI",
                      "mfISPI", "btbISPI"});

    if (opts.getFlag("all")) {
        for (const std::string &name : benchmarkNames())
            addRow(table, inspect(name, budget), getProfile(name));
    } else {
        std::string name = opts.getString("benchmark");
        addRow(table, inspect(name, budget), getProfile(name));
    }
    std::fputs(table.render().c_str(), stdout);
    return 0;
}
