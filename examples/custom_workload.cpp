/**
 * @file
 * Building a workload by hand with the CFG API — no profile, no
 * generator. Constructs the classic "interpreter" shape (a dispatch
 * loop over handlers via an indirect jump) plus a cold error path,
 * then compares all five fetch policies on it.
 *
 * This demonstrates the lowest-level public API: Cfg/BasicBlock,
 * layoutProgram, Executor, and FetchEngine, assembled manually.
 */

#include <cstdio>

#include "core/fetch_engine.hh"
#include "util/options.hh"
#include "util/string_utils.hh"
#include "util/table.hh"
#include "workload/executor.hh"
#include "workload/layout.hh"

using namespace specfetch;

namespace {

/** Append a block and return its id. */
uint32_t
addBlock(Cfg &cfg, uint32_t func, uint32_t body_len, TermKind term)
{
    BasicBlock block;
    block.id = static_cast<uint32_t>(cfg.blocks.size());
    block.func = func;
    block.bodyLen = body_len;
    block.term = term;
    cfg.blocks.push_back(block);
    return cfg.blocks.back().id;
}

/**
 * An interpreter-shaped program:
 *   loop:  dispatch (indirect) -> one of N handlers -> back to loop
 * Each handler is a straight run of code; one rare handler is large
 * and cold (the "error path"). Handler popularity is skewed.
 */
Cfg
interpreterCfg(unsigned handlers, unsigned handler_len)
{
    Cfg cfg;

    // Dispatch block: a little decode work, then the indirect jump.
    uint32_t dispatch = addBlock(cfg, 0, 3, TermKind::IndirectJump);

    std::vector<uint32_t> entries;
    std::vector<uint32_t> exits;
    for (unsigned h = 0; h < handlers; ++h) {
        // The last handler is the big cold one.
        uint32_t len = h + 1 == handlers ? handler_len * 8 : handler_len;
        uint32_t body = addBlock(cfg, 0, len, TermKind::Jump);
        entries.push_back(body);
        exits.push_back(body);
    }

    // Loop tail: a counter-style conditional back to dispatch, then
    // the main seal jump (never reached dynamically but required
    // structurally: main must end with a jump to its entry).
    uint32_t tail = addBlock(cfg, 0, 2, TermKind::CondBranch);
    uint32_t seal = addBlock(cfg, 0, 1, TermKind::Jump);

    for (unsigned h = 0; h < handlers; ++h)
        cfg.blocks[exits[h]].target = tail;

    cfg.blocks[tail].target = dispatch;
    cfg.blocks[tail].behavior.mode = DirMode::LoopBack;
    cfg.blocks[tail].behavior.tripCount = 1'000'000'000;    // forever
    cfg.blocks[seal].target = dispatch;

    std::vector<double> weights;
    for (unsigned h = 0; h < handlers; ++h)
        weights.push_back(h + 1 == handlers ? 0.02
                                            : 1.0 / (1.0 + h * 0.4));
    cfg.blocks[dispatch].indirectTargets = entries;
    cfg.blocks[dispatch].indirectWeights = weights;

    Function main;
    main.index = 0;
    main.firstBlock = dispatch;
    main.lastBlock = seal;
    main.name = "interp";
    cfg.functions.push_back(main);

    cfg.validate();
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts("custom_workload",
                      "hand-built interpreter workload, all policies");
    opts.addCount("handlers", 28, "number of bytecode handlers");
    opts.addCount("handler-len", 96, "instructions per handler");
    opts.addCount("budget", 2'000'000, "instructions to simulate");
    opts.addSize("cache", 8 * 1024, "I-cache size in bytes");
    if (!opts.parse(argc, argv))
        return 1;

    Cfg cfg = interpreterCfg(
        static_cast<unsigned>(opts.getCount("handlers")),
        static_cast<unsigned>(opts.getCount("handler-len")));
    ProgramImage image = layoutProgram(cfg);

    std::printf("interpreter: %llu static instructions (%.1f KB), "
                "%zu handlers\n\n",
                static_cast<unsigned long long>(cfg.totalInstructions()),
                static_cast<double>(cfg.totalInstructions() * 4) / 1024.0,
                cfg.blocks[0].indirectTargets.size());

    SimConfig config;
    config.instructionBudget = opts.getCount("budget");
    config.icache.sizeBytes = opts.getSize("cache");

    TextTable table;
    table.setColumns({"Policy", "ISPI", "miss%", "indirect mispredict%",
                      "traffic"});
    for (FetchPolicy policy : allPolicies()) {
        SimConfig cfg_run = config;
        cfg_run.policy = policy;
        Executor executor(cfg, 42);
        FetchEngine engine(cfg_run, image);
        SimResults r = engine.run(executor);
        double indirect_rate = 100.0 *
            ratioOf(r.targetMispredicts, r.controlInsts);
        table.addRow({toString(policy), formatFixed(r.ispi(), 3),
                      formatFixed(r.missRatePercent(), 2),
                      formatFixed(indirect_rate, 1),
                      formatWithCommas(r.memoryTransactions())});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nthe BTB mispredicts whenever the dispatch picks a "
                "different handler than last time — the fetch-policy "
                "choice decides what those wrong paths cost.\n");
    return 0;
}
