/**
 * @file
 * Trace tooling: record a benchmark execution to a trace file,
 * inspect it, and re-simulate from it. Demonstrates that stored
 * traces and live execution are interchangeable front-end inputs.
 *
 *   ./trace_tools record --benchmark=li --budget=1M --trace=/tmp/li.sft
 *   ./trace_tools info --trace=/tmp/li.sft
 *   ./trace_tools simulate --trace=/tmp/li.sft --policy=resume
 */

#include <cstdio>
#include <cstring>

#include "core/fetch_engine.hh"
#include "trace/format.hh"
#include "trace/reader.hh"
#include "trace/replay_source.hh"
#include "trace/writer.hh"
#include "util/options.hh"
#include "util/string_utils.hh"
#include "workload/executor.hh"
#include "workload/registry.hh"
#include "workload/workload.hh"

using namespace specfetch;

namespace {

int
record(const OptionParser &opts)
{
    std::string path = opts.getString("trace");
    uint64_t budget = opts.getCount("budget");
    Workload w = buildWorkload(getProfile(opts.getString("benchmark")));

    Executor executor(w.cfg, opts.getCount("seed"));
    DynInst inst;
    executor.next(inst);
    TraceWriter writer(path, w.image, inst.pc);
    writer.append(inst);
    for (uint64_t i = 1; i < budget; ++i) {
        executor.next(inst);
        writer.append(inst);
    }
    writer.close();
    std::printf("wrote %s: %s instructions, image %zu instructions\n",
                path.c_str(), formatWithCommas(budget).c_str(),
                w.image.size());
    return 0;
}

int
info(const OptionParser &opts)
{
    TraceReader reader(opts.getString("trace"));
    std::printf("image: base 0x%llx, %zu instructions (%.1f KB), "
                "%zu control\n",
                static_cast<unsigned long long>(reader.image().base()),
                reader.image().size(),
                static_cast<double>(reader.image().size() * 4) / 1024.0,
                reader.image().controlCount());
    std::printf("start pc: 0x%llx\n",
                static_cast<unsigned long long>(reader.startPc()));

    uint64_t counts[6] = {};
    uint64_t taken = 0;
    DynInst inst;
    uint64_t total = 0;
    while (reader.next(inst)) {
        ++counts[static_cast<size_t>(inst.cls)];
        taken += isControl(inst.cls) && inst.taken;
        ++total;
    }
    std::printf("dynamic stream: %s instructions\n",
                formatWithCommas(total).c_str());
    for (size_t c = 0; c < 6; ++c) {
        if (counts[c] == 0)
            continue;
        std::printf("  %-7s %s (%.2f%%)\n",
                    toString(static_cast<InstClass>(c)).c_str(),
                    formatWithCommas(counts[c]).c_str(),
                    100.0 * ratioOf(counts[c], total));
    }
    return 0;
}

int
simulate(const OptionParser &opts)
{
    FetchPolicy policy;
    if (!parsePolicy(opts.getString("policy"), policy)) {
        std::fprintf(stderr, "unknown policy '%s'\n",
                     opts.getString("policy").c_str());
        return 1;
    }

    TraceReader reader(opts.getString("trace"));
    ReplaySource source(reader);

    SimConfig config;
    config.policy = policy;
    config.instructionBudget = opts.getCount("budget");
    config.nextLinePrefetch = opts.getFlag("prefetch");

    FetchEngine engine(config, reader.image());
    SimResults results = engine.run(source);
    results.workload = opts.getString("trace");
    std::fputs(results.summary().c_str(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts("trace_tools",
                      "record / info / simulate stored traces");
    opts.addString("trace", "/tmp/specfetch.sft", "trace file path");
    opts.addString("benchmark", "li", "profile to record");
    opts.addString("policy", "resume", "policy for 'simulate'");
    opts.addCount("budget", 1'000'000, "instructions");
    opts.addCount("seed", 42, "dynamic-behavior seed");
    opts.addFlag("prefetch", "enable next-line prefetching");
    if (!opts.parse(argc, argv))
        return 1;

    if (opts.positional().size() != 1) {
        std::fprintf(stderr,
                     "usage: trace_tools <record|info|simulate> "
                     "[options]\n");
        return 1;
    }
    const std::string &verb = opts.positional()[0];
    try {
        if (verb == "record")
            return record(opts);
        if (verb == "info")
            return info(opts);
        if (verb == "simulate")
            return simulate(opts);
    } catch (const TraceError &e) {
        // Damaged or missing trace input: a user error, not a crash.
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "unknown verb '%s'\n", verb.c_str());
    return 1;
}
