/**
 * @file
 * The full-configuration simulator driver: every machine knob the
 * library exposes, on one command line. One run, full report,
 * optional gem5-style stats dump and miss classification.
 *
 *   ./specfetch_sim --benchmark=gcc --policy=resume --budget=20M
 *   ./specfetch_sim --benchmark=groff --policy=pessimistic \
 *       --miss-penalty=20 --prefetch-kind=combined --channels=2
 *   ./specfetch_sim --benchmark=li --reorder --stats --classify
 */

#include <chrono>
#include <cstdio>

#include "adaptive/adaptive_record.hh"
#include "adaptive/selector_kind.hh"
#include "core/miss_classifier.hh"
#include "core/simulator.hh"
#include "report/record.hh"
#include "report/report.hh"
#include "util/options.hh"
#include "util/string_utils.hh"
#include "workload/registry.hh"
#include "workload/reorder.hh"

using namespace specfetch;

namespace {

bool
parsePrefetchKind(const std::string &text, PrefetchKind &out)
{
    std::string t = toLower(trim(text));
    if (t == "none")
        out = PrefetchKind::None;
    else if (t == "next-line" || t == "nextline")
        out = PrefetchKind::NextLine;
    else if (t == "target")
        out = PrefetchKind::Target;
    else if (t == "combined")
        out = PrefetchKind::Combined;
    else if (t == "stream")
        out = PrefetchKind::Stream;
    else
        return false;
    return true;
}

bool
parseIndexing(const std::string &text, PhtIndexing &out)
{
    std::string t = toLower(trim(text));
    if (t == "gshare")
        out = PhtIndexing::Gshare;
    else if (t == "global")
        out = PhtIndexing::GlobalOnly;
    else if (t == "pc")
        out = PhtIndexing::PcOnly;
    else if (t == "local")
        out = PhtIndexing::Local;
    else if (t == "combining")
        out = PhtIndexing::Combining;
    else
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts("specfetch_sim",
                      "single fully-configurable simulation run");
    opts.addString("benchmark", "gcc", "workload profile name");
    opts.addString("policy", "resume",
                   "oracle|optimistic|resume|pessimistic|decode");
    opts.addCount("budget", 4'000'000, "instructions to simulate");
    opts.addCount("warmup", 0, "instructions before stats reset");
    opts.addCount("seed", 42, "dynamic-behavior seed");

    opts.addSize("cache", 8 * 1024, "I-cache bytes");
    opts.addCount("ways", 1, "I-cache associativity");
    opts.addCount("line", 32, "I-cache line bytes");
    opts.addCount("miss-penalty", 5, "miss penalty, cycles");
    opts.addCount("channels", 1, "overlapping memory transactions");

    opts.addString("prefetch-kind", "none",
                   "none|next-line|target|combined|stream");
    opts.addCount("target-table", 64, "target-prefetch table entries");

    opts.addCount("width", 4, "issue width (slots per cycle)");
    opts.addCount("depth", 4, "max unresolved conditional branches");
    opts.addCount("decode", 2, "decode latency, cycles");
    opts.addCount("resolve", 4, "conditional resolve latency, cycles");

    opts.addCount("btb", 64, "BTB entries");
    opts.addCount("btb-ways", 4, "BTB associativity");
    opts.addCount("pht", 512, "PHT counter entries");
    opts.addString("pht-indexing", "gshare",
                   "gshare|global|pc|local|combining");
    opts.addCount("ras", 0, "return-address-stack depth (0 = none)");
    opts.addCount("victim", 0, "victim-cache entries (0 = none)");
    opts.addCount("victim-hit-cycles", 1,
                  "victim-cache hit latency, cycles");
    opts.addFlag("l2", "enable the explicit 64K L2 (5/20-cycle split)");
    opts.addCount("l2-hit-cycles", 5, "L2 hit latency, cycles");
    opts.addCount("l2-miss-cycles", 20, "L2 miss latency, cycles");

    opts.addString("adaptive", "",
                   "per-epoch policy selection: static|threshold|bandit");
    opts.addCount("adaptive-interval", 50'000,
                  "adaptive decision epoch, retired instructions");
    opts.addCount("adaptive-seed", 1, "bandit exploration seed");

    opts.addFlag("reorder", "apply profile-guided block reordering");
    opts.addFlag("stats", "dump the full statistics tree");
    opts.addFlag("classify", "also run the Table-4 miss classification");
    opts.addString("json", "",
                   "write the run as one schema-v1 JSONL record");
    if (!opts.parse(argc, argv))
        return 1;

    SimConfig config;
    if (!parsePolicy(opts.getString("policy"), config.policy)) {
        std::fprintf(stderr, "unknown policy '%s'\n",
                     opts.getString("policy").c_str());
        return 1;
    }
    if (!parsePrefetchKind(opts.getString("prefetch-kind"),
                           config.prefetchKind)) {
        std::fprintf(stderr, "unknown prefetch kind '%s'\n",
                     opts.getString("prefetch-kind").c_str());
        return 1;
    }
    if (!parseIndexing(opts.getString("pht-indexing"),
                       config.predictor.phtIndexing)) {
        std::fprintf(stderr, "unknown PHT indexing '%s'\n",
                     opts.getString("pht-indexing").c_str());
        return 1;
    }

    if (!opts.getString("adaptive").empty()) {
        if (!parseSelectorKind(opts.getString("adaptive"),
                               config.adaptiveSelector) ||
            config.adaptiveSelector == SelectorKind::Off) {
            std::fprintf(stderr, "unknown adaptive selector '%s'\n",
                         opts.getString("adaptive").c_str());
            return 1;
        }
    }
    config.adaptiveInterval = opts.getCount("adaptive-interval");
    config.adaptiveSeed = opts.getCount("adaptive-seed");

    config.instructionBudget = opts.getCount("budget");
    config.warmupInstructions = opts.getCount("warmup");
    config.runSeed = opts.getCount("seed");
    config.icache.sizeBytes = opts.getSize("cache");
    config.icache.ways = static_cast<unsigned>(opts.getCount("ways"));
    config.icache.lineBytes =
        static_cast<unsigned>(opts.getCount("line"));
    config.missPenaltyCycles =
        static_cast<unsigned>(opts.getCount("miss-penalty"));
    config.memoryChannels =
        static_cast<unsigned>(opts.getCount("channels"));
    config.targetTableEntries =
        static_cast<unsigned>(opts.getCount("target-table"));
    config.issueWidth = static_cast<unsigned>(opts.getCount("width"));
    config.maxUnresolved = static_cast<unsigned>(opts.getCount("depth"));
    config.decodeCycles = static_cast<unsigned>(opts.getCount("decode"));
    config.resolveCycles =
        static_cast<unsigned>(opts.getCount("resolve"));
    config.predictor.btbEntries =
        static_cast<unsigned>(opts.getCount("btb"));
    config.predictor.btbWays =
        static_cast<unsigned>(opts.getCount("btb-ways"));
    config.predictor.phtEntries =
        static_cast<unsigned>(opts.getCount("pht"));
    config.predictor.rasDepth =
        static_cast<unsigned>(opts.getCount("ras"));
    config.victimEntries =
        static_cast<unsigned>(opts.getCount("victim"));
    config.victimHitCycles =
        static_cast<unsigned>(opts.getCount("victim-hit-cycles"));
    config.l2Enabled = opts.getFlag("l2");
    config.l2HitCycles =
        static_cast<unsigned>(opts.getCount("l2-hit-cycles"));
    config.l2MissCycles =
        static_cast<unsigned>(opts.getCount("l2-miss-cycles"));
    config.validate();

    Workload workload =
        buildWorkload(getProfile(opts.getString("benchmark")));
    if (opts.getFlag("reorder")) {
        workload = reorderWorkload(workload, config.runSeed + 1,
                                   config.instructionBudget / 2 + 1);
        std::printf("applied profile-guided reordering "
                    "(trained on seed %llu)\n\n",
                    static_cast<unsigned long long>(config.runSeed + 1));
    }

    std::printf("machine: %s\n\n", config.describe().c_str());
    auto runStart = std::chrono::steady_clock::now();
    RunObservations observations;
    SimResults results = runSimulation(workload, config, observations);
    double runSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      runStart)
            .count();
    std::fputs(results.summary().c_str(), stdout);

    if (observations.adaptive.enabled()) {
        const AdaptiveLog &log = observations.adaptive;
        std::printf("\nadaptive selection (%s, epoch %llu): %llu epochs, "
                    "%llu switches\n",
                    toString(config.adaptiveSelector).c_str(),
                    static_cast<unsigned long long>(log.interval),
                    static_cast<unsigned long long>(log.choices.size()),
                    static_cast<unsigned long long>(log.switches));
        for (const AdaptiveChoice &choice : log.choices) {
            std::printf("  epoch %4llu  [%llu, %llu)  %s\n",
                        static_cast<unsigned long long>(choice.epoch),
                        static_cast<unsigned long long>(
                            choice.firstInstruction),
                        static_cast<unsigned long long>(
                            choice.lastInstruction),
                        toString(choice.policy).c_str());
        }
    }

    if (opts.getFlag("stats")) {
        std::printf("\n%s", results.statsDump().c_str());
    }

    bool haveClassification = false;
    Classification classification;
    if (opts.getFlag("classify")) {
        classification = classifyMisses(workload, config);
        haveClassification = true;
        const Classification &c = classification;
        std::printf("\nmiss classification (Oracle vs Optimistic, "
                    "%% of instructions):\n");
        std::printf("  both miss:     %.2f\n", c.bothMissPercent());
        std::printf("  spec pollute:  %.2f\n", c.specPollutePercent());
        std::printf("  spec prefetch: %.2f\n", c.specPrefetchPercent());
        std::printf("  wrong path:    %.2f\n", c.wrongPathPercent());
        std::printf("  traffic ratio: %.2f\n", c.trafficRatio());
    }

    if (!opts.getString("json").empty()) {
        JsonlWriter writer(opts.getString("json"));
        if (!writer.ok()) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opts.getString("json").c_str());
            return 1;
        }
        RunTiming timing;
        timing.runSeconds = runSeconds;
        timing.sweepTotalSeconds = runSeconds;
        writer.write(makeRunRecord(
            results, config, &timing,
            haveClassification ? &classification : nullptr));
        if (observations.adaptive.enabled() &&
            !observations.adaptive.choices.empty()) {
            writer.write(makeAdaptiveRecord(observations.adaptive,
                                            results, config));
        }
        std::printf("\nwrote %llu record%s to %s\n",
                    static_cast<unsigned long long>(
                        writer.recordsWritten()),
                    writer.recordsWritten() == 1 ? "" : "s",
                    writer.path().c_str());
    }
    return 0;
}
