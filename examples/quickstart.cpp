/**
 * @file
 * Quickstart: build one benchmark workload, run every fetch policy on
 * the paper's baseline machine, and print the comparison.
 *
 *   ./quickstart --benchmark=gcc --budget=2M
 *   ./quickstart --benchmark=groff --miss-penalty=20 --prefetch
 */

#include <cstdio>

#include "core/simulator.hh"
#include "core/sweep.hh"
#include "util/options.hh"
#include "util/string_utils.hh"
#include "util/table.hh"
#include "workload/registry.hh"

using namespace specfetch;

int
main(int argc, char **argv)
{
    OptionParser opts("quickstart",
                      "compare all I-cache fetch policies on one workload");
    opts.addString("benchmark", "gcc", "workload profile (see --list)");
    opts.addCount("budget", 2'000'000, "instructions to simulate");
    opts.addSize("cache", 8 * 1024, "I-cache size in bytes");
    opts.addCount("miss-penalty", 5, "I-cache miss penalty in cycles");
    opts.addCount("depth", 4, "max unresolved conditional branches");
    opts.addFlag("prefetch", "enable next-line prefetching");
    opts.addFlag("stats", "dump the full statistics tree per policy");
    opts.addFlag("list", "list available benchmarks and exit");
    if (!opts.parse(argc, argv))
        return 1;

    if (opts.getFlag("list")) {
        for (const std::string &name : benchmarkNames()) {
            WorkloadProfile p = getProfile(name);
            std::printf("%-8s  %s\n", name.c_str(), p.description.c_str());
        }
        return 0;
    }

    SimConfig config;
    config.instructionBudget = opts.getCount("budget");
    config.icache.sizeBytes = opts.getSize("cache");
    config.missPenaltyCycles = static_cast<unsigned>(
        opts.getCount("miss-penalty"));
    config.maxUnresolved = static_cast<unsigned>(opts.getCount("depth"));
    config.nextLinePrefetch = opts.getFlag("prefetch");

    std::string benchmark = opts.getString("benchmark");
    Workload workload = buildWorkload(getProfile(benchmark));
    std::printf("workload '%s': %zu functions, %llu static instructions "
                "(%.1f KB)\n\n",
                benchmark.c_str(), workload.cfg.functions.size(),
                static_cast<unsigned long long>(
                    workload.cfg.totalInstructions()),
                static_cast<double>(workload.footprintBytes()) / 1024.0);

    TextTable table;
    table.setColumns({"Policy", "ISPI", "branch_full", "branch",
                      "force_resolve", "rt_icache", "wrong_icache", "bus",
                      "miss%", "traffic"});
    for (FetchPolicy policy : allPolicies()) {
        SimConfig cfg = config;
        cfg.policy = policy;
        SimResults r = runSimulation(workload, cfg);
        std::vector<std::string> row{toString(policy),
                                     formatFixed(r.ispi(), 3)};
        for (PenaltyKind kind : allPenaltyKinds())
            row.push_back(formatFixed(r.ispiOf(kind), 3));
        row.push_back(formatFixed(r.missRatePercent(), 2));
        row.push_back(formatWithCommas(r.memoryTransactions()));
        table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nconfig: %s\n", config.describe().c_str());

    if (opts.getFlag("stats")) {
        for (FetchPolicy policy : allPolicies()) {
            SimConfig cfg = config;
            cfg.policy = policy;
            SimResults r = runSimulation(workload, cfg);
            std::printf("\n==== %s ====\n%s", toString(policy).c_str(),
                        r.statsDump().c_str());
        }
    }
    return 0;
}
