/**
 * @file
 * Prefetch study: for one workload, sweep the miss penalty and show
 * where next-line prefetching stops paying for each policy — the
 * paper's closing recommendation ("Resume + prefetch when latency is
 * small; Pessimistic without prefetch when it is large") as a single
 * runnable experiment.
 *
 *   ./prefetch_study --benchmark=groff
 */

#include <cstdio>

#include "core/simulator.hh"
#include "core/sweep.hh"
#include "util/options.hh"
#include "util/string_utils.hh"
#include "util/table.hh"
#include "workload/registry.hh"

using namespace specfetch;

int
main(int argc, char **argv)
{
    OptionParser opts("prefetch_study",
                      "where does next-line prefetching stop paying?");
    opts.addString("benchmark", "groff", "workload profile");
    opts.addCount("budget", 2'000'000, "instructions per run");
    if (!opts.parse(argc, argv))
        return 1;

    std::string benchmark = opts.getString("benchmark");
    const std::vector<unsigned> penalties{2, 5, 10, 20, 40};
    const std::vector<FetchPolicy> policies{
        FetchPolicy::Oracle, FetchPolicy::Resume,
        FetchPolicy::Pessimistic};

    std::vector<RunSpec> specs;
    for (unsigned penalty : penalties) {
        for (FetchPolicy policy : policies) {
            for (bool prefetch : {false, true}) {
                SimConfig config;
                config.instructionBudget = opts.getCount("budget");
                config.missPenaltyCycles = penalty;
                config.policy = policy;
                config.nextLinePrefetch = prefetch;
                specs.push_back(RunSpec{benchmark, config});
            }
        }
    }
    std::vector<SimResults> results = runSweep(specs);

    std::printf("ISPI for '%s', cells are no-prefetch -> prefetch "
                "(delta%%):\n\n",
                benchmark.c_str());

    TextTable table;
    table.setColumns({"penalty", "Oracle", "Resume", "Pessimistic",
                      "traffic x (Resume+pref)"});
    size_t index = 0;
    for (unsigned penalty : penalties) {
        std::vector<std::string> row{std::to_string(penalty) + "cyc"};
        uint64_t resume_traffic = 0;
        uint64_t oracle_traffic = 0;
        for (FetchPolicy policy : policies) {
            const SimResults &off = results[index++];
            const SimResults &on = results[index++];
            double delta =
                100.0 * (on.ispi() - off.ispi()) / off.ispi();
            row.push_back(formatFixed(off.ispi(), 2) + "->" +
                          formatFixed(on.ispi(), 2) + " (" +
                          (delta >= 0 ? "+" : "") +
                          formatFixed(delta, 1) + "%)");
            if (policy == FetchPolicy::Resume)
                resume_traffic = on.memoryTransactions();
            if (policy == FetchPolicy::Oracle)
                oracle_traffic = off.memoryTransactions();
        }
        row.push_back(formatFixed(
            ratioOf(resume_traffic, oracle_traffic), 2));
        table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nnegative deltas = prefetching helped; expect them "
                "to shrink (or flip) as the penalty grows.\n");
    return 0;
}
