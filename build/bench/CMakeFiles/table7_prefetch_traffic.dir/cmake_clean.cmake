file(REMOVE_RECURSE
  "CMakeFiles/table7_prefetch_traffic.dir/table7_prefetch_traffic.cc.o"
  "CMakeFiles/table7_prefetch_traffic.dir/table7_prefetch_traffic.cc.o.d"
  "table7_prefetch_traffic"
  "table7_prefetch_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_prefetch_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
