# Empty dependencies file for table7_prefetch_traffic.
# This may be replaced when dependencies are built.
