# Empty dependencies file for table6_cache_size.
# This may be replaced when dependencies are built.
