file(REMOVE_RECURSE
  "CMakeFiles/table6_cache_size.dir/table6_cache_size.cc.o"
  "CMakeFiles/table6_cache_size.dir/table6_cache_size.cc.o.d"
  "table6_cache_size"
  "table6_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
