# Empty compiler generated dependencies file for table5_speculation_depth.
# This may be replaced when dependencies are built.
