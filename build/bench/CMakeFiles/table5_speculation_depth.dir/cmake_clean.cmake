file(REMOVE_RECURSE
  "CMakeFiles/table5_speculation_depth.dir/table5_speculation_depth.cc.o"
  "CMakeFiles/table5_speculation_depth.dir/table5_speculation_depth.cc.o.d"
  "table5_speculation_depth"
  "table5_speculation_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_speculation_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
