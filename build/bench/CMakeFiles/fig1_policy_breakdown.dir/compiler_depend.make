# Empty compiler generated dependencies file for fig1_policy_breakdown.
# This may be replaced when dependencies are built.
