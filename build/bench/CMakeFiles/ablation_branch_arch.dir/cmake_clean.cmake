file(REMOVE_RECURSE
  "CMakeFiles/ablation_branch_arch.dir/ablation_branch_arch.cc.o"
  "CMakeFiles/ablation_branch_arch.dir/ablation_branch_arch.cc.o.d"
  "ablation_branch_arch"
  "ablation_branch_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_branch_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
