# Empty compiler generated dependencies file for ablation_branch_arch.
# This may be replaced when dependencies are built.
