file(REMOVE_RECURSE
  "CMakeFiles/table4_miss_classification.dir/table4_miss_classification.cc.o"
  "CMakeFiles/table4_miss_classification.dir/table4_miss_classification.cc.o.d"
  "table4_miss_classification"
  "table4_miss_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_miss_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
