# Empty dependencies file for table4_miss_classification.
# This may be replaced when dependencies are built.
