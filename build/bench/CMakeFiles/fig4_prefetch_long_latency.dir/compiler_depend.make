# Empty compiler generated dependencies file for fig4_prefetch_long_latency.
# This may be replaced when dependencies are built.
