file(REMOVE_RECURSE
  "CMakeFiles/fig4_prefetch_long_latency.dir/fig4_prefetch_long_latency.cc.o"
  "CMakeFiles/fig4_prefetch_long_latency.dir/fig4_prefetch_long_latency.cc.o.d"
  "fig4_prefetch_long_latency"
  "fig4_prefetch_long_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_prefetch_long_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
