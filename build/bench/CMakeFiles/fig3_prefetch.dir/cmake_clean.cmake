file(REMOVE_RECURSE
  "CMakeFiles/fig3_prefetch.dir/fig3_prefetch.cc.o"
  "CMakeFiles/fig3_prefetch.dir/fig3_prefetch.cc.o.d"
  "fig3_prefetch"
  "fig3_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
