# Empty compiler generated dependencies file for fig3_prefetch.
# This may be replaced when dependencies are built.
