# Empty dependencies file for fig2_long_latency.
# This may be replaced when dependencies are built.
