file(REMOVE_RECURSE
  "CMakeFiles/fig2_long_latency.dir/fig2_long_latency.cc.o"
  "CMakeFiles/fig2_long_latency.dir/fig2_long_latency.cc.o.d"
  "fig2_long_latency"
  "fig2_long_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_long_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
