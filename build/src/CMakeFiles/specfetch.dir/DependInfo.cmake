
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/branch/btb.cc" "src/CMakeFiles/specfetch.dir/branch/btb.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/branch/btb.cc.o.d"
  "/root/repo/src/branch/pht.cc" "src/CMakeFiles/specfetch.dir/branch/pht.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/branch/pht.cc.o.d"
  "/root/repo/src/branch/predictor.cc" "src/CMakeFiles/specfetch.dir/branch/predictor.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/branch/predictor.cc.o.d"
  "/root/repo/src/branch/ras.cc" "src/CMakeFiles/specfetch.dir/branch/ras.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/branch/ras.cc.o.d"
  "/root/repo/src/cache/icache.cc" "src/CMakeFiles/specfetch.dir/cache/icache.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/cache/icache.cc.o.d"
  "/root/repo/src/cache/memory_hierarchy.cc" "src/CMakeFiles/specfetch.dir/cache/memory_hierarchy.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/cache/memory_hierarchy.cc.o.d"
  "/root/repo/src/cache/prefetch_unit.cc" "src/CMakeFiles/specfetch.dir/cache/prefetch_unit.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/cache/prefetch_unit.cc.o.d"
  "/root/repo/src/cache/prefetcher.cc" "src/CMakeFiles/specfetch.dir/cache/prefetcher.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/cache/prefetcher.cc.o.d"
  "/root/repo/src/cache/stream_buffer.cc" "src/CMakeFiles/specfetch.dir/cache/stream_buffer.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/cache/stream_buffer.cc.o.d"
  "/root/repo/src/cache/victim_cache.cc" "src/CMakeFiles/specfetch.dir/cache/victim_cache.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/cache/victim_cache.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/specfetch.dir/core/config.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/core/config.cc.o.d"
  "/root/repo/src/core/fetch_engine.cc" "src/CMakeFiles/specfetch.dir/core/fetch_engine.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/core/fetch_engine.cc.o.d"
  "/root/repo/src/core/miss_classifier.cc" "src/CMakeFiles/specfetch.dir/core/miss_classifier.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/core/miss_classifier.cc.o.d"
  "/root/repo/src/core/penalty.cc" "src/CMakeFiles/specfetch.dir/core/penalty.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/core/penalty.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/CMakeFiles/specfetch.dir/core/policy.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/core/policy.cc.o.d"
  "/root/repo/src/core/results.cc" "src/CMakeFiles/specfetch.dir/core/results.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/core/results.cc.o.d"
  "/root/repo/src/core/simulator.cc" "src/CMakeFiles/specfetch.dir/core/simulator.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/core/simulator.cc.o.d"
  "/root/repo/src/core/sweep.cc" "src/CMakeFiles/specfetch.dir/core/sweep.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/core/sweep.cc.o.d"
  "/root/repo/src/core/wrong_path_walker.cc" "src/CMakeFiles/specfetch.dir/core/wrong_path_walker.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/core/wrong_path_walker.cc.o.d"
  "/root/repo/src/isa/program_image.cc" "src/CMakeFiles/specfetch.dir/isa/program_image.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/isa/program_image.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/specfetch.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/stat_group.cc" "src/CMakeFiles/specfetch.dir/stats/stat_group.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/stats/stat_group.cc.o.d"
  "/root/repo/src/trace/format.cc" "src/CMakeFiles/specfetch.dir/trace/format.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/trace/format.cc.o.d"
  "/root/repo/src/trace/reader.cc" "src/CMakeFiles/specfetch.dir/trace/reader.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/trace/reader.cc.o.d"
  "/root/repo/src/trace/writer.cc" "src/CMakeFiles/specfetch.dir/trace/writer.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/trace/writer.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/specfetch.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/util/csv.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/specfetch.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/util/logging.cc.o.d"
  "/root/repo/src/util/options.cc" "src/CMakeFiles/specfetch.dir/util/options.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/util/options.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/specfetch.dir/util/random.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/util/random.cc.o.d"
  "/root/repo/src/util/string_utils.cc" "src/CMakeFiles/specfetch.dir/util/string_utils.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/util/string_utils.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/specfetch.dir/util/table.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/util/table.cc.o.d"
  "/root/repo/src/workload/cfg.cc" "src/CMakeFiles/specfetch.dir/workload/cfg.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/workload/cfg.cc.o.d"
  "/root/repo/src/workload/cfg_builder.cc" "src/CMakeFiles/specfetch.dir/workload/cfg_builder.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/workload/cfg_builder.cc.o.d"
  "/root/repo/src/workload/executor.cc" "src/CMakeFiles/specfetch.dir/workload/executor.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/workload/executor.cc.o.d"
  "/root/repo/src/workload/layout.cc" "src/CMakeFiles/specfetch.dir/workload/layout.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/workload/layout.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/CMakeFiles/specfetch.dir/workload/profile.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/workload/profile.cc.o.d"
  "/root/repo/src/workload/registry.cc" "src/CMakeFiles/specfetch.dir/workload/registry.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/workload/registry.cc.o.d"
  "/root/repo/src/workload/reorder.cc" "src/CMakeFiles/specfetch.dir/workload/reorder.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/workload/reorder.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/specfetch.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/specfetch.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
