# Empty dependencies file for specfetch.
# This may be replaced when dependencies are built.
