file(REMOVE_RECURSE
  "libspecfetch.a"
)
