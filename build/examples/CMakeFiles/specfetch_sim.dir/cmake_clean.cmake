file(REMOVE_RECURSE
  "CMakeFiles/specfetch_sim.dir/specfetch_sim.cpp.o"
  "CMakeFiles/specfetch_sim.dir/specfetch_sim.cpp.o.d"
  "specfetch_sim"
  "specfetch_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfetch_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
