# Empty dependencies file for specfetch_sim.
# This may be replaced when dependencies are built.
