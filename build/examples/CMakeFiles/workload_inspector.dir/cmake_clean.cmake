file(REMOVE_RECURSE
  "CMakeFiles/workload_inspector.dir/workload_inspector.cpp.o"
  "CMakeFiles/workload_inspector.dir/workload_inspector.cpp.o.d"
  "workload_inspector"
  "workload_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
