
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload/test_cfg.cc" "tests/CMakeFiles/test_workload.dir/workload/test_cfg.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_cfg.cc.o.d"
  "/root/repo/tests/workload/test_cfg_builder.cc" "tests/CMakeFiles/test_workload.dir/workload/test_cfg_builder.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_cfg_builder.cc.o.d"
  "/root/repo/tests/workload/test_executor.cc" "tests/CMakeFiles/test_workload.dir/workload/test_executor.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_executor.cc.o.d"
  "/root/repo/tests/workload/test_indirect_call.cc" "tests/CMakeFiles/test_workload.dir/workload/test_indirect_call.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_indirect_call.cc.o.d"
  "/root/repo/tests/workload/test_layout.cc" "tests/CMakeFiles/test_workload.dir/workload/test_layout.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_layout.cc.o.d"
  "/root/repo/tests/workload/test_profiles.cc" "tests/CMakeFiles/test_workload.dir/workload/test_profiles.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_profiles.cc.o.d"
  "/root/repo/tests/workload/test_reorder.cc" "tests/CMakeFiles/test_workload.dir/workload/test_reorder.cc.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload/test_reorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/specfetch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
