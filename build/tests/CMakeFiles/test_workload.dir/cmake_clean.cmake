file(REMOVE_RECURSE
  "CMakeFiles/test_workload.dir/workload/test_cfg.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_cfg.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_cfg_builder.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_cfg_builder.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_executor.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_executor.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_indirect_call.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_indirect_call.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_layout.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_layout.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_profiles.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_profiles.cc.o.d"
  "CMakeFiles/test_workload.dir/workload/test_reorder.cc.o"
  "CMakeFiles/test_workload.dir/workload/test_reorder.cc.o.d"
  "test_workload"
  "test_workload.pdb"
  "test_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
