file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/test_bit_ops.cc.o"
  "CMakeFiles/test_util.dir/util/test_bit_ops.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_csv.cc.o"
  "CMakeFiles/test_util.dir/util/test_csv.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_logging.cc.o"
  "CMakeFiles/test_util.dir/util/test_logging.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_options.cc.o"
  "CMakeFiles/test_util.dir/util/test_options.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_random.cc.o"
  "CMakeFiles/test_util.dir/util/test_random.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_sat_counter.cc.o"
  "CMakeFiles/test_util.dir/util/test_sat_counter.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_string_utils.cc.o"
  "CMakeFiles/test_util.dir/util/test_string_utils.cc.o.d"
  "CMakeFiles/test_util.dir/util/test_table.cc.o"
  "CMakeFiles/test_util.dir/util/test_table.cc.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
