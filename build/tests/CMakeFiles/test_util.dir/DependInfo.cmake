
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_bit_ops.cc" "tests/CMakeFiles/test_util.dir/util/test_bit_ops.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_bit_ops.cc.o.d"
  "/root/repo/tests/util/test_csv.cc" "tests/CMakeFiles/test_util.dir/util/test_csv.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_csv.cc.o.d"
  "/root/repo/tests/util/test_logging.cc" "tests/CMakeFiles/test_util.dir/util/test_logging.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_logging.cc.o.d"
  "/root/repo/tests/util/test_options.cc" "tests/CMakeFiles/test_util.dir/util/test_options.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_options.cc.o.d"
  "/root/repo/tests/util/test_random.cc" "tests/CMakeFiles/test_util.dir/util/test_random.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_random.cc.o.d"
  "/root/repo/tests/util/test_sat_counter.cc" "tests/CMakeFiles/test_util.dir/util/test_sat_counter.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_sat_counter.cc.o.d"
  "/root/repo/tests/util/test_string_utils.cc" "tests/CMakeFiles/test_util.dir/util/test_string_utils.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_string_utils.cc.o.d"
  "/root/repo/tests/util/test_table.cc" "tests/CMakeFiles/test_util.dir/util/test_table.cc.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/specfetch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
