file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_branch_unit.cc.o"
  "CMakeFiles/test_core.dir/core/test_branch_unit.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_config.cc.o"
  "CMakeFiles/test_core.dir/core/test_config.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_fetch_engine.cc.o"
  "CMakeFiles/test_core.dir/core/test_fetch_engine.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_miss_classifier.cc.o"
  "CMakeFiles/test_core.dir/core/test_miss_classifier.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_penalty.cc.o"
  "CMakeFiles/test_core.dir/core/test_penalty.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_policy.cc.o"
  "CMakeFiles/test_core.dir/core/test_policy.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_policy_scenarios.cc.o"
  "CMakeFiles/test_core.dir/core/test_policy_scenarios.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_prefetch_engine.cc.o"
  "CMakeFiles/test_core.dir/core/test_prefetch_engine.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_walker_edge_cases.cc.o"
  "CMakeFiles/test_core.dir/core/test_walker_edge_cases.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
