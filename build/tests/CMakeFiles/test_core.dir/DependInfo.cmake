
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_branch_unit.cc" "tests/CMakeFiles/test_core.dir/core/test_branch_unit.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_branch_unit.cc.o.d"
  "/root/repo/tests/core/test_config.cc" "tests/CMakeFiles/test_core.dir/core/test_config.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_config.cc.o.d"
  "/root/repo/tests/core/test_fetch_engine.cc" "tests/CMakeFiles/test_core.dir/core/test_fetch_engine.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_fetch_engine.cc.o.d"
  "/root/repo/tests/core/test_miss_classifier.cc" "tests/CMakeFiles/test_core.dir/core/test_miss_classifier.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_miss_classifier.cc.o.d"
  "/root/repo/tests/core/test_penalty.cc" "tests/CMakeFiles/test_core.dir/core/test_penalty.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_penalty.cc.o.d"
  "/root/repo/tests/core/test_policy.cc" "tests/CMakeFiles/test_core.dir/core/test_policy.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_policy.cc.o.d"
  "/root/repo/tests/core/test_policy_scenarios.cc" "tests/CMakeFiles/test_core.dir/core/test_policy_scenarios.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_policy_scenarios.cc.o.d"
  "/root/repo/tests/core/test_prefetch_engine.cc" "tests/CMakeFiles/test_core.dir/core/test_prefetch_engine.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_prefetch_engine.cc.o.d"
  "/root/repo/tests/core/test_walker_edge_cases.cc" "tests/CMakeFiles/test_core.dir/core/test_walker_edge_cases.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_walker_edge_cases.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/specfetch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
