file(REMOVE_RECURSE
  "CMakeFiles/test_branch.dir/branch/test_btb.cc.o"
  "CMakeFiles/test_branch.dir/branch/test_btb.cc.o.d"
  "CMakeFiles/test_branch.dir/branch/test_pht.cc.o"
  "CMakeFiles/test_branch.dir/branch/test_pht.cc.o.d"
  "CMakeFiles/test_branch.dir/branch/test_predictor.cc.o"
  "CMakeFiles/test_branch.dir/branch/test_predictor.cc.o.d"
  "CMakeFiles/test_branch.dir/branch/test_ras.cc.o"
  "CMakeFiles/test_branch.dir/branch/test_ras.cc.o.d"
  "test_branch"
  "test_branch.pdb"
  "test_branch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
