
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/test_bus.cc" "tests/CMakeFiles/test_cache.dir/cache/test_bus.cc.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/test_bus.cc.o.d"
  "/root/repo/tests/cache/test_icache.cc" "tests/CMakeFiles/test_cache.dir/cache/test_icache.cc.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/test_icache.cc.o.d"
  "/root/repo/tests/cache/test_line_buffer.cc" "tests/CMakeFiles/test_cache.dir/cache/test_line_buffer.cc.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/test_line_buffer.cc.o.d"
  "/root/repo/tests/cache/test_memory_hierarchy.cc" "tests/CMakeFiles/test_cache.dir/cache/test_memory_hierarchy.cc.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/test_memory_hierarchy.cc.o.d"
  "/root/repo/tests/cache/test_prefetcher.cc" "tests/CMakeFiles/test_cache.dir/cache/test_prefetcher.cc.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/test_prefetcher.cc.o.d"
  "/root/repo/tests/cache/test_stream_buffer.cc" "tests/CMakeFiles/test_cache.dir/cache/test_stream_buffer.cc.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/test_stream_buffer.cc.o.d"
  "/root/repo/tests/cache/test_target_prefetcher.cc" "tests/CMakeFiles/test_cache.dir/cache/test_target_prefetcher.cc.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/test_target_prefetcher.cc.o.d"
  "/root/repo/tests/cache/test_victim_cache.cc" "tests/CMakeFiles/test_cache.dir/cache/test_victim_cache.cc.o" "gcc" "tests/CMakeFiles/test_cache.dir/cache/test_victim_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/specfetch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
