file(REMOVE_RECURSE
  "CMakeFiles/test_cache.dir/cache/test_bus.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_bus.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_icache.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_icache.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_line_buffer.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_line_buffer.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_memory_hierarchy.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_memory_hierarchy.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_prefetcher.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_prefetcher.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_stream_buffer.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_stream_buffer.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_target_prefetcher.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_target_prefetcher.cc.o.d"
  "CMakeFiles/test_cache.dir/cache/test_victim_cache.cc.o"
  "CMakeFiles/test_cache.dir/cache/test_victim_cache.cc.o.d"
  "test_cache"
  "test_cache.pdb"
  "test_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
