# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_branch[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--benchmark=li" "--budget=50K")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;88;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_policy_explorer "/root/repo/build/examples/policy_explorer" "--benchmark=li" "--axis=depth" "--budget=50K")
set_tests_properties(example_policy_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;90;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload" "--budget=50K")
set_tests_properties(example_custom_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;92;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_prefetch_study "/root/repo/build/examples/prefetch_study" "--benchmark=li" "--budget=50K")
set_tests_properties(example_prefetch_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;94;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_workload_inspector "/root/repo/build/examples/workload_inspector" "--benchmark=li" "--budget=50K")
set_tests_properties(example_workload_inspector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;96;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_specfetch_sim "/root/repo/build/examples/specfetch_sim" "--benchmark=li" "--budget=50K" "--l2" "--victim=4" "--prefetch-kind=combined" "--stats")
set_tests_properties(example_specfetch_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;98;add_test;/root/repo/tests/CMakeLists.txt;0;")
