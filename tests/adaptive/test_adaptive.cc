/**
 * @file
 * Unit tests for the adaptive policy-selection subsystem (DESIGN.md
 * §12): selector kind parsing, the three selector implementations,
 * the engine's epoch-aligned decision point and its choice log, the
 * per-interval Oracle bound with its regret math, the `adaptive`
 * record schema, the conditional run-manifest members, and the
 * adaptive-epoch-tiling invariant.
 */

#include <gtest/gtest.h>

#include <set>

#include "adaptive/adaptive_record.hh"
#include "adaptive/oracle.hh"
#include "adaptive/selector.hh"
#include "check/invariant.hh"
#include "core/simulator.hh"
#include "report/record.hh"
#include "workload/registry.hh"
#include "workload/workload.hh"

using namespace specfetch;

namespace {

/** Synthetic closed epoch with the given selector signals. */
EpochRecord
epochWith(double miss_rate_percent, double branch_density,
          uint64_t instructions = 10'000)
{
    EpochRecord epoch;
    epoch.firstInstruction = 0;
    epoch.lastInstruction = instructions;
    epoch.demandMisses = static_cast<uint64_t>(
        miss_rate_percent / 100.0 * static_cast<double>(instructions));
    epoch.controlInsts = static_cast<uint64_t>(
        branch_density * static_cast<double>(instructions));
    return epoch;
}

/** Synthetic epoch with only a total penalty (oracle-bound tests). */
EpochRecord
penaltyEpoch(uint64_t index, uint64_t penalty_slots,
             uint64_t instructions = 100)
{
    EpochRecord epoch;
    epoch.epoch = index;
    epoch.firstInstruction = index * instructions;
    epoch.lastInstruction = (index + 1) * instructions;
    epoch.penaltySlots[0] = penalty_slots;
    return epoch;
}

const JsonValue &
member(const JsonValue &object, const std::string &key)
{
    const JsonValue *value = object.find(key);
    EXPECT_NE(value, nullptr) << "missing member: " << key;
    static JsonValue fallback;
    return value ? *value : fallback;
}

/** Adaptive run on a real workload; returns (results, observations). */
SimResults
runAdaptive(const std::string &benchmark, SelectorKind kind,
            uint64_t budget, uint64_t interval, RunObservations &obs)
{
    SimConfig config;
    config.instructionBudget = budget;
    config.adaptiveSelector = kind;
    config.adaptiveInterval = interval;
    return runSimulation(*sharedWorkload(benchmark), config, obs);
}

} // namespace

TEST(SelectorKind, ParseAcceptsEveryKindCaseInsensitively)
{
    SelectorKind kind = SelectorKind::Off;
    EXPECT_TRUE(parseSelectorKind("static", kind));
    EXPECT_EQ(kind, SelectorKind::Static);
    EXPECT_TRUE(parseSelectorKind("Threshold", kind));
    EXPECT_EQ(kind, SelectorKind::Threshold);
    EXPECT_TRUE(parseSelectorKind("BANDIT", kind));
    EXPECT_EQ(kind, SelectorKind::Bandit);
    EXPECT_TRUE(parseSelectorKind("off", kind));
    EXPECT_EQ(kind, SelectorKind::Off);
    EXPECT_TRUE(parseSelectorKind("none", kind));
    EXPECT_EQ(kind, SelectorKind::Off);
    EXPECT_FALSE(parseSelectorKind("greedy", kind));
}

TEST(SelectorKind, ToStringRoundTripsThroughParse)
{
    for (SelectorKind kind :
         {SelectorKind::Off, SelectorKind::Static, SelectorKind::Threshold,
          SelectorKind::Bandit}) {
        SelectorKind parsed = SelectorKind::Static;
        ASSERT_TRUE(parseSelectorKind(toString(kind), parsed))
            << toString(kind);
        EXPECT_EQ(parsed, kind);
    }
}

TEST(StaticSelector, AlwaysReSelectsTheBasePolicy)
{
    StaticSelector selector(FetchPolicy::Pessimistic);
    EXPECT_EQ(selector.name(), "static");
    for (double rate : {0.0, 1.0, 50.0}) {
        EXPECT_EQ(selector.nextPolicy(epochWith(rate, 0.3),
                                      FetchPolicy::Oracle),
                  FetchPolicy::Pessimistic);
    }
}

TEST(ThresholdSelector, DefaultTableBandsOnMissRateAndDensity)
{
    ThresholdSelector selector;
    double sparse = 0.05, dense = 0.30;   // split is 0.10

    // Low and middle bands: Resume is the consistent static winner.
    EXPECT_EQ(selector.nextPolicy(epochWith(0.1, sparse),
                                  FetchPolicy::Resume),
              FetchPolicy::Resume);
    EXPECT_EQ(selector.nextPolicy(epochWith(0.1, dense),
                                  FetchPolicy::Resume),
              FetchPolicy::Resume);
    EXPECT_EQ(selector.nextPolicy(epochWith(3.0, sparse),
                                  FetchPolicy::Resume),
              FetchPolicy::Resume);

    // Miss-heavy band: only sparse-branch regions step up to the
    // Oracle bound one band early.
    EXPECT_EQ(selector.nextPolicy(epochWith(6.0, sparse),
                                  FetchPolicy::Resume),
              FetchPolicy::Oracle);
    EXPECT_EQ(selector.nextPolicy(epochWith(6.0, dense),
                                  FetchPolicy::Resume),
              FetchPolicy::Resume);

    // Catch-all row: the last rule's bound is ignored.
    EXPECT_EQ(selector.nextPolicy(epochWith(10.0, sparse),
                                  FetchPolicy::Resume),
              FetchPolicy::Oracle);
    EXPECT_EQ(selector.nextPolicy(epochWith(10.0, dense),
                                  FetchPolicy::Resume),
              FetchPolicy::Oracle);
}

TEST(ThresholdSelector, CustomTableAndAccessors)
{
    std::vector<ThresholdRule> table{
        {1.0, FetchPolicy::Decode, FetchPolicy::Pessimistic},
        {0.0, FetchPolicy::Resume, FetchPolicy::Oracle},
    };
    ThresholdSelector selector(table, 0.5);
    EXPECT_EQ(selector.table().size(), 2u);
    EXPECT_EQ(selector.densitySplit(), 0.5);
    EXPECT_EQ(selector.nextPolicy(epochWith(0.5, 0.1),
                                  FetchPolicy::Resume),
              FetchPolicy::Decode);
    EXPECT_EQ(selector.nextPolicy(epochWith(0.5, 0.6),
                                  FetchPolicy::Resume),
              FetchPolicy::Pessimistic);
    EXPECT_EQ(selector.nextPolicy(epochWith(5.0, 0.1),
                                  FetchPolicy::Resume),
              FetchPolicy::Resume);
}

TEST(ThresholdSelectorDeathTest, EmptyTablePanics)
{
    EXPECT_DEATH(ThresholdSelector({}, 0.2), "at least one rule");
}

TEST(Bandit, GreedySticksWithTheIncumbentUntilEvidence)
{
    // No forced warm start: with epsilon 0 the only observed arm is
    // the incumbent, unobserved arms are never picked greedily, so
    // the bandit is indistinguishable from the static run.
    EpsilonGreedyBandit bandit(1, 0.0);
    FetchPolicy current = FetchPolicy::Resume;
    for (int i = 0; i < 30; ++i) {
        current = bandit.nextPolicy(epochWith(0.5 + 0.3 * i, 0.2),
                                    current);
        ASSERT_EQ(current, FetchPolicy::Resume) << "decision " << i;
    }
    EXPECT_EQ(bandit.pulls(FetchPolicy::Resume), 30u);
    EXPECT_EQ(bandit.pulls(FetchPolicy::Oracle), 0u);
}

TEST(Bandit, ContextBucketsFollowTheMissRateEdges)
{
    // Default edges {1.0, 4.0} give three miss-rate buckets.
    EpsilonGreedyBandit bandit(1);
    EXPECT_EQ(bandit.contextOf(0.0), 0u);
    EXPECT_EQ(bandit.contextOf(0.99), 0u);
    EXPECT_EQ(bandit.contextOf(1.0), 1u);
    EXPECT_EQ(bandit.contextOf(3.9), 1u);
    EXPECT_EQ(bandit.contextOf(4.0), 2u);
    EXPECT_EQ(bandit.contextOf(50.0), 2u);

    EpsilonGreedyBandit custom(1, 0.1, {}, 0.5, {2.5});
    EXPECT_EQ(custom.contextOf(2.4), 0u);
    EXPECT_EQ(custom.contextOf(2.5), 1u);
}

TEST(Bandit, ExplorationReachesUnseenArms)
{
    // epsilon 1: every decision is a uniform draw over the arms, so
    // a short run visits more than the incumbent.
    EpsilonGreedyBandit bandit(3, 1.0);
    FetchPolicy current = FetchPolicy::Resume;
    std::set<FetchPolicy> visited;
    for (int i = 0; i < 40; ++i) {
        current = bandit.nextPolicy(epochWith(1.0, 0.2), current);
        visited.insert(current);
    }
    EXPECT_GE(visited.size(), 3u);
    uint64_t total = 0;
    for (FetchPolicy arm : allPolicies())
        total += bandit.pulls(arm);
    EXPECT_EQ(total, 40u);
}

TEST(Bandit, SameSeedMakesIdenticalChoices)
{
    EpsilonGreedyBandit a(7, 0.3), b(7, 0.3);
    FetchPolicy cur_a = FetchPolicy::Resume, cur_b = FetchPolicy::Resume;
    for (int i = 0; i < 40; ++i) {
        EpochRecord closed = epochWith(0.5 + 0.1 * (i % 7), 0.25);
        cur_a = a.nextPolicy(closed, cur_a);
        cur_b = b.nextPolicy(closed, cur_b);
        ASSERT_EQ(cur_a, cur_b) << "diverged at decision " << i;
    }
}

TEST(Bandit, ResetRestoresTheInitialState)
{
    EpsilonGreedyBandit bandit(11, 0.5);
    auto play = [&] {
        FetchPolicy current = FetchPolicy::Resume;
        std::vector<FetchPolicy> chosen;
        for (int i = 0; i < 20; ++i) {
            current = bandit.nextPolicy(epochWith(1.0 + i * 0.2, 0.25),
                                        current);
            chosen.push_back(current);
        }
        return chosen;
    };
    std::vector<FetchPolicy> first = play();
    bandit.reset();
    EXPECT_EQ(play(), first);
}

TEST(Bandit, SwitchesOnlyOnStrictlyBetterObservedValue)
{
    // epsilon 0 isolates the greedy rule; the caller reports which
    // arm governed each closed epoch (as the engine does after an
    // exploration step), all epochs in the same miss-rate bucket.
    EpsilonGreedyBandit bandit(1, 0.0, {FetchPolicy::Oracle,
                                        FetchPolicy::Resume});
    auto epoch = [](uint64_t penalty_slots) {
        EpochRecord closed = epochWith(2.0, 0.2);
        closed.penaltySlots[0] = penalty_slots;
        return closed;
    };

    // Resume's first epoch is expensive; Oracle's (seen via a
    // supposed exploration pull) is cheap — greedy moves to Oracle.
    EXPECT_EQ(bandit.nextPolicy(epoch(5'000), FetchPolicy::Resume),
              FetchPolicy::Resume);
    EXPECT_EQ(bandit.nextPolicy(epoch(100), FetchPolicy::Oracle),
              FetchPolicy::Oracle);
    // And a later bad Resume epoch does not shake the choice.
    EXPECT_EQ(bandit.nextPolicy(epoch(5'000), FetchPolicy::Resume),
              FetchPolicy::Oracle);
    EXPECT_EQ(bandit.pulls(FetchPolicy::Resume), 2u);
    EXPECT_EQ(bandit.pulls(FetchPolicy::Oracle), 1u);
}

TEST(Bandit, TiesKeepTheIncumbent)
{
    // Identical rewards for both arms: switching needs strict
    // evidence, so the incumbent wins the tie (hysteresis).
    EpsilonGreedyBandit bandit(1, 0.0, {FetchPolicy::Oracle,
                                        FetchPolicy::Resume});
    auto epoch = [] {
        EpochRecord closed = epochWith(2.0, 0.2);
        closed.penaltySlots[0] = 300;
        return closed;
    };
    EXPECT_EQ(bandit.nextPolicy(epoch(), FetchPolicy::Resume),
              FetchPolicy::Resume);
    EXPECT_EQ(bandit.nextPolicy(epoch(), FetchPolicy::Oracle),
              FetchPolicy::Oracle);
    EXPECT_EQ(bandit.nextPolicy(epoch(), FetchPolicy::Resume),
              FetchPolicy::Resume);
}

TEST(Bandit, RecencyWeightingForgetsAColdStart)
{
    // alpha 1 keeps only the last reward: a terrible first Resume
    // epoch (cold caches) is fully forgotten once a later epoch is
    // cheap, so greedy returns to Resume over a mediocre Oracle.
    EpsilonGreedyBandit bandit(1, 0.0,
                               {FetchPolicy::Oracle, FetchPolicy::Resume},
                               1.0);
    auto epoch = [](uint64_t penalty_slots) {
        EpochRecord closed = epochWith(2.0, 0.2);
        closed.penaltySlots[0] = penalty_slots;
        return closed;
    };
    EXPECT_EQ(bandit.nextPolicy(epoch(9'000), FetchPolicy::Resume),
              FetchPolicy::Resume);
    EXPECT_EQ(bandit.nextPolicy(epoch(500), FetchPolicy::Oracle),
              FetchPolicy::Oracle);
    // Resume's fresh epoch is now the cheapest observation.
    EXPECT_EQ(bandit.nextPolicy(epoch(100), FetchPolicy::Resume),
              FetchPolicy::Resume);
    EXPECT_EQ(bandit.nextPolicy(epoch(500), FetchPolicy::Resume),
              FetchPolicy::Resume);
}

TEST(BanditDeathTest, ConstructorRejectsBadKnobs)
{
    EXPECT_DEATH(EpsilonGreedyBandit(1, 1.5), "epsilon");
    EXPECT_DEATH(EpsilonGreedyBandit(1, 0.1, {}, 0.0), "step size");
    EXPECT_DEATH(EpsilonGreedyBandit(1, 0.1, {}, 0.5, {4.0, 1.0}),
                 "ascending");
}

TEST(MakeSelector, BuildsTheConfiguredKind)
{
    SimConfig config;
    config.policy = FetchPolicy::Pessimistic;
    config.adaptiveSelector = SelectorKind::Static;
    EXPECT_EQ(makeSelector(config)->name(), "static");
    config.adaptiveSelector = SelectorKind::Threshold;
    EXPECT_EQ(makeSelector(config)->name(), "threshold");
    config.adaptiveSelector = SelectorKind::Bandit;
    EXPECT_EQ(makeSelector(config)->name(), "bandit");
}

TEST(MakeSelectorDeathTest, OffPanics)
{
    SimConfig config;
    EXPECT_DEATH(makeSelector(config), "off");
}

TEST(AdaptiveConfig, DescribeNamesTheArmedSelector)
{
    SimConfig config;
    EXPECT_EQ(config.describe().find("adaptive"), std::string::npos);
    config.adaptiveSelector = SelectorKind::Bandit;
    config.adaptiveInterval = 25'000;
    EXPECT_NE(config.describe().find("adaptive bandit"),
              std::string::npos);
    EXPECT_NE(config.describe().find("25000"), std::string::npos);
}

TEST(AdaptiveConfigDeathTest, ValidateRejectsBadKnobs)
{
    SimConfig config;
    config.adaptiveSelector = SelectorKind::Threshold;
    config.adaptiveInterval = 0;
    EXPECT_DEATH(config.validate(), "adaptive");
    config.adaptiveInterval = 10'000;
    config.adaptiveEpsilon = -0.5;
    EXPECT_DEATH(config.validate(), "epsilon");
}

TEST(RunManifest, AdaptiveMembersAreConditional)
{
    SimResults results;
    results.workload = "li";
    SimConfig config;

    // Off: byte-for-byte the pre-adaptive manifest (golden stability).
    JsonValue off = makeRunRecord(results, config);
    EXPECT_EQ(member(off, "config").find("adaptive_selector"), nullptr);
    EXPECT_EQ(member(off, "config").find("adaptive_seed"), nullptr);

    config.adaptiveSelector = SelectorKind::Threshold;
    config.adaptiveInterval = 20'000;
    JsonValue threshold = makeRunRecord(results, config);
    EXPECT_EQ(member(member(threshold, "config"), "adaptive_selector")
                  .asString(),
              "threshold");
    EXPECT_EQ(member(member(threshold, "config"), "adaptive_interval")
                  .asUint(),
              20'000u);
    // Seed/epsilon matter only to the bandit.
    EXPECT_EQ(member(threshold, "config").find("adaptive_seed"), nullptr);

    config.adaptiveSelector = SelectorKind::Bandit;
    JsonValue bandit = makeRunRecord(results, config);
    EXPECT_NE(member(bandit, "config").find("adaptive_seed"), nullptr);
    EXPECT_NE(member(bandit, "config").find("adaptive_epsilon"), nullptr);
}

TEST(Engine, StaticSelectorIsBitExactWithTheStaticRun)
{
    for (FetchPolicy policy :
         {FetchPolicy::Optimistic, FetchPolicy::Resume}) {
        SimConfig config;
        config.policy = policy;
        config.instructionBudget = 60'000;
        SimResults plain = runSimulation(*sharedWorkload("li"), config);

        config.adaptiveSelector = SelectorKind::Static;
        config.adaptiveInterval = 10'000;
        RunObservations obs;
        SimResults adaptive =
            runSimulation(*sharedWorkload("li"), config, obs);

        EXPECT_TRUE(plain == adaptive) << toString(policy);
        EXPECT_EQ(obs.adaptive.choices.size(), 6u);
        EXPECT_EQ(obs.adaptive.switches, 0u);
        for (const AdaptiveChoice &choice : obs.adaptive.choices)
            EXPECT_EQ(choice.policy, policy);
    }
}

TEST(Engine, ChoiceLogTilesTheRunExactly)
{
    RunObservations obs;
    SimResults results = runAdaptive("li", SelectorKind::Threshold,
                                     120'000, 50'000, obs);
    const AdaptiveLog &log = obs.adaptive;
    ASSERT_TRUE(log.enabled());
    ASSERT_EQ(log.choices.size(), 3u);
    EXPECT_EQ(log.interval, 50'000u);
    EXPECT_EQ(log.basePolicy, FetchPolicy::Resume);
    uint64_t expected_first = 0;
    for (size_t i = 0; i < log.choices.size(); ++i) {
        EXPECT_EQ(log.choices[i].epoch, i);
        EXPECT_EQ(log.choices[i].firstInstruction, expected_first);
        expected_first = log.choices[i].lastInstruction;
    }
    EXPECT_EQ(expected_first, results.instructions);
    EXPECT_EQ(log.choices.back().lastInstruction, 120'000u);
}

TEST(Engine, BudgetMultipleOfIntervalLogsNoPhantomEpoch)
{
    RunObservations obs;
    SimResults results = runAdaptive("li", SelectorKind::Threshold,
                                     100'000, 50'000, obs);
    EXPECT_EQ(results.instructions, 100'000u);
    ASSERT_EQ(obs.adaptive.choices.size(), 2u);
    EXPECT_EQ(obs.adaptive.choices.back().lastInstruction, 100'000u);
}

TEST(Engine, BanditRunIsDeterministicAcrossInvocations)
{
    RunObservations obs_a, obs_b;
    SimResults a = runAdaptive("gcc", SelectorKind::Bandit, 150'000,
                               10'000, obs_a);
    SimResults b = runAdaptive("gcc", SelectorKind::Bandit, 150'000,
                               10'000, obs_b);
    EXPECT_TRUE(a == b);
    ASSERT_EQ(obs_a.adaptive.choices.size(),
              obs_b.adaptive.choices.size());
    for (size_t i = 0; i < obs_a.adaptive.choices.size(); ++i) {
        EXPECT_EQ(obs_a.adaptive.choices[i].policy,
                  obs_b.adaptive.choices[i].policy);
    }
    EXPECT_EQ(obs_a.adaptive.switches, obs_b.adaptive.switches);
}

TEST(Engine, AdaptiveRunPassesTheCheapAudit)
{
    // The engine's own end-of-run audit (incl. adaptive-epoch-tiling)
    // panics on violation, so surviving the run is the assertion.
    SimConfig config;
    config.instructionBudget = 120'000;
    config.adaptiveSelector = SelectorKind::Bandit;
    config.adaptiveInterval = 10'000;
    config.checkLevel = CheckLevel::Cheap;
    SimResults results = runSimulation(*sharedWorkload("li"), config);
    EXPECT_EQ(results.instructions, 120'000u);
}

TEST(Oracle, BuildTakesThePerEpochMinimum)
{
    std::vector<FetchPolicy> policies{FetchPolicy::Oracle,
                                      FetchPolicy::Resume};
    std::vector<std::vector<EpochRecord>> epochs{
        {penaltyEpoch(0, 100), penaltyEpoch(1, 200)},
        {penaltyEpoch(0, 150), penaltyEpoch(1, 50)},
    };
    PerIntervalOracle oracle = buildPerIntervalOracle(
        policies, epochs, {1.5, 1.0}, 100);

    EXPECT_EQ(oracle.instructions, 200u);
    ASSERT_EQ(oracle.bestPolicy.size(), 2u);
    EXPECT_EQ(oracle.bestPolicy[0], FetchPolicy::Oracle);
    EXPECT_EQ(oracle.bestPolicy[1], FetchPolicy::Resume);
    EXPECT_EQ(oracle.bestPenaltySlots[0], 100u);
    EXPECT_EQ(oracle.bestPenaltySlots[1], 50u);
    EXPECT_DOUBLE_EQ(oracle.oracleIspi, 150.0 / 200.0);
    EXPECT_EQ(oracle.bestStaticIndex(), 1u);
    EXPECT_EQ(oracle.bestStaticPolicy(), FetchPolicy::Resume);
    EXPECT_DOUBLE_EQ(oracle.bestStaticIspi(), 1.0);
}

TEST(Oracle, TiesBreakTowardPresentationOrder)
{
    std::vector<FetchPolicy> policies{FetchPolicy::Oracle,
                                      FetchPolicy::Resume};
    std::vector<std::vector<EpochRecord>> epochs{
        {penaltyEpoch(0, 100)},
        {penaltyEpoch(0, 100)},
    };
    PerIntervalOracle oracle =
        buildPerIntervalOracle(policies, epochs, {1.0, 1.0}, 100);
    EXPECT_EQ(oracle.bestPolicy[0], FetchPolicy::Oracle);
    EXPECT_EQ(oracle.bestStaticPolicy(), FetchPolicy::Oracle);
}

TEST(OracleDeathTest, MisalignedEpochGridsPanic)
{
    std::vector<FetchPolicy> policies{FetchPolicy::Oracle,
                                      FetchPolicy::Resume};
    std::vector<std::vector<EpochRecord>> short_epochs{
        {penaltyEpoch(0, 100), penaltyEpoch(1, 100)},
        {penaltyEpoch(0, 100)},
    };
    EXPECT_DEATH(buildPerIntervalOracle(policies, short_epochs,
                                        {1.0, 1.0}, 100),
                 "epoch");
}

TEST(Oracle, RegretMathFoldsAgainstTheBound)
{
    PerIntervalOracle oracle;
    oracle.policies = {FetchPolicy::Oracle, FetchPolicy::Resume};
    oracle.staticIspi = {1.0, 1.2};
    oracle.oracleIspi = 0.5;

    AdaptiveRegret regret = computeRegret(0.8, oracle);
    EXPECT_DOUBLE_EQ(regret.adaptiveIspi, 0.8);
    EXPECT_DOUBLE_EQ(regret.bestStaticIspi, 1.0);
    EXPECT_EQ(regret.bestStaticPolicy, FetchPolicy::Oracle);
    EXPECT_DOUBLE_EQ(regret.regret, 0.8 - 0.5);
    EXPECT_DOUBLE_EQ(regret.gapClosed, (1.0 - 0.8) / (1.0 - 0.5));

    // Degenerate gap: the bound equals the best static policy.
    oracle.oracleIspi = 1.0;
    EXPECT_DOUBLE_EQ(computeRegret(0.9, oracle).gapClosed, 1.0);
    EXPECT_DOUBLE_EQ(computeRegret(1.1, oracle).gapClosed, 0.0);
}

TEST(Oracle, DominatesEveryStaticPolicyOnARealWorkload)
{
    SimConfig base;
    base.instructionBudget = 100'000;
    PerIntervalOracle oracle =
        computePerIntervalOracle(*sharedWorkload("li"), base, 20'000);

    ASSERT_EQ(oracle.policies.size(), allPolicies().size());
    ASSERT_EQ(oracle.bestPolicy.size(), 5u);
    for (double static_ispi : oracle.staticIspi)
        EXPECT_LE(oracle.oracleIspi, static_ispi + 1e-12);
    // Epoch by epoch the bound is the minimum over the candidates.
    for (size_t e = 0; e < oracle.bestPolicy.size(); ++e) {
        for (size_t p = 0; p < oracle.policies.size(); ++p) {
            uint64_t total = 0;
            for (uint64_t slots : oracle.epochs[p][e].penaltySlots)
                total += slots;
            EXPECT_LE(oracle.bestPenaltySlots[e], total);
        }
    }
}

TEST(AdaptiveRecord, SchemaCarriesChoicesAndOptionalRegret)
{
    RunObservations obs;
    SimResults results = runAdaptive("li", SelectorKind::Threshold,
                                     60'000, 20'000, obs);
    SimConfig config;
    config.instructionBudget = 60'000;
    config.adaptiveSelector = SelectorKind::Threshold;
    config.adaptiveInterval = 20'000;

    JsonValue record = makeAdaptiveRecord(obs.adaptive, results, config);
    EXPECT_EQ(member(record, "record").asString(), "adaptive");
    EXPECT_EQ(member(record, "selector").asString(), "threshold");
    EXPECT_EQ(member(record, "adaptive_interval").asUint(), 20'000u);
    EXPECT_EQ(member(record, "epochs").asUint(), 3u);
    EXPECT_EQ(member(record, "workload").asString(), "li");
    EXPECT_EQ(record.find("regret"), nullptr);
    const JsonValue &choices = member(record, "choices");
    ASSERT_EQ(choices.size(), 3u);
    EXPECT_EQ(member(choices.at(0), "first_instruction").asUint(), 0u);
    EXPECT_EQ(member(choices.at(2), "last_instruction").asUint(),
              60'000u);

    AdaptiveRegret regret;
    regret.adaptiveIspi = results.ispi();
    regret.bestStaticIspi = 1.0;
    regret.oracleIspi = 0.5;
    regret.regret = regret.adaptiveIspi - 0.5;
    regret.gapClosed = 0.25;
    JsonValue with_regret =
        makeAdaptiveRecord(obs.adaptive, results, config, &regret);
    const JsonValue &block = member(with_regret, "regret");
    EXPECT_DOUBLE_EQ(member(block, "gap_closed").asDouble(), 0.25);
    EXPECT_EQ(member(block, "best_static_policy").asString(), "Resume");
}

TEST(Invariant, AdaptiveEpochTilingAcceptsAWellFormedLog)
{
    AdaptiveLog log;
    log.interval = 100;
    log.basePolicy = FetchPolicy::Resume;
    log.choices = {
        {0, FetchPolicy::Resume, 0, 100},
        {1, FetchPolicy::Optimistic, 100, 200},
        {2, FetchPolicy::Optimistic, 200, 250},
    };
    log.switches = 1;
    SimResults stats;
    stats.instructions = 250;

    AuditContext ctx;
    ctx.stats = &stats;
    ctx.adaptiveLog = &log;
    ctx.endOfRun = true;
    InvariantAuditor auditor =
        InvariantAuditor::standard(CheckLevel::Cheap);
    auditor.runChecks(ctx);
    for (const InvariantViolation &violation : auditor.violations())
        EXPECT_NE(violation.invariant, "adaptive-epoch-tiling")
            << violation.detail;
}

TEST(Invariant, AdaptiveEpochTilingFlagsEveryDefectKind)
{
    SimResults stats;
    stats.instructions = 300;
    auto violations = [&stats](const AdaptiveLog &log) {
        AuditContext ctx;
        ctx.stats = &stats;
        ctx.adaptiveLog = &log;
        ctx.endOfRun = true;
        InvariantAuditor auditor =
            InvariantAuditor::standard(CheckLevel::Cheap);
        auditor.runChecks(ctx);
        size_t count = 0;
        for (const InvariantViolation &violation : auditor.violations())
            count += violation.invariant == "adaptive-epoch-tiling";
        return count;
    };

    AdaptiveLog good;
    good.interval = 100;
    good.choices = {{0, FetchPolicy::Resume, 0, 100},
                    {1, FetchPolicy::Resume, 100, 200},
                    {2, FetchPolicy::Resume, 200, 300}};
    good.switches = 0;
    EXPECT_EQ(violations(good), 0u);

    AdaptiveLog gapped = good;
    gapped.choices[1].firstInstruction = 150;   // off-grid + gap
    EXPECT_GE(violations(gapped), 1u);

    AdaptiveLog short_epoch = good;
    short_epoch.choices[1].lastInstruction = 150;
    EXPECT_GE(violations(short_epoch), 1u);

    AdaptiveLog wrong_switches = good;
    wrong_switches.switches = 3;
    EXPECT_EQ(violations(wrong_switches), 1u);

    AdaptiveLog uncovered = good;
    uncovered.choices.pop_back();
    EXPECT_EQ(violations(uncovered), 1u);

    // A disarmed or empty log is skipped, never flagged.
    AdaptiveLog off;
    EXPECT_EQ(violations(off), 0u);
}
