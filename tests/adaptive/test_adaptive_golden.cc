/**
 * @file
 * Golden-file regression suite for adaptive runs: li at a fixed small
 * budget under the Threshold and Bandit selectors (fixed seed), with
 * the interval sampler armed on the same epoch grid. Each selector
 * contributes its run manifest, its timeseries row and its `adaptive`
 * record; all must match tests/golden/adaptive_li.json member for
 * member, no tolerances. Intentional behaviour changes regenerate:
 *
 *   cmake --build build -j --target test_adaptive
 *   SPECFETCH_REGEN_GOLDEN=1 ./build/tests/test_adaptive \
 *       --gtest_filter='GoldenAdaptive.*'
 *
 * and the diff is reviewed like any other code change. Keeping the
 * sampler armed pins that adaptive switching and interval sampling
 * share one epoch grid (the choice-log windows and the timeseries
 * epochs must agree instruction for instruction).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "adaptive/adaptive_record.hh"
#include "core/sweep.hh"
#include "obs/obs_record.hh"
#include "report/record.hh"
#include "report/report.hh"
#include "workload/registry.hh"

using namespace specfetch;

namespace {

/** Golden parameters: bound to tests/golden/adaptive_li.json. */
constexpr uint64_t kGoldenBudget = 100'000;
constexpr uint64_t kGoldenInterval = 20'000;

const std::vector<SelectorKind> &
goldenSelectors()
{
    static const std::vector<SelectorKind> selectors{
        SelectorKind::Threshold, SelectorKind::Bandit};
    return selectors;
}

std::string
goldenPath()
{
#ifdef SPECFETCH_GOLDEN_DIR
    return std::string(SPECFETCH_GOLDEN_DIR) + "/adaptive_li.json";
#else
    return "tests/golden/adaptive_li.json";
#endif
}

bool
regenRequested()
{
    const char *env = std::getenv("SPECFETCH_REGEN_GOLDEN");
    return env && *env && std::string(env) != "0";
}

std::vector<RunSpec>
goldenSpecs()
{
    std::vector<RunSpec> specs;
    for (SelectorKind kind : goldenSelectors()) {
        SimConfig config;
        config.instructionBudget = kGoldenBudget;
        config.sampleInterval = kGoldenInterval;
        config.adaptiveSelector = kind;
        config.adaptiveInterval = kGoldenInterval;
        config.adaptiveSeed = 1;
        specs.push_back(RunSpec{"li", config});
    }
    return specs;
}

/** Run record + timeseries + adaptive record per golden selector. */
std::vector<JsonValue>
goldenRecords(unsigned parallelism)
{
    std::vector<RunSpec> specs = goldenSpecs();
    std::vector<RunObservations> observations;
    std::vector<SimResults> results =
        runSweep(specs, parallelism, nullptr, &observations);
    std::vector<JsonValue> records;
    for (size_t i = 0; i < specs.size(); ++i) {
        records.push_back(makeRunRecord(results[i], specs[i].config));
        records.push_back(makeTimeseriesRecord(observations[i],
                                               results[i],
                                               specs[i].config));
        records.push_back(makeAdaptiveRecord(observations[i].adaptive,
                                             results[i],
                                             specs[i].config));
    }
    return records;
}

} // namespace

TEST(GoldenAdaptive, MatchesCheckedInRows)
{
    std::vector<JsonValue> records = goldenRecords(/*parallelism=*/1);

    if (regenRequested()) {
        std::ofstream out(goldenPath(), std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath();
        for (const JsonValue &record : records)
            out << record.dump() << '\n';
        GTEST_SKIP() << "regenerated " << goldenPath();
    }

    std::vector<JsonValue> golden;
    std::string error;
    ASSERT_TRUE(readJsonl(goldenPath(), golden, &error))
        << error << " — regenerate with SPECFETCH_REGEN_GOLDEN=1 "
        << "(see file header)";
    ASSERT_EQ(golden.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i], golden[i])
            << "adaptive golden row " << i << " diverged ("
            << toString(goldenSelectors()[i / 3]) << ")";
    }
}

TEST(GoldenAdaptive, ParallelSweepEmitsIdenticalRows)
{
    std::vector<JsonValue> serial = goldenRecords(/*parallelism=*/1);
    std::vector<JsonValue> parallel = goldenRecords(/*parallelism=*/4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].dump(), parallel[i].dump())
            << "adaptive golden row " << i
            << " depends on sweep parallelism";
    }
}

// The adaptive switch windows and the sampler's epochs share one
// instruction grid: every choice window must start and end exactly
// where a timeseries epoch does (final partial epochs included).
TEST(GoldenAdaptive, ChoiceWindowsAlignWithTimeseriesEpochs)
{
    std::vector<RunSpec> specs = goldenSpecs();
    std::vector<RunObservations> observations;
    std::vector<SimResults> results =
        runSweep(specs, 1, nullptr, &observations);
    for (size_t i = 0; i < specs.size(); ++i) {
        const AdaptiveLog &log = observations[i].adaptive;
        const std::vector<EpochRecord> &epochs = observations[i].epochs;
        ASSERT_EQ(log.choices.size(), epochs.size())
            << toString(goldenSelectors()[i]);
        for (size_t e = 0; e < epochs.size(); ++e) {
            EXPECT_EQ(log.choices[e].firstInstruction,
                      epochs[e].firstInstruction);
            EXPECT_EQ(log.choices[e].lastInstruction,
                      epochs[e].lastInstruction);
        }
        (void)results;
    }
}
