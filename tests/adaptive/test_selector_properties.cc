/**
 * @file
 * Property harness for the adaptive subsystem (DESIGN.md §12): a
 * seeded config fuzzer drives the simulator through ~200 random
 * machine/workload points and asserts the three contracts every
 * selector must honour —
 *
 *   1. no-perturbation: an adaptive run with StaticSelector(P) is
 *      bit-exact (full SimResults equality) with the plain static
 *      run of P;
 *   2. determinism: any selector produces identical results on
 *      repeated invocations, and under runSweep identical results
 *      serially and in parallel;
 *   3. oracle dominance: the per-interval Oracle bound never exceeds
 *      any static policy's ISPI on the same epoch grid.
 *
 * Budgets are kept small (10K-50K instructions) so the whole harness
 * stays well under the ISSUE.md 60-second ceiling while still
 * crossing many epoch boundaries per point.
 */

#include <gtest/gtest.h>

#include "adaptive/oracle.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "util/random.hh"
#include "workload/registry.hh"
#include "workload/workload.hh"

using namespace specfetch;

namespace {

/** The repo's deterministic generator, seeded once per test. */
struct Fuzzer
{
    explicit Fuzzer(uint64_t seed) : rng(seed) {}

    uint64_t
    below(uint64_t bound)
    {
        return rng.nextBelow(bound);
    }

    /** Pick one element of a fixed candidate list. */
    template <typename T, size_t N>
    T
    pick(const T (&candidates)[N])
    {
        return candidates[below(N)];
    }

    std::string
    benchmark()
    {
        static const char *names[] = {"gcc", "li", "groff", "tex",
                                      "porky"};
        return names[below(5)];
    }

    /** A random machine point: cache, branch arch, pipeline, seed. */
    SimConfig
    config()
    {
        SimConfig c;
        c.policy = pick(kPolicies);
        c.instructionBudget = 10'000 + below(5) * 10'000;
        c.runSeed = 1 + below(1000);
        c.icache.sizeBytes = pick(kCacheBytes);
        c.icache.ways = static_cast<unsigned>(pick(kWays));
        c.icache.lineBytes = static_cast<unsigned>(pick(kLines));
        c.missPenaltyCycles = static_cast<unsigned>(5 + below(16));
        c.memoryChannels = static_cast<unsigned>(1 + below(2));
        c.maxUnresolved = static_cast<unsigned>(1 + below(8));
        c.predictor.btbEntries = static_cast<unsigned>(pick(kBtb));
        c.predictor.phtEntries = static_cast<unsigned>(pick(kPht));
        return c;
    }

    uint64_t
    interval()
    {
        static const uint64_t candidates[] = {1'000, 2'000, 5'000, 7'500,
                                              10'000};
        return pick(candidates);
    }

    Rng rng;

    static constexpr FetchPolicy kPolicies[] = {
        FetchPolicy::Oracle, FetchPolicy::Optimistic, FetchPolicy::Resume,
        FetchPolicy::Pessimistic, FetchPolicy::Decode};
    static constexpr uint64_t kCacheBytes[] = {1024, 2048, 4096, 8192,
                                               16384};
    static constexpr uint64_t kWays[] = {1, 2, 4};
    static constexpr uint64_t kLines[] = {16, 32, 64};
    static constexpr uint64_t kBtb[] = {16, 64, 256};
    static constexpr uint64_t kPht[] = {64, 512, 2048};
};

constexpr FetchPolicy Fuzzer::kPolicies[];
constexpr uint64_t Fuzzer::kCacheBytes[];
constexpr uint64_t Fuzzer::kWays[];
constexpr uint64_t Fuzzer::kLines[];
constexpr uint64_t Fuzzer::kBtb[];
constexpr uint64_t Fuzzer::kPht[];

} // namespace

// Contract 1: arming the decision point with StaticSelector never
// perturbs the simulation — full-results equality, not just ISPI.
TEST(SelectorProperties, StaticSelectorIsBitExactAcrossRandomConfigs)
{
    Fuzzer fuzz(20260808);
    int mismatches = 0;
    for (int point = 0; point < 200; ++point) {
        std::string benchmark = fuzz.benchmark();
        SimConfig plain = fuzz.config();
        const Workload &workload = *sharedWorkload(benchmark);

        SimConfig adaptive = plain;
        adaptive.adaptiveSelector = SelectorKind::Static;
        adaptive.adaptiveInterval = fuzz.interval();

        SimResults a = runSimulation(workload, plain);
        SimResults b = runSimulation(workload, adaptive);
        if (!(a == b)) {
            ++mismatches;
            ADD_FAILURE() << "point " << point << ": " << benchmark
                          << " " << plain.describe()
                          << " diverged with adaptive interval "
                          << adaptive.adaptiveInterval;
        }
    }
    EXPECT_EQ(mismatches, 0);
}

// Contract 2a: the same adaptive config yields the same results on a
// second invocation (fresh engine, fresh selector).
TEST(SelectorProperties, AdaptiveRunsAreDeterministicAcrossInvocations)
{
    Fuzzer fuzz(977);
    for (int point = 0; point < 20; ++point) {
        std::string benchmark = fuzz.benchmark();
        SimConfig config = fuzz.config();
        config.adaptiveSelector = fuzz.below(2) == 0
                                      ? SelectorKind::Threshold
                                      : SelectorKind::Bandit;
        config.adaptiveInterval = fuzz.interval();
        config.adaptiveSeed = 1 + fuzz.below(100);
        const Workload &workload = *sharedWorkload(benchmark);

        SimResults first = runSimulation(workload, config);
        SimResults second = runSimulation(workload, config);
        EXPECT_TRUE(first == second)
            << "point " << point << ": " << benchmark << " "
            << toString(config.adaptiveSelector)
            << " diverged across invocations";
    }
}

// Contract 2b: a sweep of adaptive runs is oblivious to worker count.
TEST(SelectorProperties, AdaptiveSweepsMatchSerialAndParallel)
{
    Fuzzer fuzz(31337);
    std::vector<RunSpec> specs;
    for (int point = 0; point < 20; ++point) {
        SimConfig config = fuzz.config();
        config.adaptiveSelector = point % 2 == 0 ? SelectorKind::Threshold
                                                 : SelectorKind::Bandit;
        config.adaptiveInterval = fuzz.interval();
        config.adaptiveSeed = 1 + fuzz.below(100);
        specs.push_back(RunSpec{fuzz.benchmark(), config});
    }
    std::vector<SimResults> serial = runSweep(specs, 1);
    std::vector<SimResults> parallel = runSweep(specs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(serial[i] == parallel[i])
            << "spec " << i << " (" << specs[i].benchmark
            << ") differs between serial and parallel sweeps";
    }
}

// Contract 3: the per-interval Oracle is a true lower bound over its
// candidates, on every workload and random machine point tried.
TEST(SelectorProperties, OracleDominatesEveryStaticPolicy)
{
    Fuzzer fuzz(4242);
    for (int point = 0; point < 12; ++point) {
        std::string benchmark = fuzz.benchmark();
        SimConfig base = fuzz.config();
        uint64_t interval = fuzz.interval();
        PerIntervalOracle oracle = computePerIntervalOracle(
            *sharedWorkload(benchmark), base, interval);

        ASSERT_EQ(oracle.staticIspi.size(), allPolicies().size());
        for (size_t p = 0; p < oracle.staticIspi.size(); ++p) {
            EXPECT_LE(oracle.oracleIspi, oracle.staticIspi[p] + 1e-12)
                << "point " << point << ": bound exceeds "
                << toString(oracle.policies[p]) << " on " << benchmark;
        }
        EXPECT_LE(oracle.oracleIspi, oracle.bestStaticIspi() + 1e-12);
        EXPECT_EQ(oracle.bestPolicy.size(), oracle.bestPenaltySlots.size());
    }
}
