/**
 * @file
 * TraceSnapshot record/replay contract tests. The load-bearing
 * property is bit-identity: a simulation fed by a SnapshotReplaySource
 * must produce *exactly* the SimResults of the same simulation fed by
 * the live executor, for every workload, policy, prefetch setting and
 * warmup — that equivalence is what lets runSweep record each
 * correct-path stream once and replay it across a whole grid.
 */

#include <gtest/gtest.h>

#include <vector>

#include "check/check_level.hh"
#include "core/simulator.hh"
#include "trace/snapshot.hh"
#include "workload/executor.hh"
#include "workload/registry.hh"
#include "workload/workload.hh"

namespace specfetch {
namespace {

constexpr uint64_t kBudget = 20'000;

Workload
smallWorkload()
{
    WorkloadProfile profile;
    profile.structureSeed = 5;
    profile.numFunctions = 8;
    profile.meanFuncBlocks = 14;
    profile.meanBlockLen = 4.0;
    return buildWorkload(profile);
}

TEST(Snapshot, ReplayStreamMatchesLiveExecutor)
{
    Workload w = smallWorkload();
    const uint64_t n = 50'000;

    Executor recorder(w.cfg, 42);
    TraceSnapshot snap = TraceSnapshot::record(recorder, n);
    ASSERT_EQ(snap.instructionCount(), n);

    Executor live(w.cfg, 42);
    SnapshotReplaySource replay(snap);
    DynInst expected, got;
    for (uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(live.next(expected));
        ASSERT_TRUE(replay.next(got)) << "instruction " << i;
        ASSERT_EQ(got.pc, expected.pc) << "instruction " << i;
        ASSERT_EQ(got.cls, expected.cls) << "instruction " << i;
        ASSERT_EQ(got.taken, expected.taken) << "instruction " << i;
        if (isControl(expected.cls)) {
            ASSERT_EQ(got.target, expected.target) << "instruction " << i;
        }
    }
    EXPECT_FALSE(replay.next(got));
}

TEST(Snapshot, EncodingIsCompact)
{
    Workload w = smallWorkload();
    Executor recorder(w.cfg, 42);
    TraceSnapshot snap = TraceSnapshot::record(recorder, kBudget);
    // One 16-byte record per control instruction at the workloads'
    // ~20-25% control fraction: well under 8 bytes per instruction,
    // far under a DynInst-per-instruction encoding.
    EXPECT_LT(snap.byteSize(), snap.instructionCount() * 8);
    EXPECT_GT(snap.byteSize(), 0u);
}

TEST(Snapshot, ExhaustedReplayStopsTheRunEarly)
{
    Workload w = smallWorkload();
    Executor recorder(w.cfg, 42);
    TraceSnapshot snap = TraceSnapshot::record(recorder, 5'000);

    SimConfig config;
    config.instructionBudget = kBudget; // more than the snapshot holds
    SimResults results = runSimulation(w, config, snap);
    EXPECT_EQ(results.instructions, 5'000u);
}

TEST(Snapshot, EmptySnapshotYieldsNothing)
{
    Workload w = smallWorkload();
    Executor recorder(w.cfg, 42);
    TraceSnapshot snap = TraceSnapshot::record(recorder, 0);
    EXPECT_EQ(snap.instructionCount(), 0u);
    EXPECT_EQ(snap.byteSize(), 0u);

    SnapshotReplaySource replay(snap);
    DynInst inst;
    EXPECT_FALSE(replay.next(inst));
    Addr pc = 0;
    EXPECT_EQ(replay.takePlainRun(pc, 100), 0u);
}

TEST(Snapshot, ChunkedPlainRunsReplayIdentically)
{
    Workload w = smallWorkload();
    const uint64_t n = 30'000;

    Executor a(w.cfg, 42);
    TraceSnapshot whole = TraceSnapshot::record(a, n);
    Executor b(w.cfg, 42);
    TraceSnapshot chunked =
        TraceSnapshot::record(b, n, /*max_plain_run=*/3);

    // Chunking costs extra run-only records but must not change the
    // replayed stream.
    EXPECT_GT(chunked.records().size(), whole.records().size());
    SnapshotReplaySource lhs(whole), rhs(chunked);
    DynInst x, y;
    for (uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(lhs.next(x));
        ASSERT_TRUE(rhs.next(y)) << "instruction " << i;
        ASSERT_EQ(x.pc, y.pc) << "instruction " << i;
        ASSERT_EQ(x.cls, y.cls) << "instruction " << i;
        ASSERT_EQ(x.taken, y.taken) << "instruction " << i;
        ASSERT_EQ(x.target, y.target) << "instruction " << i;
    }
    EXPECT_FALSE(rhs.next(y));
}

TEST(Snapshot, TakePlainRunInterleavesWithNext)
{
    Workload w = smallWorkload();
    const uint64_t n = 30'000;
    Executor recorder(w.cfg, 42);
    TraceSnapshot snap = TraceSnapshot::record(recorder, n);

    // Consume one cursor instruction-by-instruction and the other via
    // the bulk API; the streams must agree exactly.
    SnapshotReplaySource scalar(snap), bulk(snap);
    DynInst expected, got;
    uint64_t seen = 0;
    while (seen < n) {
        Addr run_pc = 0;
        uint32_t run = bulk.takePlainRun(run_pc, 7);
        if (run > 0) {
            for (uint32_t i = 0; i < run; ++i) {
                ASSERT_TRUE(scalar.next(expected));
                ASSERT_EQ(expected.cls, InstClass::Plain);
                ASSERT_EQ(expected.pc, run_pc + Addr(i) * kInstBytes)
                    << "instruction " << seen + i;
            }
            seen += run;
            continue;
        }
        ASSERT_TRUE(bulk.next(got));
        ASSERT_TRUE(scalar.next(expected));
        ASSERT_EQ(got.pc, expected.pc) << "instruction " << seen;
        ASSERT_EQ(got.cls, expected.cls) << "instruction " << seen;
        ASSERT_EQ(got.taken, expected.taken) << "instruction " << seen;
        ASSERT_EQ(got.target, expected.target) << "instruction " << seen;
        ++seen;
    }
    EXPECT_FALSE(bulk.next(got));
    EXPECT_FALSE(scalar.next(expected));
}

TEST(SnapshotDeath, NonContinuousSourcePanics)
{
    /** A source whose second instruction teleports. */
    class BrokenSource : public InstructionSource
    {
      public:
        bool
        next(DynInst &out) override
        {
            out = DynInst{count == 0 ? Addr{0x1000} : Addr{0x9000},
                          InstClass::Plain, false, 0};
            ++count;
            return true;
        }

      private:
        int count = 0;
    };
    BrokenSource source;
    EXPECT_DEATH(TraceSnapshot::record(source, 10),
                 "not path-continuous");
}

TEST(SnapshotDeath, ZeroPlainRunLimitPanics)
{
    Workload w = smallWorkload();
    Executor recorder(w.cfg, 42);
    EXPECT_DEATH(TraceSnapshot::record(recorder, 10, 0),
                 "plain runs cannot be empty");
}

/**
 * The headline guarantee, benchmark by benchmark: replayed simulation
 * results are bit-identical to live ones for every policy and
 * prefetch setting (the exact grid bench_suite sweeps).
 */
class SnapshotEquivalence : public ::testing::TestWithParam<std::string>
{};

TEST_P(SnapshotEquivalence, ReplayedRunsMatchLiveBitExactly)
{
    std::shared_ptr<const Workload> workload = sharedWorkload(GetParam());
    Executor recorder(workload->cfg, 42);
    TraceSnapshot snap = TraceSnapshot::record(recorder, kBudget);

    for (int p = 0; p < 5; ++p) {
        for (bool prefetch : {false, true}) {
            SimConfig config;
            config.policy = static_cast<FetchPolicy>(p);
            config.nextLinePrefetch = prefetch;
            config.instructionBudget = kBudget;
            SimResults live = runSimulation(*workload, config);
            SimResults replay = runSimulation(*workload, config, snap);
            EXPECT_EQ(replay, live)
                << GetParam() << ", " << toString(config.policy)
                << (prefetch ? ", prefetch" : "");
        }
    }
}

TEST_P(SnapshotEquivalence, WarmupConsumesTheSnapshotPrefix)
{
    std::shared_ptr<const Workload> workload = sharedWorkload(GetParam());
    SimConfig config;
    config.warmupInstructions = 5'000;
    config.instructionBudget = kBudget;

    // The engine consumes warmup + budget instructions from its
    // source, so that is what the snapshot must cover.
    Executor recorder(workload->cfg, 42);
    TraceSnapshot snap = TraceSnapshot::record(
        recorder, config.warmupInstructions + config.instructionBudget);

    SimResults live = runSimulation(*workload, config);
    SimResults replay = runSimulation(*workload, config, snap);
    EXPECT_EQ(replay, live) << GetParam();
}

TEST_P(SnapshotEquivalence, ParanoidAuditPassesOverReplay)
{
    std::shared_ptr<const Workload> workload = sharedWorkload(GetParam());
    Executor recorder(workload->cfg, 42);
    TraceSnapshot snap = TraceSnapshot::record(recorder, kBudget);

    SimConfig config;
    config.instructionBudget = kBudget;
    config.checkLevel = CheckLevel::Paranoid;
    SimResults audited = runSimulation(*workload, config, snap);

    SimConfig plain = config;
    plain.checkLevel = CheckLevel::Off;
    EXPECT_EQ(audited, runSimulation(*workload, plain, snap))
        << GetParam() << ": audits must observe, never perturb";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SnapshotEquivalence,
    ::testing::ValuesIn(benchmarkNames()),
    [](const auto &param_info) {
        std::string name = param_info.param;
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

} // namespace
} // namespace specfetch
