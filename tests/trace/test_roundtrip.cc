/**
 * @file
 * Trace write/read round-trip tests: the replayed stream must be
 * bit-identical to the live execution, and a simulation driven from
 * the trace must produce identical results.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/fetch_engine.hh"
#include "trace/format.hh"
#include "trace/reader.hh"
#include "trace/replay_source.hh"
#include "trace/writer.hh"
#include "workload/executor.hh"
#include "workload/registry.hh"
#include "workload/workload.hh"

namespace specfetch {
namespace {

class TraceRoundTrip : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "roundtrip.sftrace";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

Workload
smallWorkload()
{
    WorkloadProfile profile;
    profile.structureSeed = 5;
    profile.numFunctions = 8;
    profile.meanFuncBlocks = 14;
    profile.meanBlockLen = 4.0;
    return buildWorkload(profile);
}

TEST_F(TraceRoundTrip, StreamIsIdentical)
{
    Workload w = smallWorkload();
    const uint64_t n = 100000;

    Executor executor(w.cfg, 42);
    DynInst first;
    std::vector<DynInst> reference;
    {
        Executor source(w.cfg, 42);
        DynInst inst;
        source.next(inst);
        TraceWriter writer(path, w.image, inst.pc);
        writer.append(inst);
        reference.push_back(inst);
        for (uint64_t i = 1; i < n; ++i) {
            source.next(inst);
            writer.append(inst);
            reference.push_back(inst);
        }
    }

    TraceReader reader(path);
    EXPECT_EQ(reader.startPc(), reference.front().pc);
    DynInst inst;
    for (uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(reader.next(inst)) << "record " << i;
        ASSERT_EQ(inst.pc, reference[i].pc) << "record " << i;
        ASSERT_EQ(inst.cls, reference[i].cls) << "record " << i;
        ASSERT_EQ(inst.taken, reference[i].taken) << "record " << i;
        if (isControl(inst.cls)) {
            ASSERT_EQ(inst.target, reference[i].target) << i;
        }
    }
    EXPECT_FALSE(reader.next(inst));
    EXPECT_EQ(reader.recordsRead(), n);
}

TEST_F(TraceRoundTrip, ImageIsIdentical)
{
    Workload w = smallWorkload();
    {
        Executor source(w.cfg, 42);
        DynInst inst;
        source.next(inst);
        TraceWriter writer(path, w.image, inst.pc);
        writer.append(inst);
    }
    TraceReader reader(path);
    const ProgramImage &restored = reader.image();
    ASSERT_EQ(restored.size(), w.image.size());
    ASSERT_EQ(restored.base(), w.image.base());
    for (size_t i = 0; i < restored.size(); ++i) {
        ASSERT_EQ(restored[i].cls, w.image[i].cls) << "index " << i;
        if (hasStaticTarget(restored[i].cls)) {
            ASSERT_EQ(restored[i].target, w.image[i].target) << i;
        }
    }
}

TEST_F(TraceRoundTrip, SimulationFromTraceMatchesLive)
{
    Workload w = smallWorkload();
    const uint64_t n = 150000;

    {
        Executor source(w.cfg, 42);
        DynInst inst;
        source.next(inst);
        TraceWriter writer(path, w.image, inst.pc);
        writer.append(inst);
        for (uint64_t i = 1; i < n; ++i) {
            source.next(inst);
            writer.append(inst);
        }
    }

    SimConfig config;
    config.policy = FetchPolicy::Resume;
    config.instructionBudget = n;

    // Live run.
    Executor live(w.cfg, 42);
    FetchEngine live_engine(config, w.image);
    SimResults live_results = live_engine.run(live);

    // Replay run.
    TraceReader reader(path);
    ReplaySource replay(reader);
    FetchEngine replay_engine(config, reader.image());
    SimResults replay_results = replay_engine.run(replay);

    EXPECT_EQ(replay_results.instructions, live_results.instructions);
    EXPECT_EQ(replay_results.finalSlot, live_results.finalSlot);
    EXPECT_EQ(replay_results.demandMisses, live_results.demandMisses);
    EXPECT_EQ(replay_results.dirMispredicts,
              live_results.dirMispredicts);
    EXPECT_EQ(replay_results.penalty.totalSlots(),
              live_results.penalty.totalSlots());
}

TEST_F(TraceRoundTrip, WriterCountsRecords)
{
    Workload w = smallWorkload();
    Executor source(w.cfg, 42);
    DynInst inst;
    source.next(inst);
    TraceWriter writer(path, w.image, inst.pc);
    writer.append(inst);
    for (int i = 1; i < 1000; ++i) {
        source.next(inst);
        writer.append(inst);
    }
    EXPECT_EQ(writer.recordsWritten(), 1000u);
}

TEST_F(TraceRoundTrip, ReaderRejectsGarbage)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace file at all, sorry", f);
    std::fclose(f);
    EXPECT_THROW({ TraceReader reader(path); }, TraceError);
}

TEST(TraceDeath, MissingFileThrows)
{
    EXPECT_THROW({ TraceReader reader("/nonexistent/nope.trace"); },
                 TraceError);
}

TEST(TraceDeath, NonContiguousAppendPanics)
{
    std::string path = ::testing::TempDir() + "bad.sftrace";
    ProgramImage image(0x1000, 8);
    TraceWriter writer(path, image, 0x1000);
    writer.append(DynInst{0x1000, InstClass::Plain, false, 0});
    EXPECT_DEATH(
        writer.append(DynInst{0x2000, InstClass::Plain, false, 0}),
        "contiguous");
    std::remove(path.c_str());
}

} // namespace
} // namespace specfetch
