/**
 * @file
 * Untrusted-input hardening tests. Trace files come from outside the
 * process, so every malformed shape — truncation, bad magic, lying
 * size fields, invalid class encodings — must surface as a typed
 * TraceError naming the damage, never as UB or a giant allocation.
 * The same contract holds for serialized TraceSnapshots and for the
 * in-memory integrity checks the guarded sweep leans on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "trace/format.hh"
#include "trace/reader.hh"
#include "trace/snapshot.hh"
#include "workload/executor.hh"
#include "workload/workload.hh"

namespace specfetch {
namespace {

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

/** A syntactically valid header for an image of @p count records. */
std::vector<uint8_t>
header(uint64_t base, uint64_t count, uint64_t start_pc,
       uint32_t magic = kTraceMagic, uint32_t version = kTraceVersion)
{
    std::vector<uint8_t> bytes;
    putU32(bytes, magic);
    putU32(bytes, version);
    putU64(bytes, base);
    putU64(bytes, count);
    putU64(bytes, start_pc);
    return bytes;
}

class CorruptTrace : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "corrupt.sftrace";
    }

    void TearDown() override { std::remove(path.c_str()); }

    void
    spill(const std::vector<uint8_t> &bytes)
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        if (!bytes.empty()) {
            ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                      bytes.size());
        }
        std::fclose(f);
    }

    /** The TraceError message produced by opening (and draining). */
    std::string
    openError()
    {
        try {
            TraceReader reader(path);
            DynInst inst;
            while (reader.next(inst)) {
            }
        } catch (const TraceError &e) {
            return e.what();
        }
        return "";
    }

    std::string path;
};

TEST_F(CorruptTrace, TruncatedHeaderIsNamed)
{
    std::vector<uint8_t> bytes;
    putU32(bytes, kTraceMagic);
    putU32(bytes, kTraceVersion);
    bytes.push_back(0x99);    // 9 bytes: dies inside the base field
    spill(bytes);
    EXPECT_NE(openError().find("truncated trace header"),
              std::string::npos);
}

TEST_F(CorruptTrace, EmptyFileIsATruncatedHeader)
{
    spill({});
    EXPECT_NE(openError().find("truncated trace header"),
              std::string::npos);
}

TEST_F(CorruptTrace, BadMagicIsNamed)
{
    spill(header(0x1000, 0, 0x1000, /*magic=*/0x4B4F4F42));
    EXPECT_NE(openError().find("not a specfetch trace"),
              std::string::npos);
}

TEST_F(CorruptTrace, UnsupportedVersionIsNamed)
{
    spill(header(0x1000, 0, 0x1000, kTraceMagic, /*version=*/99));
    std::string error = openError();
    EXPECT_NE(error.find("version 99"), std::string::npos) << error;
}

TEST_F(CorruptTrace, LyingImageCountIsRefusedBeforeAllocation)
{
    // A 32-byte file claiming a ~1-TiB image: the reader must refuse
    // from the file size alone (this test would OOM otherwise).
    spill(header(0x1000, uint64_t(1) << 38, 0x1000));
    std::string error = openError();
    EXPECT_NE(error.find("exceeds what"), std::string::npos) << error;
}

TEST_F(CorruptTrace, ImageRangeOverflowIsRefused)
{
    std::vector<uint8_t> bytes =
        header(~uint64_t(0) - 16, /*count=*/8, 0x1000);
    bytes.insert(bytes.end(), 8, 0x00);    // count passes the size check
    spill(bytes);
    EXPECT_NE(openError().find("overflows the address space"),
              std::string::npos);
}

TEST_F(CorruptTrace, TruncatedImageIsNamed)
{
    // One CondBranch image record whose varint target is missing: the
    // count passes the size check but the image bytes run out early.
    std::vector<uint8_t> bytes = header(0x1000, /*count=*/1, 0x1000);
    bytes.push_back(0x01);    // CondBranch, target truncated away
    spill(bytes);
    EXPECT_NE(openError().find("truncated trace image"),
              std::string::npos);
}

TEST_F(CorruptTrace, InvalidImageClassIsNamed)
{
    std::vector<uint8_t> bytes = header(0x1000, /*count=*/1, 0x1000);
    bytes.push_back(0x07);    // wire 7: one past IndirectCall
    spill(bytes);
    std::string error = openError();
    EXPECT_NE(error.find("invalid instruction class"), std::string::npos)
        << error;
}

TEST_F(CorruptTrace, ZeroLengthPlainRunIsNamed)
{
    std::vector<uint8_t> bytes = header(0x1000, 0, 0x1000);
    bytes.push_back(kTagPlainRun);
    bytes.push_back(0x00);    // varint 0: a run of nothing
    spill(bytes);
    EXPECT_NE(openError().find("corrupt plain run"), std::string::npos);
}

TEST_F(CorruptTrace, UnknownStreamTagIsNamed)
{
    std::vector<uint8_t> bytes = header(0x1000, 0, 0x1000);
    bytes.push_back(0x02);    // neither plain-run nor control
    spill(bytes);
    EXPECT_NE(openError().find("corrupt trace tag"), std::string::npos);
}

TEST_F(CorruptTrace, InvalidControlClassIsNamed)
{
    std::vector<uint8_t> bytes = header(0x1000, 0, 0x1000);
    bytes.push_back(kTagControl | (0x7 << 1));    // wire class 7
    bytes.push_back(0x01);
    spill(bytes);
    EXPECT_NE(openError().find("invalid instruction class in control"),
              std::string::npos);
}

TEST_F(CorruptTrace, TruncatedControlRecordIsNamed)
{
    std::vector<uint8_t> bytes = header(0x1000, 0, 0x1000);
    bytes.push_back(kTagPlainRun);
    bytes.push_back(0x03);                         // 3 plains, fine
    bytes.push_back(kTagControl | (0x1 << 1));     // then a control...
    bytes.push_back(0x80);                         // ...torn mid-varint
    spill(bytes);
    std::string error = openError();
    EXPECT_NE(error.find("truncated control record"), std::string::npos)
        << error;
}

// --- TraceSnapshot integrity -------------------------------------------

TraceSnapshot
smallSnapshot(uint64_t length = 20'000)
{
    WorkloadProfile profile;
    profile.structureSeed = 5;
    profile.numFunctions = 8;
    profile.meanFuncBlocks = 14;
    profile.meanBlockLen = 4.0;
    Workload w = buildWorkload(profile);
    Executor source(w.cfg, 42);
    return TraceSnapshot::record(source, length);
}

TEST(SnapshotIntegrity, CleanSnapshotVerifiesAndValidates)
{
    TraceSnapshot snapshot = smallSnapshot();
    ASSERT_GT(snapshot.records().size(), 0u);
    std::string error;
    EXPECT_TRUE(snapshot.verify(&error)) << error;
    EXPECT_TRUE(snapshot.validate(&error)) << error;
}

TEST(SnapshotIntegrity, SingleBitFlipFailsVerifyWithDigests)
{
    TraceSnapshot snapshot = smallSnapshot();
    snapshot.corruptBitForTesting(203);
    std::string error;
    EXPECT_FALSE(snapshot.verify(&error));
    EXPECT_NE(error.find("digest mismatch"), std::string::npos) << error;
}

TEST(SnapshotIntegrity, PopulationDriftFailsValidate)
{
    TraceSnapshot snapshot = smallSnapshot();
    // Bits 64..95 of record 0 are its plainBefore field: flipping one
    // desynchronizes the record population from instructionCount().
    snapshot.corruptBitForTesting(64);
    std::string error;
    EXPECT_FALSE(snapshot.validate(&error));
    EXPECT_NE(error.find("population"), std::string::npos) << error;
}

TEST(SnapshotIntegrity, SerializeDeserializeRoundTrips)
{
    TraceSnapshot snapshot = smallSnapshot();
    std::vector<uint8_t> bytes;
    snapshot.serialize(bytes);

    TraceSnapshot restored;
    std::string error;
    ASSERT_TRUE(TraceSnapshot::deserialize(bytes.data(), bytes.size(),
                                           restored, &error))
        << error;
    EXPECT_EQ(restored.startPc(), snapshot.startPc());
    EXPECT_EQ(restored.instructionCount(), snapshot.instructionCount());
    EXPECT_EQ(restored.contentHash(), snapshot.contentHash());
    ASSERT_EQ(restored.records().size(), snapshot.records().size());
    EXPECT_EQ(std::memcmp(restored.records().data(),
                          snapshot.records().data(),
                          snapshot.byteSize()),
              0);
}

TEST(SnapshotIntegrity, DeserializeRefusesShortInput)
{
    TraceSnapshot snapshot = smallSnapshot();
    std::vector<uint8_t> bytes;
    snapshot.serialize(bytes);

    TraceSnapshot restored;
    std::string error;
    EXPECT_FALSE(TraceSnapshot::deserialize(bytes.data(), 10, restored,
                                            &error));
    EXPECT_NE(error.find("truncated snapshot"), std::string::npos)
        << error;
}

TEST(SnapshotIntegrity, DeserializeRefusesBadMagic)
{
    TraceSnapshot snapshot = smallSnapshot();
    std::vector<uint8_t> bytes;
    snapshot.serialize(bytes);
    bytes[0] ^= 0xFF;

    TraceSnapshot restored;
    std::string error;
    EXPECT_FALSE(TraceSnapshot::deserialize(bytes.data(), bytes.size(),
                                            restored, &error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(SnapshotIntegrity, DeserializeRefusesUnsupportedVersion)
{
    TraceSnapshot snapshot = smallSnapshot();
    std::vector<uint8_t> bytes;
    snapshot.serialize(bytes);
    bytes[4] = 0x63;    // version 99

    TraceSnapshot restored;
    std::string error;
    EXPECT_FALSE(TraceSnapshot::deserialize(bytes.data(), bytes.size(),
                                            restored, &error));
    EXPECT_NE(error.find("version 99"), std::string::npos) << error;
}

TEST(SnapshotIntegrity, DeserializeRefusesTruncatedPayload)
{
    TraceSnapshot snapshot = smallSnapshot();
    std::vector<uint8_t> bytes;
    snapshot.serialize(bytes);
    bytes.resize(bytes.size() - 16);    // drop one packed record

    TraceSnapshot restored;
    std::string error;
    EXPECT_FALSE(TraceSnapshot::deserialize(bytes.data(), bytes.size(),
                                            restored, &error));
    EXPECT_NE(error.find("promises"), std::string::npos) << error;
}

TEST(SnapshotIntegrity, DeserializeRefusesFlippedPayloadByte)
{
    TraceSnapshot snapshot = smallSnapshot();
    std::vector<uint8_t> bytes;
    snapshot.serialize(bytes);
    bytes[40 + 3] ^= 0x20;    // one payload byte, past the header

    TraceSnapshot restored;
    std::string error;
    EXPECT_FALSE(TraceSnapshot::deserialize(bytes.data(), bytes.size(),
                                            restored, &error));
    EXPECT_NE(error.find("corrupt snapshot payload"), std::string::npos)
        << error;
}

TEST(SnapshotIntegrity, CorruptedReplayIsRefusedNotCrashed)
{
    // The sweep-facing contract: a corrupted shared snapshot is
    // *reported* by verify() so the guarded run can fall back to live
    // execution; nothing throws, nothing aborts.
    TraceSnapshot snapshot = smallSnapshot();
    TraceSnapshot corrupted = snapshot;
    corrupted.corruptBitForTesting(4096);
    EXPECT_FALSE(corrupted.verify());
    EXPECT_TRUE(snapshot.verify());
}

} // namespace
} // namespace specfetch
