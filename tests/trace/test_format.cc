/** @file Unit tests for trace/format.hh primitives. */

#include "trace/format.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(Varint, RoundTripSmall)
{
    for (uint64_t value : {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull,
                           16384ull}) {
        std::vector<uint8_t> buf;
        putVarint(buf, value);
        size_t offset = 0;
        uint64_t decoded = 0;
        ASSERT_TRUE(getVarint(buf.data(), buf.size(), offset, decoded));
        EXPECT_EQ(decoded, value);
        EXPECT_EQ(offset, buf.size());
    }
}

TEST(Varint, RoundTripLarge)
{
    for (uint64_t value : {uint64_t{1} << 32, uint64_t{1} << 56,
                           ~uint64_t{0}}) {
        std::vector<uint8_t> buf;
        putVarint(buf, value);
        size_t offset = 0;
        uint64_t decoded = 0;
        ASSERT_TRUE(getVarint(buf.data(), buf.size(), offset, decoded));
        EXPECT_EQ(decoded, value);
    }
}

TEST(Varint, EncodingLength)
{
    std::vector<uint8_t> buf;
    putVarint(buf, 127);
    EXPECT_EQ(buf.size(), 1u);
    buf.clear();
    putVarint(buf, 128);
    EXPECT_EQ(buf.size(), 2u);
}

TEST(Varint, TruncatedInputFails)
{
    std::vector<uint8_t> buf;
    putVarint(buf, 1 << 20);
    size_t offset = 0;
    uint64_t decoded = 0;
    EXPECT_FALSE(getVarint(buf.data(), buf.size() - 1, offset, decoded));
}

TEST(Varint, SequentialDecodes)
{
    std::vector<uint8_t> buf;
    putVarint(buf, 5);
    putVarint(buf, 1000);
    size_t offset = 0;
    uint64_t a = 0, b = 0;
    ASSERT_TRUE(getVarint(buf.data(), buf.size(), offset, a));
    ASSERT_TRUE(getVarint(buf.data(), buf.size(), offset, b));
    EXPECT_EQ(a, 5u);
    EXPECT_EQ(b, 1000u);
}

TEST(WireClass, RoundTripsAllClasses)
{
    for (InstClass cls : {InstClass::Plain, InstClass::CondBranch,
                          InstClass::Jump, InstClass::Call,
                          InstClass::Return, InstClass::IndirectJump}) {
        EXPECT_EQ(classFromWire(wireClass(cls)), cls);
    }
}

TEST(WireClassDeath, RejectsBadWireValue)
{
    EXPECT_DEATH(classFromWire(7), "class");
}

} // namespace
} // namespace specfetch
