/**
 * @file
 * Record-layer tests for the observability payloads: the schema of
 * timeseries/heatmap rows, the conditional manifest members that keep
 * disabled runs byte-identical, a serial-vs-parallel determinism pin,
 * and a golden-file regression on the full timeseries bytes.
 *
 * Regenerating the golden file after an intentional numeric or schema
 * change:
 *
 *   SPECFETCH_REGEN_GOLDEN=1 ./build/tests/test_obs \
 *       --gtest_filter='GoldenTimeseries.*'
 */

#include "obs/obs_record.hh"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "core/simulator.hh"
#include "core/sweep.hh"
#include "report/record.hh"
#include "report/report.hh"
#include "util/logging.hh"
#include "workload/registry.hh"

using namespace specfetch;

namespace {

/** Golden parameters: bound to tests/golden/timeseries_li.json. */
constexpr uint64_t kGoldenBudget = 100'000;
constexpr uint64_t kGoldenInterval = 20'000;

const std::vector<FetchPolicy> &
goldenPolicies()
{
    static const std::vector<FetchPolicy> policies{
        FetchPolicy::Oracle, FetchPolicy::Optimistic};
    return policies;
}

std::string
goldenPath()
{
#ifdef SPECFETCH_GOLDEN_DIR
    return std::string(SPECFETCH_GOLDEN_DIR) + "/timeseries_li.json";
#else
    return "tests/golden/timeseries_li.json";
#endif
}

bool
regenRequested()
{
    const char *env = std::getenv("SPECFETCH_REGEN_GOLDEN");
    return env && *env && std::string(env) != "0";
}

std::vector<RunSpec>
goldenSpecs()
{
    std::vector<RunSpec> specs;
    for (FetchPolicy policy : goldenPolicies()) {
        SimConfig config;
        config.instructionBudget = kGoldenBudget;
        config.sampleInterval = kGoldenInterval;
        config.setHeatmap = true;
        config.policy = policy;
        specs.push_back(RunSpec{"li", config});
    }
    return specs;
}

/** One timeseries record per golden spec, at @p parallelism. */
std::vector<JsonValue>
goldenRecords(unsigned parallelism)
{
    std::vector<RunSpec> specs = goldenSpecs();
    std::vector<RunObservations> observations;
    std::vector<SimResults> results =
        runSweep(specs, parallelism, nullptr, &observations);
    std::vector<JsonValue> records;
    for (size_t i = 0; i < specs.size(); ++i) {
        records.push_back(makeTimeseriesRecord(observations[i],
                                               results[i],
                                               specs[i].config));
    }
    return records;
}

TEST(ObsRecord, TimeseriesRecordShape)
{
    SimConfig config;
    config.instructionBudget = 30'000;
    config.sampleInterval = 10'000;
    RunObservations obs;
    SimResults results =
        runSimulation(*sharedWorkload("li"), config, obs);

    JsonValue record = makeTimeseriesRecord(obs, results, config);
    EXPECT_EQ(record.find("schema_version")->asUint(),
              static_cast<uint64_t>(kReportSchemaVersion));
    EXPECT_EQ(record.find("record")->asString(), "timeseries");
    EXPECT_EQ(record.find("workload")->asString(), "li");
    EXPECT_EQ(record.find("sample_interval")->asUint(), 10'000u);
    const JsonValue *epochs = record.find("epochs");
    ASSERT_NE(epochs, nullptr);
    ASSERT_EQ(epochs->size(), obs.epochs.size());

    std::string dump = epochs->at(0).dump();
    for (const char *member :
         {"\"first_instruction\"", "\"penalty_slots\"", "\"derived\"",
          "\"ispi\"", "\"miss_rate_percent\"", "\"partial\""}) {
        EXPECT_NE(dump.find(member), std::string::npos)
            << "epoch JSON lacks " << member;
    }
}

TEST(ObsRecord, TimeseriesRecordRequiresEpochs)
{
    ScopedThrowOnError guard;
    RunObservations empty;
    SimResults results;
    SimConfig config;
    EXPECT_THROW(makeTimeseriesRecord(empty, results, config),
                 SimulationError);
}

TEST(ObsRecord, HeatmapRecordShape)
{
    SimConfig config;
    config.instructionBudget = 30'000;
    config.policy = FetchPolicy::Optimistic;
    config.setHeatmap = true;
    RunObservations obs;
    SimResults results =
        runSimulation(*sharedWorkload("li"), config, obs);
    ASSERT_NE(obs.heatmap, nullptr);

    JsonValue record = makeHeatmapRecord(*obs.heatmap, results, config);
    EXPECT_EQ(record.find("record")->asString(), "heatmap");
    const JsonValue *heatmap = record.find("heatmap");
    ASSERT_NE(heatmap, nullptr);
    const JsonValue *geometry = heatmap->find("geometry");
    ASSERT_NE(geometry, nullptr);
    EXPECT_EQ(geometry->find("sets")->asUint(),
              config.icache.numSets());
    const JsonValue *sets = heatmap->find("sets");
    ASSERT_NE(sets, nullptr);
    for (const char *series :
         {"demand_accesses", "demand_misses", "correct_fills",
          "wrong_accesses", "wrong_misses", "wrong_fills",
          "evictions_by_correct", "evictions_by_wrong"}) {
        const JsonValue *column = sets->find(series);
        ASSERT_NE(column, nullptr) << series;
        EXPECT_EQ(column->size(), config.icache.numSets()) << series;
    }
    const JsonValue *summary = heatmap->find("summary");
    ASSERT_NE(summary, nullptr);
    const JsonValue *distribution = summary->find("wrong_fills_per_set");
    ASSERT_NE(distribution, nullptr);
    for (const char *stat : {"mean", "max", "p50", "p90", "p99"})
        EXPECT_NE(distribution->find(stat), nullptr) << stat;
}

/** The manifest carries the obs knobs only when armed, so runs with
 *  observability off serialize byte-identically to the pre-obs
 *  schema (the golden run-record suite pins the full bytes). */
TEST(ObsRecord, ManifestMembersOnlyWhenArmed)
{
    SimConfig off;
    std::string plain = toJson(off).dump();
    EXPECT_EQ(plain.find("sample_interval"), std::string::npos);
    EXPECT_EQ(plain.find("set_heatmap"), std::string::npos);

    SimConfig on;
    on.sampleInterval = 5'000;
    on.setHeatmap = true;
    std::string armed = toJson(on).dump();
    EXPECT_NE(armed.find("\"sample_interval\":5000"), std::string::npos);
    EXPECT_NE(armed.find("\"set_heatmap\":true"), std::string::npos);
}

TEST(ObsRecord, SerialAndParallelSweepsEmitIdenticalRows)
{
    std::vector<JsonValue> serial = goldenRecords(/*parallelism=*/1);
    std::vector<JsonValue> parallel = goldenRecords(/*parallelism=*/4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].dump(), parallel[i].dump())
            << "timeseries row " << i
            << " depends on sweep parallelism";
    }

    // Heatmaps too: same grid, observations compared via their rows.
    std::vector<RunSpec> specs = goldenSpecs();
    std::vector<RunObservations> obs_serial, obs_parallel;
    std::vector<SimResults> r1 = runSweep(specs, 1, nullptr, &obs_serial);
    std::vector<SimResults> r2 = runSweep(specs, 4, nullptr, &obs_parallel);
    for (size_t i = 0; i < specs.size(); ++i) {
        ASSERT_NE(obs_serial[i].heatmap, nullptr);
        ASSERT_NE(obs_parallel[i].heatmap, nullptr);
        EXPECT_EQ(makeHeatmapRecord(*obs_serial[i].heatmap, r1[i],
                                    specs[i].config).dump(),
                  makeHeatmapRecord(*obs_parallel[i].heatmap, r2[i],
                                    specs[i].config).dump());
    }
}

TEST(GoldenTimeseries, MatchesCheckedInRows)
{
    std::vector<JsonValue> records = goldenRecords(/*parallelism=*/1);

    if (regenRequested()) {
        std::ofstream out(goldenPath(), std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << goldenPath();
        for (const JsonValue &record : records)
            out << record.dump() << '\n';
        GTEST_SKIP() << "regenerated " << goldenPath();
    }

    std::vector<JsonValue> golden;
    std::string error;
    ASSERT_TRUE(readJsonl(goldenPath(), golden, &error))
        << error << " — regenerate with SPECFETCH_REGEN_GOLDEN=1 "
        << "(see file header)";
    ASSERT_EQ(golden.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i], golden[i])
            << "timeseries row " << i << " diverged ("
            << toString(goldenPolicies()[i]) << ")";
    }
}

} // namespace
