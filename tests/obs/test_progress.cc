/**
 * @file
 * Tests for the sweep progress heartbeat (src/obs): the final JSONL
 * row, event counting, multi-sweep appends, and the disabled-path
 * no-ops. The reporter is a process global, so every test pairs its
 * begin() with end().
 */

#include "obs/progress.hh"

#include <gtest/gtest.h>

#include <cstdio>

#include "report/json.hh"
#include "report/report.hh"
#include "util/logging.hh"

using namespace specfetch;

namespace {

std::string
tempProgressPath(const char *tag)
{
    return testing::TempDir() + "specfetch_progress_" + tag + ".jsonl";
}

ProgressReporter::Options
fileOnly(const std::string &path)
{
    ProgressReporter::Options options;
    options.toStderr = false;
    options.filePath = path;
    // Heartbeats far apart: the tests assert on the final row only.
    options.intervalSeconds = 3600.0;
    return options;
}

uint64_t
integerMember(const JsonValue &row, const char *name)
{
    const JsonValue *member = row.find(name);
    EXPECT_NE(member, nullptr) << "row lacks '" << name << "'";
    return member ? member->asUint() : 0;
}

TEST(ProgressReporter, FinalRowSummarizesTheSweep)
{
    std::string path = tempProgressPath("final");
    ProgressReporter &reporter = ProgressReporter::global();
    reporter.begin(fileOnly(path), 5, "unit_sweep");
    ASSERT_TRUE(reporter.enabled());
    for (int i = 0; i < 3; ++i)
        reporter.runCompleted();
    reporter.runResumed();
    reporter.runRetried();
    reporter.runQuarantined();
    reporter.end();
    EXPECT_FALSE(reporter.enabled());

    std::vector<JsonValue> rows;
    std::string error;
    ASSERT_TRUE(readJsonl(path, rows, &error)) << error;
    ASSERT_FALSE(rows.empty());
    const JsonValue &final_row = rows.back();
    EXPECT_EQ(integerMember(final_row, "schema_version"), 1u);
    EXPECT_EQ(final_row.find("record")->asString(), "progress");
    EXPECT_EQ(final_row.find("sweep")->asString(), "unit_sweep");
    // runResumed() counts as completed too: 3 + 1.
    EXPECT_EQ(integerMember(final_row, "completed"), 4u);
    EXPECT_EQ(integerMember(final_row, "total"), 5u);
    EXPECT_EQ(integerMember(final_row, "resumed"), 1u);
    EXPECT_EQ(integerMember(final_row, "retried"), 1u);
    EXPECT_EQ(integerMember(final_row, "quarantined"), 1u);
    EXPECT_TRUE(final_row.find("final")->asBool());
    EXPECT_NE(final_row.find("elapsed_seconds"), nullptr);
    EXPECT_NE(final_row.find("eta_seconds"), nullptr);
    std::remove(path.c_str());
}

TEST(ProgressReporter, EventsBeforeBeginAreIgnored)
{
    ProgressReporter &reporter = ProgressReporter::global();
    ASSERT_FALSE(reporter.enabled());
    reporter.runCompleted();
    reporter.runQuarantined();

    std::string path = tempProgressPath("clean");
    reporter.begin(fileOnly(path), 2, "clean_sweep");
    reporter.runCompleted();
    reporter.end();

    std::vector<JsonValue> rows;
    std::string error;
    ASSERT_TRUE(readJsonl(path, rows, &error)) << error;
    EXPECT_EQ(integerMember(rows.back(), "completed"), 1u);
    EXPECT_EQ(integerMember(rows.back(), "quarantined"), 0u);
    std::remove(path.c_str());
}

TEST(ProgressReporter, LaterSweepsAppendToTheSameFile)
{
    std::string path = tempProgressPath("append");
    ProgressReporter &reporter = ProgressReporter::global();

    reporter.begin(fileOnly(path), 1, "first");
    reporter.runCompleted();
    reporter.end();
    reporter.begin(fileOnly(path), 1, "second");
    reporter.runCompleted();
    reporter.end();

    std::vector<JsonValue> rows;
    std::string error;
    ASSERT_TRUE(readJsonl(path, rows, &error)) << error;
    ASSERT_GE(rows.size(), 2u);
    EXPECT_EQ(rows.front().find("sweep")->asString(), "first");
    EXPECT_EQ(rows.back().find("sweep")->asString(), "second");
    std::remove(path.c_str());
}

TEST(ProgressReporter, DoubleBeginPanics)
{
    std::string path = tempProgressPath("double");
    ProgressReporter &reporter = ProgressReporter::global();
    reporter.begin(fileOnly(path), 1, "outer");
    {
        ScopedThrowOnError guard;
        EXPECT_THROW(reporter.begin(fileOnly(path), 1, "inner"),
                     SimulationError);
    }
    reporter.end();
    std::remove(path.c_str());
}

TEST(ProgressReporter, EndWithoutBeginIsANoOp)
{
    ProgressReporter &reporter = ProgressReporter::global();
    ASSERT_FALSE(reporter.enabled());
    reporter.end();
    EXPECT_FALSE(reporter.enabled());
}

} // namespace
