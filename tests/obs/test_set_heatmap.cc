/**
 * @file
 * Tests for the per-set icache heatmap (src/obs): set mapping and
 * eviction attribution at the unit level, and — through a full
 * simulation — that the per-set series sum exactly to the run's
 * aggregate counters while never perturbing the run itself.
 */

#include "obs/set_heatmap.hh"

#include <gtest/gtest.h>

#include <numeric>

#include "core/simulator.hh"
#include "util/logging.hh"
#include "workload/registry.hh"

using namespace specfetch;

namespace {

ICacheConfig
smallCache()
{
    ICacheConfig config;
    config.sizeBytes = 1024;
    config.lineBytes = 32;
    config.ways = 1;
    return config;
}

uint64_t
sum(const std::vector<uint64_t> &series)
{
    return std::accumulate(series.begin(), series.end(), uint64_t{0});
}

TEST(SetHeatmap, MapsLinesToSetsModulo)
{
    SetHeatmap heatmap(smallCache());
    ASSERT_EQ(heatmap.sets(), 32u);

    heatmap.demandAccess(0);
    heatmap.demandAccess(32);            // next line -> next set
    heatmap.demandAccess(32 * 32);       // wraps back to set 0
    heatmap.demandAccess(32 + 7);        // offset within a line ignored
    EXPECT_EQ(heatmap.demandAccesses()[0], 2u);
    EXPECT_EQ(heatmap.demandAccesses()[1], 2u);
    EXPECT_EQ(sum(heatmap.demandAccesses()), 4u);
}

TEST(SetHeatmap, AttributesEvictionsToTheFillingPath)
{
    SetHeatmap heatmap(smallCache());

    Eviction none;
    Eviction victim;
    victim.valid = true;
    victim.lineAddr = 64;

    heatmap.correctFill(0, none);
    heatmap.correctFill(0, victim);
    heatmap.wrongFill(32, &victim);
    heatmap.wrongFill(32, nullptr);      // buffered (Resume) fill

    EXPECT_EQ(heatmap.correctFills()[0], 2u);
    EXPECT_EQ(heatmap.evictionsByCorrect()[0], 1u);
    EXPECT_EQ(heatmap.wrongFills()[1], 2u);
    EXPECT_EQ(heatmap.evictionsByWrong()[1], 1u);
}

TEST(SetHeatmap, ResetZeroesEverySeries)
{
    SetHeatmap heatmap(smallCache());
    heatmap.demandAccess(0);
    heatmap.demandMiss(0);
    heatmap.wrongAccess(32);
    heatmap.wrongMiss(32);
    heatmap.reset();
    EXPECT_EQ(sum(heatmap.demandAccesses()), 0u);
    EXPECT_EQ(sum(heatmap.demandMisses()), 0u);
    EXPECT_EQ(sum(heatmap.wrongAccesses()), 0u);
    EXPECT_EQ(sum(heatmap.wrongMisses()), 0u);
}

TEST(SetHeatmap, RejectsDegenerateGeometry)
{
    ScopedThrowOnError guard;
    ICacheConfig zero_sets = smallCache();
    zero_sets.sizeBytes = 16;            // smaller than one line
    EXPECT_THROW(SetHeatmap{zero_sets}, SimulationError);

    ICacheConfig odd_line = smallCache();
    odd_line.lineBytes = 48;             // not a power of two
    odd_line.sizeBytes = 48 * 8;
    EXPECT_THROW(SetHeatmap{odd_line}, SimulationError);
}

/** Full-run integration: the spatial series must tile the aggregate
 *  counters exactly, for a policy with real wrong-path traffic. */
TEST(SetHeatmap, PerSetSeriesSumToRunAggregates)
{
    SimConfig config;
    config.instructionBudget = 50'000;
    config.policy = FetchPolicy::Optimistic;
    config.setHeatmap = true;

    RunObservations obs;
    SimResults r = runSimulation(*sharedWorkload("li"), config, obs);
    ASSERT_NE(obs.heatmap, nullptr);
    const SetHeatmap &heatmap = *obs.heatmap;

    EXPECT_EQ(heatmap.sets(), config.icache.numSets());
    EXPECT_EQ(sum(heatmap.demandAccesses()), r.demandAccesses);
    EXPECT_EQ(sum(heatmap.demandMisses()), r.demandMisses);
    EXPECT_EQ(sum(heatmap.wrongAccesses()), r.wrongAccesses);
    EXPECT_EQ(sum(heatmap.wrongMisses()), r.wrongMisses);
    EXPECT_EQ(sum(heatmap.wrongFills()), r.wrongFills);
    ASSERT_GT(r.wrongAccesses, 0u)
        << "Optimistic should walk the wrong path";
    // Fills can come from buffers as well as the array; the per-set
    // fill count is bounded by the misses that caused them.
    EXPECT_LE(sum(heatmap.correctFills()), r.demandMisses);
    EXPECT_GT(sum(heatmap.correctFills()), 0u);
}

TEST(SetHeatmap, ResumePolicyCountsBufferedFills)
{
    SimConfig config;
    config.instructionBudget = 50'000;
    config.policy = FetchPolicy::Resume;
    config.setHeatmap = true;

    RunObservations obs;
    SimResults r = runSimulation(*sharedWorkload("li"), config, obs);
    ASSERT_NE(obs.heatmap, nullptr);
    EXPECT_EQ(sum(obs.heatmap->wrongFills()), r.wrongFills);
}

TEST(SetHeatmap, CollectionNeverPerturbsResults)
{
    for (FetchPolicy policy : allPolicies()) {
        SimConfig plain;
        plain.instructionBudget = 50'000;
        plain.policy = policy;
        SimResults off = runSimulation(*sharedWorkload("li"), plain);

        SimConfig hot = plain;
        hot.setHeatmap = true;
        RunObservations obs;
        SimResults on = runSimulation(*sharedWorkload("li"), hot, obs);
        EXPECT_EQ(on, off)
            << toString(policy) << " diverged with the heatmap armed";
        EXPECT_NE(obs.heatmap, nullptr);
    }
}

TEST(SetHeatmap, DisabledRunCarriesNoHeatmap)
{
    SimConfig config;
    config.instructionBudget = 20'000;
    RunObservations obs;
    runSimulation(*sharedWorkload("li"), config, obs);
    EXPECT_EQ(obs.heatmap, nullptr);
    EXPECT_TRUE(obs.epochs.empty());
}

} // namespace
