/**
 * @file
 * Unit and integration tests for the interval sampler (src/obs):
 * epoch tiling is exact, concatenated deltas sum to the run's
 * end-of-run counters, and arming the sampler never perturbs the
 * simulation itself.
 */

#include "obs/interval_sampler.hh"

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "obs/obs_record.hh"
#include "trace/snapshot.hh"
#include "util/logging.hh"
#include "workload/executor.hh"
#include "workload/registry.hh"

using namespace specfetch;

namespace {

constexpr uint64_t kBudget = 50'000;
constexpr uint64_t kInterval = 8'000;

SimConfig
sampledConfig(uint64_t interval, FetchPolicy policy = FetchPolicy::Optimistic)
{
    SimConfig config;
    config.instructionBudget = kBudget;
    config.policy = policy;
    config.sampleInterval = interval;
    return config;
}

/** Run li under @p config and return (results, observations). */
SimResults
observe(const SimConfig &config, RunObservations &out)
{
    return runSimulation(*sharedWorkload("li"), config, out);
}

std::string
seriesDump(const std::vector<EpochRecord> &epochs)
{
    std::string out;
    for (const EpochRecord &epoch : epochs)
        out += toJson(epoch).dump() + "\n";
    return out;
}

TEST(IntervalSampler, ZeroIntervalPanics)
{
    ScopedThrowOnError guard;
    EXPECT_THROW(IntervalSampler(0), SimulationError);
}

TEST(IntervalSampler, EpochsTileTheRunExactly)
{
    RunObservations obs;
    SimResults results = observe(sampledConfig(kInterval), obs);

    // 50k at 8k per epoch: six full epochs plus a 2k partial tail.
    ASSERT_EQ(obs.epochs.size(), 7u);
    EXPECT_EQ(obs.sampleInterval, kInterval);
    uint64_t expected_first = 0;
    for (size_t i = 0; i < obs.epochs.size(); ++i) {
        const EpochRecord &epoch = obs.epochs[i];
        EXPECT_EQ(epoch.epoch, i);
        EXPECT_EQ(epoch.firstInstruction, expected_first);
        if (i + 1 < obs.epochs.size()) {
            EXPECT_EQ(epoch.instructions(), kInterval)
                << "interior epoch " << i << " is not interval-sized";
            EXPECT_FALSE(epoch.partial);
        }
        expected_first = epoch.lastInstruction;
    }
    const EpochRecord &tail = obs.epochs.back();
    EXPECT_TRUE(tail.partial);
    EXPECT_EQ(tail.instructions(), kBudget % kInterval);
    EXPECT_EQ(tail.lastInstruction, results.instructions);
}

TEST(IntervalSampler, ExactMultipleBudgetHasNoPartialEpoch)
{
    RunObservations obs;
    observe(sampledConfig(10'000), obs);
    ASSERT_EQ(obs.epochs.size(), 5u);
    for (const EpochRecord &epoch : obs.epochs) {
        EXPECT_FALSE(epoch.partial);
        EXPECT_EQ(epoch.instructions(), 10'000u);
    }
}

TEST(IntervalSampler, EpochsSumToRunTotals)
{
    RunObservations obs;
    SimResults r = observe(sampledConfig(kInterval), obs);

    EpochRecord sum;
    for (const EpochRecord &epoch : obs.epochs) {
        sum.slots += epoch.slots;
        for (size_t k = 0; k < kNumPenaltyKinds; ++k)
            sum.penaltySlots[k] += epoch.penaltySlots[k];
        sum.controlInsts += epoch.controlInsts;
        sum.condBranches += epoch.condBranches;
        sum.misfetches += epoch.misfetches;
        sum.dirMispredicts += epoch.dirMispredicts;
        sum.targetMispredicts += epoch.targetMispredicts;
        sum.demandAccesses += epoch.demandAccesses;
        sum.demandMisses += epoch.demandMisses;
        sum.demandFills += epoch.demandFills;
        sum.bufferHits += epoch.bufferHits;
        sum.wrongAccesses += epoch.wrongAccesses;
        sum.wrongMisses += epoch.wrongMisses;
        sum.wrongFills += epoch.wrongFills;
        sum.prefetchesIssued += epoch.prefetchesIssued;
        sum.lastInstruction = epoch.lastInstruction;
    }

    EXPECT_EQ(sum.lastInstruction, r.instructions);
    EXPECT_EQ(sum.slots, static_cast<uint64_t>(r.finalSlot));
    for (PenaltyKind kind : allPenaltyKinds()) {
        EXPECT_EQ(sum.penaltySlots[static_cast<size_t>(kind)],
                  r.penalty.slots(kind))
            << "penalty " << toString(kind) << " deltas do not sum";
    }
    EXPECT_EQ(sum.controlInsts, r.controlInsts);
    EXPECT_EQ(sum.condBranches, r.condBranches);
    EXPECT_EQ(sum.misfetches, r.misfetches);
    EXPECT_EQ(sum.dirMispredicts, r.dirMispredicts);
    EXPECT_EQ(sum.targetMispredicts, r.targetMispredicts);
    EXPECT_EQ(sum.demandAccesses, r.demandAccesses);
    EXPECT_EQ(sum.demandMisses, r.demandMisses);
    EXPECT_EQ(sum.demandFills, r.demandFills);
    EXPECT_EQ(sum.bufferHits, r.bufferHits);
    EXPECT_EQ(sum.wrongAccesses, r.wrongAccesses);
    EXPECT_EQ(sum.wrongMisses, r.wrongMisses);
    EXPECT_EQ(sum.wrongFills, r.wrongFills);
    EXPECT_EQ(sum.prefetchesIssued, r.prefetchesIssued);
}

TEST(IntervalSampler, SamplingNeverPerturbsResults)
{
    for (FetchPolicy policy : allPolicies()) {
        SimConfig plain = sampledConfig(0, policy);
        plain.sampleInterval = 0;
        SimResults unsampled =
            runSimulation(*sharedWorkload("li"), plain);

        RunObservations obs;
        SimResults sampled =
            observe(sampledConfig(kInterval, policy), obs);
        EXPECT_EQ(sampled, unsampled)
            << toString(policy) << " diverged with the sampler armed";
        EXPECT_FALSE(obs.epochs.empty());
    }
}

TEST(IntervalSampler, PrefetchRunEpochsCarryPrefetchDeltas)
{
    SimConfig config = sampledConfig(kInterval);
    config.nextLinePrefetch = true;
    RunObservations obs;
    SimResults r = runSimulation(*sharedWorkload("li"), config, obs);
    ASSERT_GT(r.prefetchesIssued, 0u);
    uint64_t sum = 0;
    for (const EpochRecord &epoch : obs.epochs)
        sum += epoch.prefetchesIssued;
    EXPECT_EQ(sum, r.prefetchesIssued);
}

TEST(IntervalSampler, WarmupIsExcludedFromTheSeries)
{
    SimConfig config = sampledConfig(kInterval);
    config.warmupInstructions = 12'000;
    RunObservations obs;
    SimResults r = runSimulation(*sharedWorkload("li"), config, obs);
    ASSERT_FALSE(obs.epochs.empty());
    // The series is in post-warmup coordinates: starts at zero and
    // covers exactly the measured instructions.
    EXPECT_EQ(obs.epochs.front().firstInstruction, 0u);
    EXPECT_EQ(obs.epochs.back().lastInstruction, r.instructions);
}

TEST(IntervalSampler, SnapshotReplayYieldsIdenticalEpochs)
{
    const Workload &workload = *sharedWorkload("li");
    SimConfig config = sampledConfig(kInterval);

    RunObservations live;
    runSimulation(workload, config, live);

    Executor recorder(workload.cfg, config.runSeed);
    TraceSnapshot snapshot = TraceSnapshot::record(recorder, kBudget);
    RunObservations replayed;
    runSimulation(workload, config, snapshot, replayed);

    EXPECT_EQ(seriesDump(live.epochs), seriesDump(replayed.epochs));
}

} // namespace
