/**
 * @file
 * Tests for the Chrome trace-event sink (src/obs): span buffering,
 * the document written on close, thread-id mapping, and the
 * disabled-path no-op guarantees. The sink is a process global, so
 * every test leaves it closed.
 */

#include "obs/trace_event.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

using namespace specfetch;

namespace {

std::string
tempTracePath(const char *tag)
{
    return testing::TempDir() + "specfetch_trace_" + tag + ".json";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

class TraceEventTest : public testing::Test
{
  protected:
    /** The singleton must not leak an open sink between tests. */
    void TearDown() override { TraceEventSink::global().close(); }
};

TEST_F(TraceEventTest, DisabledSinkRecordsNothing)
{
    TraceEventSink &sink = TraceEventSink::global();
    ASSERT_FALSE(sink.enabled());
    {
        TraceSpan span("ignored", "test");
    }
    EXPECT_EQ(sink.pendingSpans(), 0u);
    // Closing a never-opened sink is a harmless no-op.
    EXPECT_TRUE(sink.close());
}

TEST_F(TraceEventTest, SpansLandInTheDocument)
{
    std::string path = tempTracePath("basic");
    TraceEventSink &sink = TraceEventSink::global();
    sink.open(path);
    ASSERT_TRUE(sink.enabled());
    {
        TraceSpan outer("sweep", "test");
        TraceSpan inner("run", "test", "li Optimistic");
    }
    EXPECT_EQ(sink.pendingSpans(), 2u);
    ASSERT_TRUE(sink.close());
    EXPECT_FALSE(sink.enabled());

    std::string doc = slurp(path);
    EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"sweep\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"run\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(doc.find("\"detail\":\"li Optimistic\""),
              std::string::npos);
    // The span without detail must not carry an empty args object.
    EXPECT_EQ(doc.find("\"detail\":\"\""), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(TraceEventTest, ThreadsGetSmallDistinctTids)
{
    std::string path = tempTracePath("tids");
    TraceEventSink &sink = TraceEventSink::global();
    sink.open(path);
    {
        TraceSpan main_span("main_work", "test");
        std::thread worker([] { TraceSpan span("worker_work", "test"); });
        worker.join();
    }
    ASSERT_TRUE(sink.close());

    std::string doc = slurp(path);
    EXPECT_NE(doc.find("\"tid\":1"), std::string::npos);
    EXPECT_NE(doc.find("\"tid\":2"), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(TraceEventTest, CloseStopsCollection)
{
    std::string path = tempTracePath("stop");
    TraceEventSink &sink = TraceEventSink::global();
    sink.open(path);
    {
        TraceSpan span("before_close", "test");
    }
    ASSERT_TRUE(sink.close());
    {
        TraceSpan span("after_close", "test");
    }
    EXPECT_EQ(sink.pendingSpans(), 0u);

    std::string doc = slurp(path);
    EXPECT_NE(doc.find("before_close"), std::string::npos);
    EXPECT_EQ(doc.find("after_close"), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(TraceEventTest, ExplicitTidSpansLandOnTheirLane)
{
    std::string path = tempTracePath("explicit_tid");
    TraceEventSink &sink = TraceEventSink::global();
    sink.open(path);
    auto begin = std::chrono::steady_clock::now();
    auto end = begin + std::chrono::microseconds(250);
    // The sweep service's per-worker lanes: explicit tids well above
    // the interned range.
    sink.recordSpanOnTid("execute", "serve", begin, end, "li:key",
                         TraceEventSink::kExplicitTidBase);
    sink.recordSpanOnTid("queue_wait", "serve", begin, end, "",
                         TraceEventSink::kExplicitTidBase + 1);
    {
        TraceSpan interned("normal", "test");
    }
    ASSERT_TRUE(sink.close());

    std::string doc = slurp(path);
    EXPECT_NE(doc.find("\"tid\":1000"), std::string::npos);
    EXPECT_NE(doc.find("\"tid\":1001"), std::string::npos);
    // The interned span still gets a small tid (no args: tid is the
    // event's last member).
    EXPECT_NE(doc.find("\"tid\":1}"), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"queue_wait\""), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(TraceEventTest, UnwritablePathFailsOnClose)
{
    TraceEventSink &sink = TraceEventSink::global();
    sink.open("/nonexistent-dir/trace.json");
    {
        TraceSpan span("doomed", "test");
    }
    testing::internal::CaptureStderr();
    EXPECT_FALSE(sink.close());
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("trace"), std::string::npos);
}

} // namespace
