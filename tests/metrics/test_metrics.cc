/**
 * @file
 * Metrics primitives (DESIGN.md §16): log-linear bucket mapping
 * properties, sharded counter/histogram exactness under concurrency,
 * registry snapshot shape, and the JSONL flusher's file contract.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "metrics/flusher.hh"
#include "metrics/metrics.hh"
#include "report/json.hh"
#include "report/metrics_record.hh"
#include "report/record.hh"

using namespace specfetch;

namespace {

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "specfetch_metrics_" +
           tag + "_" + std::to_string(::getpid()) + ".jsonl";
}

} // namespace

TEST(HistogramBuckets, SmallValuesGetExactBuckets)
{
    for (uint64_t v = 0; v < LatencyHistogram::kLinearBuckets; ++v) {
        unsigned index = LatencyHistogram::bucketIndex(v);
        EXPECT_EQ(index, v);
        EXPECT_EQ(LatencyHistogram::bucketLowerBound(index), v);
    }
}

TEST(HistogramBuckets, IndexIsMonotonicAndLowerBoundInverts)
{
    // Lower bounds must be strictly increasing, and every bucket's
    // lower bound must map back into that bucket.
    uint64_t previous = 0;
    for (unsigned index = 0; index < LatencyHistogram::kBucketCount;
         ++index) {
        uint64_t lower = LatencyHistogram::bucketLowerBound(index);
        if (index > 0) {
            EXPECT_GT(lower, previous) << "index " << index;
        }
        EXPECT_EQ(LatencyHistogram::bucketIndex(lower), index);
        previous = lower;
    }
}

TEST(HistogramBuckets, RelativeErrorBounded)
{
    // Any value's bucket lower bound is within 1/8 (12.5%) of the
    // value: the bucket width is one sub-bucket step of its magnitude.
    for (uint64_t value : {17ull, 100ull, 999ull, 4096ull, 65537ull,
                           1'000'000ull, 123'456'789ull}) {
        unsigned index = LatencyHistogram::bucketIndex(value);
        uint64_t lower = LatencyHistogram::bucketLowerBound(index);
        uint64_t upper =
            index + 1 < LatencyHistogram::kBucketCount
                ? LatencyHistogram::bucketLowerBound(index + 1) - 1
                : UINT64_MAX;
        EXPECT_LE(lower, value);
        EXPECT_GE(upper, value);
        EXPECT_LE(upper - lower + 1, lower / 8 + 1)
            << "bucket too wide at " << value;
    }
}

TEST(HistogramBuckets, HugeValuesClampIntoTopBucket)
{
    EXPECT_EQ(LatencyHistogram::bucketIndex(UINT64_MAX),
              LatencyHistogram::kBucketCount - 1);
    EXPECT_EQ(LatencyHistogram::bucketIndex(uint64_t(1) << 63),
              LatencyHistogram::kBucketCount - 1);
}

TEST(MetricCounterTest, ConcurrentAddsSumExactly)
{
    MetricCounter counter;
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kAddsPerThread = 50'000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&counter] {
            for (uint64_t i = 0; i < kAddsPerThread; ++i)
                counter.add(1);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
}

TEST(LatencyHistogramTest, ConcurrentObservationsAreAllCounted)
{
    LatencyHistogram histogram;
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kObsPerThread = 20'000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&histogram, t] {
            for (uint64_t i = 0; i < kObsPerThread; ++i)
                histogram.observe(i % (100 * (t + 1)));
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    HistogramSnapshot snapshot;
    histogram.snapshotInto(snapshot);
    EXPECT_EQ(snapshot.count, kThreads * kObsPerThread);
    uint64_t bucketTotal = 0;
    uint64_t previousLower = 0;
    bool first = true;
    for (const auto &[lower, count] : snapshot.buckets) {
        if (!first) {
            EXPECT_GT(lower, previousLower);
        }
        first = false;
        previousLower = lower;
        EXPECT_GT(count, 0u);
        bucketTotal += count;
    }
    EXPECT_EQ(bucketTotal, snapshot.count);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStableInstruments)
{
    MetricsRegistry registry;
    MetricCounter &a = registry.counter("x");
    MetricCounter &b = registry.counter("x");
    EXPECT_EQ(&a, &b);
    a.add(3);
    registry.gauge("g").set(7);
    registry.histogram("h").observe(42);

    MetricsSnapshot snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.counters.size(), 1u);
    EXPECT_EQ(snapshot.counters[0].first, "x");
    EXPECT_EQ(snapshot.counters[0].second, 3u);
    ASSERT_EQ(snapshot.gauges.size(), 1u);
    EXPECT_EQ(snapshot.gauges[0].second, 7u);
    ASSERT_EQ(snapshot.histograms.size(), 1u);
    EXPECT_EQ(snapshot.histograms[0].name, "h");
    EXPECT_EQ(snapshot.histograms[0].count, 1u);
    EXPECT_EQ(snapshot.histograms[0].sum, 42u);
}

TEST(MetricsRecordTest, SerializesCountsAndBuckets)
{
    MetricsRegistry registry;
    registry.counter("c").add(5);
    registry.histogram("h").observe(10);
    registry.histogram("h").observe(100);

    JsonValue record = makeMetricsRecord(
        "unit_test", /*seq=*/2, /*elapsedSeconds=*/1.5, /*final=*/true,
        JsonValue::object(), JsonValue::object(), registry.snapshot());
    EXPECT_EQ(record.find("record")->asString(), "metrics");
    EXPECT_EQ(record.find("seq")->asUint(), 2);
    EXPECT_TRUE(record.find("final")->asBool());
    const JsonValue *counters = record.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("c")->asUint(), 5);
    const JsonValue *histograms = record.find("histograms");
    ASSERT_NE(histograms, nullptr);
    const JsonValue *h = histograms->find("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->find("count")->asUint(), 2);
    EXPECT_EQ(h->find("sum_us")->asUint(), 110);
    EXPECT_EQ(h->find("buckets")->size(), 2u);
}

TEST(MetricsFlusherTest, WritesBuilderRecordsAndFinal)
{
    const std::string path = tempPath("flusher");
    MetricsFlusher flusher;
    MetricsFlusher::Options options;
    options.filePath = path;
    options.intervalSeconds = 0.0; // only the final record is periodic
    ASSERT_TRUE(flusher.begin(
        options, [](uint64_t seq, double elapsedSeconds, bool final) {
            JsonValue record = JsonValue::object();
            record.set("schema_version",
                       JsonValue::integer(kReportSchemaVersion))
                .set("record", JsonValue::string("metrics"))
                .set("seq", JsonValue::integer(seq))
                .set("elapsed_seconds", JsonValue::number(elapsedSeconds))
                .set("final", JsonValue::boolean(final));
            return record;
        }));
    JsonValue extra = JsonValue::object();
    extra.set("record", JsonValue::string("store_open"));
    flusher.emitRecord(extra);
    flusher.end();
    flusher.end(); // idempotent

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::vector<JsonValue> rows;
    std::string line;
    while (std::getline(in, line)) {
        JsonValue row;
        ASSERT_TRUE(JsonValue::parse(line, row, nullptr)) << line;
        rows.push_back(std::move(row));
    }
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].find("record")->asString(), "store_open");
    EXPECT_EQ(rows[1].find("record")->asString(), "metrics");
    EXPECT_TRUE(rows[1].find("final")->asBool());
    std::remove(path.c_str());
}
