/** @file Unit tests for cache/icache.hh. */

#include "cache/icache.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

ICacheConfig
smallConfig(unsigned ways = 1)
{
    ICacheConfig config;
    config.sizeBytes = 1024;    // 32 lines
    config.lineBytes = 32;
    config.ways = ways;
    return config;
}

TEST(ICache, GeometryDefaults)
{
    ICache cache;    // paper baseline: 8K direct mapped, 32B lines
    EXPECT_EQ(cache.config().numLines(), 256u);
    EXPECT_EQ(cache.config().numSets(), 256u);
    EXPECT_EQ(cache.lineBytes(), 32u);
}

TEST(ICache, LineOf)
{
    ICache cache(smallConfig());
    EXPECT_EQ(cache.lineOf(0x1000), 0x1000u);
    EXPECT_EQ(cache.lineOf(0x101f), 0x1000u);
    EXPECT_EQ(cache.lineOf(0x1020), 0x1020u);
    EXPECT_EQ(cache.nextLineOf(0x1004), 0x1020u);
}

TEST(ICache, MissThenHit)
{
    ICache cache(smallConfig());
    EXPECT_FALSE(cache.access(0x1000));
    cache.insert(0x1000);
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_EQ(cache.accesses.value(), 2u);
    EXPECT_EQ(cache.misses.value(), 1u);
}

TEST(ICache, DirectMappedConflict)
{
    ICache cache(smallConfig());
    // 32 lines: 0x1000 and 0x1000 + 32*32 map to the same set.
    Addr a = 0x1000;
    Addr b = 0x1000 + 32 * 32;
    cache.insert(a);
    Eviction ev = cache.insert(b);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, a);
    EXPECT_FALSE(cache.contains(a));
    EXPECT_TRUE(cache.contains(b));
}

TEST(ICache, TwoWayAvoidsSingleConflict)
{
    ICache cache(smallConfig(2));
    Addr a = 0x1000;
    Addr b = 0x1000 + 16 * 32;    // same set (16 sets now)
    cache.insert(a);
    Eviction ev = cache.insert(b);
    EXPECT_FALSE(ev.valid);
    EXPECT_TRUE(cache.contains(a));
    EXPECT_TRUE(cache.contains(b));
}

TEST(ICache, TwoWayLruEviction)
{
    ICache cache(smallConfig(2));
    Addr set_stride = 16 * 32;
    Addr a = 0x1000;
    Addr b = a + set_stride;
    Addr c = a + 2 * set_stride;
    cache.insert(a);
    cache.insert(b);
    cache.access(a);             // refresh a
    Eviction ev = cache.insert(c);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, b);   // b was LRU
    EXPECT_TRUE(cache.contains(a));
    EXPECT_TRUE(cache.contains(c));
}

TEST(ICache, EvictionReportsCorrectAddress)
{
    ICache cache(smallConfig());
    Addr victim = 0x1000 + 7 * 32;             // set 7
    Addr evictor = victim + 32 * 32;           // same set, next frame
    cache.insert(victim);
    Eviction ev = cache.insert(evictor);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, victim);
}

TEST(ICache, ReinsertIsIdempotent)
{
    ICache cache(smallConfig());
    cache.insert(0x1000);
    Eviction ev = cache.insert(0x1000);
    EXPECT_FALSE(ev.valid);
    EXPECT_TRUE(cache.contains(0x1000));
}

TEST(ICache, FirstRefBitSetOnInsert)
{
    ICache cache(smallConfig());
    cache.insert(0x1000);
    EXPECT_TRUE(cache.testAndClearFirstRef(0x1000));
    // Second query: cleared.
    EXPECT_FALSE(cache.testAndClearFirstRef(0x1000));
}

TEST(ICache, FirstRefBitResetOnRefill)
{
    ICache cache(smallConfig());
    cache.insert(0x1000);
    cache.testAndClearFirstRef(0x1000);
    // Evict and refill: the bit is set again.
    cache.insert(0x1000 + 32 * 32);
    cache.insert(0x1000);
    EXPECT_TRUE(cache.testAndClearFirstRef(0x1000));
}

TEST(ICache, FirstRefMissingLine)
{
    ICache cache(smallConfig());
    EXPECT_FALSE(cache.testAndClearFirstRef(0x1000));
}

TEST(ICache, AccessDoesNotTouchFirstRef)
{
    ICache cache(smallConfig());
    cache.insert(0x1000);
    cache.access(0x1000);
    EXPECT_TRUE(cache.testAndClearFirstRef(0x1000));
}

TEST(ICache, ResetInvalidatesAll)
{
    ICache cache(smallConfig());
    cache.insert(0x1000);
    cache.reset();
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST(ICacheDeath, MisalignedAccessPanics)
{
    ICache cache(smallConfig());
    EXPECT_DEATH(cache.access(0x1004), "aligned");
    EXPECT_DEATH(cache.insert(0x1004), "aligned");
}

TEST(ICacheDeath, RejectsBadGeometry)
{
    ICacheConfig config;
    config.sizeBytes = 1000;    // not a power of two
    config.lineBytes = 32;
    EXPECT_EXIT({ ICache cache(config); }, ::testing::ExitedWithCode(1),
                "power of two");
}

} // namespace
} // namespace specfetch
