/** @file Unit tests for cache/prefetcher.hh (next-line policy). */

#include "cache/prefetcher.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

class PrefetcherTest : public ::testing::Test
{
  protected:
    PrefetcherTest() : prefetcher(cache, bus, buffer) {}

    static constexpr Slot kFill = 20;

    ICache cache;    // 8K DM 32B baseline
    MemoryBus bus;
    LineBuffer buffer;
    NextLinePrefetcher prefetcher;
};

TEST_F(PrefetcherTest, TriggersOnFirstReferenceOnly)
{
    cache.insert(0x1000);    // first-ref bit set
    EXPECT_TRUE(prefetcher.onAccess(0x1000, 0, kFill));
    EXPECT_EQ(prefetcher.issued.value(), 1u);
    // Bit consumed: further accesses do not re-trigger.
    EXPECT_FALSE(prefetcher.onAccess(0x1000, 100, kFill));
    EXPECT_EQ(prefetcher.issued.value(), 1u);
}

TEST_F(PrefetcherTest, PrefetchGoesToBuffer)
{
    cache.insert(0x1000);
    prefetcher.onAccess(0x1000, 0, kFill);
    EXPECT_TRUE(prefetcher.buffer().matches(0x1020));
    EXPECT_EQ(prefetcher.buffer().readyAt(), kFill);
    EXPECT_FALSE(cache.contains(0x1020));    // not written yet
}

TEST_F(PrefetcherTest, OccupiesBus)
{
    cache.insert(0x1000);
    prefetcher.onAccess(0x1000, 5, kFill);
    EXPECT_EQ(bus.freeAt(), 5 + kFill);
}

TEST_F(PrefetcherTest, SuppressedWhenNextLinePresent)
{
    cache.insert(0x1000);
    cache.insert(0x1020);
    EXPECT_FALSE(prefetcher.onAccess(0x1000, 0, kFill));
    EXPECT_EQ(prefetcher.suppressedPresent.value(), 1u);
    EXPECT_EQ(prefetcher.issued.value(), 0u);
    // The trigger bit is still consumed ("at the same time we reset
    // the bit").
    EXPECT_FALSE(cache.testAndClearFirstRef(0x1000));
}

TEST_F(PrefetcherTest, SuppressedWhenBusBusy)
{
    cache.insert(0x1000);
    bus.acquire(0, 100);
    EXPECT_FALSE(prefetcher.onAccess(0x1000, 10, kFill));
    EXPECT_EQ(prefetcher.suppressedBusy.value(), 1u);
}

TEST_F(PrefetcherTest, NoTriggerWithoutFirstRefBit)
{
    cache.insert(0x1000);
    cache.testAndClearFirstRef(0x1000);
    EXPECT_FALSE(prefetcher.onAccess(0x1000, 0, kFill));
}

TEST_F(PrefetcherTest, NewPrefetchRetiresPreviousLine)
{
    cache.insert(0x1000);
    prefetcher.onAccess(0x1000, 0, kFill);          // prefetch 0x1020
    cache.insert(0x2000);
    // Issue the next prefetch after the first completed: the first
    // must be written into the array.
    EXPECT_TRUE(prefetcher.onAccess(0x2000, 30, kFill));
    EXPECT_TRUE(cache.contains(0x1020));
    EXPECT_TRUE(prefetcher.buffer().matches(0x2020));
}

TEST_F(PrefetcherTest, DrainOnDemand)
{
    cache.insert(0x1000);
    prefetcher.onAccess(0x1000, 0, kFill);
    prefetcher.drain(kFill);
    EXPECT_TRUE(cache.contains(0x1020));
    EXPECT_FALSE(prefetcher.buffer().valid());
}

TEST_F(PrefetcherTest, DrainTooEarlyKeepsBuffer)
{
    cache.insert(0x1000);
    prefetcher.onAccess(0x1000, 0, kFill);
    prefetcher.drain(kFill - 1);
    EXPECT_FALSE(cache.contains(0x1020));
    EXPECT_TRUE(prefetcher.buffer().valid());
}

TEST_F(PrefetcherTest, SuppressedWhenInOwnBuffer)
{
    cache.insert(0x1000);
    prefetcher.onAccess(0x1000, 0, kFill);    // buffer holds 0x1020
    // Re-insert 0x1000 is idempotent but re-sets its bit via insert();
    // easier: give 0x1000 its bit back by evict+refill.
    cache.insert(0x1000 + 256 * 32);
    cache.insert(0x1000);
    EXPECT_FALSE(prefetcher.onAccess(0x1000, 100, kFill));
    EXPECT_EQ(prefetcher.suppressedPresent.value(), 1u);
}

TEST_F(PrefetcherTest, ShadowBufferSuppresses)
{
    LineBuffer resume;
    LineBuffer own;
    NextLinePrefetcher pf(cache, bus, own, &resume);
    cache.insert(0x1000);
    resume.set(0x1020, 50);    // the next line is already in flight
    EXPECT_FALSE(pf.onAccess(0x1000, 0, kFill));
    EXPECT_EQ(pf.suppressedPresent.value(), 1u);
}

TEST_F(PrefetcherTest, ChainsAcrossSequentialLines)
{
    // Streaming through prefetched lines keeps prefetching ahead:
    // insert sets the bit, so each drained line re-arms the trigger.
    cache.insert(0x1000);
    ASSERT_TRUE(prefetcher.onAccess(0x1000, 0, kFill));
    prefetcher.drain(kFill);                        // 0x1020 in array
    ASSERT_TRUE(prefetcher.onAccess(0x1020, kFill + 1, kFill));
    EXPECT_TRUE(prefetcher.buffer().matches(0x1040));
}

} // namespace
} // namespace specfetch
