/** @file Unit tests for cache/bus.hh. */

#include "cache/bus.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(Bus, InitiallyFree)
{
    MemoryBus bus;
    EXPECT_TRUE(bus.isFree(0));
    EXPECT_EQ(bus.freeAt(), 0);
}

TEST(Bus, AcquireWhenFree)
{
    MemoryBus bus;
    Slot done = bus.acquire(10, 20);
    EXPECT_EQ(done, 30);
    EXPECT_EQ(bus.freeAt(), 30);
    EXPECT_FALSE(bus.isFree(29));
    EXPECT_TRUE(bus.isFree(30));
}

TEST(Bus, BackToBackQueues)
{
    MemoryBus bus;
    bus.acquire(0, 20);
    Slot done = bus.acquire(5, 20);    // must wait until 20
    EXPECT_EQ(done, 40);
}

TEST(Bus, IdleGapRespected)
{
    MemoryBus bus;
    bus.acquire(0, 20);
    Slot done = bus.acquire(100, 20);    // bus long free
    EXPECT_EQ(done, 120);
}

TEST(Bus, CountsTransactions)
{
    MemoryBus bus;
    bus.acquire(0, 1);
    bus.acquire(0, 1);
    EXPECT_EQ(bus.transactions.value(), 2u);
}

TEST(Bus, Reset)
{
    MemoryBus bus;
    bus.acquire(0, 50);
    bus.reset();
    EXPECT_TRUE(bus.isFree(0));
}

} // namespace
} // namespace specfetch
