/** @file Unit and engine-level tests for the victim cache. */

#include "cache/victim_cache.hh"

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "workload/registry.hh"

namespace specfetch {
namespace {

TEST(VictimCache, MissWhenEmpty)
{
    VictimCache victim(4);
    EXPECT_FALSE(victim.probe(0x1000));
    EXPECT_EQ(victim.probes.value(), 1u);
    EXPECT_EQ(victim.hits.value(), 0u);
}

TEST(VictimCache, HitRemovesEntry)
{
    VictimCache victim(4);
    victim.insert(0x1000);
    EXPECT_TRUE(victim.contains(0x1000));
    EXPECT_TRUE(victim.probe(0x1000));
    // Swapped back into L1: gone from the victim buffer.
    EXPECT_FALSE(victim.contains(0x1000));
    EXPECT_FALSE(victim.probe(0x1000));
}

TEST(VictimCache, LruReplacement)
{
    VictimCache victim(2);
    victim.insert(0x1000);
    victim.insert(0x2000);
    victim.insert(0x3000);    // evicts 0x1000 (LRU)
    EXPECT_FALSE(victim.contains(0x1000));
    EXPECT_TRUE(victim.contains(0x2000));
    EXPECT_TRUE(victim.contains(0x3000));
}

TEST(VictimCache, ReinsertRefreshes)
{
    VictimCache victim(2);
    victim.insert(0x1000);
    victim.insert(0x2000);
    victim.insert(0x1000);    // refresh, not duplicate
    victim.insert(0x3000);    // evicts 0x2000 now
    EXPECT_TRUE(victim.contains(0x1000));
    EXPECT_FALSE(victim.contains(0x2000));
}

TEST(VictimCache, Reset)
{
    VictimCache victim(4);
    victim.insert(0x1000);
    victim.reset();
    EXPECT_FALSE(victim.contains(0x1000));
}

TEST(VictimCacheDeath, RejectsZeroEntries)
{
    EXPECT_EXIT({ VictimCache victim(0); },
                ::testing::ExitedWithCode(1), "entry");
}

// ---- L1 spill hook ------------------------------------------------------

TEST(VictimCache, CapturesL1Evictions)
{
    ICacheConfig geometry;
    geometry.sizeBytes = 1024;    // 32 lines DM
    ICache cache(geometry);
    VictimCache victim(4);
    cache.setVictimCache(&victim);

    Addr a = 0x1000;
    Addr b = 0x1000 + 32 * 32;    // conflicts with a
    cache.insert(a);
    cache.insert(b);              // evicts a -> victim
    EXPECT_TRUE(victim.contains(a));
    EXPECT_FALSE(cache.contains(a));
}

// ---- engine integration -------------------------------------------------

TEST(EngineVictim, RemovesConflictMissCost)
{
    // fpppp thrashes an 8K direct-mapped cache with conflict misses;
    // a victim buffer recovers a measurable share of them on-chip.
    Workload w = buildWorkload(getProfile("fpppp"));
    SimConfig off;
    off.instructionBudget = 300'000;
    off.policy = FetchPolicy::Resume;
    SimConfig on = off;
    on.victimEntries = 8;

    SimResults r_off = runSimulation(w, off);
    SimResults r_on = runSimulation(w, on);

    EXPECT_LT(r_on.demandMisses, r_off.demandMisses);
    EXPECT_LT(r_on.ispi(), r_off.ispi());
    EXPECT_LT(r_on.memoryTransactions(), r_off.memoryTransactions());
    EXPECT_EQ(static_cast<uint64_t>(r_on.finalSlot),
              r_on.instructions + r_on.penalty.totalSlots());
}

TEST(EngineVictim, LedgerHoldsAcrossPolicies)
{
    Workload w = buildWorkload(getProfile("gcc"));
    for (FetchPolicy policy : allPolicies()) {
        SimConfig config;
        config.instructionBudget = 150'000;
        config.policy = policy;
        config.victimEntries = 4;
        SimResults r = runSimulation(w, config);
        EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
                  r.instructions + r.penalty.totalSlots())
            << toString(policy);
    }
}

TEST(EngineVictim, ZeroEntriesMatchesBaselineExactly)
{
    Workload w = buildWorkload(getProfile("li"));
    SimConfig base;
    base.instructionBudget = 150'000;
    base.policy = FetchPolicy::Resume;
    SimResults a = runSimulation(w, base);
    SimConfig explicit_off = base;
    explicit_off.victimEntries = 0;
    SimResults b = runSimulation(w, explicit_off);
    EXPECT_EQ(a.finalSlot, b.finalSlot);
    EXPECT_EQ(a.demandMisses, b.demandMisses);
}

} // namespace
} // namespace specfetch
