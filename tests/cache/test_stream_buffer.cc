/** @file Unit and engine-level tests for the Jouppi stream buffer. */

#include "cache/stream_buffer.hh"

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "workload/registry.hh"

namespace specfetch {
namespace {

class StreamBufferTest : public ::testing::Test
{
  protected:
    StreamBufferTest() : stream(cache, bus) {}

    static constexpr Slot kFill = 20;

    ICache cache;
    MemoryBus bus;
    StreamBuffer stream;
};

TEST_F(StreamBufferTest, InactiveUntilAllocated)
{
    EXPECT_FALSE(stream.active());
    EXPECT_FALSE(stream.matches(0x1020));
}

TEST_F(StreamBufferTest, AllocatesSuccessorOnMiss)
{
    stream.allocateAfterMiss(0x1000, 0, kFill);
    EXPECT_TRUE(stream.active());
    EXPECT_TRUE(stream.matches(0x1020));
    EXPECT_EQ(stream.readyAt(), kFill);
    EXPECT_EQ(stream.allocations.value(), 1u);
    EXPECT_EQ(stream.fills.value(), 1u);
    EXPECT_FALSE(cache.contains(0x1020));    // buffered, not cached
}

TEST_F(StreamBufferTest, ConsumeInsertsAndChains)
{
    stream.allocateAfterMiss(0x1000, 0, kFill);
    stream.consume(kFill, kFill);
    EXPECT_TRUE(cache.contains(0x1020));     // consumed line cached
    EXPECT_TRUE(stream.matches(0x1040));     // next line requested
    EXPECT_EQ(stream.readyAt(), 2 * kFill);
    EXPECT_EQ(stream.headHits.value(), 1u);
    EXPECT_EQ(stream.fills.value(), 2u);
}

TEST_F(StreamBufferTest, NonMatchingMissReallocates)
{
    stream.allocateAfterMiss(0x1000, 0, kFill);
    stream.allocateAfterMiss(0x9000, 30, kFill);
    EXPECT_FALSE(stream.matches(0x1020));
    EXPECT_TRUE(stream.matches(0x9020));
    EXPECT_EQ(stream.allocations.value(), 2u);
}

TEST_F(StreamBufferTest, RepeatMissOnHeadKeepsStream)
{
    // The consumer missing on the head line means it just ran ahead
    // of the data; the stream must not restart (which would double
    // the memory request).
    stream.allocateAfterMiss(0x1000, 0, kFill);
    stream.allocateAfterMiss(0x1000, 5, kFill);
    EXPECT_EQ(stream.fills.value(), 1u);
    EXPECT_EQ(stream.allocations.value(), 1u);
}

TEST_F(StreamBufferTest, DiesWhenBusBusy)
{
    bus.acquire(0, 100);
    stream.allocateAfterMiss(0x1000, 10, kFill);
    EXPECT_FALSE(stream.active());
    EXPECT_EQ(stream.fills.value(), 0u);
}

TEST_F(StreamBufferTest, SkipsCachedSuccessor)
{
    cache.insert(0x1020);
    stream.allocateAfterMiss(0x1000, 0, kFill);
    EXPECT_FALSE(stream.active());
}

TEST_F(StreamBufferTest, Flush)
{
    stream.allocateAfterMiss(0x1000, 0, kFill);
    stream.flush();
    EXPECT_FALSE(stream.active());
}

// ---- engine integration ------------------------------------------------

TEST(EngineStream, ServesSequentialCode)
{
    SimConfig none;
    none.instructionBudget = 300'000;
    none.policy = FetchPolicy::Resume;
    SimConfig with_stream = none;
    with_stream.prefetchKind = PrefetchKind::Stream;

    Workload w = buildWorkload(getProfile("fpppp"));    // straight-line
    SimResults off = runSimulation(w, none);
    SimResults on = runSimulation(w, with_stream);

    EXPECT_GT(on.prefetchesIssued, 0u);
    EXPECT_GT(on.bufferHits, 0u);
    EXPECT_LT(on.ispi(), off.ispi());
    EXPECT_LT(on.demandMisses, off.demandMisses);
    EXPECT_EQ(static_cast<uint64_t>(on.finalSlot),
              on.instructions + on.penalty.totalSlots());
}

TEST(EngineStream, NoPollutionUntilConsumed)
{
    // Stream lines enter the cache only on use: the wrong-path walker
    // never consumes a stream head, so stream prefetching cannot
    // pollute via wrong paths at all.
    SimConfig config;
    config.instructionBudget = 200'000;
    config.policy = FetchPolicy::Resume;
    config.prefetchKind = PrefetchKind::Stream;
    Workload w = buildWorkload(getProfile("gcc"));
    SimResults r = runSimulation(w, config);
    // Every stream fill is either consumed (buffer hit) or dropped.
    EXPECT_GE(r.prefetchesIssued, r.bufferHits);
}

} // namespace
} // namespace specfetch
