/** @file Unit tests for cache/line_buffer.hh. */

#include "cache/line_buffer.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(LineBuffer, StartsEmpty)
{
    LineBuffer buffer;
    EXPECT_FALSE(buffer.valid());
    EXPECT_FALSE(buffer.matches(0x1000));
    EXPECT_FALSE(buffer.isReady(1000));
}

TEST(LineBuffer, TracksFill)
{
    LineBuffer buffer;
    buffer.set(0x1000, 50);
    EXPECT_TRUE(buffer.valid());
    EXPECT_TRUE(buffer.matches(0x1000));
    EXPECT_FALSE(buffer.matches(0x2000));
    EXPECT_FALSE(buffer.isReady(49));
    EXPECT_TRUE(buffer.isReady(50));
}

TEST(LineBuffer, DrainWritesIntoCache)
{
    ICache cache;
    LineBuffer buffer;
    buffer.set(0x1000, 50);
    EXPECT_FALSE(buffer.drainIfReady(cache, 49));    // data not arrived
    EXPECT_TRUE(buffer.valid());
    EXPECT_TRUE(buffer.drainIfReady(cache, 50));
    EXPECT_FALSE(buffer.valid());
    EXPECT_TRUE(cache.contains(0x1000));
}

TEST(LineBuffer, DrainEmptyIsNoop)
{
    ICache cache;
    LineBuffer buffer;
    EXPECT_FALSE(buffer.drainIfReady(cache, 1000));
}

TEST(LineBuffer, SetOverwrites)
{
    LineBuffer buffer;
    buffer.set(0x1000, 50);
    buffer.set(0x2000, 70);
    EXPECT_FALSE(buffer.matches(0x1000));
    EXPECT_TRUE(buffer.matches(0x2000));
    EXPECT_EQ(buffer.readyAt(), 70);
}

TEST(LineBuffer, Clear)
{
    LineBuffer buffer;
    buffer.set(0x1000, 50);
    buffer.clear();
    EXPECT_FALSE(buffer.valid());
}

} // namespace
} // namespace specfetch
