/** @file Tests for the flat / two-level memory hierarchy model. */

#include "cache/memory_hierarchy.hh"

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "workload/registry.hh"

namespace specfetch {
namespace {

TEST(MemoryHierarchy, FlatModeIsConstant)
{
    MemoryConfig config;
    config.missPenaltyCycles = 5;
    MemoryHierarchy memory(config, 4);
    EXPECT_FALSE(memory.twoLevel());
    for (Addr line = 0; line < 10 * 32; line += 32)
        EXPECT_EQ(memory.fillSlots(0x10000 + line), 20);
    EXPECT_EQ(memory.maxFillSlots(), 20);
    EXPECT_EQ(memory.l2Hits.value(), 0u);
}

TEST(MemoryHierarchy, TwoLevelColdMissesThenHits)
{
    MemoryConfig config;
    config.l2Enabled = true;
    config.l2HitCycles = 5;
    config.l2MissCycles = 20;
    MemoryHierarchy memory(config, 4);
    EXPECT_TRUE(memory.twoLevel());

    // Cold: full memory latency; the line lands in L2.
    EXPECT_EQ(memory.fillSlots(0x10000), 80);
    // Refill of the same line: L2 hit latency.
    EXPECT_EQ(memory.fillSlots(0x10000), 20);
    EXPECT_EQ(memory.l2Misses.value(), 1u);
    EXPECT_EQ(memory.l2Hits.value(), 1u);
    EXPECT_EQ(memory.maxFillSlots(), 80);
}

TEST(MemoryHierarchy, L2CapacityEviction)
{
    MemoryConfig config;
    config.l2Enabled = true;
    config.l2.sizeBytes = 1024;    // 32 lines, 4-way
    MemoryHierarchy memory(config, 4);

    // Sweep more lines than the L2 holds, twice: the second pass
    // still misses (capacity).
    for (int pass = 0; pass < 2; ++pass)
        for (Addr i = 0; i < 64; ++i)
            memory.fillSlots(0x10000 + i * 32);
    EXPECT_EQ(memory.l2Hits.value(), 0u);
    EXPECT_EQ(memory.l2Misses.value(), 128u);
}

TEST(MemoryHierarchy, ResetClearsL2)
{
    MemoryConfig config;
    config.l2Enabled = true;
    MemoryHierarchy memory(config, 4);
    memory.fillSlots(0x10000);
    memory.reset();
    EXPECT_EQ(memory.fillSlots(0x10000), 80);    // cold again
}

// ---- engine integration -------------------------------------------------

TEST(EngineL2, SitsBetweenFlatRegimes)
{
    // With an L2, total ISPI must land between the flat-5 (all L2
    // hits) and flat-20 (all misses to memory) configurations.
    Workload w = buildWorkload(getProfile("gcc"));
    SimConfig flat5;
    flat5.instructionBudget = 300'000;
    flat5.policy = FetchPolicy::Resume;
    flat5.missPenaltyCycles = 5;

    SimConfig flat20 = flat5;
    flat20.missPenaltyCycles = 20;

    SimConfig l2 = flat5;
    l2.l2Enabled = true;
    l2.l2HitCycles = 5;
    l2.l2MissCycles = 20;
    l2.l2Cache.sizeBytes = 64 * 1024;
    l2.l2Cache.ways = 4;

    SimResults r5 = runSimulation(w, flat5);
    SimResults r20 = runSimulation(w, flat20);
    SimResults rl2 = runSimulation(w, l2);

    EXPECT_GT(rl2.ispi(), r5.ispi());
    EXPECT_LT(rl2.ispi(), r20.ispi());
    EXPECT_EQ(static_cast<uint64_t>(rl2.finalSlot),
              rl2.instructions + rl2.penalty.totalSlots());
}

TEST(EngineL2, BiggerL2ApproachesFlatFast)
{
    Workload w = buildWorkload(getProfile("li"));
    SimConfig base;
    base.instructionBudget = 300'000;
    base.policy = FetchPolicy::Resume;
    base.l2Enabled = true;

    SimConfig small = base;
    small.l2Cache.sizeBytes = 16 * 1024;
    SimConfig large = base;
    large.l2Cache.sizeBytes = 256 * 1024;

    SimResults r_small = runSimulation(w, small);
    SimResults r_large = runSimulation(w, large);
    EXPECT_LE(r_large.ispi(), r_small.ispi());
}

TEST(EngineL2, LedgerHoldsForAllPoliciesWithL2AndPrefetch)
{
    Workload w = buildWorkload(getProfile("groff"));
    for (FetchPolicy policy : allPolicies()) {
        SimConfig config;
        config.instructionBudget = 150'000;
        config.policy = policy;
        config.l2Enabled = true;
        config.nextLinePrefetch = true;
        SimResults r = runSimulation(w, config);
        EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
                  r.instructions + r.penalty.totalSlots())
            << toString(policy);
    }
}

} // namespace
} // namespace specfetch
