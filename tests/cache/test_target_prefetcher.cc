/** @file Unit tests for the target prefetcher and prefetch unit. */

#include "cache/prefetch_unit.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

class TargetPrefetcherTest : public ::testing::Test
{
  protected:
    TargetPrefetcherTest() : target(cache, bus, buffer, nullptr, 64) {}

    static constexpr Slot kFill = 20;

    ICache cache;
    MemoryBus bus;
    LineBuffer buffer;
    TargetPrefetcher target;
};

TEST_F(TargetPrefetcherTest, UntrainedDoesNothing)
{
    EXPECT_FALSE(target.onAccess(0x1000, 0, kFill));
    EXPECT_EQ(target.predictedSuccessor(0x1000), 0u);
}

TEST_F(TargetPrefetcherTest, TrainThenPrefetch)
{
    target.train(0x1000, 0x5000);
    EXPECT_EQ(target.predictedSuccessor(0x1000), 0x5000u);
    EXPECT_TRUE(target.onAccess(0x1000, 0, kFill));
    EXPECT_TRUE(buffer.matches(0x5000));
    EXPECT_EQ(buffer.readyAt(), kFill);
}

TEST_F(TargetPrefetcherTest, SequentialTransfersNotRecorded)
{
    // Next-line territory: the table ignores i -> i+1.
    target.train(0x1000, 0x1020);
    EXPECT_EQ(target.predictedSuccessor(0x1000), 0u);
    // Self-transfers (tight loops within a line) too.
    target.train(0x1000, 0x1000);
    EXPECT_EQ(target.predictedSuccessor(0x1000), 0u);
    EXPECT_EQ(target.trainings.value(), 0u);
}

TEST_F(TargetPrefetcherTest, RetrainingReplacesTarget)
{
    target.train(0x1000, 0x5000);
    target.train(0x1000, 0x7000);
    EXPECT_EQ(target.predictedSuccessor(0x1000), 0x7000u);
}

TEST_F(TargetPrefetcherTest, TableConflictsEvict)
{
    // 64 entries at 32B lines: lines 64 apart collide.
    Addr a = 0x10000;
    Addr b = a + 64 * 32;
    target.train(a, 0x5000);
    target.train(b, 0x7000);
    EXPECT_EQ(target.predictedSuccessor(a), 0u);
    EXPECT_EQ(target.predictedSuccessor(b), 0x7000u);
}

TEST_F(TargetPrefetcherTest, SuppressedWhenPresent)
{
    target.train(0x1000, 0x5000);
    cache.insert(0x5000);
    EXPECT_FALSE(target.onAccess(0x1000, 0, kFill));
    EXPECT_EQ(target.suppressedPresent.value(), 1u);
}

TEST_F(TargetPrefetcherTest, SuppressedWhenBusBusy)
{
    target.train(0x1000, 0x5000);
    bus.acquire(0, 100);
    EXPECT_FALSE(target.onAccess(0x1000, 10, kFill));
    EXPECT_EQ(target.suppressedBusy.value(), 1u);
}

TEST_F(TargetPrefetcherTest, ResetClearsTable)
{
    target.train(0x1000, 0x5000);
    target.reset();
    EXPECT_EQ(target.predictedSuccessor(0x1000), 0u);
}

// ---- PrefetchUnit ------------------------------------------------------

TEST(PrefetchUnit, NoneNeverIssues)
{
    ICache cache;
    MemoryBus bus;
    PrefetchUnit unit(PrefetchKind::None, cache, bus, nullptr);
    cache.insert(0x1000);
    EXPECT_FALSE(unit.enabled());
    EXPECT_FALSE(unit.onAccess(0x1000, 0, 20));
    EXPECT_EQ(unit.issuedCount(), 0u);
}

TEST(PrefetchUnit, CombinedPrefersTarget)
{
    ICache cache;
    MemoryBus bus;
    PrefetchUnit unit(PrefetchKind::Combined, cache, bus, nullptr);
    cache.insert(0x1000);    // first-ref bit set: next-line would fire
    unit.trainTarget(0x1000, 0x5000);
    ASSERT_TRUE(unit.onAccess(0x1000, 0, 20));
    // The single buffer holds the *target* line, not 0x1020.
    EXPECT_TRUE(unit.buffer().matches(0x5000));
    EXPECT_EQ(unit.target.issued.value(), 1u);
    EXPECT_EQ(unit.nextLine.issued.value(), 0u);
}

TEST(PrefetchUnit, CombinedFallsBackToNextLine)
{
    ICache cache;
    MemoryBus bus;
    PrefetchUnit unit(PrefetchKind::Combined, cache, bus, nullptr);
    cache.insert(0x1000);
    // No target training: next-line picks it up.
    ASSERT_TRUE(unit.onAccess(0x1000, 0, 20));
    EXPECT_TRUE(unit.buffer().matches(0x1020));
    EXPECT_EQ(unit.nextLine.issued.value(), 1u);
}

TEST(PrefetchUnit, TargetKindIgnoresNextLine)
{
    ICache cache;
    MemoryBus bus;
    PrefetchUnit unit(PrefetchKind::Target, cache, bus, nullptr);
    cache.insert(0x1000);
    EXPECT_FALSE(unit.onAccess(0x1000, 0, 20));    // untrained
    EXPECT_EQ(unit.issuedCount(), 0u);
}

TEST(PrefetchUnit, NextLineKindIgnoresTargetTraining)
{
    ICache cache;
    MemoryBus bus;
    PrefetchUnit unit(PrefetchKind::NextLine, cache, bus, nullptr);
    unit.trainTarget(0x1000, 0x5000);    // ignored for this kind
    EXPECT_EQ(unit.target.trainings.value(), 0u);
}

TEST(PrefetchUnit, KindNames)
{
    EXPECT_EQ(toString(PrefetchKind::None), "none");
    EXPECT_EQ(toString(PrefetchKind::NextLine), "next-line");
    EXPECT_EQ(toString(PrefetchKind::Target), "target");
    EXPECT_EQ(toString(PrefetchKind::Combined), "combined");
}

// ---- Multi-channel bus -------------------------------------------------

TEST(PipelinedBus, TwoChannelsOverlap)
{
    MemoryBus bus(2);
    EXPECT_EQ(bus.channels(), 2u);
    EXPECT_EQ(bus.acquire(0, 20), 20);
    EXPECT_EQ(bus.acquire(0, 20), 20);    // second channel, parallel
    EXPECT_EQ(bus.acquire(0, 20), 40);    // now both busy
}

TEST(PipelinedBus, FreeWhenAnyChannelIdle)
{
    MemoryBus bus(2);
    bus.acquire(0, 100);
    EXPECT_TRUE(bus.isFree(0));
    bus.acquire(0, 100);
    EXPECT_FALSE(bus.isFree(50));
    EXPECT_TRUE(bus.isFree(100));
}

TEST(PipelinedBus, SingleChannelMatchesPaperModel)
{
    MemoryBus bus;    // default: 1 channel
    EXPECT_EQ(bus.channels(), 1u);
    bus.acquire(0, 20);
    EXPECT_EQ(bus.acquire(5, 20), 40);
}

TEST(PipelinedBusDeath, RejectsZeroChannels)
{
    EXPECT_EXIT({ MemoryBus bus(0); }, ::testing::ExitedWithCode(1),
                "channel");
}

} // namespace
} // namespace specfetch
