/** @file Unit tests for workload/cfg.hh validation and counting. */

#include "workload/cfg.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

/** Minimal legal program: main = one block jumping to itself. */
Cfg
tinyCfg()
{
    Cfg cfg;
    BasicBlock block;
    block.id = 0;
    block.func = 0;
    block.bodyLen = 3;
    block.term = TermKind::Jump;
    block.target = 0;
    cfg.blocks.push_back(block);

    Function main;
    main.index = 0;
    main.firstBlock = 0;
    main.lastBlock = 0;
    cfg.functions.push_back(main);
    return cfg;
}

TEST(Cfg, TinyProgramValidates)
{
    Cfg cfg = tinyCfg();
    cfg.validate();
    EXPECT_EQ(cfg.totalInstructions(), 4u);
    EXPECT_EQ(cfg.totalControlInstructions(), 1u);
}

TEST(Cfg, FallThroughBlocksHaveNoTerminator)
{
    Cfg cfg = tinyCfg();
    // Insert a fall-through block before the jump.
    BasicBlock fall;
    fall.id = 0;
    fall.func = 0;
    fall.bodyLen = 2;
    fall.term = TermKind::FallThrough;
    cfg.blocks.insert(cfg.blocks.begin(), fall);
    cfg.blocks[1].id = 1;
    cfg.functions[0].lastBlock = 1;
    cfg.blocks[1].target = 0;
    cfg.validate();
    EXPECT_EQ(cfg.totalInstructions(), 2u + 4u);
    EXPECT_EQ(cfg.totalControlInstructions(), 1u);
}

TEST(CfgDeath, EmptyProgramPanics)
{
    Cfg cfg;
    EXPECT_DEATH(cfg.validate(), "functions");
}

TEST(CfgDeath, MainMustLoop)
{
    Cfg cfg = tinyCfg();
    cfg.blocks[0].term = TermKind::Return;
    EXPECT_DEATH(cfg.validate(), "function 0");
}

TEST(CfgDeath, BranchTargetOutOfRange)
{
    Cfg cfg = tinyCfg();
    cfg.blocks[0].term = TermKind::Jump;
    cfg.blocks[0].target = 99;
    EXPECT_DEATH(cfg.validate(), "bad block");
}

TEST(CfgDeath, EmptyBlockRejected)
{
    Cfg cfg = tinyCfg();
    // A zero-length fall-through block emits nothing: illegal.
    BasicBlock empty;
    empty.id = 0;
    empty.func = 0;
    empty.bodyLen = 0;
    empty.term = TermKind::FallThrough;
    cfg.blocks.insert(cfg.blocks.begin(), empty);
    cfg.blocks[1].id = 1;
    cfg.blocks[1].target = 0;
    cfg.functions[0].lastBlock = 1;
    EXPECT_DEATH(cfg.validate(), "empty");
}

TEST(CfgDeath, RecursiveCallRejected)
{
    // Function 1 calling itself (or a lower index) is cyclic.
    Cfg cfg = tinyCfg();
    BasicBlock site;
    site.id = 1;
    site.func = 1;
    site.bodyLen = 1;
    site.term = TermKind::Call;
    site.calleeFunc = 1;
    cfg.blocks.push_back(site);
    BasicBlock cont;
    cont.id = 2;
    cont.func = 1;
    cont.bodyLen = 1;
    cont.term = TermKind::Return;
    cfg.blocks.push_back(cont);

    Function f1;
    f1.index = 1;
    f1.firstBlock = 1;
    f1.lastBlock = 2;
    cfg.functions.push_back(f1);
    EXPECT_DEATH(cfg.validate(), "cyclic");
}

TEST(BasicBlock, NumInstsIncludesTerminator)
{
    BasicBlock block;
    block.bodyLen = 5;
    block.term = TermKind::FallThrough;
    EXPECT_EQ(block.numInsts(), 5u);
    block.term = TermKind::CondBranch;
    EXPECT_EQ(block.numInsts(), 6u);
}

TEST(BasicBlock, CanFallThrough)
{
    BasicBlock block;
    block.term = TermKind::FallThrough;
    EXPECT_TRUE(block.canFallThrough());
    block.term = TermKind::CondBranch;
    EXPECT_TRUE(block.canFallThrough());
    block.term = TermKind::Call;
    EXPECT_TRUE(block.canFallThrough());
    block.term = TermKind::Jump;
    EXPECT_FALSE(block.canFallThrough());
    block.term = TermKind::Return;
    EXPECT_FALSE(block.canFallThrough());
    block.term = TermKind::IndirectJump;
    EXPECT_FALSE(block.canFallThrough());
}

} // namespace
} // namespace specfetch
