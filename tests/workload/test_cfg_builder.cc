/** @file Unit tests for workload/cfg_builder.hh. */

#include "workload/cfg_builder.hh"

#include <gtest/gtest.h>

#include <set>

namespace specfetch {
namespace {

WorkloadProfile
smallProfile(uint64_t seed)
{
    WorkloadProfile profile;
    profile.structureSeed = seed;
    profile.numFunctions = 12;
    profile.meanFuncBlocks = 20;
    profile.meanBlockLen = 4.0;
    return profile;
}

TEST(CfgBuilder, ProducesValidatedGraph)
{
    // build() validates internally; surviving it is the test.
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        CfgBuilder builder(smallProfile(seed));
        Cfg cfg = builder.build();
        EXPECT_EQ(cfg.functions.size(), 12u) << "seed " << seed;
        EXPECT_GT(cfg.blocks.size(), 12u * 4) << "seed " << seed;
    }
}

TEST(CfgBuilder, DeterministicForSeed)
{
    CfgBuilder a(smallProfile(7));
    CfgBuilder b(smallProfile(7));
    Cfg cfg_a = a.build();
    Cfg cfg_b = b.build();
    ASSERT_EQ(cfg_a.blocks.size(), cfg_b.blocks.size());
    for (size_t i = 0; i < cfg_a.blocks.size(); ++i) {
        EXPECT_EQ(cfg_a.blocks[i].term, cfg_b.blocks[i].term);
        EXPECT_EQ(cfg_a.blocks[i].bodyLen, cfg_b.blocks[i].bodyLen);
        EXPECT_EQ(cfg_a.blocks[i].target, cfg_b.blocks[i].target);
    }
}

TEST(CfgBuilder, DifferentSeedsDiffer)
{
    Cfg a = CfgBuilder(smallProfile(1)).build();
    Cfg b = CfgBuilder(smallProfile(2)).build();
    EXPECT_NE(a.blocks.size(), b.blocks.size());
}

TEST(CfgBuilder, MainIsLargest)
{
    // main gets doubled budget: it should be among the big functions.
    Cfg cfg = CfgBuilder(smallProfile(3)).build();
    uint32_t main_blocks = cfg.functions[0].numBlocks();
    uint32_t above_main = 0;
    for (size_t f = 1; f < cfg.functions.size(); ++f)
        above_main += cfg.functions[f].numBlocks() > main_blocks;
    EXPECT_LT(above_main, cfg.functions.size() / 2);
}

TEST(CfgBuilder, CallsRespectLayering)
{
    WorkloadProfile profile = smallProfile(5);
    profile.callLayers = 3;
    Cfg cfg = CfgBuilder(profile).build();
    // All call sites target strictly higher-indexed functions
    // (validated), and *some* calls exist.
    size_t calls = 0;
    for (const BasicBlock &block : cfg.blocks)
        calls += block.term == TermKind::Call;
    EXPECT_GT(calls, 0u);
}

TEST(CfgBuilder, LeafFunctionsDoNotCall)
{
    WorkloadProfile profile = smallProfile(5);
    profile.callLayers = 2;    // main + leaves
    Cfg cfg = CfgBuilder(profile).build();
    for (const BasicBlock &block : cfg.blocks) {
        if (block.func != 0) {
            EXPECT_NE(block.term, TermKind::Call)
                << "leaf function " << block.func << " has a call site";
        }
    }
}

TEST(CfgBuilder, BranchBehaviorsSampled)
{
    WorkloadProfile profile = smallProfile(11);
    profile.numFunctions = 30;
    profile.correlatedFraction = 0.2;
    profile.patternFraction = 0.1;
    Cfg cfg = CfgBuilder(profile).build();

    std::set<DirMode> seen;
    for (const BasicBlock &block : cfg.blocks)
        if (block.term == TermKind::CondBranch)
            seen.insert(block.behavior.mode);
    EXPECT_TRUE(seen.count(DirMode::Biased));
    EXPECT_TRUE(seen.count(DirMode::LoopBack));
    EXPECT_TRUE(seen.count(DirMode::Correlated));
    EXPECT_TRUE(seen.count(DirMode::Pattern));
}

TEST(CfgBuilder, LoopBackTargetsPrecedingBlock)
{
    Cfg cfg = CfgBuilder(smallProfile(13)).build();
    for (const BasicBlock &block : cfg.blocks) {
        if (block.term == TermKind::CondBranch &&
            block.behavior.mode == DirMode::LoopBack) {
            EXPECT_LE(block.target, block.id);
        }
    }
}

TEST(CfgBuilder, BiasesAreUShapedAndClamped)
{
    WorkloadProfile profile = smallProfile(17);
    profile.numFunctions = 40;
    Cfg cfg = CfgBuilder(profile).build();
    int lo = 0, mid = 0, hi = 0;
    for (const BasicBlock &block : cfg.blocks) {
        if (block.term != TermKind::CondBranch ||
            block.behavior.mode != DirMode::Biased)
            continue;
        double p = block.behavior.takenProb;
        ASSERT_GE(p, 0.02);
        ASSERT_LE(p, 0.98);
        if (p < 0.3)
            ++lo;
        else if (p > 0.7)
            ++hi;
        else
            ++mid;
    }
    // U-shape: extremes dominate the middle.
    EXPECT_GT(lo + hi, mid * 2);
}

TEST(CfgBuilder, IndirectJumpsHaveWeightedArms)
{
    WorkloadProfile profile = smallProfile(19);
    profile.switchWeight = 2.0;
    Cfg cfg = CfgBuilder(profile).build();
    size_t switches = 0;
    for (const BasicBlock &block : cfg.blocks) {
        if (block.term != TermKind::IndirectJump)
            continue;
        ++switches;
        ASSERT_GE(block.indirectTargets.size(), 2u);
        ASSERT_EQ(block.indirectTargets.size(),
                  block.indirectWeights.size());
        // Weights descend (first arm hottest).
        for (size_t i = 1; i < block.indirectWeights.size(); ++i)
            EXPECT_LE(block.indirectWeights[i],
                      block.indirectWeights[i - 1]);
    }
    EXPECT_GT(switches, 0u);
}

TEST(CfgBuilder, SingleFunctionProgramWorks)
{
    WorkloadProfile profile = smallProfile(23);
    profile.numFunctions = 1;
    Cfg cfg = CfgBuilder(profile).build();
    EXPECT_EQ(cfg.functions.size(), 1u);
    for (const BasicBlock &block : cfg.blocks)
        EXPECT_NE(block.term, TermKind::Call);
}

} // namespace
} // namespace specfetch
