/** @file Unit tests for workload/layout.hh. */

#include "workload/layout.hh"

#include <gtest/gtest.h>

#include "workload/cfg_builder.hh"
#include "workload/executor.hh"

namespace specfetch {
namespace {

Cfg
builtCfg(uint64_t seed = 3)
{
    WorkloadProfile profile;
    profile.structureSeed = seed;
    profile.numFunctions = 10;
    profile.meanFuncBlocks = 16;
    profile.meanBlockLen = 4.0;
    return CfgBuilder(profile).build();
}

TEST(Layout, BlocksAreContiguous)
{
    Cfg cfg = builtCfg();
    ProgramImage image = layoutProgram(cfg);
    Addr expected = kTextBase;
    for (const BasicBlock &block : cfg.blocks) {
        EXPECT_EQ(block.startAddr, expected);
        expected += block.numInsts() * kInstBytes;
    }
    EXPECT_EQ(image.end(), expected);
}

TEST(Layout, ImageSizeMatchesCfg)
{
    Cfg cfg = builtCfg();
    ProgramImage image = layoutProgram(cfg);
    EXPECT_EQ(image.size(), cfg.totalInstructions());
    EXPECT_EQ(image.controlCount(), cfg.totalControlInstructions());
}

TEST(Layout, TerminatorsEncodeTargets)
{
    Cfg cfg = builtCfg();
    ProgramImage image = layoutProgram(cfg);
    for (const BasicBlock &block : cfg.blocks) {
        if (block.term == TermKind::FallThrough)
            continue;
        Addr term_pc = block.startAddr + block.bodyLen * kInstBytes;
        StaticInst inst = image.at(term_pc);
        switch (block.term) {
          case TermKind::CondBranch:
            ASSERT_EQ(inst.cls, InstClass::CondBranch);
            EXPECT_EQ(inst.target, cfg.blocks[block.target].startAddr);
            break;
          case TermKind::Jump:
            ASSERT_EQ(inst.cls, InstClass::Jump);
            EXPECT_EQ(inst.target, cfg.blocks[block.target].startAddr);
            break;
          case TermKind::Call: {
            ASSERT_EQ(inst.cls, InstClass::Call);
            const Function &callee = cfg.functions[block.calleeFunc];
            EXPECT_EQ(inst.target,
                      cfg.blocks[callee.entryBlock()].startAddr);
            break;
          }
          case TermKind::Return:
            EXPECT_EQ(inst.cls, InstClass::Return);
            break;
          case TermKind::IndirectJump:
            EXPECT_EQ(inst.cls, InstClass::IndirectJump);
            break;
          case TermKind::IndirectCall:
            EXPECT_EQ(inst.cls, InstClass::IndirectCall);
            break;
          case TermKind::FallThrough:
            break;
        }
    }
}

TEST(Layout, BodyInstructionsArePlain)
{
    Cfg cfg = builtCfg();
    ProgramImage image = layoutProgram(cfg);
    const BasicBlock &block = cfg.blocks[0];
    for (uint32_t i = 0; i < block.bodyLen; ++i) {
        EXPECT_EQ(image.at(block.startAddr + i * kInstBytes).cls,
                  InstClass::Plain);
    }
}

TEST(Layout, CustomBaseRespected)
{
    Cfg cfg = builtCfg();
    ProgramImage image = layoutProgram(cfg, 0x40000);
    EXPECT_EQ(image.base(), 0x40000u);
    EXPECT_EQ(cfg.blocks[0].startAddr, 0x40000u);
}

TEST(Layout, FunctionAlignmentPadsEntries)
{
    Cfg cfg = builtCfg();
    LayoutOptions options;
    options.functionAlign = 32;
    ProgramImage image = layoutProgram(cfg, options);
    for (const Function &fn : cfg.functions) {
        EXPECT_EQ(cfg.blocks[fn.entryBlock()].startAddr % 32, 0u)
            << fn.name;
    }
    // Padding decodes as Plain and enlarges the image.
    Cfg packed = builtCfg();
    ProgramImage packed_image = layoutProgram(packed);
    EXPECT_GE(image.size(), packed_image.size());
}

TEST(Layout, AlignmentGapsDecodePlain)
{
    Cfg cfg = builtCfg();
    LayoutOptions options;
    options.functionAlign = 64;
    ProgramImage image = layoutProgram(cfg, options);
    // Probe every address in the image: must decode without panicking
    // and all control instructions must belong to some block.
    size_t control = 0;
    for (size_t i = 0; i < image.size(); ++i)
        control += isControl(image[i].cls);
    EXPECT_EQ(control, cfg.totalControlInstructions());
}

TEST(Layout, AlignedProgramExecutesIdentically)
{
    Cfg packed = builtCfg();
    layoutProgram(packed);
    Cfg aligned = builtCfg();
    LayoutOptions options;
    options.functionAlign = 32;
    layoutProgram(aligned, options);

    Executor a(packed, 42);
    Executor b(aligned, 42);
    DynInst inst_a, inst_b;
    for (int i = 0; i < 50000; ++i) {
        a.next(inst_a);
        b.next(inst_b);
        ASSERT_EQ(inst_a.cls, inst_b.cls) << i;
        ASSERT_EQ(inst_a.taken, inst_b.taken) << i;
    }
}

TEST(LayoutDeath, RejectsBadAlignment)
{
    Cfg cfg = builtCfg();
    LayoutOptions options;
    options.functionAlign = 48;    // not a power of two
    EXPECT_EXIT(layoutProgram(cfg, options),
                ::testing::ExitedWithCode(1), "alignment");
}

} // namespace
} // namespace specfetch
