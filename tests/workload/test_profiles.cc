/**
 * @file
 * Parameterized property tests over the thirteen benchmark profiles:
 * every profile must build, validate, execute, and land in a sane
 * band for the characteristics it is calibrated against.
 */

#include <gtest/gtest.h>

#include "workload/executor.hh"
#include "workload/registry.hh"
#include "workload/workload.hh"

namespace specfetch {
namespace {

class ProfileTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ProfileTest, BuildsAndValidates)
{
    Workload w = buildWorkload(getProfile(GetParam()));
    EXPECT_GT(w.cfg.blocks.size(), 10u);
    EXPECT_EQ(w.image.size(), w.cfg.totalInstructions());
}

TEST_P(ProfileTest, BuildIsDeterministic)
{
    Workload a = buildWorkload(getProfile(GetParam()));
    Workload b = buildWorkload(getProfile(GetParam()));
    ASSERT_EQ(a.cfg.blocks.size(), b.cfg.blocks.size());
    EXPECT_EQ(a.footprintBytes(), b.footprintBytes());
}

TEST_P(ProfileTest, BranchFractionNearPaper)
{
    WorkloadProfile profile = getProfile(GetParam());
    Workload w = buildWorkload(profile);
    Executor executor(w.cfg, 42);
    DynInst inst;
    for (int i = 0; i < 400000; ++i)
        executor.next(inst);
    double measured = 100.0 * executor.branchFraction();
    // Calibration tolerance: within a factor of 2.5 of the paper's
    // Table 2 value (the stand-ins approximate, not clone).
    EXPECT_GT(measured, profile.paperBranchPercent / 2.5)
        << GetParam();
    EXPECT_LT(measured, profile.paperBranchPercent * 2.5)
        << GetParam();
}

TEST_P(ProfileTest, ExecutorNeverEscapesImage)
{
    Workload w = buildWorkload(getProfile(GetParam()));
    Executor executor(w.cfg, 7);
    DynInst inst;
    for (int i = 0; i < 200000; ++i) {
        executor.next(inst);
        ASSERT_TRUE(w.image.contains(inst.pc));
    }
}

TEST_P(ProfileTest, PaperReferenceDataPresent)
{
    WorkloadProfile profile = getProfile(GetParam());
    EXPECT_GT(profile.paperBranchPercent, 0.0);
    EXPECT_GT(profile.paperMissRate8K, 0.0);
    EXPECT_GT(profile.paperInstMillions, 0.0);
    EXPECT_FALSE(profile.description.empty());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ProfileTest,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto &param_info) {
                             std::string name = param_info.param;
                             for (char &c : name)
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             return name;
                         });

TEST(Registry, ThirteenBenchmarks)
{
    EXPECT_EQ(benchmarkNames().size(), 13u);
    EXPECT_EQ(allProfiles().size(), 13u);
}

TEST(Registry, TableOrderMatchesPaper)
{
    const auto &names = benchmarkNames();
    EXPECT_EQ(names.front(), "doduc");
    EXPECT_EQ(names[4], "gcc");
    EXPECT_EQ(names.back(), "porky");
}

TEST(Registry, LookupRoundTrip)
{
    for (const std::string &name : benchmarkNames()) {
        EXPECT_TRUE(isBenchmark(name));
        EXPECT_EQ(getProfile(name).name, name);
    }
    EXPECT_FALSE(isBenchmark("nonesuch"));
}

TEST(Registry, FamiliesGrouped)
{
    EXPECT_EQ(getProfile("doduc").family, LanguageFamily::Fortran);
    EXPECT_EQ(getProfile("gcc").family, LanguageFamily::C);
    EXPECT_EQ(getProfile("cfront").family, LanguageFamily::Cpp);
}

TEST(RegistryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(getProfile("nonesuch"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

} // namespace
} // namespace specfetch
