/** @file Tests for profile-guided basic-block reordering. */

#include "workload/reorder.hh"

#include "workload/layout.hh"

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "workload/executor.hh"
#include "workload/registry.hh"

namespace specfetch {
namespace {

Workload
smallWorkload(uint64_t seed = 3)
{
    WorkloadProfile profile;
    profile.structureSeed = seed;
    profile.numFunctions = 10;
    profile.meanFuncBlocks = 20;
    profile.meanBlockLen = 4.0;
    return buildWorkload(profile);
}

TEST(BlockProfile, CollectsVisits)
{
    Workload w = smallWorkload();
    BlockProfile profile = profileWorkload(w, 42, 100000);
    ASSERT_EQ(profile.visits.size(), w.cfg.blocks.size());
    EXPECT_EQ(profile.instructions, 100000u);
    // The main entry block is visited at least once; total visits are
    // bounded by the instruction count.
    EXPECT_GT(profile.visits[w.cfg.functions[0].entryBlock()], 0u);
    uint64_t total = 0;
    for (uint64_t v : profile.visits)
        total += v;
    EXPECT_LE(total, 100000u);
    EXPECT_GT(total, 0u);
}

TEST(Reorder, PreservesStructure)
{
    Workload w = smallWorkload();
    BlockProfile profile = profileWorkload(w, 42, 100000);
    Cfg reordered = reorderBlocks(w.cfg, profile.visits);
    // validate() already ran inside; check conservation properties.
    EXPECT_EQ(reordered.blocks.size(), w.cfg.blocks.size());
    EXPECT_EQ(reordered.functions.size(), w.cfg.functions.size());
    EXPECT_EQ(reordered.totalInstructions(), w.cfg.totalInstructions());
    EXPECT_EQ(reordered.totalControlInstructions(),
              w.cfg.totalControlInstructions());
}

TEST(Reorder, EntryBlocksStayFirst)
{
    Workload w = smallWorkload();
    BlockProfile profile = profileWorkload(w, 42, 100000);
    Cfg reordered = reorderBlocks(w.cfg, profile.visits);
    for (size_t f = 0; f < reordered.functions.size(); ++f) {
        // The new entry must carry the same content as the old entry:
        // compare body length and terminator of the first blocks.
        const BasicBlock &old_entry =
            w.cfg.blocks[w.cfg.functions[f].entryBlock()];
        const BasicBlock &new_entry =
            reordered.blocks[reordered.functions[f].entryBlock()];
        EXPECT_EQ(new_entry.bodyLen, old_entry.bodyLen) << f;
        EXPECT_EQ(new_entry.term, old_entry.term) << f;
    }
}

TEST(Reorder, ExecutionStreamIsEquivalent)
{
    // The reordered program must execute the same *logical* sequence:
    // same classes, same taken pattern, just different addresses.
    Workload w = smallWorkload();
    Workload reordered = reorderWorkload(w, /*profile_seed=*/7,
                                         /*profile_budget=*/200000);

    Executor original(w.cfg, 42);
    Executor permuted(reordered.cfg, 42);
    DynInst a, b;
    for (int i = 0; i < 200000; ++i) {
        original.next(a);
        permuted.next(b);
        ASSERT_EQ(a.cls, b.cls) << "at " << i;
        ASSERT_EQ(a.taken, b.taken) << "at " << i;
    }
}

TEST(Reorder, HotChainsMoveForward)
{
    // After reordering, hotter blocks should sit at lower addresses
    // within their function (weighted mean position decreases or
    // stays equal).
    Workload w = buildWorkload(getProfile("li"));
    BlockProfile profile = profileWorkload(w, 42, 500000);

    auto weighted_position = [&](const Cfg &cfg,
                                 const std::vector<uint64_t> &visits) {
        // visits are per ORIGINAL id; map content by (func, bodyLen,
        // term) is ambiguous — instead measure on the cfg at hand
        // with a fresh profile.
        (void)visits;
        Executor executor(cfg, 42);
        DynInst inst;
        for (int i = 0; i < 500000; ++i)
            executor.next(inst);
        const auto &v = executor.blockVisits();
        double num = 0.0, den = 0.0;
        for (size_t b = 0; b < cfg.blocks.size(); ++b) {
            const Function &fn = cfg.functions[cfg.blocks[b].func];
            double rel = static_cast<double>(b - fn.firstBlock);
            num += rel * static_cast<double>(v[b]);
            den += static_cast<double>(v[b]);
        }
        return num / den;
    };

    Cfg reordered = reorderBlocks(w.cfg, profile.visits);
    layoutProgram(reordered);
    double before = weighted_position(w.cfg, profile.visits);
    double after = weighted_position(reordered, profile.visits);
    EXPECT_LT(after, before);
}

TEST(Reorder, ImprovesOrMaintainsMissRate)
{
    // The point of the exercise (paper §6): hot-packing the layout
    // should reduce misses where cold arms dilute the hot footprint.
    // The generator already emits blocks in near-execution order, so
    // gains are modest: require a real improvement on li (whose cold
    // arms are dilutive) and no significant regression on gcc.
    SimConfig config;
    config.policy = FetchPolicy::Resume;
    config.instructionBudget = 400000;

    Workload li = buildWorkload(getProfile("li"));
    Workload li_opt = reorderWorkload(li, 7, 1'000'000);
    SimResults li_before = runSimulation(li, config);
    SimResults li_after = runSimulation(li_opt, config);
    EXPECT_LT(li_after.missRatePercent(), li_before.missRatePercent());
    EXPECT_LT(li_after.ispi(), li_before.ispi());

    Workload gcc = buildWorkload(getProfile("gcc"));
    Workload gcc_opt = reorderWorkload(gcc, 7, 1'000'000);
    SimResults gcc_before = runSimulation(gcc, config);
    SimResults gcc_after = runSimulation(gcc_opt, config);
    EXPECT_LT(gcc_after.ispi(), gcc_before.ispi() * 1.02);
}

TEST(Reorder, DeterministicGivenProfile)
{
    Workload w = smallWorkload();
    BlockProfile profile = profileWorkload(w, 42, 100000);
    Cfg a = reorderBlocks(w.cfg, profile.visits);
    Cfg b = reorderBlocks(w.cfg, profile.visits);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (size_t i = 0; i < a.blocks.size(); ++i) {
        EXPECT_EQ(a.blocks[i].bodyLen, b.blocks[i].bodyLen);
        EXPECT_EQ(a.blocks[i].term, b.blocks[i].term);
    }
}

TEST(Reorder, PreservesIndirectCallSemantics)
{
    // Regression: indirect-call targets are *function* indices and
    // must not be remapped through the block-id map (that once either
    // panicked in validate() or silently redirected dispatch sites to
    // arbitrary functions). groff's profile contains dispatch sites.
    Workload w = buildWorkload(getProfile("groff"));
    bool has_icall = false;
    for (const BasicBlock &block : w.cfg.blocks)
        has_icall |= block.term == TermKind::IndirectCall;
    ASSERT_TRUE(has_icall);

    Workload reordered = reorderWorkload(w, 7, 300000);
    Executor original(w.cfg, 42);
    Executor permuted(reordered.cfg, 42);
    DynInst a, b;
    for (int i = 0; i < 200000; ++i) {
        original.next(a);
        permuted.next(b);
        ASSERT_EQ(a.cls, b.cls) << i;
        ASSERT_EQ(a.taken, b.taken) << i;
    }
}

TEST(Reorder, ComposesWithAlignedLayout)
{
    // Reordering then aligned layout: both passes preserve semantics.
    Workload w = smallWorkload();
    BlockProfile profile = profileWorkload(w, 42, 100000);
    Cfg reordered = reorderBlocks(w.cfg, profile.visits);
    LayoutOptions options;
    options.functionAlign = 32;
    layoutProgram(reordered, options);

    for (const Function &fn : reordered.functions) {
        EXPECT_EQ(
            reordered.blocks[fn.entryBlock()].startAddr % 32, 0u);
    }

    Executor original(w.cfg, 42);
    Executor permuted(reordered, 42);
    DynInst a, b;
    for (int i = 0; i < 50000; ++i) {
        original.next(a);
        permuted.next(b);
        ASSERT_EQ(a.cls, b.cls) << i;
        ASSERT_EQ(a.taken, b.taken) << i;
    }
}

TEST(ReorderDeath, ProfileSizeMismatchPanics)
{
    Workload w = smallWorkload();
    std::vector<uint64_t> wrong(3, 0);
    EXPECT_DEATH(reorderBlocks(w.cfg, wrong), "profile covers");
}

} // namespace
} // namespace specfetch
