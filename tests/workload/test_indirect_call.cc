/**
 * @file
 * Tests for indirect calls (virtual dispatch): CFG validation,
 * executor semantics, builder emission, predictor classification, and
 * the engine timeline.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "core/simulator.hh"
#include "workload/cfg_builder.hh"
#include "workload/executor.hh"
#include "workload/layout.hh"
#include "workload/registry.hh"
#include "workload/reorder.hh"
#include "workload/workload.hh"

namespace specfetch {
namespace {

/** main with one dispatch site over two leaf callees. */
Cfg
dispatchCfg()
{
    Cfg cfg;

    auto add = [&](uint32_t func, uint32_t body, TermKind term) {
        BasicBlock block;
        block.id = static_cast<uint32_t>(cfg.blocks.size());
        block.func = func;
        block.bodyLen = body;
        block.term = term;
        cfg.blocks.push_back(block);
        return cfg.blocks.back().id;
    };

    uint32_t site = add(0, 2, TermKind::IndirectCall);
    uint32_t seal = add(0, 1, TermKind::Jump);
    uint32_t f1 = add(1, 3, TermKind::Return);
    uint32_t f2 = add(2, 5, TermKind::Return);

    cfg.blocks[site].indirectTargets = {1, 2};    // function indices
    cfg.blocks[site].indirectWeights = {2.0, 1.0};
    cfg.blocks[seal].target = site;

    cfg.functions.push_back(Function{0, site, seal, "main"});
    cfg.functions.push_back(Function{1, f1, f1, "f1"});
    cfg.functions.push_back(Function{2, f2, f2, "f2"});
    cfg.validate();
    return cfg;
}

TEST(IndirectCallCfg, ValidatesAndLaysOut)
{
    Cfg cfg = dispatchCfg();
    ProgramImage image = layoutProgram(cfg);
    // The dispatch terminator decodes as an indirect call.
    Addr term_pc = cfg.blocks[0].startAddr + 2 * kInstBytes;
    EXPECT_EQ(image.at(term_pc).cls, InstClass::IndirectCall);
}

TEST(IndirectCallCfgDeath, CyclicDispatchRejected)
{
    Cfg cfg = dispatchCfg();
    cfg.blocks[0].indirectTargets = {0, 1};    // calls itself
    EXPECT_DEATH(cfg.validate(), "cyclic");
}

TEST(IndirectCallExecutor, DispatchesAndReturns)
{
    Cfg cfg = dispatchCfg();
    layoutProgram(cfg);
    Executor executor(cfg, 42);

    DynInst inst;
    int64_t depth = 0;
    uint64_t f1_entries = 0;
    uint64_t f2_entries = 0;
    for (int i = 0; i < 60000; ++i) {
        executor.next(inst);
        if (inst.cls == InstClass::IndirectCall) {
            ++depth;
            if (inst.target == cfg.blocks[2].startAddr)
                ++f1_entries;
            if (inst.target == cfg.blocks[3].startAddr)
                ++f2_entries;
        }
        if (inst.cls == InstClass::Return) {
            --depth;
            // Returns land on the continuation after the site.
            ASSERT_EQ(inst.target, cfg.blocks[1].startAddr);
        }
        ASSERT_GE(depth, 0);
        ASSERT_LE(depth, 1);
    }
    EXPECT_GT(executor.indirectCalls.value(), 0u);
    // 2:1 weighting.
    EXPECT_GT(f1_entries, f2_entries);
    EXPECT_GT(f2_entries, 0u);
}

TEST(IndirectCallBuilder, EmitsSitesWhenWeighted)
{
    WorkloadProfile profile;
    profile.structureSeed = 9;
    profile.numFunctions = 16;
    profile.meanFuncBlocks = 20;
    profile.meanBlockLen = 4.0;
    profile.indirectCallWeight = 1.5;
    Cfg cfg = CfgBuilder(profile).build();

    size_t sites = 0;
    for (const BasicBlock &block : cfg.blocks) {
        if (block.term == TermKind::IndirectCall) {
            ++sites;
            EXPECT_GE(block.indirectTargets.size(), 2u);
            for (uint32_t callee : block.indirectTargets)
                EXPECT_GT(callee, block.func);
        }
    }
    EXPECT_GT(sites, 0u);
}

TEST(IndirectCallPredictor, ClassifiedAsTargetMispredict)
{
    Prediction miss{true, false, 0};
    DynInst inst{0x1000, InstClass::IndirectCall, true, 0x4000};
    EXPECT_EQ(BranchPredictor::classify(miss, inst),
              BranchOutcome::TargetMispredict);

    Prediction right{true, true, 0x4000};
    EXPECT_EQ(BranchPredictor::classify(right, inst),
              BranchOutcome::Correct);
}

TEST(IndirectCallPredictor, BtbLearnsAtResolve)
{
    BranchPredictor predictor;
    predictor.onResolve(
        DynInst{0x1000, InstClass::IndirectCall, true, 0x4000});
    Prediction p = predictor.predict(0x1000, InstClass::IndirectCall);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x4000u);
}

TEST(IndirectCallPredictor, RasCoversTheReturn)
{
    PredictorConfig config;
    config.rasDepth = 8;
    BranchPredictor predictor(config);
    predictor.predict(0x1000, InstClass::IndirectCall);    // pushes
    Prediction p = predictor.predict(0x5000, InstClass::Return);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x1004u);
}

TEST(IndirectCallEngine, MonomorphicSiteTrainsClean)
{
    // A dispatch site that alternates callees keeps mispredicting;
    // the executor's 2:1 weights mean the BTB is often wrong — just
    // assert the run is sane and the ledger holds.
    Cfg cfg = dispatchCfg();
    ProgramImage image = layoutProgram(cfg);
    Workload w{WorkloadProfile{}, std::move(cfg), std::move(image)};

    SimConfig config;
    config.instructionBudget = 60'000;
    config.policy = FetchPolicy::Resume;
    SimResults r = runSimulation(w, config);
    EXPECT_GT(r.targetMispredicts, 0u);
    EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
              r.instructions + r.penalty.totalSlots());
}

TEST(IndirectCallTrace, SurvivesRoundTrip)
{
    // Indirect calls must encode/decode through the trace format.
    WorkloadProfile profile = getProfile("groff");    // has dispatch
    Workload w = buildWorkload(profile);
    Executor executor(w.cfg, 42);
    DynInst inst;
    bool saw_icall = false;
    for (int i = 0; i < 300000 && !saw_icall; ++i) {
        executor.next(inst);
        saw_icall |= inst.cls == InstClass::IndirectCall;
    }
    EXPECT_TRUE(saw_icall) << "groff profile should dispatch";
}

} // namespace
} // namespace specfetch
