/** @file Unit tests for workload/executor.hh. */

#include "workload/executor.hh"

#include <gtest/gtest.h>

#include "workload/cfg_builder.hh"
#include "workload/layout.hh"
#include "workload/workload.hh"

namespace specfetch {
namespace {

Workload
smallWorkload(uint64_t seed = 3)
{
    WorkloadProfile profile;
    profile.structureSeed = seed;
    profile.numFunctions = 10;
    profile.meanFuncBlocks = 16;
    profile.meanBlockLen = 4.0;
    return buildWorkload(profile);
}

TEST(Executor, PathIsContiguous)
{
    Workload w = smallWorkload();
    Executor executor(w.cfg, 42);
    DynInst inst;
    ASSERT_TRUE(executor.next(inst));
    Addr expected = inst.nextPc();
    for (int i = 0; i < 100000; ++i) {
        ASSERT_TRUE(executor.next(inst));
        ASSERT_EQ(inst.pc, expected) << "at step " << i;
        expected = inst.nextPc();
    }
}

TEST(Executor, EveryPcInsideImage)
{
    Workload w = smallWorkload();
    Executor executor(w.cfg, 42);
    DynInst inst;
    for (int i = 0; i < 50000; ++i) {
        executor.next(inst);
        ASSERT_TRUE(w.image.contains(inst.pc));
    }
}

TEST(Executor, DynamicMatchesStaticClasses)
{
    Workload w = smallWorkload();
    Executor executor(w.cfg, 42);
    DynInst inst;
    for (int i = 0; i < 50000; ++i) {
        executor.next(inst);
        StaticInst expected = w.image.at(inst.pc);
        ASSERT_EQ(inst.cls, expected.cls) << "at pc " << std::hex
                                          << inst.pc;
        // Direct control must report the static target.
        if (hasStaticTarget(inst.cls)) {
            ASSERT_EQ(inst.target, expected.target);
        }
    }
}

TEST(Executor, DeterministicForSeed)
{
    Workload w = smallWorkload();
    Executor a(w.cfg, 99);
    Executor b(w.cfg, 99);
    DynInst inst_a, inst_b;
    for (int i = 0; i < 20000; ++i) {
        a.next(inst_a);
        b.next(inst_b);
        ASSERT_EQ(inst_a.pc, inst_b.pc);
        ASSERT_EQ(inst_a.taken, inst_b.taken);
        ASSERT_EQ(inst_a.target, inst_b.target);
    }
}

TEST(Executor, SeedsChangeDynamicBehavior)
{
    Workload w = smallWorkload();
    Executor a(w.cfg, 1);
    Executor b(w.cfg, 2);
    DynInst inst_a, inst_b;
    int diverged = 0;
    for (int i = 0; i < 20000; ++i) {
        a.next(inst_a);
        b.next(inst_b);
        diverged += inst_a.pc != inst_b.pc;
    }
    EXPECT_GT(diverged, 0);
}

TEST(Executor, CountsAreConsistent)
{
    Workload w = smallWorkload();
    Executor executor(w.cfg, 42);
    DynInst inst;
    uint64_t control = 0;
    uint64_t cond = 0;
    const uint64_t n = 50000;
    for (uint64_t i = 0; i < n; ++i) {
        executor.next(inst);
        control += isControl(inst.cls);
        cond += inst.cls == InstClass::CondBranch;
    }
    EXPECT_EQ(executor.instructions.value(), n);
    EXPECT_EQ(executor.controlInsts.value(), control);
    EXPECT_EQ(executor.condBranches.value(), cond);
    EXPECT_GT(executor.branchFraction(), 0.0);
    EXPECT_LT(executor.branchFraction(), 1.0);
}

TEST(Executor, CallsAndReturnsBalance)
{
    Workload w = smallWorkload();
    Executor executor(w.cfg, 42);
    DynInst inst;
    int64_t depth = 0;
    int64_t max_depth = 0;
    for (int i = 0; i < 200000; ++i) {
        executor.next(inst);
        if (inst.cls == InstClass::Call)
            ++depth;
        if (inst.cls == InstClass::Return)
            --depth;
        ASSERT_GE(depth, 0) << "return without call";
        max_depth = std::max(max_depth, depth);
    }
    // The layered call pyramid bounds the depth.
    EXPECT_LE(max_depth,
              static_cast<int64_t>(w.cfg.functions.size()));
    EXPECT_GT(max_depth, 0);
}

TEST(Executor, ReturnsGoToCallContinuation)
{
    Workload w = smallWorkload();
    Executor executor(w.cfg, 42);
    DynInst inst;
    std::vector<Addr> stack;
    for (int i = 0; i < 200000; ++i) {
        executor.next(inst);
        if (inst.cls == InstClass::Call)
            stack.push_back(inst.pc + kInstBytes);
        if (inst.cls == InstClass::Return) {
            ASSERT_FALSE(stack.empty());
            ASSERT_EQ(inst.target, stack.back());
            stack.pop_back();
        }
    }
}

TEST(Executor, LoopTripCountsRoughlyMatchBehavior)
{
    // Build a tiny hand-made loop: block0 body, loop-back branch with
    // tripCount 5 and no jitter; block1 jumps back to block0.
    Cfg cfg;
    BasicBlock body;
    body.id = 0;
    body.func = 0;
    body.bodyLen = 1;
    body.term = TermKind::CondBranch;
    body.target = 0;
    body.behavior.mode = DirMode::LoopBack;
    body.behavior.tripCount = 5;
    body.behavior.tripJitter = 0.0;
    cfg.blocks.push_back(body);

    BasicBlock tail;
    tail.id = 1;
    tail.func = 0;
    tail.bodyLen = 1;
    tail.term = TermKind::Jump;
    tail.target = 0;
    cfg.blocks.push_back(tail);

    Function main;
    main.index = 0;
    main.firstBlock = 0;
    main.lastBlock = 1;
    cfg.functions.push_back(main);
    cfg.validate();
    layoutProgram(cfg);

    Executor executor(cfg, 7);
    DynInst inst;
    // One loop activation: body executes 5 times (10 instructions),
    // then the tail. Count taken branches in the first activation.
    int taken = 0;
    for (int i = 0; i < 10; ++i) {
        executor.next(inst);
        if (inst.cls == InstClass::CondBranch && inst.taken)
            ++taken;
    }
    EXPECT_EQ(taken, 4);    // 5 iterations = 4 back edges
}

TEST(Executor, PatternBranchFollowsPattern)
{
    Cfg cfg;
    BasicBlock body;
    body.id = 0;
    body.func = 0;
    body.bodyLen = 1;
    body.term = TermKind::CondBranch;
    body.target = 1;    // forward skip
    body.behavior.mode = DirMode::Pattern;
    body.behavior.patternLen = 3;
    body.behavior.patternBits = 0b011;
    cfg.blocks.push_back(body);

    BasicBlock tail;
    tail.id = 1;
    tail.func = 0;
    tail.bodyLen = 1;
    tail.term = TermKind::Jump;
    tail.target = 0;
    cfg.blocks.push_back(tail);

    Function main{0, 0, 1, "main"};
    cfg.functions.push_back(main);
    cfg.validate();
    layoutProgram(cfg);

    Executor executor(cfg, 7);
    DynInst inst;
    std::vector<bool> outcomes;
    while (outcomes.size() < 9) {
        executor.next(inst);
        if (inst.cls == InstClass::CondBranch)
            outcomes.push_back(inst.taken);
    }
    std::vector<bool> expected{true, true, false,
                               true, true, false,
                               true, true, false};
    EXPECT_EQ(outcomes, expected);
}

} // namespace
} // namespace specfetch
