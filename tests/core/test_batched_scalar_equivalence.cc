/**
 * @file
 * Batched-vs-scalar bit-exactness properties (DESIGN.md §14).
 *
 * The replay fast path consumes whole RLE plain runs via
 * SnapshotReplaySource::takePlainRun and retires them in per-line
 * probe batches. The contract is that this is *unobservable*: every
 * counter, penalty slot, epoch record, heatmap bucket and adaptive
 * choice must be bit-identical to the instruction-at-a-time path.
 * The scalar reference is obtained by replaying the same snapshot
 * through the InstructionSource base interface, which does not expose
 * takePlainRun, so the engine's run loop falls back to one next() per
 * instruction.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fetch_engine.hh"
#include "core/simulator.hh"
#include "engine_test_support.hh"
#include "obs/set_heatmap.hh"
#include "trace/snapshot.hh"
#include "workload/executor.hh"
#include "workload/registry.hh"
#include "workload/workload.hh"

namespace specfetch {
namespace {

constexpr uint64_t kBudget = 20'000;

constexpr FetchPolicy kPolicies[] = {
    FetchPolicy::Oracle, FetchPolicy::Optimistic, FetchPolicy::Resume,
    FetchPolicy::Pessimistic, FetchPolicy::Decode,
};

/** Replay @p snap through the batched (takePlainRun) fast path. */
SimResults
runBatched(const ProgramImage &image, const SimConfig &config,
           const TraceSnapshot &snap, RunObservations *obs = nullptr)
{
    SnapshotReplaySource source(snap);
    FetchEngine engine(config, image);
    SimResults results = engine.runWith(source);
    if (obs)
        engine.takeObservations(*obs);
    return results;
}

/**
 * Replay @p snap one instruction at a time. Erasing the source's
 * static type hides takePlainRun from the run loop's requires-clause,
 * so this exercises exactly the scalar fetchOne path.
 */
SimResults
runScalar(const ProgramImage &image, const SimConfig &config,
          const TraceSnapshot &snap, RunObservations *obs = nullptr)
{
    SnapshotReplaySource source(snap);
    InstructionSource &erased = source;
    FetchEngine engine(config, image);
    SimResults results = engine.runWith(erased);
    if (obs)
        engine.takeObservations(*obs);
    return results;
}

TraceSnapshot
recordSnapshot(const Workload &w, uint64_t length, uint64_t seed = 42,
               unsigned max_plain_run = 0)
{
    Executor recorder(w.cfg, seed);
    return max_plain_run > 0
               ? TraceSnapshot::record(recorder, length, max_plain_run)
               : TraceSnapshot::record(recorder, length);
}

void
expectEpochsEqual(const std::vector<EpochRecord> &a,
                  const std::vector<EpochRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const EpochRecord &x = a[i];
        const EpochRecord &y = b[i];
        EXPECT_EQ(x.epoch, y.epoch) << "epoch " << i;
        EXPECT_EQ(x.firstInstruction, y.firstInstruction) << "epoch " << i;
        EXPECT_EQ(x.lastInstruction, y.lastInstruction) << "epoch " << i;
        EXPECT_EQ(x.slots, y.slots) << "epoch " << i;
        for (size_t k = 0; k < kNumPenaltyKinds; ++k) {
            EXPECT_EQ(x.penaltySlots[k], y.penaltySlots[k])
                << "epoch " << i << " penalty " << k;
        }
        EXPECT_EQ(x.controlInsts, y.controlInsts) << "epoch " << i;
        EXPECT_EQ(x.condBranches, y.condBranches) << "epoch " << i;
        EXPECT_EQ(x.misfetches, y.misfetches) << "epoch " << i;
        EXPECT_EQ(x.dirMispredicts, y.dirMispredicts) << "epoch " << i;
        EXPECT_EQ(x.targetMispredicts, y.targetMispredicts) << "epoch " << i;
        EXPECT_EQ(x.demandAccesses, y.demandAccesses) << "epoch " << i;
        EXPECT_EQ(x.demandMisses, y.demandMisses) << "epoch " << i;
        EXPECT_EQ(x.demandFills, y.demandFills) << "epoch " << i;
        EXPECT_EQ(x.bufferHits, y.bufferHits) << "epoch " << i;
        EXPECT_EQ(x.wrongAccesses, y.wrongAccesses) << "epoch " << i;
        EXPECT_EQ(x.wrongMisses, y.wrongMisses) << "epoch " << i;
        EXPECT_EQ(x.wrongFills, y.wrongFills) << "epoch " << i;
        EXPECT_EQ(x.prefetchesIssued, y.prefetchesIssued) << "epoch " << i;
        EXPECT_EQ(x.partial, y.partial) << "epoch " << i;
    }
}

void
expectHeatmapsEqual(const SetHeatmap *a, const SetHeatmap *b)
{
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->demandAccesses(), b->demandAccesses());
    EXPECT_EQ(a->demandMisses(), b->demandMisses());
    EXPECT_EQ(a->correctFills(), b->correctFills());
    EXPECT_EQ(a->wrongAccesses(), b->wrongAccesses());
    EXPECT_EQ(a->wrongMisses(), b->wrongMisses());
    EXPECT_EQ(a->wrongFills(), b->wrongFills());
    EXPECT_EQ(a->evictionsByCorrect(), b->evictionsByCorrect());
    EXPECT_EQ(a->evictionsByWrong(), b->evictionsByWrong());
}

void
expectAdaptiveEqual(const AdaptiveLog &a, const AdaptiveLog &b)
{
    EXPECT_EQ(a.interval, b.interval);
    EXPECT_EQ(a.basePolicy, b.basePolicy);
    EXPECT_EQ(a.switches, b.switches);
    ASSERT_EQ(a.choices.size(), b.choices.size());
    for (size_t i = 0; i < a.choices.size(); ++i) {
        EXPECT_EQ(a.choices[i].epoch, b.choices[i].epoch) << "choice " << i;
        EXPECT_EQ(a.choices[i].policy, b.choices[i].policy)
            << "choice " << i;
        EXPECT_EQ(a.choices[i].firstInstruction,
                  b.choices[i].firstInstruction)
            << "choice " << i;
        EXPECT_EQ(a.choices[i].lastInstruction, b.choices[i].lastInstruction)
            << "choice " << i;
    }
}

/**
 * The full grid the bench suite sweeps: every benchmark, every
 * policy, prefetch off and on. SimResults equality is exact over
 * every raw counter and penalty slot.
 */
TEST(BatchedScalar, AllBenchmarksAllPoliciesAllPrefetch)
{
    for (const std::string &name : benchmarkNames()) {
        const Workload &w = *sharedWorkload(name);
        TraceSnapshot snap = recordSnapshot(w, kBudget);
        for (FetchPolicy policy : kPolicies) {
            for (bool prefetch : {false, true}) {
                SimConfig config;
                config.policy = policy;
                config.instructionBudget = kBudget;
                config.prefetchKind = prefetch ? PrefetchKind::NextLine
                                               : PrefetchKind::None;
                SimResults batched = runBatched(w.image, config, snap);
                SimResults scalar = runScalar(w.image, config, snap);
                EXPECT_EQ(batched, scalar)
                    << name << " " << toString(policy)
                    << (prefetch ? " +prefetch" : "");
            }
        }
    }
}

/**
 * Epoch series and set heatmaps under an interval that does not
 * divide the budget (forces a partial final epoch) and falls inside
 * plain runs and cache lines alike.
 */
TEST(BatchedScalar, SamplerEpochsAndHeatmapIdentical)
{
    for (const std::string &name : benchmarkNames()) {
        const Workload &w = *sharedWorkload(name);
        TraceSnapshot snap = recordSnapshot(w, kBudget);
        SimConfig config;
        config.policy = FetchPolicy::Resume;
        config.instructionBudget = kBudget;
        config.prefetchKind = PrefetchKind::NextLine;
        config.sampleInterval = 3'001;   // boundary lands mid-run/mid-line
        config.setHeatmap = true;

        RunObservations obs_b, obs_s;
        SimResults batched = runBatched(w.image, config, snap, &obs_b);
        SimResults scalar = runScalar(w.image, config, snap, &obs_s);
        EXPECT_EQ(batched, scalar) << name;
        expectEpochsEqual(obs_b.epochs, obs_s.epochs);
        expectHeatmapsEqual(obs_b.heatmap.get(), obs_s.heatmap.get());
    }
}

/**
 * Adaptive selection switches policy at epoch boundaries; the batch
 * cap must stop every batch exactly at the decision point so both
 * paths see identical epochs and make identical choices.
 */
TEST(BatchedScalar, AdaptiveSelectionIdentical)
{
    for (SelectorKind kind : {SelectorKind::Threshold, SelectorKind::Bandit}) {
        for (const std::string &name : {std::string("gcc"),
                                        std::string("li"),
                                        std::string("doduc")}) {
            const Workload &w = *sharedWorkload(name);
            TraceSnapshot snap = recordSnapshot(w, kBudget);
            SimConfig config;
            config.policy = FetchPolicy::Resume;
            config.instructionBudget = kBudget;
            config.adaptiveSelector = kind;
            config.adaptiveInterval = 2'500;

            RunObservations obs_b, obs_s;
            SimResults batched = runBatched(w.image, config, snap, &obs_b);
            SimResults scalar = runScalar(w.image, config, snap, &obs_s);
            EXPECT_EQ(batched, scalar) << name;
            expectAdaptiveEqual(obs_b.adaptive, obs_s.adaptive);
        }
    }
}

/**
 * Paranoid checking audits every checkpointInterval instructions; the
 * batch cap must present the auditor with the same mid-run state the
 * scalar path would (a violated invariant panics the run).
 */
TEST(BatchedScalar, ParanoidAuditedRunsIdentical)
{
    for (const std::string &name : {std::string("gcc"),
                                    std::string("tex"),
                                    std::string("porky")}) {
        const Workload &w = *sharedWorkload(name);
        TraceSnapshot snap = recordSnapshot(w, kBudget);
        SimConfig config;
        config.policy = FetchPolicy::Pessimistic;
        config.instructionBudget = kBudget;
        config.checkLevel = CheckLevel::Paranoid;
        config.checkpointInterval = 2'000;

        SimResults batched = runBatched(w.image, config, snap);
        SimResults scalar = runScalar(w.image, config, snap);
        EXPECT_EQ(batched, scalar) << name;
    }
}

/**
 * Degenerate runs: a snapshot recorded with max_plain_run = 1 turns
 * every plain into its own single-instruction run record. The batch
 * path must survive a stream of length-1 batches and still match
 * both the scalar path and the unchunked snapshot.
 */
TEST(BatchedScalar, SingleInstructionRuns)
{
    const Workload &w = *sharedWorkload("gcc");
    TraceSnapshot whole = recordSnapshot(w, kBudget);
    TraceSnapshot chunked = recordSnapshot(w, kBudget, 42,
                                           /*max_plain_run=*/1);
    SimConfig config;
    config.policy = FetchPolicy::Resume;
    config.instructionBudget = kBudget;

    SimResults batched_whole = runBatched(w.image, config, whole);
    SimResults batched_chunked = runBatched(w.image, config, chunked);
    SimResults scalar = runScalar(w.image, config, whole);
    EXPECT_EQ(batched_whole, scalar);
    EXPECT_EQ(batched_chunked, scalar);
}

/**
 * A single plain run long enough to straddle line boundaries, set
 * boundaries and a full wrap of the 8K direct-mapped array (256
 * 32-byte lines), with a backward branch so later laps hit lines the
 * first lap installed. Exercises the consecutive-line stepping in
 * fetchPlainRun across every line-relative phase: the run starts
 * mid-line (3 plains past the branch target's line start).
 */
TEST(BatchedScalar, RunStraddlesLineSetAndWrapBoundaries)
{
    using test::ProgramScript;
    ProgramScript script(0x10000, 8192);
    const Addr top = script.pc();
    // 2600 plains ≈ 325 lines > the 256-line array: guaranteed wrap.
    script.plains(3);
    const Addr body = script.pc();
    script.plains(2600);
    for (int lap = 0; lap < 4; ++lap) {
        script.control(InstClass::CondBranch, true, body);
        script.plains(2600);
    }
    script.control(InstClass::Jump, true, top);

    SimConfig config;
    config.instructionBudget = script.scriptLength();
    config.sampleInterval = 777;    // epoch boundaries mid-line
    for (FetchPolicy policy : kPolicies) {
        config.policy = policy;
        test::ScriptedSource recorder = script.source();
        TraceSnapshot snap =
            TraceSnapshot::record(recorder, script.scriptLength());

        RunObservations obs_b, obs_s;
        SimResults batched = runBatched(script.image(), config, snap, &obs_b);
        SimResults scalar = runScalar(script.image(), config, snap, &obs_s);
        EXPECT_EQ(batched, scalar) << toString(policy);
        expectEpochsEqual(obs_b.epochs, obs_s.epochs);
    }
}

/**
 * Budget expiring mid-run: the engine must cut the final batch at
 * the instruction budget, not at the run record's end.
 */
TEST(BatchedScalar, BudgetCutsBatchMidRun)
{
    using test::ProgramScript;
    ProgramScript script(0x10000, 4096);
    script.plains(3000);

    SimConfig config;
    config.instructionBudget = 1'234;   // mid-run, mid-line
    for (FetchPolicy policy : kPolicies) {
        config.policy = policy;
        test::ScriptedSource recorder = script.source();
        TraceSnapshot snap =
            TraceSnapshot::record(recorder, script.scriptLength());

        SimResults batched = runBatched(script.image(), config, snap);
        SimResults scalar = runScalar(script.image(), config, snap);
        EXPECT_EQ(batched, scalar) << toString(policy);
        EXPECT_EQ(batched.instructions, config.instructionBudget);
    }
}

} // namespace
} // namespace specfetch
