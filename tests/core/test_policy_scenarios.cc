/**
 * @file
 * Additional hand-computed policy scenarios: Decode's late wrong-path
 * servicing, indirect-jump target mispredicts (idle windows), and
 * call/return handling. Timelines follow docs/MODEL.md.
 */

#include <gtest/gtest.h>

#include "engine_test_support.hh"

namespace specfetch {
namespace test {
namespace {

constexpr Addr kBase = 0x10000;

TEST(DecodeScenario, ServicesMispredictPathLate)
{
    // 7 plains + mispredicted branch in line0; wrong path = cold
    // line1; correct target = cold line2.
    ProgramScript script;
    script.plains(7);
    script.control(InstClass::CondBranch, true, kBase + 0x40);
    script.plains(8);

    SimResults r = runScript(script, FetchPolicy::Decode);
    // Timeline: fr 8 (initial decode wait), fill 8..28, issues
    // 28..34, branch at 35, window [36,52). The wrong-path miss at 36
    // becomes serviceable at 36+8=44, fills 44..64: overhang 12.
    // Correct miss at 64 has no residual decode wait; fill 64..84.
    EXPECT_EQ(r.penalty.slots(PenaltyKind::ForceResolve), 8u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 16u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::WrongIcache), 12u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 40u);
    EXPECT_EQ(r.wrongFills, 1u);    // mispredict paths ARE serviced
    EXPECT_EQ(r.finalSlot, 92);
}

TEST(DecodeScenario, RefusesMisfetchPathMisses)
{
    // A first-sight jump misfetches; its fall-through runs into a
    // cold line. Decode must NOT service that miss (decode reveals
    // the misfetch exactly when the fill could start).
    ProgramScript script;
    script.plains(7);    // line0, jump at its end
    script.control(InstClass::Jump, true, kBase + 8 * 0x20);
    script.plains(8);
    // fall-through region: line1 is cold image-only code.
    script.imagePlains(kBase + 0x20, 8);

    SimResults r = runScript(script, FetchPolicy::Decode);
    EXPECT_EQ(r.misfetches, 1u);
    EXPECT_EQ(r.wrongMisses, 1u);
    EXPECT_EQ(r.wrongFills, 0u);    // never serviced
    EXPECT_EQ(r.penalty.slots(PenaltyKind::WrongIcache), 0u);
}

TEST(IndirectScenario, TargetMispredictIdlesThenTrains)
{
    // Two trips through: 3 plains, indirect jump to line2, one plain,
    // direct jump back. Trip 1: the indirect jump has no BTB target
    // (16-slot idle window, no wrong-path fetches) and the direct
    // jump misfetches (8). Trip 2: both hit (resolve installed the
    // indirect target; decode installed the jump).
    ProgramScript script;
    for (int trip = 0; trip < 2; ++trip) {
        script.plains(3);
        script.control(InstClass::IndirectJump, true, kBase + 0x40);
        script.plains(1);
        script.control(InstClass::Jump, true, kBase);
    }
    // Keep the direct jump's misfetch-window walk inside warm line2:
    // an unpredicted return at the line's last word ends the walk
    // before it can cross into cold line3.
    script.imageOnly(kBase + 0x5c, InstClass::Return);

    SimResults r = runScript(script, FetchPolicy::Optimistic);
    EXPECT_EQ(r.instructions, 12u);
    EXPECT_EQ(r.targetMispredicts, 1u);
    EXPECT_EQ(r.misfetches, 1u);
    EXPECT_EQ(r.dirMispredicts, 0u);
    // The idle indirect window makes no wrong-path accesses at all.
    EXPECT_EQ(r.wrongFills, 0u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 16u + 8u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 40u);
    EXPECT_EQ(r.finalSlot, 76);
}

TEST(CallReturnScenario, MisfetchAndTargetMispredictOnFirstSight)
{
    // plains(2), call to a far function, body, return, plains(2).
    // First-sight call = misfetch (8); first-sight return = target
    // mispredict (16, idle window since the BTB has nothing).
    ProgramScript script;
    script.plains(2);
    script.control(InstClass::Call, true, kBase + 4 * 0x20);
    script.plains(2);                                  // callee body
    script.control(InstClass::Return, true, kBase + 3 * 4);
    script.plains(2);

    SimResults r = runScript(script, FetchPolicy::Oracle);
    EXPECT_EQ(r.instructions, 8u);
    EXPECT_EQ(r.misfetches, 1u);
    EXPECT_EQ(r.targetMispredicts, 1u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 8u + 16u);
    // Two cold lines: line0 and the callee's line4.
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 40u);
    EXPECT_EQ(r.finalSlot, 72);
}

TEST(CallReturnScenario, RasRemovesReturnPenalty)
{
    // Same program with an 8-deep RAS: the return target comes from
    // the stack, so only the call's misfetch remains.
    ProgramScript script;
    script.plains(2);
    script.control(InstClass::Call, true, kBase + 4 * 0x20);
    script.plains(2);
    script.control(InstClass::Return, true, kBase + 3 * 4);
    script.plains(2);

    SimConfig config = scriptConfig(script, FetchPolicy::Oracle);
    config.predictor.rasDepth = 8;
    SimResults r = runScript(script, FetchPolicy::Oracle, &config);
    EXPECT_EQ(r.targetMispredicts, 0u);
    EXPECT_EQ(r.misfetches, 1u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 8u);
    EXPECT_EQ(r.finalSlot, 72 - 16);
}

TEST(WidthScenario, TwoWideMachineHalvesSlotPenalties)
{
    // The same mispredict scenario on a 2-wide machine: decode is
    // 2 cycles = 4 slots, resolve 4 cycles = 8 slots, a 5-cycle miss
    // fills for 10 slots.
    ProgramScript script;
    script.plains(7);
    script.control(InstClass::CondBranch, true, kBase + 0x40);
    script.plains(8);

    SimConfig config = scriptConfig(script, FetchPolicy::Oracle);
    config.issueWidth = 2;
    SimResults r = runScript(script, FetchPolicy::Oracle, &config);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 8u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 20u);
    EXPECT_EQ(r.mispredictSlots, 8u);    // derived metrics track width
    EXPECT_DOUBLE_EQ(r.phtMispredictIspi(), 8.0 / 16.0);
}

} // namespace
} // namespace test
} // namespace specfetch
