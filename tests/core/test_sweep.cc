/**
 * @file
 * runSweep contract tests: serial and parallel sweeps must produce
 * identical results in submission order, timing capture must cover
 * every spec, and benchBudget must honour the SPECFETCH_BUDGET
 * environment variable (K/M/G suffixes, garbage rejected).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/simulator.hh"
#include "core/sweep.hh"

using namespace specfetch;

namespace {

std::vector<RunSpec>
smallGrid()
{
    SimConfig base;
    base.instructionBudget = 50'000;
    std::vector<RunSpec> specs;
    for (const char *name : {"li", "gcc", "doduc"}) {
        for (FetchPolicy policy :
             {FetchPolicy::Oracle, FetchPolicy::Resume,
              FetchPolicy::Pessimistic}) {
            SimConfig config = base;
            config.policy = policy;
            specs.push_back(RunSpec{name, config});
        }
    }
    return specs;
}

} // namespace

TEST(Sweep, ParallelMatchesSerialBitExactly)
{
    std::vector<RunSpec> specs = smallGrid();
    std::vector<SimResults> serial = runSweep(specs, /*parallelism=*/1);
    std::vector<SimResults> parallel = runSweep(specs, /*parallelism=*/4);

    ASSERT_EQ(serial.size(), specs.size());
    ASSERT_EQ(parallel.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(serial[i], parallel[i])
            << "spec " << i << " (" << specs[i].benchmark << ", "
            << toString(specs[i].config.policy) << ") diverged";
    }
}

TEST(Sweep, ResultsComeBackInSubmissionOrder)
{
    std::vector<RunSpec> specs = smallGrid();
    std::vector<SimResults> results = runSweep(specs, /*parallelism=*/4);
    ASSERT_EQ(results.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(results[i].workload, specs[i].benchmark);
        EXPECT_EQ(results[i].policy, specs[i].config.policy);
    }
}

TEST(Sweep, RepeatedSweepIsDeterministic)
{
    std::vector<RunSpec> specs = smallGrid();
    std::vector<SimResults> first = runSweep(specs, /*parallelism=*/2);
    std::vector<SimResults> second = runSweep(specs, /*parallelism=*/2);
    for (size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(first[i], second[i]);
}

TEST(Sweep, SnapshotReplayPathMatchesSingleRuns)
{
    // Every benchmark here appears under three policies, so each
    // (benchmark, seed) stream has three consumers and the sweep
    // records and replays it; runBenchmark always executes live.
    std::vector<RunSpec> specs = smallGrid();
    std::vector<SimResults> swept = runSweep(specs, /*parallelism=*/2);
    ASSERT_EQ(swept.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(swept[i],
                  runBenchmark(specs[i].benchmark, specs[i].config))
            << "spec " << i << " (" << specs[i].benchmark << ", "
            << toString(specs[i].config.policy)
            << "): replayed sweep diverged from a live run";
    }
}

TEST(Sweep, DistinctSeedsGetDistinctStreams)
{
    SimConfig base;
    base.instructionBudget = 50'000;
    std::vector<RunSpec> specs;
    for (uint64_t seed : {7u, 8u}) {
        for (FetchPolicy policy :
             {FetchPolicy::Resume, FetchPolicy::Pessimistic}) {
            SimConfig config = base;
            config.runSeed = seed;
            config.policy = policy;
            specs.push_back(RunSpec{"gcc", config});
        }
    }
    std::vector<SimResults> swept = runSweep(specs, /*parallelism=*/2);
    // Each seed's pair shares one snapshot; sharing across seeds
    // would replay the wrong dynamic stream and diverge from live.
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(swept[i],
                  runBenchmark(specs[i].benchmark, specs[i].config));
    }
    EXPECT_NE(swept[0], swept[2])
        << "different run seeds should produce different dynamics";
}

TEST(Sweep, MixedWarmupSharesTheLongestSnapshot)
{
    // Same stream, different (warmup, budget) splits: the recorded
    // snapshot must cover the hungriest consumer and still replay
    // bit-identically for the shorter ones.
    std::vector<RunSpec> specs;
    for (uint64_t warmup : {0u, 10'000u, 30'000u}) {
        SimConfig config;
        config.warmupInstructions = warmup;
        config.instructionBudget = 40'000;
        specs.push_back(RunSpec{"li", config});
    }
    std::vector<SimResults> swept = runSweep(specs, /*parallelism=*/2);
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(swept[i],
                  runBenchmark(specs[i].benchmark, specs[i].config))
            << "warmup " << specs[i].config.warmupInstructions;
    }
}

TEST(Sweep, TimingCoversEverySpec)
{
    std::vector<RunSpec> specs = smallGrid();
    SweepTiming timing;
    runSweep(specs, /*parallelism=*/2, &timing);

    ASSERT_EQ(timing.perRunSeconds.size(), specs.size());
    for (double seconds : timing.perRunSeconds)
        EXPECT_GE(seconds, 0.0);
    EXPECT_GT(timing.totalSeconds, 0.0);
    EXPECT_GE(timing.totalSeconds, timing.runSeconds);
    EXPECT_GE(timing.workloadBuildSeconds, 0.0);
    EXPECT_GE(timing.snapshotRecordSeconds, 0.0);
}

TEST(Sweep, TimingResetBetweenCalls)
{
    std::vector<RunSpec> one{smallGrid()[0]};
    SweepTiming timing;
    timing.perRunSeconds.assign(99, 1.0); // stale garbage
    runSweep(one, 1, &timing);
    EXPECT_EQ(timing.perRunSeconds.size(), 1u);
}

class BenchBudgetEnv : public ::testing::Test
{
  protected:
    void SetUp() override { unsetenv("SPECFETCH_BUDGET"); }
    void TearDown() override { unsetenv("SPECFETCH_BUDGET"); }

    void
    withEnv(const char *value)
    {
        setenv("SPECFETCH_BUDGET", value, /*overwrite=*/1);
    }
};

TEST_F(BenchBudgetEnv, FallbackWhenUnset)
{
    EXPECT_EQ(benchBudget(123), 123u);
}

TEST_F(BenchBudgetEnv, PlainCount)
{
    withEnv("250000");
    EXPECT_EQ(benchBudget(1), 250'000u);
}

TEST_F(BenchBudgetEnv, DecimalSuffixes)
{
    withEnv("2K");
    EXPECT_EQ(benchBudget(1), 2'000u);
    withEnv("3M");
    EXPECT_EQ(benchBudget(1), 3'000'000u);
    withEnv("1G");
    EXPECT_EQ(benchBudget(1), 1'000'000'000u);
}

TEST_F(BenchBudgetEnv, LowercaseSuffix)
{
    withEnv("4m");
    EXPECT_EQ(benchBudget(1), 4'000'000u);
}

TEST_F(BenchBudgetEnv, InvalidInputFallsBack)
{
    for (const char *bad : {"", "abc", "12Q", "-5", "K", "1.5M"}) {
        withEnv(bad);
        EXPECT_EQ(benchBudget(777), 777u) << "input: " << bad;
    }
}

TEST_F(BenchBudgetEnv, ZeroFallsBack)
{
    withEnv("0");
    EXPECT_EQ(benchBudget(777), 777u);
}
