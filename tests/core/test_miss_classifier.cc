/**
 * @file
 * Tests for the Table 4 miss classifier: hand-built pollution and
 * prefetch scenarios plus the paper's accounting identities.
 */

#include <gtest/gtest.h>

#include "core/miss_classifier.hh"
#include "core/simulator.hh"
#include "workload/registry.hh"

namespace specfetch {
namespace {

Workload
benchWorkload(const std::string &name)
{
    return buildWorkload(getProfile(name));
}

SimConfig
smallConfig()
{
    SimConfig config;
    config.instructionBudget = 300'000;
    return config;
}

TEST(MissClassifier, IdentityOracleMissesMatchOraclePolicyRun)
{
    // BM + SPr is the oracle shadow's miss count. A real
    // Oracle-policy run sees the same correct-path instruction stream
    // but slightly different redirect timing (stall patterns shift
    // when the non-speculative PHT resolves relative to fetch), so
    // the counts agree closely but not bit-exactly.
    Workload w = benchWorkload("li");
    SimConfig config = smallConfig();
    Classification c = classifyMisses(w, config);

    config.policy = FetchPolicy::Oracle;
    SimResults oracle = runSimulation(w, config);

    EXPECT_EQ(c.instructions, oracle.instructions);
    double rel = std::abs(static_cast<double>(c.oracleMisses()) -
                          static_cast<double>(oracle.demandMisses)) /
                 static_cast<double>(oracle.demandMisses);
    EXPECT_LT(rel, 0.02);
}

TEST(MissClassifier, IdentityOptimisticMissesMatchOptimisticRun)
{
    Workload w = benchWorkload("li");
    SimConfig config = smallConfig();
    Classification c = classifyMisses(w, config);

    config.policy = FetchPolicy::Optimistic;
    SimResults optimistic = runSimulation(w, config);

    // BM + SPo = Optimistic's correct-path misses; WP = its serviced
    // wrong-path misses. Same engine, same seed: exact.
    EXPECT_EQ(c.bothMiss + c.specPollute, optimistic.demandMisses);
    EXPECT_EQ(c.wrongPath, optimistic.wrongFills);
}

TEST(MissClassifier, PrefetchEffectDominatesPollution)
{
    // Paper Table 4: for every benchmark Spec Prefetch > Spec Pollute.
    for (const char *name : {"gcc", "groff", "li"}) {
        Classification c =
            classifyMisses(benchWorkload(name), smallConfig());
        EXPECT_GT(c.specPrefetch, c.specPollute) << name;
    }
}

TEST(MissClassifier, TrafficRatioAboveOne)
{
    // Wrong-path servicing can only add misses: Optimistic >= Oracle.
    for (const char *name : {"gcc", "ditroff"}) {
        Classification c =
            classifyMisses(benchWorkload(name), smallConfig());
        EXPECT_GE(c.trafficRatio(), 1.0) << name;
        EXPECT_LT(c.trafficRatio(), 3.0) << name;
    }
}

TEST(MissClassifier, FortranProfilesHaveSmallSpeculativeEffects)
{
    // Paper: "In the case of the Fortran programs, both effects are
    // minimal."
    Classification fortran =
        classifyMisses(benchWorkload("fpppp"), smallConfig());
    EXPECT_LT(fortran.specPollutePercent(), 0.3);

    Classification branchy =
        classifyMisses(benchWorkload("gcc"), smallConfig());
    EXPECT_GT(branchy.wrongPathPercent(),
              fortran.wrongPathPercent());
}

TEST(MissClassifier, PercentagesUseInstructionDenominator)
{
    Classification c;
    c.instructions = 1000;
    c.bothMiss = 20;
    c.specPollute = 5;
    c.specPrefetch = 10;
    c.wrongPath = 15;
    EXPECT_DOUBLE_EQ(c.bothMissPercent(), 2.0);
    EXPECT_DOUBLE_EQ(c.specPollutePercent(), 0.5);
    EXPECT_DOUBLE_EQ(c.specPrefetchPercent(), 1.0);
    EXPECT_DOUBLE_EQ(c.wrongPathPercent(), 1.5);
    EXPECT_EQ(c.oracleMisses(), 30u);
    EXPECT_EQ(c.optimisticMisses(), 40u);
    EXPECT_NEAR(c.trafficRatio(), 40.0 / 30.0, 1e-12);
}

TEST(MissClassifier, DeterministicAcrossCalls)
{
    Workload w = benchWorkload("idl");
    Classification a = classifyMisses(w, smallConfig());
    Classification b = classifyMisses(w, smallConfig());
    EXPECT_EQ(a.bothMiss, b.bothMiss);
    EXPECT_EQ(a.specPollute, b.specPollute);
    EXPECT_EQ(a.specPrefetch, b.specPrefetch);
    EXPECT_EQ(a.wrongPath, b.wrongPath);
}

} // namespace
} // namespace specfetch
