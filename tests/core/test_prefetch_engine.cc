/**
 * @file
 * Hand-computed tests of next-line prefetching inside the fetch
 * engine: the sequential-stream win at small penalties and the
 * bus-contention loss at large ones (paper §5.3, Figures 3-4).
 */

#include <gtest/gtest.h>

#include "engine_test_support.hh"

namespace specfetch {
namespace test {
namespace {

constexpr Addr kBase = 0x10000;

SimConfig
prefetchConfig(const ProgramScript &script, FetchPolicy policy,
               bool prefetch, unsigned miss_penalty = 5)
{
    SimConfig config = scriptConfig(script, policy);
    config.nextLinePrefetch = prefetch;
    config.missPenaltyCycles = miss_penalty;
    return config;
}

TEST(EnginePrefetch, SequentialStreamPartiallyHidesFills)
{
    ProgramScript script;
    script.plains(24);    // 3 lines

    SimConfig config = prefetchConfig(script, FetchPolicy::Oracle, true);
    SimResults r = runScript(script, FetchPolicy::Oracle, &config);

    // Timeline: cold miss line0 (20 rt), prefetch line1 issued at 20;
    // demand for line1 at 28 waits until 40 (12 rt), prefetch line2;
    // demand for line2 at 48 waits until 60 (12 rt), prefetch line3.
    EXPECT_EQ(r.demandMisses, 1u);
    EXPECT_EQ(r.bufferHits, 2u);
    EXPECT_EQ(r.prefetchesIssued, 3u);    // lines 1, 2, and 3
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 44u);
    EXPECT_EQ(r.penalty.totalSlots(), 44u);
    EXPECT_EQ(r.finalSlot, 68);
    EXPECT_EQ(r.memoryTransactions(), 4u);    // 1 fill + 3 prefetches
}

TEST(EnginePrefetch, BeatsNoPrefetchOnSequentialCode)
{
    ProgramScript script;
    script.plains(24);
    SimConfig off = prefetchConfig(script, FetchPolicy::Oracle, false);
    SimConfig on = prefetchConfig(script, FetchPolicy::Oracle, true);
    SimResults r_off = runScript(script, FetchPolicy::Oracle, &off);
    SimResults r_on = runScript(script, FetchPolicy::Oracle, &on);
    EXPECT_LT(r_on.finalSlot, r_off.finalSlot);
    // ... at the price of extra traffic.
    EXPECT_GT(r_on.memoryTransactions(), r_off.memoryTransactions());
}

TEST(EnginePrefetch, BusContentionHurtsAtLongLatency)
{
    // 8 plains in line0, then a first-sight jump (misfetch) to a far
    // line. The speculative prefetch of line1 occupies the bus for 80
    // slots, delaying the demand miss at the jump target (the
    // Figure 4 effect: even Oracle loses).
    ProgramScript script;
    script.plains(7);
    script.control(InstClass::Jump, true, kBase + 10 * 0x20);
    script.plains(8);

    SimConfig off = prefetchConfig(script, FetchPolicy::Oracle, false, 20);
    SimConfig on = prefetchConfig(script, FetchPolicy::Oracle, true, 20);
    SimResults r_off = runScript(script, FetchPolicy::Oracle, &off);
    SimResults r_on = runScript(script, FetchPolicy::Oracle, &on);

    // Without prefetch: line0 fill 80, misfetch 8, target fill 80.
    EXPECT_EQ(r_off.penalty.slots(PenaltyKind::Branch), 8u);
    EXPECT_EQ(r_off.penalty.slots(PenaltyKind::RtIcache), 160u);
    EXPECT_EQ(r_off.penalty.slots(PenaltyKind::Bus), 0u);

    // With prefetch: the useless line1 prefetch (issued at 80) makes
    // the demand fill at slot 96 wait for the bus until 160.
    EXPECT_EQ(r_on.penalty.slots(PenaltyKind::Bus), 64u);
    EXPECT_GT(r_on.finalSlot, r_off.finalSlot);
}

TEST(EnginePrefetch, SuppressedWhenLinePresent)
{
    // Touch three lines, jump back, stream through them again: the
    // second pass must not issue prefetches for resident lines.
    ProgramScript script;
    script.plains(23);
    script.control(InstClass::Jump, true, kBase);
    script.plains(24);

    SimConfig config = prefetchConfig(script, FetchPolicy::Oracle, true);
    SimResults r = runScript(script, FetchPolicy::Oracle, &config);
    // Prefetches: lines 1, 2, 3 on the first pass only (bits consumed;
    // second pass finds bits clear and lines present).
    EXPECT_EQ(r.prefetchesIssued, 3u);
}

TEST(EnginePrefetch, AggressivePoliciesPrefetchOnWrongPath)
{
    // A mispredicted branch whose wrong path streams through warm
    // line1 (first-ref bit still set): Resume triggers the next-line
    // prefetch from the wrong path; Pessimistic does not.
    ProgramScript script;
    script.plains(7);    // line0 (loads line0, bit set)
    // Fill line1 architecturally first so its bit is set and it is
    // present: put it on the correct path, then loop back.
    script.control(InstClass::Jump, true, kBase + 0x20);    // ->line1
    script.plains(7);                                       // line1
    script.control(InstClass::Jump, true, kBase + 0x1c);    // ->line0
    // Branch at line0 end: actually taken far away; wrong path falls
    // into line1 (present, bit already cleared by the pass above...
    // so use line2 instead: lay image-only plains there).
    script.control(InstClass::CondBranch, true, kBase + 20 * 0x20);
    script.plains(4);

    SimConfig res = prefetchConfig(script, FetchPolicy::Resume, true);
    SimConfig pess =
        prefetchConfig(script, FetchPolicy::Pessimistic, true);
    SimResults r_res = runScript(script, FetchPolicy::Resume, &res);
    SimResults r_pess =
        runScript(script, FetchPolicy::Pessimistic, &pess);

    // The aggressive policy generates at least as much prefetch +
    // wrong-path traffic as the conservative one (Table 7 ordering).
    EXPECT_GE(r_res.memoryTransactions(), r_pess.memoryTransactions());
}

TEST(EnginePrefetch, InvariantHoldsWithPrefetch)
{
    ProgramScript script;
    script.plains(24);
    for (FetchPolicy policy : allPolicies()) {
        SimConfig config = prefetchConfig(script, policy, true);
        SimResults r = runScript(script, policy, &config);
        EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
                  r.instructions + r.penalty.totalSlots())
            << toString(policy);
    }
}

// ---- Target prefetching (Smith & Hsu extension) ------------------------

/**
 * A loop whose body jumps between two far-apart lines: next-line
 * prefetching never helps (the successor is never i+1), the target
 * table learns the transfer after one trip.
 */
ProgramScript
takenLoopScript(int trips)
{
    ProgramScript script;
    for (int t = 0; t < trips; ++t) {
        script.plains(3);
        script.control(InstClass::Jump, true, kBase + 8 * 0x20);  // far
        script.plains(3);
        script.control(InstClass::Jump, true, kBase);             // back
    }
    return script;
}

TEST(EngineTargetPrefetch, LearnsTakenTransfers)
{
    ProgramScript script = takenLoopScript(4);
    SimConfig config = scriptConfig(script, FetchPolicy::Oracle);
    config.prefetchKind = PrefetchKind::Target;
    SimResults r = runScript(script, FetchPolicy::Oracle, &config);
    // Both lines stay resident after the first trip, so the target
    // prefetcher has nothing to fetch — but it must have *trained*.
    // Force evictions with a tiny cache to see it fire:
    SimConfig tiny = config;
    tiny.icache.sizeBytes = 2 * 32;    // two lines: guaranteed churn?
    // Two lines 8 apart map to different frames of a 2-line cache
    // only if their index bits differ; with 2 frames, lines 0 and 8
    // share frame 0 — constant conflict, so the trained target
    // prefetch fires every trip.
    SimResults tiny_r = runScript(script, FetchPolicy::Oracle, &tiny);
    EXPECT_GT(tiny_r.prefetchesIssued, 0u);
    (void)r;
}

TEST(EngineTargetPrefetch, NextLineUselessOnTakenLoop)
{
    // On the same taken-transfer loop, next-line prefetches lines
    // that are never executed; target prefetching avoids that waste.
    ProgramScript script = takenLoopScript(6);
    SimConfig next = scriptConfig(script, FetchPolicy::Oracle);
    next.prefetchKind = PrefetchKind::NextLine;
    SimConfig target = next;
    target.prefetchKind = PrefetchKind::Target;

    SimResults r_next = runScript(script, FetchPolicy::Oracle, &next);
    SimResults r_target =
        runScript(script, FetchPolicy::Oracle, &target);
    // Next-line issued useless prefetches (lines 1 and 9 are never
    // fetched); target issued none (both lines stay resident).
    EXPECT_GT(r_next.prefetchesIssued, 0u);
    EXPECT_EQ(r_target.prefetchesIssued, 0u);
    EXPECT_LE(r_target.memoryTransactions(),
              r_next.memoryTransactions());
}

TEST(EngineTargetPrefetch, CombinedCoversBothFlows)
{
    // Sequential code followed by a taken transfer: Combined issues
    // next-line prefetches for the stream and a target prefetch for
    // the transfer once trained.
    ProgramScript script;
    for (int t = 0; t < 3; ++t) {
        script.plains(15);
        script.control(InstClass::Jump, true, kBase + 16 * 0x20);
        script.plains(7);
        script.control(InstClass::Jump, true, kBase);
    }
    SimConfig config = scriptConfig(script, FetchPolicy::Oracle);
    config.prefetchKind = PrefetchKind::Combined;
    SimResults r = runScript(script, FetchPolicy::Oracle, &config);
    EXPECT_GT(r.prefetchesIssued, 0u);
    EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
              r.instructions + r.penalty.totalSlots());
}

// ---- Pipelined memory interface (paper §6 further work) ----------------

TEST(EnginePipelinedBus, SecondChannelAbsorbsPrefetchContention)
{
    // The Figure 4 pathology: a prefetch blocks a demand miss on the
    // single-channel bus. A second channel removes the bus wait.
    ProgramScript script;
    script.plains(7);
    script.control(InstClass::Jump, true, kBase + 10 * 0x20);
    script.plains(8);

    SimConfig one = scriptConfig(script, FetchPolicy::Oracle);
    one.nextLinePrefetch = true;
    one.missPenaltyCycles = 20;
    SimConfig two = one;
    two.memoryChannels = 2;

    SimResults r_one = runScript(script, FetchPolicy::Oracle, &one);
    SimResults r_two = runScript(script, FetchPolicy::Oracle, &two);

    EXPECT_EQ(r_one.penalty.slots(PenaltyKind::Bus), 64u);
    EXPECT_EQ(r_two.penalty.slots(PenaltyKind::Bus), 0u);
    EXPECT_LT(r_two.finalSlot, r_one.finalSlot);
}

TEST(EnginePipelinedBus, ResumeWrongPathFillOverlapsDemand)
{
    // Scenario C with two channels: Resume's correct-path miss no
    // longer waits for the wrong-path fill's bus transaction.
    ProgramScript script;
    script.plains(7);
    script.control(InstClass::CondBranch, true, kBase + 0x40);
    script.plains(8);

    SimConfig one = scriptConfig(script, FetchPolicy::Resume);
    SimConfig two = one;
    two.memoryChannels = 2;

    SimResults r_one = runScript(script, FetchPolicy::Resume, &one);
    SimResults r_two = runScript(script, FetchPolicy::Resume, &two);
    EXPECT_EQ(r_one.penalty.slots(PenaltyKind::Bus), 4u);
    EXPECT_EQ(r_two.penalty.slots(PenaltyKind::Bus), 0u);
}

} // namespace
} // namespace test
} // namespace specfetch
