/**
 * @file
 * Shared helpers for fetch-engine tests: a scripted instruction
 * source and builders for tiny hand-laid-out programs whose slot
 * accounting can be computed by hand.
 */

#ifndef SPECFETCH_TESTS_CORE_ENGINE_TEST_SUPPORT_HH_
#define SPECFETCH_TESTS_CORE_ENGINE_TEST_SUPPORT_HH_

#include <vector>

#include "core/fetch_engine.hh"
#include "isa/program_image.hh"
#include "workload/executor.hh"

namespace specfetch {
namespace test {

/** Feeds a fixed vector of instructions. */
class ScriptedSource : public InstructionSource
{
  public:
    explicit ScriptedSource(std::vector<DynInst> _script)
        : script(std::move(_script))
    {
    }

    bool
    next(DynInst &out) override
    {
        if (index >= script.size())
            return false;
        out = script[index++];
        return true;
    }

  private:
    std::vector<DynInst> script;
    size_t index = 0;
};

/**
 * Incremental builder for a correct-path script plus the matching
 * program image. Addresses advance automatically; wrong-path regions
 * can be laid into the image without appearing in the script.
 */
class ProgramScript
{
  public:
    /** @param base        Image base (line aligned for easy math).
     *  @param image_insts Image capacity in instructions. */
    explicit ProgramScript(Addr base = 0x10000, size_t image_insts = 4096)
        : image_(base, image_insts), cursor(base)
    {
    }

    /** Current script position (next pc to be appended). */
    Addr pc() const { return cursor; }

    /** Append @p count plain instructions at the cursor. */
    void
    plains(unsigned count)
    {
        for (unsigned i = 0; i < count; ++i) {
            image_.set(cursor, StaticInst{InstClass::Plain, 0});
            script_.push_back(DynInst{cursor, InstClass::Plain, false, 0});
            cursor += kInstBytes;
        }
    }

    /** Append a control instruction; the script continues at its
     *  dynamic destination. */
    void
    control(InstClass cls, bool taken, Addr target)
    {
        Addr static_target = hasStaticTarget(cls) ? target : 0;
        image_.set(cursor, StaticInst{cls, static_target});
        script_.push_back(DynInst{cursor, cls, taken, target});
        cursor = taken ? target : cursor + kInstBytes;
    }

    /** Define image-only content (wrong-path code) at @p addr. */
    void
    imageOnly(Addr addr, InstClass cls, Addr target = 0)
    {
        image_.set(addr, StaticInst{cls, target});
    }

    /** Fill [addr, addr + count*4) with image-only plains. */
    void
    imagePlains(Addr addr, unsigned count)
    {
        for (unsigned i = 0; i < count; ++i)
            image_.set(addr + i * kInstBytes, StaticInst{});
    }

    ScriptedSource source() const { return ScriptedSource(script_); }
    const ProgramImage &image() const { return image_; }
    size_t scriptLength() const { return script_.size(); }

  private:
    ProgramImage image_;
    std::vector<DynInst> script_;
    Addr cursor;
};

/** Baseline config sized to a script: issue 4, decode 2, resolve 4,
 *  miss 5 cycles, 8K DM cache, Oracle policy, no prefetch. */
inline SimConfig
scriptConfig(const ProgramScript &script, FetchPolicy policy)
{
    SimConfig config;
    config.policy = policy;
    config.instructionBudget = script.scriptLength();
    return config;
}

/** Run a policy over a script and return the results. */
inline SimResults
runScript(const ProgramScript &script, FetchPolicy policy,
          SimConfig *config_out = nullptr)
{
    SimConfig config = scriptConfig(script, policy);
    if (config_out)
        config = *config_out;
    FetchEngine engine(config, script.image());
    ScriptedSource source = script.source();
    return engine.run(source);
}

/**
 * Pre-warm every line of the image into an engine's cache by running
 * a plains-only script... not possible through the public API, so
 * tests that need warm caches simply lay out their script to touch
 * the lines first (cheap and explicit).
 */

} // namespace test
} // namespace specfetch

#endif // SPECFETCH_TESTS_CORE_ENGINE_TEST_SUPPORT_HH_
