/** @file Unit tests for core/config.hh. */

#include "core/config.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(Config, PaperBaselineDefaults)
{
    SimConfig config;
    EXPECT_EQ(config.issueWidth, 4u);
    EXPECT_EQ(config.maxUnresolved, 4u);
    EXPECT_EQ(config.decodeCycles, 2u);
    EXPECT_EQ(config.resolveCycles, 4u);
    EXPECT_EQ(config.missPenaltyCycles, 5u);
    EXPECT_EQ(config.icache.sizeBytes, 8u * 1024);
    EXPECT_EQ(config.icache.lineBytes, 32u);
    EXPECT_EQ(config.icache.ways, 1u);
    EXPECT_FALSE(config.nextLinePrefetch);
}

TEST(Config, SlotConversions)
{
    SimConfig config;
    // Paper §4.1: misfetch = 8 issue slots, mispredict = 16,
    // 5-cycle miss = 20 slots.
    EXPECT_EQ(config.decodeSlots(), 8);
    EXPECT_EQ(config.resolveSlots(), 16);
    EXPECT_EQ(config.missPenaltySlots(), 20);

    config.missPenaltyCycles = 20;
    EXPECT_EQ(config.missPenaltySlots(), 80);

    config.issueWidth = 2;
    EXPECT_EQ(config.decodeSlots(), 4);
}

TEST(Config, DescribeMentionsKeyParameters)
{
    SimConfig config;
    config.policy = FetchPolicy::Resume;
    config.nextLinePrefetch = true;
    std::string text = config.describe();
    EXPECT_NE(text.find("Resume"), std::string::npos);
    EXPECT_NE(text.find("8K"), std::string::npos);
    EXPECT_NE(text.find("5cyc"), std::string::npos);
    EXPECT_NE(text.find("prefetch"), std::string::npos);
}

TEST(Config, ValidateAcceptsBaseline)
{
    SimConfig config;
    config.validate();
    SUCCEED();
}

TEST(ConfigDeath, RejectsResolveBeforeDecode)
{
    SimConfig config;
    config.decodeCycles = 4;
    config.resolveCycles = 2;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "resolve");
}

TEST(ConfigDeath, RejectsZeroBudget)
{
    SimConfig config;
    config.instructionBudget = 0;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "budget");
}

TEST(ConfigDeath, RejectsZeroDepth)
{
    SimConfig config;
    config.maxUnresolved = 0;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1), "depth");
}

} // namespace
} // namespace specfetch
