/** @file Unit tests for core/penalty.hh. */

#include "core/penalty.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(Penalty, StartsZero)
{
    PenaltyBreakdown penalty;
    EXPECT_EQ(penalty.totalSlots(), 0u);
    for (PenaltyKind kind : allPenaltyKinds())
        EXPECT_EQ(penalty.slots(kind), 0u);
}

TEST(Penalty, ChargesAccumulate)
{
    PenaltyBreakdown penalty;
    penalty.charge(PenaltyKind::Branch, 16);
    penalty.charge(PenaltyKind::Branch, 8);
    penalty.charge(PenaltyKind::RtIcache, 20);
    EXPECT_EQ(penalty.slots(PenaltyKind::Branch), 24u);
    EXPECT_EQ(penalty.slots(PenaltyKind::RtIcache), 20u);
    EXPECT_EQ(penalty.totalSlots(), 44u);
}

TEST(Penalty, IspiComputation)
{
    PenaltyBreakdown penalty;
    penalty.charge(PenaltyKind::RtIcache, 200);
    EXPECT_DOUBLE_EQ(penalty.ispi(PenaltyKind::RtIcache, 100), 2.0);
    EXPECT_DOUBLE_EQ(penalty.totalIspi(100), 2.0);
    EXPECT_DOUBLE_EQ(penalty.totalIspi(0), 0.0);
}

TEST(Penalty, Accumulation)
{
    PenaltyBreakdown a, b;
    a.charge(PenaltyKind::Bus, 5);
    b.charge(PenaltyKind::Bus, 7);
    b.charge(PenaltyKind::BranchFull, 1);
    a += b;
    EXPECT_EQ(a.slots(PenaltyKind::Bus), 12u);
    EXPECT_EQ(a.slots(PenaltyKind::BranchFull), 1u);
}

TEST(Penalty, Reset)
{
    PenaltyBreakdown penalty;
    penalty.charge(PenaltyKind::WrongIcache, 3);
    penalty.reset();
    EXPECT_EQ(penalty.totalSlots(), 0u);
}

TEST(Penalty, FigureLegendNames)
{
    EXPECT_EQ(toString(PenaltyKind::BranchFull), "branch_full");
    EXPECT_EQ(toString(PenaltyKind::Branch), "branch");
    EXPECT_EQ(toString(PenaltyKind::ForceResolve), "force_resolve");
    EXPECT_EQ(toString(PenaltyKind::RtIcache), "rt_icache");
    EXPECT_EQ(toString(PenaltyKind::WrongIcache), "wrong_icache");
    EXPECT_EQ(toString(PenaltyKind::Bus), "bus");
}

TEST(Penalty, StackedBarOrder)
{
    const auto &kinds = allPenaltyKinds();
    ASSERT_EQ(kinds.size(), kNumPenaltyKinds);
    EXPECT_EQ(kinds.front(), PenaltyKind::BranchFull);
    EXPECT_EQ(kinds.back(), PenaltyKind::Bus);
}

} // namespace
} // namespace specfetch
