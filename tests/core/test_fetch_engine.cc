/**
 * @file
 * Hand-computed slot-accounting tests for the fetch engine.
 *
 * Each scenario lays out a tiny program whose exact timeline — issue
 * slots, stalls, fills, windows — was computed by hand using the
 * paper's arithmetic (4 slots/cycle, misfetch 8, mispredict 16, miss
 * 20 slots at the 5-cycle penalty). The engine must reproduce the
 * timeline slot for slot, per penalty component.
 */

#include <gtest/gtest.h>

#include "engine_test_support.hh"

namespace specfetch {
namespace test {
namespace {

constexpr Addr kBase = 0x10000;

// ---- Scenario A: cold sequential code ---------------------------------

TEST(EngineSequential, OracleColdMisses)
{
    ProgramScript script;
    script.plains(24);    // 3 lines
    SimResults r = runScript(script, FetchPolicy::Oracle);

    EXPECT_EQ(r.instructions, 24u);
    EXPECT_EQ(r.demandMisses, 3u);
    EXPECT_EQ(r.demandFills, 3u);
    // Each miss: 20-slot fill, bus always already free.
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 60u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Bus), 0u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::ForceResolve), 0u);
    EXPECT_EQ(r.penalty.totalSlots(), 60u);
    EXPECT_EQ(r.finalSlot, 24 + 60);
    EXPECT_DOUBLE_EQ(r.ispi(), 2.5);
}

TEST(EngineSequential, OptimisticAndResumeMatchOracleWithoutBranches)
{
    ProgramScript script;
    script.plains(24);
    SimResults oracle = runScript(script, FetchPolicy::Oracle);
    SimResults optimistic = runScript(script, FetchPolicy::Optimistic);
    SimResults resume = runScript(script, FetchPolicy::Resume);
    EXPECT_EQ(optimistic.finalSlot, oracle.finalSlot);
    EXPECT_EQ(resume.finalSlot, oracle.finalSlot);
}

TEST(EngineSequential, PessimisticPaysDecodeTax)
{
    ProgramScript script;
    script.plains(24);
    SimResults r = runScript(script, FetchPolicy::Pessimistic);

    // Per miss: wait until the previous instruction decodes
    // (8 slots from its issue; the gap already covers 1 of them... by
    // hand: miss at t with lastIssue = t-1 waits to t+8).
    // Timeline: miss@0 -> wait to 8, fill to 28, issues 28..35;
    // miss@36 -> wait to 44, fill to 64, issues 64..71;
    // miss@72 -> wait to 80, fill to 100, issues 100..107.
    EXPECT_EQ(r.penalty.slots(PenaltyKind::ForceResolve), 24u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 60u);
    EXPECT_EQ(r.finalSlot, 108);
}

TEST(EngineSequential, DecodeMatchesPessimisticWithoutBranches)
{
    // With no branches in flight, Pessimistic's resolve wait reduces
    // to the same decode wait Decode performs.
    ProgramScript script;
    script.plains(24);
    SimResults pess = runScript(script, FetchPolicy::Pessimistic);
    SimResults dec = runScript(script, FetchPolicy::Decode);
    EXPECT_EQ(dec.finalSlot, pess.finalSlot);
    EXPECT_EQ(dec.penalty.slots(PenaltyKind::ForceResolve),
              pess.penalty.slots(PenaltyKind::ForceResolve));
}

// ---- Scenario B: correctly predicted not-taken branch -----------------

TEST(EngineBranch, CorrectNotTakenCostsNothing)
{
    ProgramScript script;
    script.plains(4);
    script.control(InstClass::CondBranch, false, kBase + 0x100);
    script.plains(3);
    SimResults r = runScript(script, FetchPolicy::Oracle);

    EXPECT_EQ(r.instructions, 8u);
    EXPECT_EQ(r.condBranches, 1u);
    EXPECT_EQ(r.dirMispredicts, 0u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 0u);
    // Only the one cold line.
    EXPECT_EQ(r.finalSlot, 8 + 20);
}

// ---- Scenario C: direction mispredict, per policy ---------------------

/**
 * Line 0: 7 plains + branch (actually taken to line 2; the fresh PHT
 * predicts not-taken, so this is a 16-slot mispredict whose wrong
 * path is the fall-through = cold line 1). Line 2: 8 plains.
 */
ProgramScript
mispredictScript()
{
    ProgramScript script;
    script.plains(7);
    script.control(InstClass::CondBranch, true, kBase + 0x40);
    script.plains(8);
    return script;
}

TEST(EngineMispredict, Oracle)
{
    SimResults r = runScript(mispredictScript(), FetchPolicy::Oracle);
    EXPECT_EQ(r.instructions, 16u);
    EXPECT_EQ(r.dirMispredicts, 1u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 16u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 40u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::WrongIcache), 0u);
    EXPECT_EQ(r.wrongMisses, 1u);     // observed on the wrong path
    EXPECT_EQ(r.wrongFills, 0u);      // but never serviced
    EXPECT_EQ(r.finalSlot, 72);
}

TEST(EngineMispredict, OptimisticBlocksOnWrongPathFill)
{
    SimResults r = runScript(mispredictScript(), FetchPolicy::Optimistic);
    // Wrong-path miss at slot 28 fills until 48, outlasting the
    // redirect at 44 by 4 slots.
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 16u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::WrongIcache), 4u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 40u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Bus), 0u);
    EXPECT_EQ(r.wrongFills, 1u);
    EXPECT_EQ(r.memoryTransactions(), 3u);
    EXPECT_EQ(r.finalSlot, 76);
}

TEST(EngineMispredict, ResumeRedirectsOnTimeButHoldsBus)
{
    SimResults r = runScript(mispredictScript(), FetchPolicy::Resume);
    // Redirect is on time (no wrong_icache), but the correct-path
    // miss right after must wait 4 slots for the wrong-path fill's
    // bus transaction.
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 16u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::WrongIcache), 0u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Bus), 4u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 40u);
    EXPECT_EQ(r.wrongFills, 1u);
    EXPECT_EQ(r.finalSlot, 76);
}

TEST(EngineMispredict, PessimisticRefusesWrongPathFill)
{
    SimResults r =
        runScript(mispredictScript(), FetchPolicy::Pessimistic);
    // Timeline: fr 8 (initial decode wait), fill to 28, issues
    // 28..34, branch at 35, window [36,52), walk stops at the
    // wrong-path miss. Correct miss at 52: the branch resolved
    // exactly at 52, so no extra force_resolve. Fill to 72.
    EXPECT_EQ(r.penalty.slots(PenaltyKind::ForceResolve), 8u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 16u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 40u);
    EXPECT_EQ(r.wrongFills, 0u);
    EXPECT_EQ(r.memoryTransactions(), 2u);
    EXPECT_EQ(r.finalSlot, 80);
}

// ---- Scenario D: misfetch progression ---------------------------------

/**
 * One line holds: branch B@+0x0 (taken to +0x8), plain@+0x8, jump
 * J@+0xc back to B. Three trips around. With PC-indexed PHT (to keep
 * counters shared across trips):
 *  - B trip 1 is a 16-slot direction mispredict. Its wrong-path walk
 *    runs through J, whose speculative decode inserts J into the BTB
 *    — so J never misfetches (the paper's speculative-update win).
 *  - B trip 2 predicts taken but the BTB lacks B (it was predicted
 *    not-taken at trip 1, so decode never inserted it): 8-slot
 *    misfetch, after which decode inserts it.
 *  - Everything on trip 3 is hit/correct.
 */
TEST(EngineMisfetch, ProgressionMispredictMisfetchCorrect)
{
    ProgramScript script;
    for (int trip = 0; trip < 3; ++trip) {
        script.control(InstClass::CondBranch, true, kBase + 0x8);
        script.plains(1);
        script.control(InstClass::Jump, true, kBase);
    }

    SimConfig config = scriptConfig(script, FetchPolicy::Optimistic);
    config.predictor.phtIndexing = PhtIndexing::PcOnly;
    SimResults r = runScript(script, FetchPolicy::Optimistic, &config);

    EXPECT_EQ(r.instructions, 9u);
    EXPECT_EQ(r.dirMispredicts, 1u);    // B, first trip
    EXPECT_EQ(r.misfetches, 1u);        // B, second trip
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 16u + 8u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 20u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::WrongIcache), 0u);
    EXPECT_EQ(r.finalSlot, 53);
}

// ---- Scenario E: speculation-depth stall ------------------------------

TEST(EngineDepth, BranchFullAtDepthOne)
{
    ProgramScript script;
    script.plains(1);
    script.control(InstClass::CondBranch, false, kBase + 0x100);
    script.control(InstClass::CondBranch, false, kBase + 0x100);
    script.plains(1);

    SimConfig config = scriptConfig(script, FetchPolicy::Oracle);
    config.maxUnresolved = 1;
    SimResults r = runScript(script, FetchPolicy::Oracle, &config);

    // Second branch waits for the first to resolve: fetched at 22,
    // first resolves at 38 -> 16 slots of branch_full.
    EXPECT_EQ(r.penalty.slots(PenaltyKind::BranchFull), 16u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 0u);
    EXPECT_EQ(r.finalSlot, 40);
}

TEST(EngineDepth, NoStallAtDepthTwo)
{
    ProgramScript script;
    script.plains(1);
    script.control(InstClass::CondBranch, false, kBase + 0x100);
    script.control(InstClass::CondBranch, false, kBase + 0x100);
    script.plains(1);

    SimConfig config = scriptConfig(script, FetchPolicy::Oracle);
    config.maxUnresolved = 2;
    SimResults r = runScript(script, FetchPolicy::Oracle, &config);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::BranchFull), 0u);
    EXPECT_EQ(r.finalSlot, 24);
}

// ---- Scenario F: resume-buffer reuse of a wrong-path fill -------------

/**
 * B@line0 (pred NT, actually taken to line2). Wrong path = cold
 * line1, which the aggressive policies fill. The correct path later
 * jumps into line1: Resume must satisfy it from the resume buffer
 * without a second memory request.
 */
ProgramScript
resumeReuseScript()
{
    ProgramScript script;
    script.control(InstClass::CondBranch, true, kBase + 0x40); // line2
    script.plains(1);                                          // @line2
    script.control(InstClass::Jump, true, kBase + 0x20);       // ->line1
    script.plains(8);                                          // line1
    // Stop J's misfetch-window walk inside line2: a return with no
    // predicted target ends the wrong-path fetch, keeping this
    // scenario's timeline to exactly one wrong-path fill (line1).
    script.imageOnly(kBase + 0x48, InstClass::Return);
    return script;
}

TEST(EngineResumeReuse, ResumeServesFromBuffer)
{
    SimResults r = runScript(resumeReuseScript(), FetchPolicy::Resume);
    EXPECT_EQ(r.instructions, 11u);
    EXPECT_EQ(r.demandFills, 2u);     // line0, line2 — NOT line1
    EXPECT_EQ(r.wrongFills, 1u);      // line1, from the wrong path
    EXPECT_EQ(r.bufferHits, 1u);      // line1 reused
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 24u);   // 16 + 8
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Bus), 11u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 40u);
    EXPECT_EQ(r.finalSlot, 86);
}

TEST(EngineResumeReuse, OptimisticPrefetchedTheLine)
{
    SimResults r =
        runScript(resumeReuseScript(), FetchPolicy::Optimistic);
    // Same total as Resume here, but split as wrong_icache instead of
    // bus, and line1 is a plain cache hit after its wrong-path fill.
    EXPECT_EQ(r.penalty.slots(PenaltyKind::WrongIcache), 11u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Bus), 0u);
    EXPECT_EQ(r.bufferHits, 0u);
    EXPECT_EQ(r.demandMisses, 2u);
    EXPECT_EQ(r.finalSlot, 86);
}

TEST(EngineResumeReuse, PessimisticPaysOnTheRightPath)
{
    SimResults r =
        runScript(resumeReuseScript(), FetchPolicy::Pessimistic);
    // line1 was never filled speculatively: it misses on the correct
    // path instead (3 demand fills, no wrong fills).
    EXPECT_EQ(r.demandFills, 3u);
    EXPECT_EQ(r.wrongFills, 0u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::ForceResolve), 8u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 60u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 24u);
    EXPECT_EQ(r.finalSlot, 103);
}

// ---- Internal consistency ---------------------------------------------

TEST(EngineInvariant, EverySlotIsIssueOrCharge)
{
    // finalSlot == instructions + total lost slots, for every policy.
    for (FetchPolicy policy : allPolicies()) {
        SimResults r = runScript(resumeReuseScript(), policy);
        EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
                  r.instructions + r.penalty.totalSlots())
            << toString(policy);
    }
}

TEST(EngineInvariant, SourceExhaustionStopsRun)
{
    ProgramScript script;
    script.plains(5);
    SimConfig config = scriptConfig(script, FetchPolicy::Oracle);
    config.instructionBudget = 1000;    // more than the script
    SimResults r = runScript(script, FetchPolicy::Oracle, &config);
    EXPECT_EQ(r.instructions, 5u);
}

TEST(EngineInvariant, WarmupResetsStats)
{
    ProgramScript script;
    script.plains(24);    // 3 cold lines
    SimConfig config = scriptConfig(script, FetchPolicy::Oracle);
    config.warmupInstructions = 8;    // absorb the first line's miss
    config.instructionBudget = 16;
    SimResults r = runScript(script, FetchPolicy::Oracle, &config);
    EXPECT_EQ(r.instructions, 16u);
    EXPECT_EQ(r.demandMisses, 2u);    // only lines 2 and 3
    EXPECT_EQ(r.penalty.slots(PenaltyKind::RtIcache), 40u);
}

} // namespace
} // namespace test
} // namespace specfetch
