/** @file Unit tests for core/policy.hh. */

#include "core/policy.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(Policy, FiveInPaperOrder)
{
    const auto &policies = allPolicies();
    ASSERT_EQ(policies.size(), 5u);
    EXPECT_EQ(policies[0], FetchPolicy::Oracle);
    EXPECT_EQ(policies[1], FetchPolicy::Optimistic);
    EXPECT_EQ(policies[2], FetchPolicy::Resume);
    EXPECT_EQ(policies[3], FetchPolicy::Pessimistic);
    EXPECT_EQ(policies[4], FetchPolicy::Decode);
}

TEST(Policy, Names)
{
    EXPECT_EQ(toString(FetchPolicy::Oracle), "Oracle");
    EXPECT_EQ(toString(FetchPolicy::Pessimistic), "Pessimistic");
    EXPECT_EQ(shortName(FetchPolicy::Optimistic), "Opt");
    EXPECT_EQ(shortName(FetchPolicy::Resume), "Res");
    EXPECT_EQ(shortName(FetchPolicy::Decode), "Dec");
}

TEST(Policy, ParseLongShortAndCase)
{
    FetchPolicy policy;
    ASSERT_TRUE(parsePolicy("resume", policy));
    EXPECT_EQ(policy, FetchPolicy::Resume);
    ASSERT_TRUE(parsePolicy("PESS", policy));
    EXPECT_EQ(policy, FetchPolicy::Pessimistic);
    ASSERT_TRUE(parsePolicy(" Oracle ", policy));
    EXPECT_EQ(policy, FetchPolicy::Oracle);
    EXPECT_FALSE(parsePolicy("bogus", policy));
}

TEST(Policy, ParseRoundTripsEveryPolicy)
{
    for (FetchPolicy policy : allPolicies()) {
        FetchPolicy parsed;
        ASSERT_TRUE(parsePolicy(toString(policy), parsed));
        EXPECT_EQ(parsed, policy);
        ASSERT_TRUE(parsePolicy(shortName(policy), parsed));
        EXPECT_EQ(parsed, policy);
    }
}

TEST(Policy, WrongPathServicePredicates)
{
    EXPECT_FALSE(servicesWrongPathMisses(FetchPolicy::Oracle));
    EXPECT_FALSE(servicesWrongPathMisses(FetchPolicy::Pessimistic));
    EXPECT_TRUE(servicesWrongPathMisses(FetchPolicy::Optimistic));
    EXPECT_TRUE(servicesWrongPathMisses(FetchPolicy::Resume));
    EXPECT_TRUE(servicesWrongPathMisses(FetchPolicy::Decode));
}

TEST(Policy, WrongPathPrefetchPredicates)
{
    EXPECT_TRUE(prefetchesOnWrongPath(FetchPolicy::Optimistic));
    EXPECT_TRUE(prefetchesOnWrongPath(FetchPolicy::Resume));
    EXPECT_FALSE(prefetchesOnWrongPath(FetchPolicy::Oracle));
    EXPECT_FALSE(prefetchesOnWrongPath(FetchPolicy::Pessimistic));
    EXPECT_FALSE(prefetchesOnWrongPath(FetchPolicy::Decode));
}

} // namespace
} // namespace specfetch
