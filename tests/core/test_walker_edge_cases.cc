/**
 * @file
 * Wrong-path-walker edge cases beyond the main engine scenarios:
 * depth-limited walks, indirect control ending walks, walks that
 * follow BTB-predicted wrong-path branches, and window arithmetic at
 * the 20-cycle penalty.
 */

#include <gtest/gtest.h>

#include "engine_test_support.hh"

namespace specfetch {
namespace test {
namespace {

constexpr Addr kBase = 0x10000;

TEST(WalkerDepth, WrongPathStopsAtSpeculationLimit)
{
    // Mispredicted branch at depth 1: the wrong-path walk may not
    // fetch past its first conditional, so the cold wrong-path line
    // beyond it is never filled.
    ProgramScript script;
    script.plains(7);
    script.control(InstClass::CondBranch, true, kBase + 4 * 0x20);
    script.plains(8);
    // Wrong path: one plain, then a conditional, then more plains in
    // a cold second line.
    script.imageOnly(kBase + 0x20, InstClass::Plain);
    script.imageOnly(kBase + 0x24, InstClass::CondBranch, kBase + 0x24);
    script.imagePlains(kBase + 0x28, 12);

    SimConfig depth1 = scriptConfig(script, FetchPolicy::Optimistic);
    depth1.maxUnresolved = 1;
    SimResults r1 = runScript(script, FetchPolicy::Optimistic, &depth1);

    SimConfig depth4 = scriptConfig(script, FetchPolicy::Optimistic);
    SimResults r4 = runScript(script, FetchPolicy::Optimistic, &depth4);

    // At depth 1 the walk halts at the wrong-path conditional (first
    // line already filled); at depth 4 it proceeds through it.
    EXPECT_LE(r1.wrongFills, r4.wrongFills);
    EXPECT_EQ(static_cast<uint64_t>(r1.finalSlot),
              r1.instructions + r1.penalty.totalSlots());
}

TEST(WalkerIndirect, ReturnWithoutPredictionEndsWalk)
{
    // Wrong path runs into a Return the BTB knows nothing about: the
    // walk must stop rather than invent a target, so the cold line
    // beyond it stays untouched.
    ProgramScript script;
    script.plains(7);
    script.control(InstClass::CondBranch, true, kBase + 4 * 0x20);
    script.plains(8);
    script.imageOnly(kBase + 0x20, InstClass::Return);
    script.imagePlains(kBase + 0x40, 8);    // would-be next line

    SimResults r = runScript(script, FetchPolicy::Optimistic);
    // The walk fills line1 (where the Return sits), then stops: the
    // cold line at +0x40 is never serviced.
    EXPECT_LE(r.wrongFills, 1u);
    EXPECT_FALSE(r.penalty.slots(PenaltyKind::WrongIcache) > 80);
}

TEST(WalkerWindow, TwentyCyclePenaltyOverhangIsLarge)
{
    // Optimistic, 20-cycle penalty: a wrong-path miss at the window's
    // first slot fills for 80 slots against a 16-slot window, so most
    // of the fill outlasts the redirect.
    ProgramScript script;
    script.plains(7);
    script.control(InstClass::CondBranch, true, kBase + 4 * 0x20);
    script.plains(8);

    SimConfig config = scriptConfig(script, FetchPolicy::Optimistic);
    config.missPenaltyCycles = 20;
    SimResults r = runScript(script, FetchPolicy::Optimistic, &config);

    // Timeline: line0 fill 0..80; plains issue 80..86; branch at 87;
    // window [88,104); the wrong-path line1 misses at slot 88, fill
    // 88..168 -> overhang 168-104 = 64.
    EXPECT_EQ(r.penalty.slots(PenaltyKind::WrongIcache), 64u);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Branch), 16u);
}

TEST(WalkerWindow, ResumeNeverDelaysRedirectEvenAtTwentyCycles)
{
    ProgramScript script;
    script.plains(7);
    script.control(InstClass::CondBranch, true, kBase + 4 * 0x20);
    script.plains(8);

    SimConfig config = scriptConfig(script, FetchPolicy::Resume);
    config.missPenaltyCycles = 20;
    SimResults r = runScript(script, FetchPolicy::Resume, &config);
    EXPECT_EQ(r.penalty.slots(PenaltyKind::WrongIcache), 0u);
    // The correct-path fill then queues behind the wrong-path fill:
    // bus wait = 168 - 104 = 64 slots.
    EXPECT_EQ(r.penalty.slots(PenaltyKind::Bus), 64u);
}

TEST(WalkerBtb, WrongPathFollowsPredictedTakenBranches)
{
    // Train the BTB so a wrong-path conditional is predicted taken to
    // a *third* line; the walk must follow it there and fill it.
    ProgramScript script;
    // Trip 1: execute the "wrong path" region architecturally so its
    // branch trains the predictor (taken to line 8).
    script.plains(7);                                         // line0
    script.control(InstClass::Jump, true, kBase + 0x20);      // ->line1
    script.control(InstClass::CondBranch, true, kBase + 8 * 0x20);
    script.plains(7);                                         // line8
    script.control(InstClass::Jump, true, kBase + 0x1c);      // ->line0
    // Trip 2: a conditional at line0's end actually taken to a far
    // line. Its wrong path (the fall-through into line1) contains the
    // now-trained branch: the walk follows the BTB-predicted target
    // into warm line8 without cost, and the ledger must balance.
    script.control(InstClass::CondBranch, true, kBase + 12 * 0x20);
    script.plains(4);

    SimConfig config = scriptConfig(script, FetchPolicy::Optimistic);
    config.predictor.phtIndexing = PhtIndexing::PcOnly;
    SimResults r = runScript(script, FetchPolicy::Optimistic, &config);
    EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
              r.instructions + r.penalty.totalSlots());
}

TEST(WalkerAssoc, TwoWayCacheWalksCleanly)
{
    // The whole pipeline with a 2-way cache: ledger + policy
    // component zeros still hold.
    ProgramScript script;
    script.plains(7);
    script.control(InstClass::CondBranch, true, kBase + 4 * 0x20);
    script.plains(8);

    for (FetchPolicy policy : allPolicies()) {
        SimConfig config = scriptConfig(script, policy);
        config.icache.ways = 2;
        SimResults r = runScript(script, policy, &config);
        EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
                  r.instructions + r.penalty.totalSlots())
            << toString(policy);
    }
}

} // namespace
} // namespace test
} // namespace specfetch
