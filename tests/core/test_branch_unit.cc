/** @file Unit tests for core/branch_unit.hh. */

#include "core/branch_unit.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(BranchUnit, StartsEmpty)
{
    BranchUnit unit;
    EXPECT_EQ(unit.unresolvedCond(0), 0u);
    EXPECT_EQ(unit.latestResolveAt(), 0);
}

TEST(BranchUnit, TracksConditionals)
{
    BranchUnit unit;
    unit.noteFetch(true, 17);
    unit.noteFetch(true, 20);
    EXPECT_EQ(unit.unresolvedCond(0), 2u);
    EXPECT_EQ(unit.oldestCondResolve(), 17);
}

TEST(BranchUnit, ExpiryPopsResolved)
{
    BranchUnit unit;
    unit.noteFetch(true, 17);
    unit.noteFetch(true, 20);
    EXPECT_EQ(unit.unresolvedCond(17), 1u);
    EXPECT_EQ(unit.oldestCondResolve(), 20);
    EXPECT_EQ(unit.unresolvedCond(100), 0u);
}

TEST(BranchUnit, UnconditionalsDoNotConsumeDepth)
{
    BranchUnit unit;
    unit.noteFetch(false, 9);
    EXPECT_EQ(unit.unresolvedCond(0), 0u);
    EXPECT_EQ(unit.latestResolveAt(), 9);
}

TEST(BranchUnit, LatestResolveIsMax)
{
    BranchUnit unit;
    unit.noteFetch(true, 30);     // conditional resolving late
    unit.noteFetch(false, 20);    // jump certain at decode, earlier
    EXPECT_EQ(unit.latestResolveAt(), 30);
    unit.noteFetch(true, 40);
    EXPECT_EQ(unit.latestResolveAt(), 40);
}

TEST(BranchUnit, Reset)
{
    BranchUnit unit;
    unit.noteFetch(true, 17);
    unit.reset();
    EXPECT_EQ(unit.unresolvedCond(0), 0u);
    EXPECT_EQ(unit.latestResolveAt(), 0);
}

TEST(BranchUnitDeath, OldestOnEmptyPanics)
{
    BranchUnit unit;
    EXPECT_DEATH(unit.oldestCondResolve(), "unresolved");
}

TEST(BranchUnitDeath, NonMonotoneCondPanics)
{
    BranchUnit unit;
    unit.noteFetch(true, 20);
    EXPECT_DEATH(unit.noteFetch(true, 10), "monotone");
}

} // namespace
} // namespace specfetch
