/**
 * @file
 * Unit tests for the correctness-audit subsystem: seeded violations
 * must be caught, clean contexts must pass, and the violation report
 * must carry the schema-v1 shape CI archives.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "adaptive/adaptive_log.hh"
#include "cache/bus.hh"
#include "cache/icache.hh"
#include "cache/line_buffer.hh"
#include "check/invariant.hh"
#include "core/config.hh"
#include "core/miss_classifier.hh"
#include "core/results.hh"
#include "report/json.hh"

namespace specfetch {
namespace {

// ---- CheckLevel parsing ----------------------------------------------

TEST(CheckLevel, RoundTripsNames)
{
    for (CheckLevel level :
         {CheckLevel::Off, CheckLevel::Cheap, CheckLevel::Paranoid}) {
        CheckLevel parsed;
        ASSERT_TRUE(parseCheckLevel(toString(level), parsed));
        EXPECT_EQ(parsed, level);
    }
}

TEST(CheckLevel, ParsesCaseInsensitively)
{
    CheckLevel parsed;
    ASSERT_TRUE(parseCheckLevel("PARANOID", parsed));
    EXPECT_EQ(parsed, CheckLevel::Paranoid);
    ASSERT_TRUE(parseCheckLevel("none", parsed));
    EXPECT_EQ(parsed, CheckLevel::Off);
}

TEST(CheckLevel, RejectsUnknownNames)
{
    CheckLevel parsed;
    EXPECT_FALSE(parseCheckLevel("medium", parsed));
    EXPECT_FALSE(parseCheckLevel("", parsed));
}

// ---- Auditor mechanics -----------------------------------------------

/** A context whose identities all hold (5 instructions, no stalls). */
AuditContext
cleanContext(SimConfig &config, SimResults &stats)
{
    stats = SimResults{};
    stats.instructions = 5;
    AuditContext ctx;
    ctx.config = &config;
    ctx.stats = &stats;
    ctx.now = 5;
    ctx.statsBaseSlot = 0;
    return ctx;
}

TEST(InvariantAuditor, CleanContextProducesNoViolations)
{
    SimConfig config;
    SimResults stats;
    AuditContext ctx = cleanContext(config, stats);

    InvariantAuditor auditor = InvariantAuditor::standard(CheckLevel::Cheap);
    EXPECT_EQ(auditor.runChecks(ctx), 0u);
    EXPECT_TRUE(auditor.clean());
}

TEST(InvariantAuditor, CatchesSeededIspiViolation)
{
    SimConfig config;
    SimResults stats;
    AuditContext ctx = cleanContext(config, stats);
    // Lose three slots without charging any penalty component: the
    // decomposition no longer reproduces the slot clock.
    ctx.now = 8;

    InvariantAuditor auditor = InvariantAuditor::standard(CheckLevel::Cheap);
    ASSERT_EQ(auditor.runChecks(ctx), 1u);
    EXPECT_EQ(auditor.violations().front().invariant, "ispi-decomposition");
}

TEST(InvariantAuditor, CatchesSeededBusViolation)
{
    SimConfig config;
    SimResults stats;
    AuditContext ctx = cleanContext(config, stats);
    MemoryBus bus(1);
    bus.acquire(0, 20);    // one transaction nothing accounts for
    ctx.bus = &bus;

    InvariantAuditor auditor = InvariantAuditor::standard(CheckLevel::Cheap);
    ASSERT_EQ(auditor.runChecks(ctx), 1u);
    EXPECT_EQ(auditor.violations().front().invariant, "bus-accounting");
}

// ---- Adaptive epoch tiling -------------------------------------------

/** Violations of adaptive-epoch-tiling alone in @p ctx. */
size_t
tilingViolations(const AuditContext &ctx)
{
    InvariantAuditor auditor = InvariantAuditor::standard(CheckLevel::Cheap);
    auditor.runChecks(ctx);
    size_t count = 0;
    for (const InvariantViolation &violation : auditor.violations())
        count += violation.invariant == "adaptive-epoch-tiling";
    return count;
}

TEST(InvariantAuditor, AdaptiveTilingAcceptsAContiguousChoiceLog)
{
    SimResults stats;
    stats.instructions = 250;
    AdaptiveLog log;
    log.interval = 100;
    log.basePolicy = FetchPolicy::Resume;
    log.choices = {{0, FetchPolicy::Resume, 0, 100},
                   {1, FetchPolicy::Optimistic, 100, 200},
                   {2, FetchPolicy::Optimistic, 200, 250}};
    log.switches = 1;

    AuditContext ctx;
    ctx.stats = &stats;
    ctx.adaptiveLog = &log;
    ctx.endOfRun = true;
    EXPECT_EQ(tilingViolations(ctx), 0u);

    // Mid-run checkpoints skip the end-of-run coverage clause.
    ctx.endOfRun = false;
    log.choices.back().lastInstruction = 230;
    EXPECT_EQ(tilingViolations(ctx), 0u);
}

TEST(InvariantAuditor, AdaptiveTilingCatchesSeededDefects)
{
    SimResults stats;
    stats.instructions = 300;
    AdaptiveLog good;
    good.interval = 100;
    good.basePolicy = FetchPolicy::Resume;
    good.choices = {{0, FetchPolicy::Resume, 0, 100},
                    {1, FetchPolicy::Resume, 100, 200},
                    {2, FetchPolicy::Resume, 200, 300}};
    good.switches = 0;

    auto check = [&stats](const AdaptiveLog &log) {
        AuditContext ctx;
        ctx.stats = &stats;
        ctx.adaptiveLog = &log;
        ctx.endOfRun = true;
        return tilingViolations(ctx);
    };
    ASSERT_EQ(check(good), 0u);

    AdaptiveLog gapped = good;     // window starts off the epoch grid
    gapped.choices[1].firstInstruction = 150;
    EXPECT_GE(check(gapped), 1u);

    AdaptiveLog short_epoch = good;   // non-final epoch cut short
    short_epoch.choices[1].lastInstruction = 150;
    EXPECT_GE(check(short_epoch), 1u);

    AdaptiveLog miscounted = good;    // switch counter disagrees
    miscounted.switches = 2;
    EXPECT_EQ(check(miscounted), 1u);

    AdaptiveLog uncovered = good;     // log ends before the run does
    uncovered.choices.pop_back();
    EXPECT_EQ(check(uncovered), 1u);

    // A run without adaptive selection is skipped, never flagged.
    AdaptiveLog off;
    EXPECT_EQ(check(off), 0u);
}

TEST(InvariantAuditor, LevelGatesParanoidInvariants)
{
    // A resume-buffer entry aliasing a resident line violates
    // buffer-no-alias — but only a Paranoid auditor looks.
    SimConfig config;
    SimResults stats;
    AuditContext ctx = cleanContext(config, stats);

    ICache cache;
    cache.insert(0x1000);
    LineBuffer buffer;
    buffer.set(0x1000, 0);
    ctx.icache = &cache;
    ctx.resumeBuffer = &buffer;

    InvariantAuditor cheap = InvariantAuditor::standard(CheckLevel::Cheap);
    EXPECT_EQ(cheap.runChecks(ctx), 0u);

    InvariantAuditor paranoid =
        InvariantAuditor::standard(CheckLevel::Paranoid);
    ASSERT_EQ(paranoid.runChecks(ctx), 1u);
    EXPECT_EQ(paranoid.violations().front().invariant, "buffer-no-alias");
}

TEST(InvariantAuditor, CustomInvariantsRun)
{
    InvariantAuditor auditor(CheckLevel::Cheap);
    auditor.add(Invariant{
        "always-fails", "test", CheckLevel::Cheap,
        [](const AuditContext &, InvariantAuditor &a) {
            a.violation("always-fails", "seeded", JsonValue::object());
        }});

    AuditContext ctx;
    EXPECT_EQ(auditor.runChecks(ctx), 1u);
    EXPECT_FALSE(auditor.clean());
}

// ---- ICache structural audit -----------------------------------------

TEST(ICacheAudit, FreshAndFilledCachesAreConsistent)
{
    ICache cache;
    EXPECT_TRUE(cache.audit().empty());
    for (Addr line = 0; line < 0x8000; line += 32)
        cache.insert(line);
    EXPECT_TRUE(cache.audit().empty());
}

// ---- Table 4 conservation --------------------------------------------

TEST(AuditClassification, AcceptsConservedTaxonomy)
{
    Classification c;
    c.instructions = 1000;
    c.bothMiss = 40;
    c.specPollute = 10;
    c.specPrefetch = 5;
    c.wrongPath = 20;

    SimResults run;
    run.instructions = 1000;
    run.demandMisses = 50;    // bothMiss + specPollute
    run.wrongFills = 20;      // wrongPath

    InvariantAuditor auditor(CheckLevel::Cheap);
    auditClassification(c, run, c.optimisticMisses(), auditor);
    EXPECT_TRUE(auditor.clean());
}

TEST(AuditClassification, CatchesNonConservedMisses)
{
    Classification c;
    c.instructions = 1000;
    c.bothMiss = 40;
    c.specPollute = 10;
    c.wrongPath = 20;

    SimResults run;
    run.instructions = 1000;
    run.demandMisses = 49;    // one miss unaccounted for
    run.wrongFills = 20;

    InvariantAuditor auditor(CheckLevel::Cheap);
    auditClassification(c, run, c.optimisticMisses(), auditor);
    ASSERT_FALSE(auditor.clean());
    EXPECT_EQ(auditor.violations().front().invariant,
              "table4-conservation");
}

TEST(AuditClassification, CatchesTrafficNumeratorMismatch)
{
    Classification c;
    c.instructions = 100;
    c.bothMiss = 10;

    SimResults run;
    run.instructions = 100;
    run.demandMisses = 10;

    InvariantAuditor auditor(CheckLevel::Cheap);
    auditClassification(c, run, c.optimisticMisses() + 1, auditor);
    ASSERT_FALSE(auditor.clean());
    EXPECT_EQ(auditor.violations().front().invariant,
              "table4-traffic-numerator");
}

// ---- Sweep determinism -----------------------------------------------

TEST(AuditSweepDeterminism, AcceptsIdenticalRuns)
{
    SimResults r;
    r.instructions = 100;
    r.finalSlot = 150;
    std::vector<SimResults> a{r, r}, b{r, r};

    InvariantAuditor auditor(CheckLevel::Paranoid);
    auditSweepDeterminism(a, b, auditor);
    EXPECT_TRUE(auditor.clean());
}

TEST(AuditSweepDeterminism, FlagsEachDivergingIndex)
{
    SimResults r;
    r.instructions = 100;
    std::vector<SimResults> parallel{r, r, r};
    std::vector<SimResults> serial{r, r, r};
    serial[1].instructions = 101;
    serial[2].finalSlot = 1;

    InvariantAuditor auditor(CheckLevel::Paranoid);
    auditSweepDeterminism(parallel, serial, auditor);
    EXPECT_EQ(auditor.violations().size(), 2u);
    EXPECT_EQ(auditor.violations().front().invariant, "sweep-determinism");
}

TEST(AuditSweepDeterminism, FlagsLengthMismatch)
{
    std::vector<SimResults> parallel(2), serial(3);
    InvariantAuditor auditor(CheckLevel::Paranoid);
    auditSweepDeterminism(parallel, serial, auditor);
    EXPECT_EQ(auditor.violations().size(), 1u);
}

// ---- Violation report ------------------------------------------------

TEST(AuditReport, CarriesSchemaManifestAndViolations)
{
    SimConfig config;
    config.checkLevel = CheckLevel::Cheap;

    InvariantAuditor auditor(CheckLevel::Cheap);
    auditor.violation("seeded-check", "seeded detail",
                      JsonValue::object().set(
                          "bad_counter", JsonValue::integer(7)));

    JsonValue report = auditor.reportJson(config);
    ASSERT_NE(report.find("schema_version"), nullptr);
    ASSERT_NE(report.find("record"), nullptr);
    EXPECT_EQ(report.find("record")->asString(), "audit");
    EXPECT_EQ(report.find("check_level")->asString(), "cheap");
    EXPECT_EQ(report.find("violations")->asUint(), 1u);
    // The embedded manifest records that the run was audited.
    ASSERT_NE(report.find("config"), nullptr);
    EXPECT_NE(report.find("config")->find("check_level"), nullptr);

    const JsonValue *list = report.find("violation_list");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->elements().size(), 1u);
    const JsonValue &entry = list->elements().front();
    EXPECT_EQ(entry.find("invariant")->asString(), "seeded-check");
    EXPECT_EQ(entry.find("detail")->asString(), "seeded detail");
    EXPECT_EQ(entry.find("counters")->find("bad_counter")->asUint(), 7u);
}

TEST(AuditReport, EmitReportAppendsToEnvNamedFile)
{
    std::string path = ::testing::TempDir() + "audit_report_test.jsonl";
    std::remove(path.c_str());
    ASSERT_EQ(setenv(InvariantAuditor::kReportPathEnv, path.c_str(), 1), 0);

    SimConfig config;
    InvariantAuditor auditor(CheckLevel::Cheap);
    auditor.violation("seeded-check", "seeded detail", JsonValue::object());
    EXPECT_EQ(auditor.emitReport(config), path);

    unsetenv(InvariantAuditor::kReportPathEnv);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    std::string error;
    JsonValue parsed;
    ASSERT_TRUE(JsonValue::parse(line, parsed, &error)) << error;
    EXPECT_EQ(parsed.find("record")->asString(), "audit");
    std::remove(path.c_str());
}

} // namespace
} // namespace specfetch
