/**
 * @file
 * Service telemetry tests (DESIGN.md §16): the `{"op":"stats"}`
 * control request, instrument population on the request path, and the
 * outcome conservation invariant
 *
 *   accepted == hits + executed + deduped + shed + expired
 *               + poisoned + failed + rejected
 *
 * which must hold at *every* snapshot taken while a duplicate-heavy
 * concurrent batch is in flight, not just after drain.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.hh"
#include "serve/result_store.hh"
#include "serve/service.hh"

using namespace specfetch;

namespace {

/** Tiny budget: a service execution is a real simulation. */
constexpr uint64_t kBudget = 20'000;

std::string
request(uint64_t id, const std::string &benchmark,
        const std::string &configMembers = "")
{
    std::string config = "{\"instruction_budget\":" +
                         std::to_string(kBudget) +
                         (configMembers.empty() ? "" : "," + configMembers) +
                         "}";
    return "{\"id\":" + std::to_string(id) + ",\"benchmark\":\"" +
           benchmark + "\",\"config\":" + config + "}";
}

class Collector
{
  public:
    SweepService::Responder
    responder()
    {
        return [this](const JsonValue &response) {
            std::lock_guard<std::mutex> lock(mutex);
            responses.push_back(response);
            arrived.notify_all();
        };
    }

    std::vector<JsonValue>
    waitFor(size_t count)
    {
        std::unique_lock<std::mutex> lock(mutex);
        arrived.wait(lock, [&] { return responses.size() >= count; });
        return responses;
    }

  private:
    std::mutex mutex;
    std::condition_variable arrived;
    std::vector<JsonValue> responses;
};

uint64_t
member(const JsonValue &row, const char *name)
{
    const JsonValue *value = row.find(name);
    EXPECT_NE(value, nullptr) << name;
    return value ? value->asUint() : 0;
}

/** The invariant's right side, from a serialized service object. */
uint64_t
outcomeSumOf(const JsonValue &service)
{
    return member(service, "hits") + member(service, "executed") +
           member(service, "deduped") + member(service, "shed") +
           member(service, "expired") + member(service, "poisoned") +
           member(service, "failed") + member(service, "rejected");
}

class ServiceMetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = ::testing::TempDir() + "service_metrics_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        wipe();
        ResultStore::Options storeOptions;
        storeOptions.dir = dir;
        storeOptions.metrics = &registry;
        ASSERT_TRUE(store.open(storeOptions));
    }

    void
    TearDown() override
    {
        store.close();
        wipe();
    }

    void
    wipe()
    {
        if (DIR *handle = opendir(dir.c_str())) {
            while (struct dirent *entry = readdir(handle)) {
                std::string name = entry->d_name;
                if (name != "." && name != "..")
                    std::remove((dir + "/" + name).c_str());
            }
            closedir(handle);
        }
        rmdir(dir.c_str());
    }

    MetricsRegistry registry;
    ResultStore store;
    std::string dir;
};

} // namespace

TEST_F(ServiceMetricsTest, StatsOpAnswersWithoutTouchingTheStore)
{
    SweepService::Options options;
    options.metrics = &registry;
    SweepService service(store, options);
    service.start();
    Collector collector;
    service.submit("{\"id\":42,\"op\":\"stats\"}",
                   collector.responder());
    auto responses = collector.waitFor(1);
    service.drain();

    const JsonValue &response = responses[0];
    EXPECT_EQ(response.find("status")->asString(), "ok");
    EXPECT_EQ(response.find("id")->asUint(), 42u);
    const JsonValue *stats = response.find("stats");
    ASSERT_NE(stats, nullptr);
    const JsonValue *serviceStats = stats->find("service");
    ASSERT_NE(serviceStats, nullptr);
    EXPECT_EQ(member(*serviceStats, "requests"), 1u);
    EXPECT_EQ(member(*serviceStats, "stats_ops"), 1u);
    EXPECT_EQ(member(*serviceStats, "accepted"), 0u);
    EXPECT_TRUE(serviceStats->find("conserved")->asBool());
    ASSERT_NE(stats->find("store"), nullptr);
    EXPECT_EQ(member(*stats->find("store"), "records"), 0u);
    // The registry sections exist even before any instrument fired.
    EXPECT_NE(stats->find("counters"), nullptr);
    EXPECT_NE(stats->find("gauges"), nullptr);
    EXPECT_NE(stats->find("histograms"), nullptr);
    // No run was looked up, executed, or stored.
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(service.statsSnapshot().accepted, 0u);
}

TEST_F(ServiceMetricsTest, StatsOpWorksWithoutARegistry)
{
    SweepService service(store, {});
    service.start();
    Collector collector;
    service.submit("{\"op\":\"stats\"}", collector.responder());
    auto responses = collector.waitFor(1);
    service.drain();
    const JsonValue *stats = responses[0].find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_NE(stats->find("service"), nullptr);
    EXPECT_NE(stats->find("counters"), nullptr);
    EXPECT_EQ(stats->find("counters")->members().size(), 0u);
}

TEST_F(ServiceMetricsTest, RequestPathPopulatesInstruments)
{
    SweepService::Options options;
    options.metrics = &registry;
    SweepService service(store, options);
    service.start();
    Collector collector;
    service.submit(request(1, "li"), collector.responder()); // miss
    collector.waitFor(1);
    service.submit(request(2, "li"), collector.responder()); // hit
    collector.waitFor(2);
    service.submit("not json", collector.responder()); // rejected
    collector.waitFor(3);
    service.drain();

    MetricsSnapshot snapshot = registry.snapshot();
    auto histogramCount = [&](const std::string &name) -> uint64_t {
        for (const HistogramSnapshot &h : snapshot.histograms) {
            if (h.name == name)
                return h.count;
        }
        return 0;
    };
    auto gaugeValue = [&](const std::string &name) -> uint64_t {
        for (const auto &[gaugeName, value] : snapshot.gauges) {
            if (gaugeName == name)
                return value;
        }
        return 0;
    };
    EXPECT_EQ(histogramCount("service.execute_us.executed"), 1u);
    EXPECT_EQ(histogramCount("service.queue_wait_us.executed"), 1u);
    EXPECT_EQ(histogramCount("service.queue_wait_us.hit"), 1u);
    EXPECT_EQ(histogramCount("service.queue_wait_us.rejected"), 1u);
    EXPECT_EQ(histogramCount("store.put_us"), 1u);
    EXPECT_GE(histogramCount("store.get_us"), 2u); // hit + rider-free get
    EXPECT_GE(histogramCount("store.fsync_us"), 1u);
    EXPECT_EQ(gaugeValue("store.records"), 1u);
    EXPECT_EQ(gaugeValue("service.workers"), 1u);

    // The worker spent measurable time on both sides of the loop.
    uint64_t busy = 0;
    uint64_t idle = 0;
    for (const auto &[name, value] : snapshot.counters) {
        if (name == "service.worker_busy_us")
            busy = value;
        if (name == "service.worker_idle_us")
            idle = value;
    }
    EXPECT_GT(busy, 0u);
    EXPECT_GT(idle, 0u);

    JsonValue health = JsonValue::object();
    service.healthMembers(health);
    EXPECT_EQ(member(health, "accepted"), 3u);
    EXPECT_EQ(member(health, "stats_ops"), 0u);
}

TEST_F(ServiceMetricsTest, ConservationHoldsAtEverySnapshotUnderLoad)
{
    SweepService::Options options;
    options.workers = 3;
    options.queueBound = 8; // small: force real shedding
    options.metrics = &registry;
    SweepService service(store, options);
    service.start();

    // A duplicate-heavy mixed batch: 4 submitter threads hammer a
    // 3-key space (dedupe + hits), sprinkle malformed lines (rejected)
    // and stats ops, while a sampler thread checks the invariant on
    // both the typed snapshot and the serialized stats body.
    constexpr unsigned kSubmitters = 4;
    constexpr unsigned kPerThread = 40;
    const char *benchmarks[] = {"li", "gcc", "tex"};
    std::atomic<bool> done{false};
    std::atomic<uint64_t> violations{0};
    std::atomic<uint64_t> samples{0};

    std::thread sampler([&] {
        while (!done.load()) {
            SweepService::Stats stats = service.statsSnapshot();
            if (stats.accepted != stats.outcomeSum())
                violations.fetch_add(1);
            JsonValue body = service.serviceStatsJson();
            if (member(body, "accepted") != outcomeSumOf(body) ||
                !body.find("conserved")->asBool())
                violations.fetch_add(1);
            samples.fetch_add(1);
        }
    });

    Collector collector;
    std::vector<std::thread> submitters;
    for (unsigned t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
            for (unsigned i = 0; i < kPerThread; ++i) {
                if (i % 13 == 5) {
                    service.submit("broken {", collector.responder());
                } else if (i % 17 == 7) {
                    service.submit("{\"op\":\"stats\"}",
                                   collector.responder());
                } else {
                    service.submit(
                        request(t * 1000 + i, benchmarks[i % 3]),
                        collector.responder());
                }
            }
        });
    }
    for (std::thread &submitter : submitters)
        submitter.join();
    collector.waitFor(kSubmitters * kPerThread);
    service.drain();
    done.store(true);
    sampler.join();

    EXPECT_GT(samples.load(), 0u);
    EXPECT_EQ(violations.load(), 0u);

    SweepService::Stats stats = service.statsSnapshot();
    EXPECT_EQ(stats.requests, kSubmitters * kPerThread);
    // Every non-control request ended in exactly one outcome class.
    EXPECT_EQ(stats.accepted, stats.outcomeSum());
    EXPECT_EQ(stats.requests, stats.accepted + stats.statsOps);
    EXPECT_EQ(stats.queueDepth, 0u);
    EXPECT_EQ(stats.inflight, 0u);
    EXPECT_EQ(stats.executed, 3u); // one real run per distinct key
    EXPECT_GT(stats.hits + stats.deduped, 0u);
}
