/**
 * @file
 * SweepService tests (DESIGN.md §15): request validation surface,
 * store hits vs. executions, single-flight dedupe, admission control
 * and load shedding, poison quarantine, deadlines, graceful drain,
 * and the socket round trip.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/injector.hh"
#include "serve/result_store.hh"
#include "serve/service.hh"
#include "serve/socket.hh"

using namespace specfetch;

namespace {

/** Tiny budget: a service execution is a real simulation. */
constexpr uint64_t kBudget = 20'000;

std::string
request(uint64_t id, const std::string &benchmark,
        const std::string &configMembers = "")
{
    std::string config = "{\"instruction_budget\":" +
                         std::to_string(kBudget) +
                         (configMembers.empty() ? "" : "," + configMembers) +
                         "}";
    return "{\"id\":" + std::to_string(id) + ",\"benchmark\":\"" +
           benchmark + "\",\"config\":" + config + "}";
}

/** Collects responses; submit() may answer from a worker thread. */
class Collector
{
  public:
    SweepService::Responder
    responder()
    {
        return [this](const JsonValue &response) {
            std::lock_guard<std::mutex> lock(mutex);
            responses.push_back(response);
            arrived.notify_all();
        };
    }

    std::vector<JsonValue>
    waitFor(size_t count)
    {
        std::unique_lock<std::mutex> lock(mutex);
        arrived.wait(lock,
                     [&] { return responses.size() >= count; });
        return responses;
    }

  private:
    std::mutex mutex;
    std::condition_variable arrived;
    std::vector<JsonValue> responses;
};

std::string
statusOf(const JsonValue &response)
{
    const JsonValue *status = response.find("status");
    return status ? status->asString() : "";
}

std::string
errorTypeOf(const JsonValue &response)
{
    const JsonValue *error = response.find("error");
    if (!error)
        return "";
    const JsonValue *type = error->find("type");
    return type ? type->asString() : "";
}

class ServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = ::testing::TempDir() + "service_store_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        // A previous run (ctest re-executes each test in its own
        // process) may have left store segments behind; a stale hit
        // would turn the first miss of this test into a cache hit.
        wipe();
        ResultStore::Options storeOptions;
        storeOptions.dir = dir;
        ASSERT_TRUE(store.open(storeOptions));
    }

    void
    TearDown() override
    {
        store.close();
        wipe();
    }

    void
    wipe()
    {
        if (DIR *handle = opendir(dir.c_str())) {
            while (struct dirent *entry = readdir(handle)) {
                std::string name = entry->d_name;
                if (name != "." && name != "..")
                    std::remove((dir + "/" + name).c_str());
            }
            closedir(handle);
        }
        rmdir(dir.c_str());
    }

    ResultStore store;
    std::string dir;
};

TEST_F(ServiceTest, TypedErrorsNeverCrash)
{
    SweepService service(store, {});
    service.start();
    Collector collector;
    service.submit("not json at all", collector.responder());
    service.submit("[1,2,3]", collector.responder());
    service.submit("{\"id\":9,\"benchmark\":\"no-such\"}",
                   collector.responder());
    service.submit("{\"id\":10,\"benchmark\":\"gcc\",\"bogus\":1}",
                   collector.responder());
    service.submit("{\"id\":11,\"benchmark\":\"gcc\","
                   "\"config\":{\"no_such_member\":1}}",
                   collector.responder());
    service.submit("{\"id\":12,\"benchmark\":\"gcc\","
                   "\"config\":{\"issue_width\":0}}",
                   collector.responder());
    auto responses = collector.waitFor(6);
    EXPECT_EQ(errorTypeOf(responses[0]), "malformed_json");
    EXPECT_EQ(errorTypeOf(responses[1]), "malformed_json");
    EXPECT_EQ(errorTypeOf(responses[2]), "bad_request");
    EXPECT_EQ(errorTypeOf(responses[3]), "bad_request");
    EXPECT_EQ(errorTypeOf(responses[4]), "bad_request");
    EXPECT_EQ(errorTypeOf(responses[5]), "bad_request");
    // Rejections echo the id they could salvage.
    const JsonValue *id = responses[2].find("id");
    ASSERT_NE(id, nullptr);
    EXPECT_EQ(id->asUint(), 9u);
    service.drain();
    EXPECT_EQ(service.statsSnapshot().rejected, 6u);
    EXPECT_EQ(service.statsSnapshot().executed, 0u);
}

TEST_F(ServiceTest, MissExecutesThenHitServes)
{
    SweepService service(store, {});
    service.start();
    Collector collector;
    service.submit(request(1, "li"), collector.responder());
    auto first = collector.waitFor(1);
    ASSERT_EQ(statusOf(first[0]), "ok");
    EXPECT_FALSE(first[0].find("cached")->asBool());
    const JsonValue *run = first[0].find("run");
    ASSERT_NE(run, nullptr);
    EXPECT_NE(run->find("counters"), nullptr);

    service.submit(request(2, "li"), collector.responder());
    auto second = collector.waitFor(2);
    ASSERT_EQ(statusOf(second[1]), "ok");
    EXPECT_TRUE(second[1].find("cached")->asBool());
    EXPECT_EQ(*second[1].find("run"), *run);
    service.drain();

    SweepService::Stats stats = service.statsSnapshot();
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(store.size(), 1u);
}

TEST_F(ServiceTest, SingleFlightDedupe)
{
    // Gate the worker so duplicates pile up behind one leader.
    std::mutex gateMutex;
    std::condition_variable gateCv;
    bool gateOpen = false;
    std::atomic<unsigned> executionsStarted{0};

    SweepService::Options options;
    options.workers = 2;
    options.testBeforeExecute = [&] {
        ++executionsStarted;
        std::unique_lock<std::mutex> lock(gateMutex);
        gateCv.wait(lock, [&] { return gateOpen; });
    };
    SweepService service(store, options);
    service.start();
    Collector collector;
    for (uint64_t i = 0; i < 5; ++i)
        service.submit(request(i, "li"), collector.responder());
    while (executionsStarted.load() == 0)
        std::this_thread::yield();
    {
        std::lock_guard<std::mutex> lock(gateMutex);
        gateOpen = true;
    }
    gateCv.notify_all();
    auto responses = collector.waitFor(5);
    service.drain();

    for (const JsonValue &response : responses)
        EXPECT_EQ(statusOf(response), "ok");
    SweepService::Stats stats = service.statsSnapshot();
    // One execution; every duplicate rode it or hit the store.
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.deduped + stats.hits, 4u);
    EXPECT_EQ(executionsStarted.load(), 1u);
}

TEST_F(ServiceTest, OverloadShedsBeyondQueueBound)
{
    std::mutex gateMutex;
    std::condition_variable gateCv;
    bool gateOpen = false;
    std::atomic<unsigned> started{0};

    SweepService::Options options;
    options.workers = 1;
    options.queueBound = 3;
    options.testBeforeExecute = [&] {
        ++started;
        std::unique_lock<std::mutex> lock(gateMutex);
        gateCv.wait(lock, [&] { return gateOpen; });
    };
    SweepService service(store, options);
    service.start();
    Collector collector;
    // Distinct keys so nothing dedupes: only queueBound are admitted.
    const char *benchmarks[] = {"li", "gcc", "tex", "doduc",
                                "groff", "idl"};
    for (uint64_t i = 0; i < 6; ++i)
        service.submit(request(i, benchmarks[i]), collector.responder());
    while (started.load() == 0)
        std::this_thread::yield();

    // The overflow was answered immediately with backoff hints.
    auto early = collector.waitFor(3);
    size_t shed = 0;
    for (const JsonValue &response : early) {
        if (statusOf(response) != "error")
            continue;
        EXPECT_EQ(errorTypeOf(response), "overloaded");
        const JsonValue *backoff =
            response.find("error")->find("backoff_seconds");
        ASSERT_NE(backoff, nullptr);
        EXPECT_GT(backoff->asDouble(), 0.0);
        ++shed;
    }
    EXPECT_EQ(shed, 3u);

    {
        std::lock_guard<std::mutex> lock(gateMutex);
        gateOpen = true;
    }
    gateCv.notify_all();
    auto responses = collector.waitFor(6);
    service.drain();

    size_t completed = 0;
    for (const JsonValue &response : responses) {
        if (statusOf(response) == "ok")
            ++completed;
    }
    // Everything admitted completed; everything shed stayed shed.
    EXPECT_EQ(completed, 3u);
    EXPECT_EQ(service.statsSnapshot().shed, 3u);
    EXPECT_EQ(service.statsSnapshot().executed, 3u);
}

TEST_F(ServiceTest, PoisonAfterRepeatedFailures)
{
    SweepService::Options options;
    options.maxAttempts = 1;
    options.poisonThreshold = 2;
    FaultInjector injector;
    // Every executed-run ordinal throws on every attempt.
    ASSERT_TRUE(FaultInjector::parse(
        "throw@0x*,throw@1x*,throw@2x*,throw@3x*", injector));
    options.injector = &injector;
    SweepService service(store, options);
    service.start();
    Collector collector;

    service.submit(request(1, "li"), collector.responder());
    auto first = collector.waitFor(1);
    EXPECT_EQ(errorTypeOf(first[0]), "run_failed");
    const JsonValue *attempts = first[0].find("error")->find("attempts");
    ASSERT_NE(attempts, nullptr);
    EXPECT_EQ(attempts->asUint(), 1u);

    service.submit(request(2, "li"), collector.responder());
    auto second = collector.waitFor(2);
    EXPECT_EQ(errorTypeOf(second[1]), "poisoned");

    // Once poisoned, the key is refused without executing.
    service.submit(request(3, "li"), collector.responder());
    auto third = collector.waitFor(3);
    EXPECT_EQ(errorTypeOf(third[2]), "poisoned");
    service.drain();

    SweepService::Stats stats = service.statsSnapshot();
    EXPECT_EQ(stats.failed, 1u);
    EXPECT_EQ(stats.poisoned, 2u);
    EXPECT_EQ(store.size(), 0u);
}

TEST_F(ServiceTest, DeadlineExpiryAnswersWithBackoff)
{
    std::mutex gateMutex;
    std::condition_variable gateCv;
    bool gateOpen = false;
    std::atomic<unsigned> started{0};

    SweepService::Options options;
    options.workers = 1;
    options.requestDeadlineSeconds = 0.05;
    options.testBeforeExecute = [&] {
        ++started;
        std::unique_lock<std::mutex> lock(gateMutex);
        gateCv.wait(lock, [&] { return gateOpen; });
    };
    SweepService service(store, options);
    service.start();
    Collector collector;
    service.submit(request(1, "li"), collector.responder());
    service.submit(request(2, "gcc"), collector.responder());
    while (started.load() == 0)
        std::this_thread::yield();
    // Hold the worker until the queued request's deadline expires.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    {
        std::lock_guard<std::mutex> lock(gateMutex);
        gateOpen = true;
    }
    gateCv.notify_all();
    auto responses = collector.waitFor(2);
    service.drain();

    size_t expired = 0;
    for (const JsonValue &response : responses) {
        if (errorTypeOf(response) == "deadline_exceeded") {
            const JsonValue *backoff =
                response.find("error")->find("backoff_seconds");
            ASSERT_NE(backoff, nullptr);
            EXPECT_GT(backoff->asDouble(), 0.0);
            ++expired;
        }
    }
    EXPECT_EQ(expired, 1u);
    EXPECT_EQ(service.statsSnapshot().expired, 1u);
}

TEST_F(ServiceTest, DrainRefusesNewWorkAndFinishesAdmitted)
{
    SweepService service(store, {});
    service.start();
    Collector collector;
    service.submit(request(1, "li"), collector.responder());
    collector.waitFor(1);
    service.drain();

    service.submit(request(2, "gcc"), collector.responder());
    auto responses = collector.waitFor(2);
    EXPECT_EQ(errorTypeOf(responses[1]), "shutting_down");
    EXPECT_EQ(service.statsSnapshot().executed, 1u);

    // Drained service + closed store = durable, clean shutdown.
    EXPECT_TRUE(store.close());
}

TEST_F(ServiceTest, HealthMembersExposeCounters)
{
    SweepService service(store, {});
    service.start();
    Collector collector;
    service.submit(request(1, "li"), collector.responder());
    collector.waitFor(1);
    service.drain();

    JsonValue row = JsonValue::object();
    service.healthMembers(row);
    ASSERT_NE(row.find("requests"), nullptr);
    EXPECT_EQ(row.find("requests")->asUint(), 1u);
    EXPECT_EQ(row.find("executed")->asUint(), 1u);
    EXPECT_EQ(row.find("store_records")->asUint(), 1u);
    ASSERT_NE(row.find("queue_depth"), nullptr);
    EXPECT_EQ(row.find("queue_depth")->asUint(), 0u);
}

TEST_F(ServiceTest, SocketRoundTripInRequestOrder)
{
    SweepService::Options options;
    options.workers = 2;
    SweepService service(store, options);
    service.start();

    std::string socketPath = dir + ".sock";
    UnixSocketServer listener;
    std::string error;
    ASSERT_TRUE(listener.listen(socketPath, &error)) << error;

    std::atomic<bool> stop{false};
    std::thread acceptor([&] {
        int client = listener.accept(/*pollSeconds=*/5.0);
        ASSERT_GE(client, 0);
        serveStream(client, client, service, &stop);
        ::close(client);
    });

    // Mixed batch: two real runs, a duplicate, and two rejects.
    std::vector<std::string> requests = {
        request(0, "li"),
        "garbage",
        request(2, "gcc"),
        request(3, "li"),
        "{\"id\":4,\"benchmark\":\"no-such\"}",
    };
    std::vector<std::string> responses;
    ASSERT_TRUE(serviceBatch(socketPath, requests, responses, &error))
        << error;
    acceptor.join();
    listener.close();
    service.drain();

    ASSERT_EQ(responses.size(), requests.size());
    // Responses land in request order regardless of completion order.
    for (size_t i = 0; i < responses.size(); ++i) {
        JsonValue response;
        ASSERT_TRUE(JsonValue::parse(responses[i], response));
        const JsonValue *id = response.find("id");
        if (id && id->isUint()) {
            EXPECT_EQ(id->asUint(), i);
        }
        EXPECT_EQ(statusOf(response), i == 1 || i == 4 ? "error" : "ok");
    }
    EXPECT_EQ(service.statsSnapshot().executed, 2u);
    EXPECT_EQ(service.statsSnapshot().deduped +
                  service.statsSnapshot().hits,
              1u);
}

} // namespace
