/**
 * @file
 * Store <-> simulator byte-identity property (DESIGN.md §15): for the
 * full paper grid — 13 workloads × 5 policies × prefetch on/off — the
 * record a SweepService stores and serves is byte-for-byte the record
 * a fresh, serial runSimulation produces. The identity must also hold
 * after a crash-recovery reopen (no clean marker) and after
 * compaction, or a daemon restart could silently change results.
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/miss_classifier.hh"
#include "core/simulator.hh"
#include "fault/resilient_sweep.hh"
#include "metrics/metrics.hh"
#include "report/record.hh"
#include "serve/result_store.hh"
#include "serve/service.hh"
#include "workload/registry.hh"
#include "workload/workload.hh"

using namespace specfetch;

namespace {

/** Small budget: the grid is 130 runs, simulated twice. */
constexpr uint64_t kBudget = 20'000;

void
wipeDir(const std::string &dir)
{
    if (DIR *handle = opendir(dir.c_str())) {
        while (struct dirent *entry = readdir(handle)) {
            std::string name = entry->d_name;
            if (name != "." && name != "..")
                std::remove((dir + "/" + name).c_str());
        }
        closedir(handle);
    }
    rmdir(dir.c_str());
}

TEST(StoreIdentity, GridRecordsMatchSerialSimulation)
{
    std::string dir = ::testing::TempDir() + "identity_store";
    wipeDir(dir); // stale segments from a prior run would mask misses
    SimConfig base;
    base.instructionBudget = kBudget;

    // The bench_suite grid: profile-major, policy-minor, prefetch
    // innermost.
    const std::vector<std::string> &names = benchmarkNames();
    std::vector<RunSpec> specs;
    for (const std::string &name : names) {
        for (FetchPolicy policy : allPolicies()) {
            for (bool prefetch : {false, true}) {
                SimConfig config = base;
                config.policy = policy;
                config.nextLinePrefetch = prefetch;
                specs.push_back(RunSpec{name, config});
            }
        }
    }
    ASSERT_EQ(specs.size(), names.size() * allPolicies().size() * 2);

    // Reference records: fresh serial simulation, one run at a time,
    // exactly as the report layer would export them.
    std::map<std::string, Classification> classifications;
    std::vector<std::string> expected;
    std::vector<std::string> keys;
    for (const RunSpec &spec : specs) {
        if (!classifications.count(spec.benchmark)) {
            Workload workload = buildWorkload(getProfile(spec.benchmark));
            classifications.emplace(spec.benchmark,
                                    classifyMisses(workload, base));
        }
        Workload workload = buildWorkload(getProfile(spec.benchmark));
        SimResults results = runSimulation(workload, spec.config);
        expected.push_back(
            makeRunRecord(results, spec.config, nullptr,
                          &classifications.at(spec.benchmark))
                .dump());
        keys.push_back(sweepRunKey(spec));
    }

    // Drive the same grid through the service (parallel workers, so
    // the identity also covers scheduling nondeterminism) — with
    // telemetry armed: instrumentation must never change a stored or
    // served byte (DESIGN.md §16).
    MetricsRegistry registry;
    ResultStore store;
    ResultStore::Options storeOptions;
    storeOptions.dir = dir;
    storeOptions.metrics = &registry;
    ASSERT_TRUE(store.open(storeOptions));
    {
        SweepService::Options serviceOptions;
        serviceOptions.workers = 4;
        serviceOptions.queueBound = specs.size();
        serviceOptions.metrics = &registry;
        SweepService service(store, serviceOptions);
        service.start();
        for (const RunSpec &spec : specs) {
            JsonValue request = JsonValue::object();
            request.set("benchmark", JsonValue::string(spec.benchmark));
            request.set("config", toJson(spec.config));
            service.submit(request.dump(), [](const JsonValue &) {});
        }
        service.drain();
        ASSERT_EQ(service.statsSnapshot().executed, specs.size());
        // The instrumentation actually fired while the bytes stayed
        // identical below.
        ASSERT_EQ(service.statsSnapshot().accepted,
                  service.statsSnapshot().outcomeSum());
    }
    {
        MetricsSnapshot snapshot = registry.snapshot();
        uint64_t putCount = 0;
        for (const HistogramSnapshot &histogram : snapshot.histograms) {
            if (histogram.name == "store.put_us")
                putCount = histogram.count;
        }
        ASSERT_EQ(putCount, specs.size());
    }

    // 1) Stored bytes == fresh serial bytes.
    for (size_t i = 0; i < specs.size(); ++i) {
        JsonValue record;
        ASSERT_TRUE(store.get(keys[i], record)) << keys[i];
        EXPECT_EQ(record.dump(), expected[i])
            << specs[i].benchmark << " run " << i;
    }

    // 2) Identity survives a crash-recovery reopen (no close()).
    ResultStore recovered;
    ASSERT_TRUE(recovered.open(storeOptions));
    EXPECT_TRUE(recovered.stats().recovered);
    ASSERT_EQ(recovered.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        JsonValue record;
        ASSERT_TRUE(recovered.get(keys[i], record));
        EXPECT_EQ(record.dump(), expected[i]) << "after recovery, run "
                                              << i;
    }

    // 3) Identity survives compaction and the reopen after it.
    ASSERT_TRUE(recovered.compact());
    for (size_t i = 0; i < specs.size(); ++i) {
        JsonValue record;
        ASSERT_TRUE(recovered.get(keys[i], record));
        EXPECT_EQ(record.dump(), expected[i]) << "after compact, run "
                                              << i;
    }
    ASSERT_TRUE(recovered.close());

    ResultStore reopened;
    ASSERT_TRUE(reopened.open(storeOptions));
    EXPECT_FALSE(reopened.stats().recovered);
    ASSERT_EQ(reopened.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        JsonValue record;
        ASSERT_TRUE(reopened.get(keys[i], record));
        EXPECT_EQ(record.dump(), expected[i])
            << "after compacted reopen, run " << i;
    }
    ASSERT_TRUE(reopened.close());
}

} // namespace
