/**
 * @file
 * ResultStore tests (DESIGN.md §15): durability round trips, clean
 * vs. recovered opens, torn-tail and corrupt-frame handling, segment
 * rotation, injected write failures, and kill-anywhere compaction
 * (death tests at every crash point assert reopen loses nothing).
 */

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/injector.hh"
#include "fault/ledger.hh"
#include "serve/result_store.hh"

using namespace specfetch;

namespace {

class ResultStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = ::testing::TempDir() + "result_store_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        removeAll();
    }

    void TearDown() override { removeAll(); }

    void
    removeAll()
    {
        for (const std::string &name : listFiles())
            std::remove((dir + "/" + name).c_str());
        rmdir(dir.c_str());
    }

    std::vector<std::string>
    listFiles() const
    {
        std::vector<std::string> names;
        // Readdir via a shell-free scan: reuse opendir through the
        // store's own observable behaviour instead would be circular,
        // so go straight at the directory.
        if (DIR *handle = opendir(dir.c_str())) {
            while (struct dirent *entry = readdir(handle)) {
                std::string name = entry->d_name;
                if (name != "." && name != "..")
                    names.push_back(name);
            }
            closedir(handle);
        }
        return names;
    }

    bool
    fileExists(const std::string &name) const
    {
        struct stat info;
        return stat((dir + "/" + name).c_str(), &info) == 0;
    }

    JsonValue
    record(uint64_t value)
    {
        JsonValue out = JsonValue::object();
        out.set("record", JsonValue::string("run"));
        out.set("value", JsonValue::integer(value));
        return out;
    }

    ResultStore::Options
    options()
    {
        ResultStore::Options opts;
        opts.dir = dir;
        return opts;
    }

    /** Populate a store with @p count records and close it cleanly. */
    void
    seed(size_t count)
    {
        ResultStore store;
        ASSERT_TRUE(store.open(options()));
        for (size_t i = 0; i < count; ++i) {
            ASSERT_TRUE(
                store.put("key" + std::to_string(i), record(i)));
        }
        ASSERT_TRUE(store.close());
    }

    std::string dir;
};

TEST_F(ResultStoreTest, PutGetRoundTrip)
{
    ResultStore store;
    std::string error;
    ASSERT_TRUE(store.open(options(), &error)) << error;
    EXPECT_FALSE(store.stats().recovered);

    JsonValue out;
    EXPECT_FALSE(store.get("missing", out));
    EXPECT_TRUE(store.put("a", record(1)));
    EXPECT_TRUE(store.put("b", record(2)));
    EXPECT_EQ(store.size(), 2u);
    ASSERT_TRUE(store.get("a", out));
    EXPECT_EQ(out, record(1));

    // Duplicate puts are free hits, not appends.
    EXPECT_TRUE(store.put("a", record(1)));
    EXPECT_EQ(store.stats().duplicatePuts, 1u);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_TRUE(store.close());
    EXPECT_TRUE(fileExists("CLEAN"));
}

TEST_F(ResultStoreTest, CleanReopenKeepsRecords)
{
    seed(5);
    ResultStore store;
    ASSERT_TRUE(store.open(options()));
    EXPECT_FALSE(store.stats().recovered);
    EXPECT_FALSE(fileExists("CLEAN")); // consumed at open
    EXPECT_EQ(store.size(), 5u);
    JsonValue out;
    ASSERT_TRUE(store.get("key3", out));
    EXPECT_EQ(out, record(3));
    EXPECT_TRUE(store.close());
}

TEST_F(ResultStoreTest, ReopenWithoutCloseIsRecovery)
{
    {
        ResultStore store;
        ASSERT_TRUE(store.open(options()));
        ASSERT_TRUE(store.put("a", record(7)));
        // Destruction without close(): a crash as far as the next
        // open is concerned.
    }
    ResultStore store;
    ASSERT_TRUE(store.open(options()));
    EXPECT_TRUE(store.stats().recovered);
    JsonValue out;
    ASSERT_TRUE(store.get("a", out));
    EXPECT_EQ(out, record(7));
    EXPECT_TRUE(store.close());
}

TEST_F(ResultStoreTest, TornTailLineIsDropped)
{
    seed(3);
    // Append a half-written frame to the newest tail, as a crash
    // mid-append would leave it.
    std::string tailPath;
    for (const std::string &name : listFiles()) {
        if (name.rfind("tail-", 0) == 0)
            tailPath = dir + "/" + name;
    }
    ASSERT_FALSE(tailPath.empty());
    {
        std::ofstream out(tailPath, std::ios::binary | std::ios::app);
        out << "deadbeef {\"key\":\"torn\",\"rec";
    }
    std::remove((dir + "/CLEAN").c_str());

    ResultStore store;
    ASSERT_TRUE(store.open(options()));
    EXPECT_TRUE(store.stats().tornTail);
    EXPECT_TRUE(store.stats().recovered);
    EXPECT_EQ(store.stats().corruptFrames, 0u); // torn != corrupt
    EXPECT_EQ(store.size(), 3u);
    JsonValue out;
    EXPECT_FALSE(store.get("torn", out));
    EXPECT_TRUE(store.close());
}

TEST_F(ResultStoreTest, CorruptInteriorFrameIsQuarantined)
{
    seed(3);
    // Flip a byte inside the middle record's JSON.
    std::string tailPath;
    for (const std::string &name : listFiles()) {
        if (name.rfind("tail-", 0) == 0)
            tailPath = dir + "/" + name;
    }
    ASSERT_FALSE(tailPath.empty());
    std::string content;
    {
        std::ifstream in(tailPath, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        content = buffer.str();
    }
    size_t key1 = content.find("key1");
    ASSERT_NE(key1, std::string::npos);
    content[key1 + 3] = '?';
    {
        std::ofstream out(tailPath, std::ios::binary | std::ios::trunc);
        out << content;
    }

    ResultStore store;
    ASSERT_TRUE(store.open(options()));
    EXPECT_EQ(store.stats().corruptFrames, 1u);
    EXPECT_FALSE(store.stats().tornTail);
    EXPECT_EQ(store.size(), 2u);
    JsonValue out;
    EXPECT_TRUE(store.get("key0", out));
    EXPECT_FALSE(store.get("key1", out));
    EXPECT_TRUE(store.get("key2", out));
    // The dropped frame is preserved for forensics, not discarded.
    ASSERT_TRUE(fileExists(kStoreQuarantineFile));
    std::ifstream sidecar(dir + "/" + kStoreQuarantineFile);
    std::string row;
    ASSERT_TRUE(std::getline(sidecar, row));
    JsonValue parsed;
    ASSERT_TRUE(JsonValue::parse(row, parsed));
    EXPECT_NE(parsed.find("reason"), nullptr);
    EXPECT_NE(parsed.find("raw"), nullptr);
    EXPECT_TRUE(store.close());
}

TEST_F(ResultStoreTest, SegmentRotation)
{
    ResultStore::Options opts = options();
    opts.maxSegmentBytes = 256; // force a rotation every few puts
    ResultStore store;
    ASSERT_TRUE(store.open(opts));
    for (uint64_t i = 0; i < 20; ++i)
        ASSERT_TRUE(store.put("key" + std::to_string(i), record(i)));
    ASSERT_TRUE(store.close());

    size_t tailCount = 0;
    for (const std::string &name : listFiles()) {
        if (name.rfind("tail-", 0) == 0)
            ++tailCount;
    }
    EXPECT_GT(tailCount, 1u);

    ResultStore reopened;
    ASSERT_TRUE(reopened.open(options()));
    EXPECT_EQ(reopened.size(), 20u);
    EXPECT_GT(reopened.stats().segmentsLoaded, 1u);
    JsonValue out;
    ASSERT_TRUE(reopened.get("key19", out));
    EXPECT_EQ(out, record(19));
    EXPECT_TRUE(reopened.close());
}

TEST_F(ResultStoreTest, CompactionFoldsSegments)
{
    ResultStore::Options opts = options();
    opts.maxSegmentBytes = 256;
    ResultStore store;
    ASSERT_TRUE(store.open(opts));
    for (uint64_t i = 0; i < 12; ++i)
        ASSERT_TRUE(store.put("key" + std::to_string(i), record(i)));
    ASSERT_TRUE(store.compact());
    EXPECT_EQ(store.stats().generation, 2u);
    EXPECT_EQ(store.stats().compactions, 1u);
    EXPECT_EQ(store.size(), 12u);

    // Only the new base remains on disk.
    size_t baseCount = 0;
    size_t tailCount = 0;
    for (const std::string &name : listFiles()) {
        if (name.rfind("base-", 0) == 0)
            ++baseCount;
        if (name.rfind("tail-", 0) == 0)
            ++tailCount;
    }
    EXPECT_EQ(baseCount, 1u);
    EXPECT_EQ(tailCount, 0u);
    EXPECT_TRUE(fileExists("base-2.log"));

    // The store accepts appends after compaction...
    ASSERT_TRUE(store.put("after", record(99)));
    EXPECT_TRUE(fileExists("tail-2-1.log"));
    ASSERT_TRUE(store.close());

    // ...and a reopen sees compacted + appended records.
    ResultStore reopened;
    ASSERT_TRUE(reopened.open(options()));
    EXPECT_EQ(reopened.size(), 13u);
    EXPECT_EQ(reopened.stats().generation, 2u);
    JsonValue out;
    ASSERT_TRUE(reopened.get("after", out));
    EXPECT_EQ(out, record(99));
    EXPECT_TRUE(reopened.close());
}

TEST_F(ResultStoreTest, ForEachVisitsKeySorted)
{
    seed(3);
    ResultStore store;
    ASSERT_TRUE(store.open(options()));
    std::vector<std::string> keys;
    store.forEach([&](const std::string &key, const JsonValue &) {
        keys.push_back(key);
    });
    EXPECT_EQ(keys, (std::vector<std::string>{"key0", "key1", "key2"}));
    EXPECT_TRUE(store.close());
}

TEST_F(ResultStoreTest, InjectedEnospcFailsCleanly)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("enospc@1", injector));
    ResultStore::Options opts = options();
    opts.injector = &injector;
    ResultStore store;
    ASSERT_TRUE(store.open(opts));
    EXPECT_TRUE(store.put("a", record(1)));
    std::string error;
    EXPECT_FALSE(store.put("b", record(2), &error));
    EXPECT_NE(error.find("disk full"), std::string::npos);
    // The store stays usable; the failed key can be retried.
    EXPECT_TRUE(store.put("b", record(2)));
    EXPECT_TRUE(store.put("c", record(3)));
    ASSERT_TRUE(store.close());

    ResultStore reopened;
    ASSERT_TRUE(reopened.open(options()));
    EXPECT_EQ(reopened.size(), 3u);
    EXPECT_EQ(reopened.stats().corruptFrames, 0u);
    EXPECT_TRUE(reopened.close());
}

TEST_F(ResultStoreTest, InjectedShortWriteResyncs)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("shortwrite@1", injector));
    ResultStore::Options opts = options();
    opts.injector = &injector;
    ResultStore store;
    ASSERT_TRUE(store.open(opts));
    EXPECT_TRUE(store.put("a", record(1)));
    std::string error;
    EXPECT_FALSE(store.put("b", record(2), &error));
    EXPECT_NE(error.find("short write"), std::string::npos);
    // The next append resyncs past the torn prefix.
    EXPECT_TRUE(store.put("b", record(2)));
    ASSERT_TRUE(store.close());

    ResultStore reopened;
    ASSERT_TRUE(reopened.open(options()));
    EXPECT_EQ(reopened.size(), 2u);
    // The torn prefix became one quarantined interior frame.
    EXPECT_EQ(reopened.stats().corruptFrames, 1u);
    JsonValue out;
    ASSERT_TRUE(reopened.get("b", out));
    EXPECT_EQ(out, record(2));
    EXPECT_TRUE(reopened.close());
}

using ResultStoreDeathTest = ResultStoreTest;

TEST_F(ResultStoreDeathTest, InjectedTearLosesOnlyInFlightPut)
{
    seed(0);
    EXPECT_EXIT(
        {
            FaultInjector injector;
            FaultInjector::parse("tear@1", injector);
            ResultStore::Options opts = options();
            opts.injector = &injector;
            ResultStore store;
            store.open(opts);
            store.put("a", record(1));
            store.put("b", record(2)); // tears + dies
        },
        ::testing::ExitedWithCode(137), "");

    ResultStore store;
    ASSERT_TRUE(store.open(options()));
    EXPECT_TRUE(store.stats().recovered);
    EXPECT_TRUE(store.stats().tornTail);
    EXPECT_EQ(store.size(), 1u);
    JsonValue out;
    EXPECT_TRUE(store.get("a", out));
    EXPECT_FALSE(store.get("b", out));
    EXPECT_TRUE(store.close());
}

TEST_F(ResultStoreDeathTest, InjectedCrashAfterPutKeepsRecord)
{
    seed(0);
    EXPECT_EXIT(
        {
            FaultInjector injector;
            FaultInjector::parse("crash@1", injector);
            ResultStore::Options opts = options();
            opts.injector = &injector;
            ResultStore store;
            store.open(opts);
            store.put("a", record(1));
            store.put("b", record(2)); // durable, then dies unacked
        },
        ::testing::ExitedWithCode(137), "");

    ResultStore store;
    ASSERT_TRUE(store.open(options()));
    EXPECT_TRUE(store.stats().recovered);
    EXPECT_EQ(store.size(), 2u);
    JsonValue out;
    EXPECT_TRUE(store.get("b", out)); // the unacked put survived
    EXPECT_TRUE(store.close());
}

/** Crash a compaction at @p point over a 6-record store. */
void
crashCompaction(const std::string &dir,
                ResultStore::Options::CompactCrash point)
{
    ResultStore::Options opts;
    opts.dir = dir;
    opts.testCompactCrash = point;
    ResultStore store;
    store.open(opts);
    store.compact();
}

TEST_F(ResultStoreDeathTest, CompactionCrashBeforeCommit)
{
    seed(6);
    EXPECT_EXIT(crashCompaction(
                    dir, ResultStore::Options::CompactCrash::BeforeCommit),
                ::testing::ExitedWithCode(137), "");

    // The tmp (no commit frame) is discarded; generation 1 is intact.
    ResultStore store;
    ASSERT_TRUE(store.open(options()));
    EXPECT_TRUE(store.stats().recovered);
    EXPECT_EQ(store.size(), 6u);
    EXPECT_EQ(store.stats().generation, 1u);
    EXPECT_FALSE(fileExists("base-2.tmp"));
    // The aborted generation number is burned, never reused.
    ASSERT_TRUE(store.compact());
    EXPECT_EQ(store.stats().generation, 3u);
    EXPECT_TRUE(store.close());
}

TEST_F(ResultStoreDeathTest, CompactionCrashBeforeRename)
{
    seed(6);
    EXPECT_EXIT(crashCompaction(
                    dir, ResultStore::Options::CompactCrash::BeforeRename),
                ::testing::ExitedWithCode(137), "");

    // The tmp is complete but never renamed: still discarded.
    ResultStore store;
    ASSERT_TRUE(store.open(options()));
    EXPECT_EQ(store.size(), 6u);
    EXPECT_EQ(store.stats().generation, 1u);
    EXPECT_FALSE(fileExists("base-2.tmp"));
    EXPECT_FALSE(fileExists("base-2.log"));
    ASSERT_TRUE(store.compact());
    EXPECT_EQ(store.stats().generation, 3u);
    EXPECT_TRUE(store.close());
}

TEST_F(ResultStoreDeathTest, CompactionCrashBeforeCleanup)
{
    seed(6);
    EXPECT_EXIT(crashCompaction(
                    dir,
                    ResultStore::Options::CompactCrash::BeforeCleanup),
                ::testing::ExitedWithCode(137), "");

    // The new base is durable; the stale generation is swept at open.
    ResultStore store;
    ASSERT_TRUE(store.open(options()));
    EXPECT_EQ(store.size(), 6u);
    EXPECT_EQ(store.stats().generation, 2u);
    for (const std::string &name : listFiles()) {
        EXPECT_EQ(name.rfind("tail-1-", 0), std::string::npos)
            << "stale segment survived: " << name;
        EXPECT_NE(name, "base-1.log");
    }
    JsonValue out;
    EXPECT_TRUE(store.get("key5", out));
    EXPECT_TRUE(store.close());
}

} // namespace
