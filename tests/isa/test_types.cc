/** @file Unit tests for isa/types.hh classification predicates. */

#include "isa/types.hh"

#include <gtest/gtest.h>

#include "isa/instruction.hh"

namespace specfetch {
namespace {

TEST(InstClass, ControlPredicate)
{
    EXPECT_FALSE(isControl(InstClass::Plain));
    EXPECT_TRUE(isControl(InstClass::CondBranch));
    EXPECT_TRUE(isControl(InstClass::Jump));
    EXPECT_TRUE(isControl(InstClass::Call));
    EXPECT_TRUE(isControl(InstClass::Return));
    EXPECT_TRUE(isControl(InstClass::IndirectJump));
}

TEST(InstClass, StaticTargetPredicate)
{
    EXPECT_FALSE(hasStaticTarget(InstClass::Plain));
    EXPECT_TRUE(hasStaticTarget(InstClass::CondBranch));
    EXPECT_TRUE(hasStaticTarget(InstClass::Jump));
    EXPECT_TRUE(hasStaticTarget(InstClass::Call));
    EXPECT_FALSE(hasStaticTarget(InstClass::Return));
    EXPECT_FALSE(hasStaticTarget(InstClass::IndirectJump));
}

TEST(InstClass, IndirectPredicate)
{
    EXPECT_TRUE(isIndirect(InstClass::Return));
    EXPECT_TRUE(isIndirect(InstClass::IndirectJump));
    EXPECT_FALSE(isIndirect(InstClass::CondBranch));
    EXPECT_FALSE(isIndirect(InstClass::Jump));
}

TEST(InstClass, ConditionalPredicate)
{
    EXPECT_TRUE(isConditional(InstClass::CondBranch));
    EXPECT_FALSE(isConditional(InstClass::Jump));
}

TEST(InstClass, Names)
{
    EXPECT_EQ(toString(InstClass::Plain), "plain");
    EXPECT_EQ(toString(InstClass::CondBranch), "cond");
    EXPECT_EQ(toString(InstClass::Return), "return");
}

TEST(DynInst, NextPcFallThrough)
{
    DynInst inst{0x1000, InstClass::Plain, false, 0};
    EXPECT_EQ(inst.nextPc(), 0x1004u);
}

TEST(DynInst, NextPcNotTakenBranch)
{
    DynInst inst{0x1000, InstClass::CondBranch, false, 0x2000};
    EXPECT_EQ(inst.nextPc(), 0x1004u);
}

TEST(DynInst, NextPcTakenBranch)
{
    DynInst inst{0x1000, InstClass::CondBranch, true, 0x2000};
    EXPECT_EQ(inst.nextPc(), 0x2000u);
}

TEST(DynInst, NextPcUnconditional)
{
    DynInst jump{0x1000, InstClass::Jump, true, 0x3000};
    EXPECT_EQ(jump.nextPc(), 0x3000u);
    DynInst ret{0x1000, InstClass::Return, true, 0x4000};
    EXPECT_EQ(ret.nextPc(), 0x4000u);
}

} // namespace
} // namespace specfetch
