/** @file Unit tests for isa/program_image.hh. */

#include "isa/program_image.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(ProgramImage, SetAndDecode)
{
    ProgramImage image(0x1000, 4);
    image.set(0x1004, StaticInst{InstClass::Jump, 0x1000});
    StaticInst inst = image.at(0x1004);
    EXPECT_EQ(inst.cls, InstClass::Jump);
    EXPECT_EQ(inst.target, 0x1000u);
}

TEST(ProgramImage, DefaultsToPlain)
{
    ProgramImage image(0x1000, 4);
    EXPECT_EQ(image.at(0x1000).cls, InstClass::Plain);
}

TEST(ProgramImage, OutsideImageDecodesPlain)
{
    ProgramImage image(0x1000, 4);
    EXPECT_EQ(image.at(0x0).cls, InstClass::Plain);
    EXPECT_EQ(image.at(0x1010).cls, InstClass::Plain);
    EXPECT_EQ(image.at(0xffffffff0000ull).cls, InstClass::Plain);
}

TEST(ProgramImage, MisalignedDecodesPlain)
{
    ProgramImage image(0x1000, 4);
    image.set(0x1004, StaticInst{InstClass::Jump, 0});
    EXPECT_EQ(image.at(0x1005).cls, InstClass::Plain);
}

TEST(ProgramImage, Bounds)
{
    ProgramImage image(0x1000, 3);
    EXPECT_EQ(image.base(), 0x1000u);
    EXPECT_EQ(image.end(), 0x100cu);
    EXPECT_EQ(image.size(), 3u);
    EXPECT_TRUE(image.contains(0x1000));
    EXPECT_TRUE(image.contains(0x1008));
    EXPECT_FALSE(image.contains(0x100c));
    EXPECT_FALSE(image.contains(0xfff));
}

TEST(ProgramImage, IndexAddressRoundTrip)
{
    ProgramImage image(0x2000, 8);
    for (size_t i = 0; i < 8; ++i) {
        Addr addr = image.addrOf(i);
        EXPECT_EQ(image.indexOf(addr), i);
    }
}

TEST(ProgramImage, ControlCount)
{
    ProgramImage image(0x1000, 8);
    EXPECT_EQ(image.controlCount(), 0u);
    image.set(0x1000, StaticInst{InstClass::CondBranch, 0x1010});
    image.set(0x1010, StaticInst{InstClass::Return, 0});
    EXPECT_EQ(image.controlCount(), 2u);
}

TEST(ProgramImageDeath, MisalignedBasePanics)
{
    EXPECT_DEATH({ ProgramImage image(0x1001, 4); }, "misaligned");
}

TEST(ProgramImageDeath, IndexOfOutsidePanics)
{
    ProgramImage image(0x1000, 4);
    EXPECT_DEATH(image.indexOf(0x2000), "outside");
}

} // namespace
} // namespace specfetch
