/**
 * @file
 * Feature-combination matrix: every extension (L2, victim cache,
 * memory channels, each prefetch kind, each PHT scheme, RAS,
 * reordering) composed together must keep the slot ledger balanced,
 * stay deterministic, and not corrupt the baseline semantics.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "workload/registry.hh"
#include "workload/reorder.hh"

namespace specfetch {
namespace {

const Workload &
testWorkload()
{
    static const Workload w = buildWorkload(getProfile("groff"));
    return w;
}

class FeatureMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
  protected:
    SimConfig
    makeConfig() const
    {
        SimConfig config;
        config.instructionBudget = 80'000;
        config.policy =
            std::get<0>(GetParam()) == 0 ? FetchPolicy::Resume
                                         : FetchPolicy::Pessimistic;
        switch (std::get<1>(GetParam())) {
          case 0:
            break;
          case 1:
            config.prefetchKind = PrefetchKind::NextLine;
            break;
          case 2:
            config.prefetchKind = PrefetchKind::Combined;
            break;
          case 3:
            config.prefetchKind = PrefetchKind::Stream;
            break;
        }
        switch (std::get<2>(GetParam())) {
          case 0:
            break;
          case 1:
            config.l2Enabled = true;
            break;
          case 2:
            config.victimEntries = 4;
            break;
          case 3:
            config.l2Enabled = true;
            config.victimEntries = 4;
            config.memoryChannels = 2;
            config.predictor.rasDepth = 8;
            config.predictor.phtIndexing = PhtIndexing::Combining;
            break;
        }
        return config;
    }
};

TEST_P(FeatureMatrixTest, LedgerBalances)
{
    SimResults r = runSimulation(testWorkload(), makeConfig());
    EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
              r.instructions + r.penalty.totalSlots());
    EXPECT_EQ(r.instructions, 80'000u);
}

TEST_P(FeatureMatrixTest, Deterministic)
{
    SimResults a = runSimulation(testWorkload(), makeConfig());
    SimResults b = runSimulation(testWorkload(), makeConfig());
    EXPECT_EQ(a.finalSlot, b.finalSlot);
    EXPECT_EQ(a.demandMisses, b.demandMisses);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FeatureMatrixTest,
    ::testing::Combine(::testing::Range(0, 2),    // policy
                       ::testing::Range(0, 4),    // prefetch kind
                       ::testing::Range(0, 4)),   // memory features
    [](const auto &param_info) {
        return "p" + std::to_string(std::get<0>(param_info.param)) + "_pf" +
               std::to_string(std::get<1>(param_info.param)) + "_m" +
               std::to_string(std::get<2>(param_info.param));
    });

TEST(FeatureMatrix, ReorderedWorkloadComposesWithEverything)
{
    Workload reordered =
        reorderWorkload(testWorkload(), 7, 400'000);
    SimConfig config;
    config.instructionBudget = 80'000;
    config.policy = FetchPolicy::Resume;
    config.prefetchKind = PrefetchKind::Combined;
    config.l2Enabled = true;
    config.victimEntries = 4;
    SimResults r = runSimulation(reordered, config);
    EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
              r.instructions + r.penalty.totalSlots());
}

} // namespace
} // namespace specfetch
