/**
 * @file
 * Seed-robustness properties: the paper's headline orderings must not
 * be artifacts of one dynamic instance. Sweeps (benchmark × run seed)
 * and re-checks the central claims, plus config-plumbing equivalences.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "workload/registry.hh"

namespace specfetch {
namespace {

class SeedTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>>
{
  protected:
    SimResults
    run(FetchPolicy policy, unsigned penalty = 5, bool prefetch = false)
    {
        SimConfig config;
        config.instructionBudget = 150'000;
        config.policy = policy;
        config.missPenaltyCycles = penalty;
        config.nextLinePrefetch = prefetch;
        config.runSeed = std::get<1>(GetParam());
        static std::map<std::string, Workload> cache;
        const std::string &name = std::get<0>(GetParam());
        auto it = cache.find(name);
        if (it == cache.end())
            it = cache.emplace(name, buildWorkload(getProfile(name)))
                     .first;
        return runSimulation(it->second, config);
    }
};

TEST_P(SeedTest, BaselineOrderingHolds)
{
    SimResults optimistic = run(FetchPolicy::Optimistic);
    SimResults resume = run(FetchPolicy::Resume);
    SimResults pess = run(FetchPolicy::Pessimistic);
    EXPECT_LT(optimistic.ispi(), pess.ispi());
    EXPECT_LE(resume.ispi(), optimistic.ispi() * 1.03);
}

TEST_P(SeedTest, LedgerBalancesForEverySeed)
{
    for (FetchPolicy policy : allPolicies()) {
        SimResults r = run(policy);
        EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
                  r.instructions + r.penalty.totalSlots())
            << toString(policy);
    }
}

TEST_P(SeedTest, PrefetchHelpsAtBaselinePenalty)
{
    SimResults off = run(FetchPolicy::Resume, 5, false);
    SimResults on = run(FetchPolicy::Resume, 5, true);
    EXPECT_LT(on.ispi(), off.ispi() * 1.03);
    EXPECT_GT(on.memoryTransactions(), off.memoryTransactions());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SeedTest,
    ::testing::Combine(::testing::Values("gcc", "groff"),
                       ::testing::Values(uint64_t{42}, uint64_t{7},
                                         uint64_t{20260706})),
    [](const auto &param_info) {
        return std::get<0>(param_info.param) + "_seed" +
               std::to_string(std::get<1>(param_info.param));
    });

// ---- Config plumbing equivalences --------------------------------------

TEST(ConfigPlumbing, BoolAndKindNextLineAgree)
{
    Workload w = buildWorkload(getProfile("li"));
    SimConfig via_bool;
    via_bool.instructionBudget = 100'000;
    via_bool.policy = FetchPolicy::Resume;
    via_bool.nextLinePrefetch = true;

    SimConfig via_kind = via_bool;
    via_kind.nextLinePrefetch = false;
    via_kind.prefetchKind = PrefetchKind::NextLine;

    SimResults a = runSimulation(w, via_bool);
    SimResults b = runSimulation(w, via_kind);
    EXPECT_EQ(a.finalSlot, b.finalSlot);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
}

TEST(ConfigPlumbing, KindOverridesBool)
{
    SimConfig config;
    config.nextLinePrefetch = true;
    config.prefetchKind = PrefetchKind::Target;
    EXPECT_EQ(config.effectivePrefetchKind(), PrefetchKind::Target);
    config.prefetchKind = PrefetchKind::None;
    EXPECT_EQ(config.effectivePrefetchKind(), PrefetchKind::NextLine);
    config.nextLinePrefetch = false;
    EXPECT_EQ(config.effectivePrefetchKind(), PrefetchKind::None);
}

TEST(ConfigPlumbing, SingleChannelMatchesDefaultExactly)
{
    Workload w = buildWorkload(getProfile("idl"));
    SimConfig config;
    config.instructionBudget = 100'000;
    config.policy = FetchPolicy::Resume;
    SimResults a = runSimulation(w, config);
    config.memoryChannels = 1;    // explicit = default
    SimResults b = runSimulation(w, config);
    EXPECT_EQ(a.finalSlot, b.finalSlot);
}

TEST(ConfigPlumbing, MoreChannelsNeverHurt)
{
    Workload w = buildWorkload(getProfile("groff"));
    SimConfig config;
    config.instructionBudget = 150'000;
    config.policy = FetchPolicy::Resume;
    config.nextLinePrefetch = true;
    config.missPenaltyCycles = 20;
    SimResults one = runSimulation(w, config);
    config.memoryChannels = 2;
    SimResults two = runSimulation(w, config);
    EXPECT_LE(two.penalty.slots(PenaltyKind::Bus),
              one.penalty.slots(PenaltyKind::Bus));
    EXPECT_LE(two.ispi(), one.ispi() * 1.01);
}

// ---- Stats dump --------------------------------------------------------

TEST(StatsDump, ContainsEveryGroup)
{
    SimConfig config;
    config.instructionBudget = 50'000;
    SimResults r = runBenchmark("tex", config);
    std::string dump = r.statsDump();
    for (const char *needle :
         {"sim.frontend.instructions", "sim.frontend.ispi",
          "sim.branch.cond_accuracy", "sim.icache.demand_misses",
          "sim.icache.memory_transactions",
          "sim.frontend.ispi_rt_icache"}) {
        EXPECT_NE(dump.find(needle), std::string::npos) << needle;
    }
}

TEST(StatsDump, ValuesMatchResultFields)
{
    SimConfig config;
    config.instructionBudget = 50'000;
    SimResults r = runBenchmark("tex", config);
    std::string dump = r.statsDump();
    EXPECT_NE(dump.find(std::to_string(r.instructions)),
              std::string::npos);
    EXPECT_NE(dump.find(std::to_string(r.demandMisses)),
              std::string::npos);
}

} // namespace
} // namespace specfetch
