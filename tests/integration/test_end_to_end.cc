/**
 * @file
 * End-to-end integration: full pipeline (profile -> build -> layout ->
 * execute -> simulate -> classify) across all thirteen benchmarks,
 * plus the sweep driver.
 */

#include <gtest/gtest.h>

#include "core/miss_classifier.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "workload/registry.hh"

namespace specfetch {
namespace {

TEST(EndToEnd, EveryBenchmarkRunsEveryPolicy)
{
    SimConfig config;
    config.instructionBudget = 60'000;
    std::vector<SimResults> results =
        runPolicyGrid(benchmarkNames(), config, allPolicies());
    ASSERT_EQ(results.size(), 13u * 5u);
    for (const SimResults &r : results) {
        EXPECT_EQ(r.instructions, 60'000u) << r.workload;
        EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
                  r.instructions + r.penalty.totalSlots())
            << r.workload << "/" << toString(r.policy);
        EXPECT_FALSE(r.workload.empty());
    }
}

TEST(EndToEnd, SweepPreservesSubmissionOrder)
{
    std::vector<RunSpec> specs;
    SimConfig config;
    config.instructionBudget = 30'000;
    for (const char *bench : {"li", "db++", "idl"}) {
        for (FetchPolicy policy :
             {FetchPolicy::Oracle, FetchPolicy::Resume}) {
            RunSpec spec{bench, config};
            spec.config.policy = policy;
            specs.push_back(spec);
        }
    }
    std::vector<SimResults> results = runSweep(specs);
    ASSERT_EQ(results.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(results[i].workload, specs[i].benchmark) << i;
        EXPECT_EQ(results[i].policy, specs[i].config.policy) << i;
    }
}

TEST(EndToEnd, ParallelAndSerialSweepsAgree)
{
    std::vector<RunSpec> specs;
    SimConfig config;
    config.instructionBudget = 30'000;
    for (FetchPolicy policy : allPolicies()) {
        RunSpec spec{"li", config};
        spec.config.policy = policy;
        specs.push_back(spec);
    }
    std::vector<SimResults> serial = runSweep(specs, 1);
    std::vector<SimResults> parallel = runSweep(specs, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].finalSlot, parallel[i].finalSlot) << i;
        EXPECT_EQ(serial[i].demandMisses, parallel[i].demandMisses)
            << i;
    }
}

TEST(EndToEnd, RunBenchmarkConvenienceWrapper)
{
    SimConfig config;
    config.instructionBudget = 30'000;
    config.policy = FetchPolicy::Resume;
    SimResults r = runBenchmark("tex", config);
    EXPECT_EQ(r.workload, "tex");
    EXPECT_EQ(r.instructions, 30'000u);
}

TEST(EndToEnd, ClassificationForAllBenchmarks)
{
    SimConfig config;
    config.instructionBudget = 60'000;
    for (const std::string &name : benchmarkNames()) {
        Workload w = buildWorkload(getProfile(name));
        Classification c = classifyMisses(w, config);
        EXPECT_EQ(c.instructions, 60'000u) << name;
        EXPECT_GE(c.trafficRatio(), 1.0) << name;
        // Sanity: categories are disjoint and bounded by accesses.
        EXPECT_LE(c.bothMiss + c.specPollute + c.specPrefetch,
                  c.instructions)
            << name;
    }
}

TEST(EndToEnd, SummaryRendersForHumanConsumption)
{
    SimConfig config;
    config.instructionBudget = 30'000;
    SimResults r = runBenchmark("gcc", config);
    std::string text = r.summary();
    EXPECT_NE(text.find("gcc"), std::string::npos);
    EXPECT_NE(text.find("ISPI"), std::string::npos);
    EXPECT_NE(text.find("rt_icache"), std::string::npos);
    EXPECT_NE(text.find("miss rate"), std::string::npos);
}

TEST(EndToEnd, BenchBudgetEnvOverride)
{
    unsetenv("SPECFETCH_BUDGET");
    EXPECT_EQ(benchBudget(123), 123u);
    setenv("SPECFETCH_BUDGET", "2M", 1);
    EXPECT_EQ(benchBudget(123), 2'000'000u);
    setenv("SPECFETCH_BUDGET", "garbage", 1);
    EXPECT_EQ(benchBudget(123), 123u);
    unsetenv("SPECFETCH_BUDGET");
}

} // namespace
} // namespace specfetch
