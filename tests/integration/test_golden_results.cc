/**
 * @file
 * Golden-file regression suite: every workload profile runs under
 * Oracle, Resume, and Pessimistic at a fixed small budget; the
 * exported schema-v1 run records must match the checked-in files in
 * tests/golden/ member-for-member, integer counters exact, no
 * tolerances. Any intentional change to the simulator's numeric
 * behaviour (or to the record schema) must regenerate them:
 *
 *   cmake --build build -j --target test_integration
 *   SPECFETCH_REGEN_GOLDEN=1 ./build/tests/test_integration \
 *       --gtest_filter='GoldenResults.*'
 *
 * and the diff reviewed like any other code change. The suite runs
 * both serial and parallel sweeps against the same files, so it also
 * pins runSweep's thread-count independence.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "core/sweep.hh"
#include "report/record.hh"
#include "report/report.hh"
#include "workload/registry.hh"

using namespace specfetch;

namespace {

/** Fixed, CI-friendly budget; golden files are bound to this value. */
constexpr uint64_t kGoldenBudget = 100'000;

const std::vector<FetchPolicy> &
goldenPolicies()
{
    static const std::vector<FetchPolicy> policies{
        FetchPolicy::Oracle, FetchPolicy::Resume,
        FetchPolicy::Pessimistic};
    return policies;
}

std::string
goldenDir()
{
#ifdef SPECFETCH_GOLDEN_DIR
    return SPECFETCH_GOLDEN_DIR;
#else
    return "tests/golden";
#endif
}

std::string
goldenPath(const std::string &profile)
{
    return goldenDir() + "/" + profile + ".json";
}

bool
regenRequested()
{
    const char *env = std::getenv("SPECFETCH_REGEN_GOLDEN");
    return env && *env && std::string(env) != "0";
}

/** All specs, profile-major then policy, the golden file order. */
std::vector<RunSpec>
goldenSpecs()
{
    SimConfig base;
    base.instructionBudget = kGoldenBudget;
    std::vector<RunSpec> specs;
    for (const std::string &name : benchmarkNames()) {
        for (FetchPolicy policy : goldenPolicies()) {
            SimConfig config = base;
            config.policy = policy;
            specs.push_back(RunSpec{name, config});
        }
    }
    return specs;
}

/** Run the grid and serialize one timing-free record per run. */
std::vector<JsonValue>
buildRecords(unsigned parallelism)
{
    std::vector<RunSpec> specs = goldenSpecs();
    std::vector<SimResults> results = runSweep(specs, parallelism);
    std::vector<JsonValue> records;
    records.reserve(results.size());
    for (size_t i = 0; i < results.size(); ++i)
        records.push_back(makeRunRecord(results[i], specs[i].config));
    return records;
}

void
regenerate(const std::vector<JsonValue> &records)
{
    size_t perProfile = goldenPolicies().size();
    const auto &names = benchmarkNames();
    for (size_t b = 0; b < names.size(); ++b) {
        std::string path = goldenPath(names[b]);
        std::ofstream out(path, std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        for (size_t p = 0; p < perProfile; ++p)
            out << records[b * perProfile + p].dump() << '\n';
    }
}

void
compareAgainstGolden(const std::vector<JsonValue> &records,
                     const char *mode)
{
    size_t perProfile = goldenPolicies().size();
    const auto &names = benchmarkNames();
    ASSERT_EQ(records.size(), names.size() * perProfile);

    for (size_t b = 0; b < names.size(); ++b) {
        std::string path = goldenPath(names[b]);
        std::vector<JsonValue> golden;
        std::string error;
        ASSERT_TRUE(readJsonl(path, golden, &error))
            << error << " — regenerate with SPECFETCH_REGEN_GOLDEN=1 "
            << "(see file header)";
        ASSERT_EQ(golden.size(), perProfile) << "in " << path;

        for (size_t p = 0; p < perProfile; ++p) {
            const JsonValue &fresh = records[b * perProfile + p];
            const JsonValue &expected = golden[p];
            // Timing is the one nondeterministic member; golden
            // records are written without it, but strip defensively.
            JsonValue cleaned = fresh;
            cleaned.remove("timing");
            EXPECT_EQ(cleaned, expected)
                << mode << " sweep diverged from " << path << " ("
                << toString(goldenPolicies()[p]) << ")\n  expected: "
                << expected.dump() << "\n  actual:   "
                << cleaned.dump();
        }
    }
}

} // namespace

TEST(GoldenResults, SerialSweepMatchesGolden)
{
    std::vector<JsonValue> records = buildRecords(/*parallelism=*/1);
    if (regenRequested()) {
        regenerate(records);
        GTEST_SKIP() << "regenerated golden files in " << goldenDir();
    }
    compareAgainstGolden(records, "serial");
}

TEST(GoldenResults, ParallelSweepMatchesGolden)
{
    if (regenRequested())
        GTEST_SKIP() << "regeneration uses the serial sweep";
    std::vector<JsonValue> records = buildRecords(/*parallelism=*/4);
    compareAgainstGolden(records, "parallel");
}

TEST(GoldenResults, GoldenFilesAreValidSchemaRecords)
{
    if (regenRequested())
        GTEST_SKIP();
    for (const std::string &name : benchmarkNames()) {
        std::vector<JsonValue> golden;
        std::string error;
        ASSERT_TRUE(readJsonl(goldenPath(name), golden, &error)) << error;
        for (const JsonValue &record : golden) {
            ASSERT_NE(record.find("schema_version"), nullptr);
            EXPECT_EQ(record.find("schema_version")->asUint(),
                      kReportSchemaVersion);
            ASSERT_NE(record.find("record"), nullptr);
            EXPECT_EQ(record.find("record")->asString(), "run");
            EXPECT_EQ(record.find("workload")->asString(), name);
            ASSERT_NE(record.find("counters"), nullptr);
            ASSERT_NE(record.find("config"), nullptr);
            EXPECT_EQ(record.find("config")
                          ->find("instruction_budget")
                          ->asUint(),
                      kGoldenBudget);
        }
    }
}
