/**
 * @file
 * Property-based tests: paper-level invariants checked across every
 * benchmark × policy (parameterized sweeps). These are the "does the
 * system reproduce the paper's structure" tests, run at reduced
 * budgets.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "workload/registry.hh"

namespace specfetch {
namespace {

constexpr uint64_t kBudget = 200'000;

SimConfig
baseConfig()
{
    SimConfig config;
    config.instructionBudget = kBudget;
    return config;
}

/** Cache of built workloads shared across tests in this binary. */
const Workload &
workloadFor(const std::string &name)
{
    static std::map<std::string, Workload> cache;
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, buildWorkload(getProfile(name))).first;
    return it->second;
}

SimResults
run(const std::string &bench, FetchPolicy policy,
    unsigned depth = 4, unsigned penalty = 5, bool prefetch = false)
{
    SimConfig config = baseConfig();
    config.policy = policy;
    config.maxUnresolved = depth;
    config.missPenaltyCycles = penalty;
    config.nextLinePrefetch = prefetch;
    return runSimulation(workloadFor(bench), config);
}

// ---- Per-benchmark × per-policy invariants ----------------------------

struct Combo
{
    std::string bench;
    FetchPolicy policy;
};

class PolicyComboTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
  protected:
    std::string bench() const { return std::get<0>(GetParam()); }
    FetchPolicy
    policy() const
    {
        return allPolicies()[std::get<1>(GetParam())];
    }
};

TEST_P(PolicyComboTest, SlotLedgerBalances)
{
    SimResults r = run(bench(), policy());
    EXPECT_EQ(static_cast<uint64_t>(r.finalSlot),
              r.instructions + r.penalty.totalSlots());
}

TEST_P(PolicyComboTest, ComponentZeroingMatchesPolicy)
{
    SimResults r = run(bench(), policy());
    switch (policy()) {
      case FetchPolicy::Oracle:
      case FetchPolicy::Optimistic:
      case FetchPolicy::Resume:
        EXPECT_EQ(r.penalty.slots(PenaltyKind::ForceResolve), 0u);
        break;
      case FetchPolicy::Pessimistic:
      case FetchPolicy::Decode:
        // Conservative policies never block on wrong-path fills...
        break;
    }
    if (policy() == FetchPolicy::Oracle ||
        policy() == FetchPolicy::Pessimistic ||
        policy() == FetchPolicy::Resume) {
        EXPECT_EQ(r.penalty.slots(PenaltyKind::WrongIcache), 0u);
    }
    if (policy() != FetchPolicy::Resume) {
        // Without prefetching, only Resume leaves the bus busy across
        // a redirect.
        EXPECT_EQ(r.penalty.slots(PenaltyKind::Bus), 0u);
    }
    if (policy() == FetchPolicy::Oracle ||
        policy() == FetchPolicy::Pessimistic) {
        EXPECT_EQ(r.wrongFills, 0u);
    }
}

TEST_P(PolicyComboTest, SaneRates)
{
    SimResults r = run(bench(), policy());
    EXPECT_EQ(r.instructions, kBudget);
    EXPECT_GT(r.ispi(), 0.0);
    EXPECT_LT(r.ispi(), 30.0);
    EXPECT_GE(r.condAccuracy(), 0.3);
    EXPECT_LE(r.condAccuracy(), 1.0);
    EXPECT_LE(r.demandMisses, r.demandAccesses);
    EXPECT_LE(r.demandFills, r.demandMisses);
    EXPECT_LE(r.wrongFills, r.wrongMisses);
}

TEST_P(PolicyComboTest, DeterministicRuns)
{
    SimResults a = run(bench(), policy());
    SimResults b = run(bench(), policy());
    EXPECT_EQ(a.finalSlot, b.finalSlot);
    EXPECT_EQ(a.demandMisses, b.demandMisses);
    EXPECT_EQ(a.penalty.totalSlots(), b.penalty.totalSlots());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, PolicyComboTest,
    ::testing::Combine(::testing::Values("doduc", "fpppp", "gcc", "li",
                                         "cfront", "groff", "idl"),
                       ::testing::Range(0, 5)),
    [](const auto &param_info) {
        std::string name = std::get<0>(param_info.param) + "_" +
                           shortName(allPolicies()[std::get<1>(param_info.param)]);
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

// ---- Cross-policy orderings (paper §5) --------------------------------

class BenchTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BenchTest, PessimisticTrafficEqualsOracle)
{
    SimResults oracle = run(GetParam(), FetchPolicy::Oracle);
    SimResults pess = run(GetParam(), FetchPolicy::Pessimistic);
    // Neither services wrong-path misses nor prefetches: traffic is
    // correct-path fills only, and the correct path is shared.
    double rel = std::abs(static_cast<double>(oracle.demandFills) -
                          static_cast<double>(pess.demandFills)) /
                 static_cast<double>(oracle.demandFills);
    EXPECT_LT(rel, 0.02) << GetParam();
}

TEST_P(BenchTest, AggressivePoliciesGenerateMoreTraffic)
{
    SimResults oracle = run(GetParam(), FetchPolicy::Oracle);
    SimResults optimistic = run(GetParam(), FetchPolicy::Optimistic);
    SimResults resume = run(GetParam(), FetchPolicy::Resume);
    EXPECT_GE(optimistic.memoryTransactions(),
              oracle.memoryTransactions());
    EXPECT_GE(resume.memoryTransactions(), oracle.memoryTransactions());
}

TEST_P(BenchTest, ResumeNoWorseThanOptimistic)
{
    SimResults optimistic = run(GetParam(), FetchPolicy::Optimistic);
    SimResults resume = run(GetParam(), FetchPolicy::Resume);
    // Resume only removes stall time relative to Optimistic; allow a
    // whisker of noise from divergent predictor timing.
    EXPECT_LE(resume.ispi(), optimistic.ispi() * 1.03) << GetParam();
}

TEST_P(BenchTest, BaselineOptimisticBeatsPessimistic)
{
    // Paper §5.1.2 headline at the 5-cycle penalty.
    SimResults optimistic = run(GetParam(), FetchPolicy::Optimistic);
    SimResults pess = run(GetParam(), FetchPolicy::Pessimistic);
    EXPECT_LT(optimistic.ispi(), pess.ispi()) << GetParam();
}

TEST_P(BenchTest, DeeperSpeculationHelps)
{
    // Paper Table 5: ISPI falls monotonically with depth, and the
    // 1 -> 2 step is the larger one.
    SimResults d1 = run(GetParam(), FetchPolicy::Oracle, 1);
    SimResults d2 = run(GetParam(), FetchPolicy::Oracle, 2);
    SimResults d4 = run(GetParam(), FetchPolicy::Oracle, 4);
    EXPECT_GT(d1.ispi(), d2.ispi()) << GetParam();
    EXPECT_GE(d2.ispi(), d4.ispi() * 0.999) << GetParam();
    EXPECT_GT(d1.ispi() - d2.ispi(), d2.ispi() - d4.ispi())
        << GetParam();
}

TEST_P(BenchTest, LargerCacheShrinksIspi)
{
    // Paper Table 6 vs Table 5.
    SimConfig small = baseConfig();
    small.policy = FetchPolicy::Resume;
    SimConfig big = small;
    big.icache.sizeBytes = 32 * 1024;
    SimResults r8 = runSimulation(workloadFor(GetParam()), small);
    SimResults r32 = runSimulation(workloadFor(GetParam()), big);
    EXPECT_LT(r32.ispi(), r8.ispi()) << GetParam();
    EXPECT_LT(r32.missRatePercent(), r8.missRatePercent());
}

TEST_P(BenchTest, PrefetchIncreasesTraffic)
{
    // Paper Table 7: prefetching raises memory traffic for every
    // policy.
    for (FetchPolicy policy : {FetchPolicy::Oracle, FetchPolicy::Resume,
                               FetchPolicy::Pessimistic}) {
        SimResults off = run(GetParam(), policy, 4, 5, false);
        SimResults on = run(GetParam(), policy, 4, 5, true);
        EXPECT_GT(on.memoryTransactions(), off.memoryTransactions())
            << GetParam() << "/" << toString(policy);
    }
}

TEST_P(BenchTest, PrefetchHelpsAtSmallPenalty)
{
    // Paper Figure 3: next-line prefetching improves every policy at
    // the 5-cycle penalty (small slack for noise).
    for (FetchPolicy policy : {FetchPolicy::Oracle, FetchPolicy::Resume,
                               FetchPolicy::Pessimistic}) {
        SimResults off = run(GetParam(), policy, 4, 5, false);
        SimResults on = run(GetParam(), policy, 4, 5, true);
        EXPECT_LT(on.ispi(), off.ispi() * 1.02)
            << GetParam() << "/" << toString(policy);
    }
}

TEST_P(BenchTest, LongLatencyFavorsConservative)
{
    // Paper Figure 2 / §5.2.1: at the 20-cycle penalty Pessimistic
    // catches up with (or beats) Optimistic relative to the 5-cycle
    // baseline.
    SimResults opt5 = run(GetParam(), FetchPolicy::Optimistic, 4, 5);
    SimResults pess5 = run(GetParam(), FetchPolicy::Pessimistic, 4, 5);
    SimResults opt20 = run(GetParam(), FetchPolicy::Optimistic, 4, 20);
    SimResults pess20 =
        run(GetParam(), FetchPolicy::Pessimistic, 4, 20);
    double gap5 = pess5.ispi() / opt5.ispi();
    double gap20 = pess20.ispi() / opt20.ispi();
    EXPECT_LT(gap20, gap5) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CrossPolicy, BenchTest,
                         ::testing::Values("gcc", "li", "groff", "idl",
                                           "lic", "ditroff"),
                         [](const auto &param_info) {
                             std::string name = param_info.param;
                             for (char &c : name)
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             return name;
                         });

} // namespace
} // namespace specfetch
