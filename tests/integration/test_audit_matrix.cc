/**
 * @file
 * The paranoid audit matrix: every workload × policy × prefetch cell
 * runs with CheckLevel::Paranoid at the golden budget, so the engine's
 * own auditor (which aborts the process on a violation) re-proves the
 * ISPI decomposition, bus accounting and structural invariants at
 * every checkpoint of every cell. The test body then re-asserts the
 * two paper identities directly from the returned counters, and the
 * Table 4 conservation laws per workload via classifyMisses.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/miss_classifier.hh"
#include "core/simulator.hh"
#include "workload/registry.hh"

namespace specfetch {
namespace {

constexpr uint64_t kBudget = 100'000;

const Workload &
workloadFor(const std::string &name)
{
    static std::map<std::string, Workload> cache;
    auto it = cache.find(name);
    if (it == cache.end())
        it = cache.emplace(name, buildWorkload(getProfile(name))).first;
    return it->second;
}

SimConfig
paranoidConfig()
{
    SimConfig config;
    config.instructionBudget = kBudget;
    config.checkLevel = CheckLevel::Paranoid;
    config.checkpointInterval = 25'000;
    return config;
}

class AuditMatrixTest
    : public ::testing::TestWithParam<std::tuple<std::string, int, bool>>
{
};

TEST_P(AuditMatrixTest, ParanoidRunUpholdsAccountingIdentities)
{
    const auto &[bench, policy_index, prefetch] = GetParam();
    SimConfig config = paranoidConfig();
    config.policy = allPolicies()[static_cast<size_t>(policy_index)];
    config.nextLinePrefetch = prefetch;

    // The engine audits at every checkpoint and at end-of-run; a
    // violation aborts, so completing is itself the primary assertion.
    SimResults r = runSimulation(workloadFor(bench), config);

    // ISPI decomposition (Figures 1-4): slots are instructions or
    // penalties, nothing else.
    EXPECT_EQ(r.instructions + r.penalty.totalSlots(),
              static_cast<uint64_t>(r.finalSlot));

    // Every genuine demand miss is serviced by exactly one fill in
    // victim-less configs (buffer hits never reach either counter).
    // The auditor already cross-checked the sum against the live bus
    // transaction counter at every checkpoint.
    EXPECT_EQ(r.demandMisses, r.demandFills);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, AuditMatrixTest,
    ::testing::Combine(::testing::ValuesIn(benchmarkNames()),
                       ::testing::Range(0, 5),
                       ::testing::Bool()),
    [](const auto &param_info) {
        size_t policy_index =
            static_cast<size_t>(std::get<1>(param_info.param));
        std::string name = std::get<0>(param_info.param) + "_" +
               toString(allPolicies()[policy_index]) +
               (std::get<2>(param_info.param) ? "_prefetch" : "_none");
        for (char &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

class Table4ConservationTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(Table4ConservationTest, TaxonomyConservesRunCounters)
{
    SimConfig config = paranoidConfig();
    SimResults timed;
    // classifyMisses runs its own auditClassification (and aborts on a
    // violation) because checkLevel != Off; re-assert the laws here
    // from the exported counters.
    Classification c =
        classifyMisses(workloadFor(GetParam()), config, &timed);

    EXPECT_EQ(c.instructions, timed.instructions);
    EXPECT_EQ(c.bothMiss + c.specPollute, timed.demandMisses);
    EXPECT_EQ(c.wrongPath, timed.wrongFills);
    EXPECT_EQ(c.optimisticMisses(), timed.memoryTransactions());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, Table4ConservationTest,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto &param_info) {
                             std::string name = param_info.param;
                             for (char &c : name)
                                 if (!isalnum(static_cast<unsigned char>(c)))
                                     c = '_';
                             return name;
                         });

} // namespace
} // namespace specfetch
