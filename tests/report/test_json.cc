/**
 * @file
 * JsonValue serializer/parser tests: construction, escaping, exact
 * integer round-trips, structural equality, and malformed-input
 * rejection.
 */

#include <gtest/gtest.h>

#include "report/json.hh"

using namespace specfetch;

TEST(Json, ScalarKinds)
{
    EXPECT_TRUE(JsonValue::null().isNull());
    EXPECT_TRUE(JsonValue::boolean(true).asBool());
    EXPECT_FALSE(JsonValue::boolean(false).asBool());
    EXPECT_EQ(JsonValue::integer(42).asUint(), 42u);
    EXPECT_DOUBLE_EQ(JsonValue::number(1.5).asDouble(), 1.5);
    EXPECT_EQ(JsonValue::string("hi").asString(), "hi");
    // Uint also reads as a double.
    EXPECT_DOUBLE_EQ(JsonValue::integer(7).asDouble(), 7.0);
}

TEST(Json, DumpCompactDeterministic)
{
    JsonValue obj = JsonValue::object();
    obj.set("b", JsonValue::integer(1))
        .set("a", JsonValue::string("x"))
        .set("nested",
             JsonValue::object().set("flag", JsonValue::boolean(false)));
    // Insertion order is preserved; no whitespace.
    EXPECT_EQ(obj.dump(), "{\"b\":1,\"a\":\"x\",\"nested\":{\"flag\":false}}");
}

TEST(Json, SetOverwritesInPlace)
{
    JsonValue obj = JsonValue::object();
    obj.set("k", JsonValue::integer(1));
    obj.set("k", JsonValue::integer(2));
    ASSERT_EQ(obj.members().size(), 1u);
    EXPECT_EQ(obj.find("k")->asUint(), 2u);
}

TEST(Json, EscapingSpecialCharacters)
{
    EXPECT_EQ(JsonValue::escape("plain"), "\"plain\"");
    EXPECT_EQ(JsonValue::escape("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(JsonValue::escape("back\\slash"), "\"back\\\\slash\"");
    EXPECT_EQ(JsonValue::escape("line\nbreak"), "\"line\\nbreak\"");
    EXPECT_EQ(JsonValue::escape("tab\there"), "\"tab\\there\"");
    EXPECT_EQ(JsonValue::escape(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Json, EscapedStringsRoundTrip)
{
    std::string nasty = "quote\" slash\\ nl\n tab\t ctrl\x02 end";
    JsonValue original = JsonValue::string(nasty);
    JsonValue parsed;
    ASSERT_TRUE(JsonValue::parse(original.dump(), parsed));
    EXPECT_EQ(parsed.asString(), nasty);
}

TEST(Json, LargeIntegersAreExact)
{
    // Larger than 2^53: would be corrupted through a double.
    uint64_t big = 9'007'199'254'740'995ull;
    JsonValue parsed;
    ASSERT_TRUE(JsonValue::parse(JsonValue::integer(big).dump(), parsed));
    ASSERT_TRUE(parsed.isUint());
    EXPECT_EQ(parsed.asUint(), big);
}

TEST(Json, DoublesRoundTripExactly)
{
    for (double value : {0.1, 1.0 / 3.0, 2.875, 1e-20, 3.5e18}) {
        JsonValue parsed;
        ASSERT_TRUE(
            JsonValue::parse(JsonValue::number(value).dump(), parsed));
        EXPECT_EQ(parsed.asDouble(), value);
    }
}

TEST(Json, NestedDocumentRoundTrip)
{
    JsonValue doc = JsonValue::object();
    doc.set("name", JsonValue::string("run"))
        .set("count", JsonValue::integer(123456789))
        .set("rate", JsonValue::number(0.0625))
        .set("ok", JsonValue::boolean(true))
        .set("missing", JsonValue::null())
        .set("list", JsonValue::array()
                         .push(JsonValue::integer(1))
                         .push(JsonValue::string("two"))
                         .push(JsonValue::object().set(
                             "three", JsonValue::integer(3))));
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(doc.dump(), parsed, &error)) << error;
    EXPECT_EQ(parsed, doc);
    EXPECT_EQ(parsed.dump(), doc.dump());
}

TEST(Json, ParseAcceptsWhitespace)
{
    JsonValue parsed;
    ASSERT_TRUE(JsonValue::parse("  { \"a\" : [ 1 , 2 ] }\n", parsed));
    EXPECT_EQ(parsed.find("a")->size(), 2u);
    EXPECT_EQ(parsed.find("a")->at(1).asUint(), 2u);
}

TEST(Json, ParseNegativeAndExponentNumbers)
{
    JsonValue parsed;
    ASSERT_TRUE(JsonValue::parse("[-2.5, 1e3, -7]", parsed));
    EXPECT_DOUBLE_EQ(parsed.at(0).asDouble(), -2.5);
    EXPECT_DOUBLE_EQ(parsed.at(1).asDouble(), 1000.0);
    EXPECT_DOUBLE_EQ(parsed.at(2).asDouble(), -7.0);
}

TEST(Json, ParseRejectsMalformedInput)
{
    JsonValue out;
    for (const char *bad :
         {"", "{", "}", "{\"a\":}", "{\"a\" 1}", "[1,]", "tru", "\"open",
          "{\"a\":1} trailing", "01a", "1.", "--3", "{'a':1}",
          "\"bad\\q\"", "\"\\u12g4\""}) {
        std::string error;
        EXPECT_FALSE(JsonValue::parse(bad, out, &error))
            << "accepted: " << bad;
        EXPECT_FALSE(error.empty());
    }
}

TEST(Json, EqualityIsStructural)
{
    JsonValue a = JsonValue::object().set("x", JsonValue::integer(1));
    JsonValue b = JsonValue::object().set("x", JsonValue::integer(1));
    JsonValue c = JsonValue::object().set("x", JsonValue::integer(2));
    JsonValue d = JsonValue::object().set("y", JsonValue::integer(1));
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, d);
    // Kind matters: integer 1 != double 1.0 (golden files must not
    // silently change numeric kind).
    EXPECT_NE(JsonValue::integer(1), JsonValue::number(1.0));
}

TEST(Json, RemoveMember)
{
    JsonValue obj = JsonValue::object();
    obj.set("keep", JsonValue::integer(1))
        .set("drop", JsonValue::integer(2));
    EXPECT_TRUE(obj.remove("drop"));
    EXPECT_FALSE(obj.remove("drop"));
    EXPECT_EQ(obj.find("drop"), nullptr);
    EXPECT_NE(obj.find("keep"), nullptr);
}
