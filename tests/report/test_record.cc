/**
 * @file
 * Schema tests for the run-record serializer: field presence, exact
 * counter values, round-trip parsing, CSV flattening, and the
 * JSONL/CSV file writers.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "core/miss_classifier.hh"
#include "report/record.hh"
#include "report/report.hh"

using namespace specfetch;

namespace {

SimResults
sampleResults()
{
    SimResults r;
    r.workload = "gcc";
    r.policy = FetchPolicy::Resume;
    r.prefetch = true;
    r.instructions = 100'000;
    r.finalSlot = 250'000;
    r.controlInsts = 17'000;
    r.condBranches = 12'000;
    r.misfetches = 800;
    r.dirMispredicts = 900;
    r.targetMispredicts = 70;
    r.demandAccesses = 60'000;
    r.demandMisses = 2'500;
    r.demandFills = 2'300;
    r.bufferHits = 200;
    r.wrongAccesses = 9'000;
    r.wrongMisses = 700;
    r.wrongFills = 650;
    r.prefetchesIssued = 1'200;
    r.penalty.charge(PenaltyKind::Branch, 30'000);
    r.penalty.charge(PenaltyKind::RtIcache, 40'000);
    r.penalty.charge(PenaltyKind::Bus, 5'000);
    return r;
}

SimConfig
sampleConfig()
{
    SimConfig config;
    config.policy = FetchPolicy::Resume;
    config.nextLinePrefetch = true;
    config.instructionBudget = 100'000;
    return config;
}

const JsonValue &
member(const JsonValue &object, const std::string &key)
{
    const JsonValue *value = object.find(key);
    EXPECT_NE(value, nullptr) << "missing member: " << key;
    static JsonValue fallback;
    return value ? *value : fallback;
}

} // namespace

TEST(Record, RunRecordSchemaFields)
{
    JsonValue record = makeRunRecord(sampleResults(), sampleConfig());

    EXPECT_EQ(member(record, "schema_version").asUint(),
              kReportSchemaVersion);
    EXPECT_EQ(member(record, "record").asString(), "run");
    EXPECT_EQ(member(record, "workload").asString(), "gcc");
    EXPECT_EQ(member(record, "policy").asString(), "Resume");
    EXPECT_EQ(member(record, "prefetch").asString(), "next-line");

    const JsonValue &config = member(record, "config");
    EXPECT_EQ(member(config, "policy").asString(), "Resume");
    EXPECT_EQ(member(config, "issue_width").asUint(), 4u);
    EXPECT_EQ(member(config, "max_unresolved").asUint(), 4u);
    EXPECT_EQ(member(config, "miss_penalty_cycles").asUint(), 5u);
    EXPECT_EQ(member(config, "instruction_budget").asUint(), 100'000u);
    EXPECT_EQ(member(config, "run_seed").asUint(), 42u);
    EXPECT_EQ(member(member(config, "icache"), "size_bytes").asUint(),
              8u * 1024u);
    EXPECT_EQ(member(member(config, "predictor"), "pht_indexing")
                  .asString(),
              "gshare");

    const JsonValue &counters = member(record, "counters");
    EXPECT_EQ(member(counters, "instructions").asUint(), 100'000u);
    EXPECT_EQ(member(counters, "final_slot").asUint(), 250'000u);
    EXPECT_EQ(member(counters, "demand_misses").asUint(), 2'500u);
    EXPECT_EQ(member(counters, "wrong_fills").asUint(), 650u);
    EXPECT_EQ(member(counters, "memory_transactions").asUint(),
              2'300u + 650u + 1'200u);

    const JsonValue &penalty = member(counters, "penalty_slots");
    for (PenaltyKind kind : allPenaltyKinds())
        EXPECT_NE(penalty.find(toString(kind)), nullptr)
            << "missing penalty component " << toString(kind);
    EXPECT_EQ(member(penalty, "branch").asUint(), 30'000u);
    EXPECT_EQ(member(penalty, "rt_icache").asUint(), 40'000u);

    const JsonValue &derived = member(record, "derived");
    EXPECT_DOUBLE_EQ(member(derived, "ispi").asDouble(),
                     sampleResults().ispi());
    const JsonValue &components = member(derived, "ispi_components");
    for (PenaltyKind kind : allPenaltyKinds())
        EXPECT_NE(components.find(toString(kind)), nullptr);

    // No timing/classification unless supplied.
    EXPECT_EQ(record.find("timing"), nullptr);
    EXPECT_EQ(record.find("classification"), nullptr);
}

TEST(Record, TimingAndClassificationBlocks)
{
    RunTiming timing;
    timing.runSeconds = 0.125;
    timing.workloadBuildSeconds = 0.5;
    timing.sweepTotalSeconds = 2.0;

    Classification c;
    c.workload = "gcc";
    c.instructions = 100'000;
    c.bothMiss = 2'000;
    c.specPollute = 300;
    c.specPrefetch = 500;
    c.wrongPath = 900;

    JsonValue record =
        makeRunRecord(sampleResults(), sampleConfig(), &timing, &c);

    const JsonValue &t = member(record, "timing");
    EXPECT_DOUBLE_EQ(member(t, "run_seconds").asDouble(), 0.125);
    EXPECT_DOUBLE_EQ(member(t, "workload_build_seconds").asDouble(), 0.5);
    EXPECT_DOUBLE_EQ(member(t, "sweep_total_seconds").asDouble(), 2.0);

    const JsonValue &cls = member(record, "classification");
    EXPECT_EQ(member(cls, "both_miss").asUint(), 2'000u);
    EXPECT_EQ(member(cls, "oracle_misses").asUint(), 2'500u);
    EXPECT_EQ(member(cls, "optimistic_misses").asUint(), 3'200u);
    EXPECT_DOUBLE_EQ(member(cls, "traffic_ratio").asDouble(),
                     c.trafficRatio());
}

TEST(Record, ClassificationRecord)
{
    Classification c;
    c.workload = "li";
    c.instructions = 50'000;
    c.bothMiss = 100;
    JsonValue record = makeClassificationRecord(c, sampleConfig());
    EXPECT_EQ(member(record, "record").asString(), "classification");
    EXPECT_EQ(member(record, "workload").asString(), "li");
    EXPECT_NE(record.find("config"), nullptr);
    EXPECT_EQ(member(member(record, "classification"), "both_miss")
                  .asUint(),
              100u);
}

TEST(Record, RoundTripThroughText)
{
    RunTiming timing;
    timing.runSeconds = 0.25;
    JsonValue record =
        makeRunRecord(sampleResults(), sampleConfig(), &timing);
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(JsonValue::parse(record.dump(), parsed, &error)) << error;
    EXPECT_EQ(parsed, record);
}

TEST(Record, FlattenUsesDottedKeys)
{
    JsonValue record = makeRunRecord(sampleResults(), sampleConfig());
    auto flat = flattenRecord(record);

    auto lookup = [&](const std::string &key) -> const std::string * {
        for (const auto &[name, value] : flat) {
            if (name == key)
                return &value;
        }
        return nullptr;
    };
    ASSERT_NE(lookup("counters.instructions"), nullptr);
    EXPECT_EQ(*lookup("counters.instructions"), "100000");
    ASSERT_NE(lookup("config.icache.size_bytes"), nullptr);
    EXPECT_EQ(*lookup("config.icache.size_bytes"), "8192");
    ASSERT_NE(lookup("workload"), nullptr);
    EXPECT_EQ(*lookup("workload"), "gcc");
    ASSERT_NE(lookup("config.l2_enabled"), nullptr);
    EXPECT_EQ(*lookup("config.l2_enabled"), "false");
}

TEST(Record, JsonlWriterRoundTrip)
{
    std::string path = testing::TempDir() + "/specfetch_records.jsonl";
    JsonValue first = makeRunRecord(sampleResults(), sampleConfig());
    SimResults other = sampleResults();
    other.workload = "li";
    other.instructions = 55'555;
    JsonValue second = makeRunRecord(other, sampleConfig());
    {
        JsonlWriter writer(path);
        ASSERT_TRUE(writer.ok());
        writer.write(first);
        writer.write(second);
        EXPECT_EQ(writer.recordsWritten(), 2u);
    }
    std::vector<JsonValue> records;
    std::string error;
    ASSERT_TRUE(readJsonl(path, records, &error)) << error;
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0], first);
    EXPECT_EQ(records[1], second);
}

TEST(Record, CsvWriterEmitsHeaderAndRows)
{
    std::string path = testing::TempDir() + "/specfetch_records.csv";
    {
        CsvReportWriter writer(path);
        ASSERT_TRUE(writer.ok());
        writer.write(makeRunRecord(sampleResults(), sampleConfig()));
        writer.write(makeRunRecord(sampleResults(), sampleConfig()));
        EXPECT_EQ(writer.recordsWritten(), 2u);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header, row1, row2;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row1));
    ASSERT_TRUE(std::getline(in, row2));
    EXPECT_NE(header.find("counters.instructions"), std::string::npos);
    EXPECT_NE(header.find("config.icache.size_bytes"), std::string::npos);
    EXPECT_NE(row1.find("100000"), std::string::npos);
    EXPECT_EQ(row1, row2);
}

TEST(Record, StatsTreeExport)
{
    SimResults results = sampleResults();
    // statsToJson consumes the same transient tree statsDump renders;
    // build a small one here to pin the nesting + exactness rules.
    Counter insts;
    insts += results.instructions;
    StatGroup front("frontend");
    front.addCounter("instructions", insts, "retired");
    front.addFormula("ispi", [&] { return results.ispi(); }, "total");
    StatGroup root("sim");
    root.addChild(front);

    JsonValue tree = statsToJson(root);
    const JsonValue *sim = tree.find("sim");
    ASSERT_NE(sim, nullptr);
    const JsonValue *frontend = sim->find("frontend");
    ASSERT_NE(frontend, nullptr);
    ASSERT_NE(frontend->find("instructions"), nullptr);
    EXPECT_TRUE(frontend->find("instructions")->isUint());
    EXPECT_EQ(frontend->find("instructions")->asUint(), 100'000u);
    ASSERT_NE(frontend->find("ispi"), nullptr);
    EXPECT_DOUBLE_EQ(frontend->find("ispi")->asDouble(), results.ispi());
}
