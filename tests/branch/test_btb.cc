/** @file Unit tests for branch/btb.hh. */

#include "branch/btb.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(Btb, MissWhenEmpty)
{
    Btb btb(64, 4);
    EXPECT_FALSE(btb.lookup(0x1000).hit);
    EXPECT_EQ(btb.lookups.value(), 1u);
    EXPECT_EQ(btb.hits.value(), 0u);
}

TEST(Btb, HitAfterInsert)
{
    Btb btb(64, 4);
    btb.insert(0x1000, 0x2000);
    BtbLookup result = btb.lookup(0x1000);
    EXPECT_TRUE(result.hit);
    EXPECT_EQ(result.target, 0x2000u);
}

TEST(Btb, InsertRefreshesTarget)
{
    Btb btb(64, 4);
    btb.insert(0x1000, 0x2000);
    btb.insert(0x1000, 0x3000);
    EXPECT_EQ(btb.lookup(0x1000).target, 0x3000u);
    EXPECT_EQ(btb.insertions.value(), 2u);
    EXPECT_EQ(btb.evictions.value(), 0u);
}

TEST(Btb, GeometryDerivation)
{
    Btb btb(64, 4);
    EXPECT_EQ(btb.numEntries(), 64u);
    EXPECT_EQ(btb.numWays(), 4u);
    EXPECT_EQ(btb.numSets(), 16u);
}

TEST(Btb, ConflictEvictsLru)
{
    Btb btb(16, 4);    // 4 sets
    // Five branches mapping to set 0 (stride = sets * 4 bytes).
    Addr stride = 4 * kInstBytes;
    for (Addr i = 0; i < 5; ++i)
        btb.insert(0x1000 + i * stride, 0x9000 + i * 0x10);
    // The first inserted (LRU) is gone; the rest remain.
    EXPECT_FALSE(btb.peek(0x1000).hit);
    for (Addr i = 1; i < 5; ++i)
        EXPECT_TRUE(btb.peek(0x1000 + i * stride).hit) << i;
    EXPECT_EQ(btb.evictions.value(), 1u);
}

TEST(Btb, LookupRefreshesLru)
{
    Btb btb(16, 4);
    Addr stride = 4 * kInstBytes;
    for (Addr i = 0; i < 4; ++i)
        btb.insert(0x1000 + i * stride, 0x9000);
    // Touch the oldest; the next conflict should evict entry 1 instead.
    btb.lookup(0x1000);
    btb.insert(0x1000 + 4 * stride, 0x9000);
    EXPECT_TRUE(btb.peek(0x1000).hit);
    EXPECT_FALSE(btb.peek(0x1000 + stride).hit);
}

TEST(Btb, PeekDoesNotPerturbLru)
{
    Btb btb(16, 4);
    Addr stride = 4 * kInstBytes;
    for (Addr i = 0; i < 4; ++i)
        btb.insert(0x1000 + i * stride, 0x9000);
    btb.peek(0x1000);    // must NOT refresh
    btb.insert(0x1000 + 4 * stride, 0x9000);
    EXPECT_FALSE(btb.peek(0x1000).hit);
}

TEST(Btb, Invalidate)
{
    Btb btb(64, 4);
    btb.insert(0x1000, 0x2000);
    btb.invalidate(0x1000);
    EXPECT_FALSE(btb.peek(0x1000).hit);
}

TEST(Btb, DistinctSetsDoNotConflict)
{
    Btb btb(16, 4);
    for (Addr i = 0; i < 4; ++i)
        btb.insert(0x1000 + i * kInstBytes, 0x9000);   // sets 0..3
    for (Addr i = 0; i < 4; ++i)
        EXPECT_TRUE(btb.peek(0x1000 + i * kInstBytes).hit);
    EXPECT_EQ(btb.evictions.value(), 0u);
}

TEST(Btb, DirectMappedWorks)
{
    Btb btb(8, 1);
    btb.insert(0x1000, 0x2000);
    btb.insert(0x1000 + 8 * kInstBytes, 0x3000);    // same set, 1 way
    EXPECT_FALSE(btb.peek(0x1000).hit);
    EXPECT_TRUE(btb.peek(0x1000 + 8 * kInstBytes).hit);
}

TEST(BtbDeath, RejectsNonDividingWays)
{
    EXPECT_EXIT({ Btb btb(64, 3); }, ::testing::ExitedWithCode(1),
                "divide");
}

} // namespace
} // namespace specfetch
