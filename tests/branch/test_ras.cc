/** @file Unit tests for branch/ras.hh. */

#include "branch/ras.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(4);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, UnderflowReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.underflows.value(), 1u);
}

TEST(Ras, TopPeeks)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.top(), 0u);
    ras.push(0x300);
    EXPECT_EQ(ras.top(), 0x300u);
    EXPECT_EQ(ras.size(), 1u);    // unchanged
}

TEST(Ras, OverflowWrapsOldest)
{
    ReturnAddressStack ras(2);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);    // overwrites 0x100
    EXPECT_EQ(ras.overflows.value(), 1u);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0u);    // 0x100 was lost
}

TEST(Ras, SizeTracksOccupancy)
{
    ReturnAddressStack ras(4);
    EXPECT_TRUE(ras.empty());
    ras.push(1);
    ras.push(2);
    EXPECT_EQ(ras.size(), 2u);
    ras.pop();
    EXPECT_EQ(ras.size(), 1u);
    EXPECT_EQ(ras.depth(), 4u);
}

TEST(Ras, CountsOperations)
{
    ReturnAddressStack ras(4);
    ras.push(1);
    ras.pop();
    ras.pop();
    EXPECT_EQ(ras.pushes.value(), 1u);
    EXPECT_EQ(ras.pops.value(), 2u);
    EXPECT_EQ(ras.underflows.value(), 1u);
}

TEST(RasDeath, RejectsZeroDepth)
{
    EXPECT_EXIT({ ReturnAddressStack ras(0); },
                ::testing::ExitedWithCode(1), "depth");
}

} // namespace
} // namespace specfetch
