/** @file Unit tests for branch/pht.hh. */

#include "branch/pht.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(Pht, InitialPredictionIsNotTaken)
{
    Pht pht;
    EXPECT_FALSE(pht.predict(0x1000));
}

TEST(Pht, LearnsAlwaysTaken)
{
    Pht pht;
    // Each update shifts the history register, so training walks
    // through contexts; after historyWidth()+1 all-taken updates the
    // all-ones context itself has been trained.
    for (int i = 0; i < 12; ++i)
        pht.update(0x1000, true);
    EXPECT_TRUE(pht.predict(0x1000));
}

TEST(Pht, HistoryShiftsInOutcomes)
{
    Pht pht(512);
    EXPECT_EQ(pht.historyWidth(), 9u);
    pht.update(0x1000, true);
    pht.update(0x1000, false);
    pht.update(0x1000, true);
    EXPECT_EQ(pht.history(), 0b101u);
}

TEST(Pht, HistoryBounded)
{
    Pht pht(512);
    for (int i = 0; i < 100; ++i)
        pht.update(0x1000, true);
    EXPECT_EQ(pht.history(), 0x1ffu);    // 9 bits of ones
}

TEST(Pht, GshareLearnsAlternatingPattern)
{
    // A branch that strictly alternates is perfectly predictable from
    // one bit of history once the counters train.
    Pht pht(512);
    bool outcome = false;
    int correct = 0;
    for (int i = 0; i < 2000; ++i) {
        bool prediction = pht.predict(0x4000);
        if (i >= 1000)
            correct += prediction == outcome;
        pht.update(0x4000, outcome);
        outcome = !outcome;
    }
    EXPECT_GT(correct, 990);
}

TEST(Pht, GshareLearnsCorrelatedBranch)
{
    // Branch B's outcome equals branch A's previous outcome: global
    // history makes B predictable even though B alone looks random.
    Pht pht(512);
    uint64_t lcg = 12345;
    auto coin = [&]() {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return (lcg >> 62) & 1;
    };
    int correct = 0;
    int total = 0;
    bool last_a = false;
    for (int i = 0; i < 6000; ++i) {
        bool a = coin();
        pht.update(0x1000, a);     // branch A resolves
        bool b_outcome = last_a;   // B repeats A's previous outcome...
        bool prediction = pht.predict(0x2000);
        if (i >= 3000) {
            correct += prediction == b_outcome;
            ++total;
        }
        pht.update(0x2000, b_outcome);
        last_a = a;
    }
    // Far better than chance (aliasing keeps it below perfect).
    EXPECT_GT(correct, total * 7 / 10);
}

TEST(Pht, BimodalIndexingIgnoresHistory)
{
    Pht pht(512, 2, PhtIndexing::PcOnly);
    // Train taken under wildly varying history; PcOnly must still
    // predict taken for this pc.
    for (int i = 0; i < 100; ++i)
        pht.update(0x1000, true);
    for (int i = 0; i < 50; ++i)
        pht.update(0x2000 + 8 * i, i % 2 == 0);    // churn history
    EXPECT_TRUE(pht.predict(0x1000));
}

TEST(Pht, LocalLearnsPerBranchPattern)
{
    // A strictly alternating branch is perfectly predictable from its
    // own history even while other random branches churn the global
    // history — the point of the Yeh & Patt two-level local scheme.
    Pht local(512, 2, PhtIndexing::Local);
    Pht gshare(512, 2, PhtIndexing::Gshare);
    uint64_t lcg = 99;
    auto coin = [&]() {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return ((lcg >> 62) & 1) != 0;
    };
    bool outcome = false;
    int local_correct = 0;
    int gshare_correct = 0;
    const int n = 6000;
    for (int i = 0; i < n; ++i) {
        // Noise branches at scattered PCs.
        for (int k = 0; k < 3; ++k) {
            bool noise = coin();
            Addr pc = 0x9000 + 8 * ((i * 3 + k) % 37);
            local.update(pc, noise);
            gshare.update(pc, noise);
        }
        if (i >= n / 2) {
            local_correct += local.predict(0x4000) == outcome;
            gshare_correct += gshare.predict(0x4000) == outcome;
        }
        local.update(0x4000, outcome);
        gshare.update(0x4000, outcome);
        outcome = !outcome;
    }
    EXPECT_GT(local_correct, (n / 2) * 95 / 100);
    EXPECT_GT(local_correct, gshare_correct);
}

TEST(Pht, LocalHistoriesAreSeparate)
{
    Pht pht(512, 2, PhtIndexing::Local, 1024);
    // Train two branches with opposite constant outcomes; each must
    // predict its own direction. PCs chosen not to alias in the
    // 1024-entry history table (word addresses differ mod 1024).
    for (int i = 0; i < 20; ++i) {
        pht.update(0x1000, true);
        pht.update(0x2004, false);
    }
    EXPECT_TRUE(pht.predict(0x1000));
    EXPECT_FALSE(pht.predict(0x2004));
}

TEST(PhtDeath, LocalRejectsNonPowerOfTwoTable)
{
    EXPECT_EXIT({ Pht pht(512, 2, PhtIndexing::Local, 1000); },
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(Pht, CombiningBeatsBothComponentsOnMixedWorkload)
{
    // A mix of (a) a strongly biased branch that bimodal nails and
    // gshare dilutes across history contexts, and (b) an alternating
    // branch that needs history. The chooser should route each to the
    // right component and beat either pure scheme overall.
    auto run = [](PhtIndexing indexing) {
        Pht pht(512, 2, indexing);
        uint64_t lcg = 5;
        auto coin = [&]() {
            lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
            return ((lcg >> 62) & 1) != 0;
        };
        bool alt = false;
        int correct = 0;
        int total = 0;
        for (int i = 0; i < 8000; ++i) {
            // Noise churns the global history.
            pht.update(0x9000 + 8 * (i % 23), coin());
            // Biased branch (always taken).
            if (i > 4000) {
                correct += pht.predict(0x1000) == true;
                ++total;
            }
            pht.update(0x1000, true);
            // Alternating branch.
            if (i > 4000) {
                correct += pht.predict(0x2004) == alt;
                ++total;
            }
            pht.update(0x2004, alt);
            alt = !alt;
        }
        return 100.0 * correct / total;
    };

    double combining = run(PhtIndexing::Combining);
    double bimodal = run(PhtIndexing::PcOnly);
    EXPECT_GT(combining, 80.0);
    // The chooser must at least match the better pure component on
    // the biased half while keeping history available for the other.
    EXPECT_GE(combining, bimodal - 2.0);
}

TEST(Pht, CombiningChooserLearnsPerBranch)
{
    Pht pht(512, 2, PhtIndexing::Combining);
    // Strongly biased branch: after training, predict taken no
    // matter what the global history looks like.
    for (int i = 0; i < 30; ++i)
        pht.update(0x1000, true);
    for (int i = 0; i < 10; ++i)
        pht.update(0x5000 + 8 * i, i % 2 == 0);    // churn history
    EXPECT_TRUE(pht.predict(0x1000));
}

TEST(Pht, CountsPredictionsAndUpdates)
{
    Pht pht;
    pht.predict(0x1000);
    pht.predict(0x1000);
    pht.update(0x1000, true);
    EXPECT_EQ(pht.predictions.value(), 2u);
    EXPECT_EQ(pht.updates.value(), 1u);
}

TEST(PhtDeath, RejectsNonPowerOfTwo)
{
    EXPECT_EXIT({ Pht pht(500); }, ::testing::ExitedWithCode(1),
                "power of two");
}

} // namespace
} // namespace specfetch
