/** @file Unit tests for branch/predictor.hh (the decoupled facade). */

#include "branch/predictor.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(Predictor, PlainPredictsNothing)
{
    BranchPredictor predictor;
    Prediction p = predictor.predict(0x1000, InstClass::Plain);
    EXPECT_FALSE(p.taken);
    EXPECT_FALSE(p.targetKnown);
}

TEST(Predictor, ConditionalDirectionFromPhtEvenOnBtbMiss)
{
    // Decoupled design: a conditional never in the BTB still gets a
    // dynamic direction. Train the PHT taken; the BTB stays empty.
    BranchPredictor predictor;
    // Enough all-taken resolves to train the gshare context the
    // prediction below will read (history shifts on every update).
    for (int i = 0; i < 12; ++i)
        predictor.onResolve(
            DynInst{0x1000, InstClass::CondBranch, true, 0x2000});
    Prediction p = predictor.predict(0x1000, InstClass::CondBranch);
    EXPECT_TRUE(p.taken);
    EXPECT_FALSE(p.targetKnown);    // misfetch territory
}

TEST(Predictor, DecodeInsertsPredictedTaken)
{
    BranchPredictor predictor;
    StaticInst branch{InstClass::CondBranch, 0x2000};
    predictor.onDecode(0x1000, branch, true);
    Prediction p = predictor.predict(0x1000, InstClass::Jump);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x2000u);
}

TEST(Predictor, DecodeSkipsPredictedNotTaken)
{
    BranchPredictor predictor;
    StaticInst branch{InstClass::CondBranch, 0x2000};
    predictor.onDecode(0x1000, branch, false);
    EXPECT_FALSE(predictor.btb().peek(0x1000).hit);
}

TEST(Predictor, DecodeSkipsIndirect)
{
    // Indirect targets are not known at decode.
    BranchPredictor predictor;
    predictor.onDecode(0x1000, StaticInst{InstClass::Return, 0}, true);
    EXPECT_FALSE(predictor.btb().peek(0x1000).hit);
}

TEST(Predictor, ResolveInstallsIndirectTargets)
{
    BranchPredictor predictor;
    predictor.onResolve(
        DynInst{0x1000, InstClass::IndirectJump, true, 0x5000});
    Prediction p = predictor.predict(0x1000, InstClass::IndirectJump);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x5000u);
}

TEST(Predictor, RasPredictsReturnWhenEnabled)
{
    PredictorConfig config;
    config.rasDepth = 8;
    BranchPredictor predictor(config);
    // A call pushes its return address at fetch.
    predictor.predict(0x1000, InstClass::Call);
    Prediction p = predictor.predict(0x3000, InstClass::Return);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x1004u);
}

TEST(Predictor, ReturnsUseBtbWithoutRas)
{
    BranchPredictor predictor;    // baseline: no RAS
    EXPECT_FALSE(predictor.hasRas());
    predictor.onResolve(DynInst{0x3000, InstClass::Return, true, 0x1004});
    Prediction p = predictor.predict(0x3000, InstClass::Return);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 0x1004u);
}

// ---- classify() -------------------------------------------------------

TEST(Classify, CorrectNotTaken)
{
    Prediction p{false, false, 0};
    DynInst inst{0x1000, InstClass::CondBranch, false, 0x2000};
    EXPECT_EQ(BranchPredictor::classify(p, inst), BranchOutcome::Correct);
}

TEST(Classify, CorrectTakenWithTarget)
{
    Prediction p{true, true, 0x2000};
    DynInst inst{0x1000, InstClass::CondBranch, true, 0x2000};
    EXPECT_EQ(BranchPredictor::classify(p, inst), BranchOutcome::Correct);
}

TEST(Classify, TakenWithoutTargetIsMisfetch)
{
    Prediction p{true, false, 0};
    DynInst inst{0x1000, InstClass::CondBranch, true, 0x2000};
    EXPECT_EQ(BranchPredictor::classify(p, inst), BranchOutcome::Misfetch);
}

TEST(Classify, TakenWithStaleTargetIsMisfetch)
{
    Prediction p{true, true, 0x9999000};
    DynInst inst{0x1000, InstClass::CondBranch, true, 0x2000};
    EXPECT_EQ(BranchPredictor::classify(p, inst), BranchOutcome::Misfetch);
}

TEST(Classify, WrongDirectionIsMispredict)
{
    Prediction p{true, true, 0x2000};
    DynInst inst{0x1000, InstClass::CondBranch, false, 0x2000};
    EXPECT_EQ(BranchPredictor::classify(p, inst),
              BranchOutcome::DirMispredict);

    Prediction q{false, false, 0};
    DynInst taken{0x1000, InstClass::CondBranch, true, 0x2000};
    EXPECT_EQ(BranchPredictor::classify(q, taken),
              BranchOutcome::DirMispredict);
}

TEST(Classify, JumpBtbMissIsMisfetch)
{
    Prediction p{true, false, 0};
    DynInst inst{0x1000, InstClass::Jump, true, 0x2000};
    EXPECT_EQ(BranchPredictor::classify(p, inst), BranchOutcome::Misfetch);
}

TEST(Classify, IndirectWrongTargetIsTargetMispredict)
{
    Prediction p{true, true, 0x8000};
    DynInst inst{0x1000, InstClass::Return, true, 0x2000};
    EXPECT_EQ(BranchPredictor::classify(p, inst),
              BranchOutcome::TargetMispredict);

    Prediction miss{true, false, 0};
    EXPECT_EQ(BranchPredictor::classify(miss, inst),
              BranchOutcome::TargetMispredict);
}

TEST(Classify, PlainAlwaysCorrect)
{
    Prediction p{};
    DynInst inst{0x1000, InstClass::Plain, false, 0};
    EXPECT_EQ(BranchPredictor::classify(p, inst), BranchOutcome::Correct);
}

TEST(PenaltySlots, PaperValues)
{
    EXPECT_EQ(BranchPredictor::penaltySlots(BranchOutcome::Correct), 0u);
    EXPECT_EQ(BranchPredictor::penaltySlots(BranchOutcome::Misfetch), 8u);
    EXPECT_EQ(BranchPredictor::penaltySlots(BranchOutcome::DirMispredict),
              16u);
    EXPECT_EQ(
        BranchPredictor::penaltySlots(BranchOutcome::TargetMispredict),
        16u);
}

} // namespace
} // namespace specfetch
