/**
 * @file
 * FaultInjector contract tests: spec parsing (including every
 * malformed shape), firing semantics as a pure function of
 * (kind, index, attempt), the environment-variable entry point, and
 * determinism of the seeded flaky mode.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "fault/injector.hh"

using namespace specfetch;

TEST(FaultInjectorParse, EmptySpecNeverFires)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("", injector));
    EXPECT_TRUE(injector.empty());
    EXPECT_FALSE(injector.fires(FaultKind::Throw, 0));
}

TEST(FaultInjectorParse, SingleDirective)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("throw@5", injector));
    EXPECT_FALSE(injector.empty());
    EXPECT_TRUE(injector.fires(FaultKind::Throw, 5, 1));
    EXPECT_FALSE(injector.fires(FaultKind::Throw, 5, 2));
    EXPECT_FALSE(injector.fires(FaultKind::Throw, 4, 1));
    EXPECT_FALSE(injector.fires(FaultKind::Timeout, 5, 1));
}

TEST(FaultInjectorParse, AttemptBounds)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("throw@5x3", injector));
    EXPECT_TRUE(injector.fires(FaultKind::Throw, 5, 1));
    EXPECT_TRUE(injector.fires(FaultKind::Throw, 5, 3));
    EXPECT_FALSE(injector.fires(FaultKind::Throw, 5, 4));
}

TEST(FaultInjectorParse, EveryAttempt)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("throw@2x*", injector));
    EXPECT_TRUE(injector.fires(FaultKind::Throw, 2, 1));
    EXPECT_TRUE(injector.fires(FaultKind::Throw, 2, 1000));
}

TEST(FaultInjectorParse, AllKindsAndCommaLists)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse(
        "throw@1,timeout@2,corrupt@3,crash@4,tear@5", injector));
    EXPECT_TRUE(injector.fires(FaultKind::Throw, 1));
    EXPECT_TRUE(injector.fires(FaultKind::Timeout, 2));
    EXPECT_TRUE(injector.fires(FaultKind::CorruptSnapshot, 3));
    EXPECT_TRUE(injector.fires(FaultKind::Crash, 4));
    EXPECT_TRUE(injector.fires(FaultKind::TearLedger, 5));
    EXPECT_FALSE(injector.fires(FaultKind::Crash, 5));
}

TEST(FaultInjectorParse, MalformedSpecsAreNamedErrors)
{
    struct Case
    {
        const char *spec;
        const char *fragment;
    };
    const Case cases[] = {
        {"explode@1", "unknown fault kind"},
        {"throw", "missing '@"},
        {"throw@", "bad run index"},
        {"throw@x2", "bad run index"},
        {"throw@5x0", "bad attempt count"},
        {"throw@5xq", "bad attempt count"},
        {"throw@1,,timeout@2", "empty fault directive"},
        {"flaky=9", "flaky"},
        {"flaky=1/0:5", "DEN > 0"},
        {"flaky=3/2:5", "NUM <= DEN"},
    };
    for (const Case &c : cases) {
        FaultInjector injector;
        std::string error;
        EXPECT_FALSE(FaultInjector::parse(c.spec, injector, &error))
            << c.spec;
        EXPECT_NE(error.find(c.fragment), std::string::npos)
            << c.spec << " -> " << error;
    }
}

TEST(FaultInjectorParse, FiresIsPureAndRepeatable)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("throw@3x2", injector));
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(injector.fires(FaultKind::Throw, 3, 2));
        EXPECT_FALSE(injector.fires(FaultKind::Throw, 3, 3));
    }
}

TEST(FaultInjectorFlaky, DeterministicAndSeeded)
{
    FaultInjector a, b, other;
    ASSERT_TRUE(FaultInjector::parse("flaky=1/4:99", a));
    ASSERT_TRUE(FaultInjector::parse("flaky=1/4:99", b));
    ASSERT_TRUE(FaultInjector::parse("flaky=1/4:100", other));
    EXPECT_FALSE(a.empty());

    size_t fired = 0;
    bool seeds_differ = false;
    for (uint64_t index = 0; index < 256; ++index) {
        bool hit = a.fires(FaultKind::Throw, index, 1);
        EXPECT_EQ(hit, b.fires(FaultKind::Throw, index, 1)) << index;
        // Flaky failures only ever hit the first attempt: retries heal.
        EXPECT_FALSE(a.fires(FaultKind::Throw, index, 2));
        fired += hit;
        seeds_differ |= hit != other.fires(FaultKind::Throw, index, 1);
    }
    // 1/4 rate over 256 draws: expect a broad but non-degenerate band.
    EXPECT_GT(fired, 256u / 8);
    EXPECT_LT(fired, 256u / 2);
    EXPECT_TRUE(seeds_differ) << "seed does not influence the draw";
}

class FaultInjectorEnv : public ::testing::Test
{
  protected:
    void SetUp() override { unsetenv(kFaultInjectEnv); }
    void TearDown() override { unsetenv(kFaultInjectEnv); }
};

TEST_F(FaultInjectorEnv, UnsetYieldsEmptyInjector)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::fromEnv(injector));
    EXPECT_TRUE(injector.empty());
}

TEST_F(FaultInjectorEnv, SetSpecIsParsed)
{
    setenv(kFaultInjectEnv, "crash@7", 1);
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::fromEnv(injector));
    EXPECT_TRUE(injector.fires(FaultKind::Crash, 7));
}

TEST_F(FaultInjectorEnv, MalformedSpecIsReported)
{
    setenv(kFaultInjectEnv, "nonsense@@", 1);
    FaultInjector injector;
    std::string error;
    EXPECT_FALSE(FaultInjector::fromEnv(injector, &error));
    EXPECT_FALSE(error.empty());
}

TEST(FaultInjectorAppendKinds, ShortWriteAndEnospcParse)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("shortwrite@4,enospc@7", injector));
    EXPECT_TRUE(injector.fires(FaultKind::ShortWrite, 4));
    EXPECT_FALSE(injector.fires(FaultKind::ShortWrite, 5));
    EXPECT_TRUE(injector.fires(FaultKind::Enospc, 7));
    EXPECT_FALSE(injector.fires(FaultKind::Enospc, 4));
    EXPECT_STREQ(toString(FaultKind::ShortWrite), "shortwrite");
    EXPECT_STREQ(toString(FaultKind::Enospc), "enospc");
}

TEST(FaultInjectorAtOrdinal, ProjectsDirectivesToIndexZero)
{
    FaultInjector injector;
    ASSERT_TRUE(
        FaultInjector::parse("throw@3x2,timeout@5,crash@3", injector));

    // Ordinal 3 keeps its directives, rewritten to index 0.
    FaultInjector at3 = injector.atOrdinal(3);
    EXPECT_TRUE(at3.fires(FaultKind::Throw, 0, 1));
    EXPECT_TRUE(at3.fires(FaultKind::Throw, 0, 2));
    EXPECT_FALSE(at3.fires(FaultKind::Throw, 0, 3));
    EXPECT_TRUE(at3.fires(FaultKind::Crash, 0));
    EXPECT_FALSE(at3.fires(FaultKind::Timeout, 0));

    // Other ordinals see only what aims at them.
    FaultInjector at5 = injector.atOrdinal(5);
    EXPECT_TRUE(at5.fires(FaultKind::Timeout, 0));
    EXPECT_FALSE(at5.fires(FaultKind::Throw, 0));
    EXPECT_TRUE(injector.atOrdinal(0).empty());
}

TEST(FaultInjectorAtOrdinal, FlakyDrawBecomesExplicitThrow)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("flaky=1/4:99", injector));
    size_t fired = 0;
    for (uint64_t ordinal = 0; ordinal < 256; ++ordinal) {
        FaultInjector local = injector.atOrdinal(ordinal);
        bool localFires = local.fires(FaultKind::Throw, 0, 1);
        // The projection agrees with the global draw exactly.
        EXPECT_EQ(localFires,
                  injector.fires(FaultKind::Throw, ordinal, 1));
        // ...and fires as a plain first-attempt throw directive.
        EXPECT_FALSE(local.fires(FaultKind::Throw, 0, 2));
        fired += localFires;
    }
    EXPECT_GT(fired, 256u / 8);
    EXPECT_LT(fired, 256u / 2);
}
