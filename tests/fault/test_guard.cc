/**
 * @file
 * Guard-layer tests: watchdog arming/expiry semantics, the backoff
 * curve, and the ScopedThrowOnError boundary that turns panic/fatal
 * into catchable SimulationError inside guarded runs.
 */

#include <gtest/gtest.h>

#include "fault/guard.hh"
#include "util/logging.hh"

using namespace specfetch;

TEST(Watchdog, UnarmedPollIsANoOp)
{
    EXPECT_FALSE(Watchdog::armed());
    EXPECT_NO_THROW(Watchdog::poll(1'000'000'000));
}

TEST(Watchdog, ArmsForScopeOnly)
{
    {
        Watchdog watchdog(/*wallSeconds=*/60.0, /*ceiling=*/0);
        EXPECT_TRUE(Watchdog::armed());
    }
    EXPECT_FALSE(Watchdog::armed());
}

TEST(Watchdog, InstructionCeilingTrips)
{
    Watchdog watchdog(/*wallSeconds=*/0.0, /*ceiling=*/1000);
    EXPECT_NO_THROW(Watchdog::poll(1000));
    EXPECT_THROW(Watchdog::poll(1001), RunTimeout);
}

TEST(Watchdog, GenerousDeadlineDoesNotTrip)
{
    Watchdog watchdog(/*wallSeconds=*/3600.0, /*ceiling=*/0);
    EXPECT_NO_THROW(Watchdog::poll(0));
}

TEST(Watchdog, ExpireImmediatelyTripsTheFirstPoll)
{
    Watchdog watchdog(/*wallSeconds=*/0.0, /*ceiling=*/0,
                      /*expireImmediately=*/true);
    EXPECT_THROW(Watchdog::poll(0), RunTimeout);
}

TEST(Watchdog, NoLimitsNeverTrips)
{
    Watchdog watchdog(/*wallSeconds=*/0.0, /*ceiling=*/0);
    EXPECT_NO_THROW(Watchdog::poll(UINT64_MAX));
}

TEST(Watchdog, DisarmsAfterAnExpiryUnwind)
{
    // The RAII unwind after a RunTimeout must leave the thread clean
    // for the retry attempt.
    try {
        Watchdog watchdog(0.0, 0, /*expireImmediately=*/true);
        Watchdog::poll(0);
        FAIL() << "poll should have thrown";
    } catch (const RunTimeout &) {
    }
    EXPECT_FALSE(Watchdog::armed());
    Watchdog again(0.0, 100);
    EXPECT_NO_THROW(Watchdog::poll(50));
}

TEST(Backoff, FirstAttemptHasNoDelay)
{
    EXPECT_EQ(backoffSeconds(1, 0.05), 0.0);
}

TEST(Backoff, DoublesPerAttempt)
{
    EXPECT_DOUBLE_EQ(backoffSeconds(2, 0.05), 0.05);
    EXPECT_DOUBLE_EQ(backoffSeconds(3, 0.05), 0.10);
    EXPECT_DOUBLE_EQ(backoffSeconds(4, 0.05), 0.20);
}

TEST(Backoff, CappedAtThirtySeconds)
{
    EXPECT_DOUBLE_EQ(backoffSeconds(64, 1.0), 30.0);
}

TEST(Backoff, NonPositiveBaseMeansNoDelay)
{
    EXPECT_EQ(backoffSeconds(5, 0.0), 0.0);
    EXPECT_EQ(backoffSeconds(5, -1.0), 0.0);
}

TEST(ThrowOnError, PanicThrowsInsideTheBoundary)
{
    ScopedThrowOnError boundary;
    EXPECT_TRUE(ScopedThrowOnError::active());
    EXPECT_THROW(panic("guarded panic %d", 7), SimulationError);
    try {
        panic("guarded panic with detail");
    } catch (const SimulationError &e) {
        EXPECT_NE(std::string(e.what()).find("guarded panic with detail"),
                  std::string::npos);
    }
}

TEST(ThrowOnError, FatalThrowsInsideTheBoundary)
{
    ScopedThrowOnError boundary;
    EXPECT_THROW(fatal("guarded fatal"), SimulationError);
}

TEST(ThrowOnError, BoundaryNestsAndExpires)
{
    EXPECT_FALSE(ScopedThrowOnError::active());
    {
        ScopedThrowOnError outer;
        {
            ScopedThrowOnError inner;
            EXPECT_TRUE(ScopedThrowOnError::active());
        }
        // Still active: the outer boundary owns the thread.
        EXPECT_TRUE(ScopedThrowOnError::active());
        EXPECT_THROW(panic("still guarded"), SimulationError);
    }
    EXPECT_FALSE(ScopedThrowOnError::active());
}

TEST(ThrowOnError, PanicStillAbortsOutsideTheBoundary)
{
    EXPECT_DEATH(panic("unguarded panic"), "unguarded panic");
}
