/**
 * @file
 * runSweepGuarded contract tests: a guarded sweep must be bit-exact
 * with the plain sweep when nothing fails, heal transient injected
 * faults (throw, timeout, corrupt snapshot) through its retry loop,
 * and quarantine persistent failures without losing the rest of the
 * grid.
 */

#include <gtest/gtest.h>

#include <mutex>

#include "core/simulator.hh"
#include "core/sweep.hh"
#include "fault/injector.hh"

using namespace specfetch;

namespace {

std::vector<RunSpec>
smallGrid()
{
    SimConfig base;
    base.instructionBudget = 50'000;
    std::vector<RunSpec> specs;
    for (const char *name : {"li", "gcc"}) {
        for (FetchPolicy policy :
             {FetchPolicy::Oracle, FetchPolicy::Resume,
              FetchPolicy::Pessimistic}) {
            SimConfig config = base;
            config.policy = policy;
            specs.push_back(RunSpec{name, config});
        }
    }
    return specs;
}

SweepGuard
fastGuard()
{
    SweepGuard guard;
    guard.maxAttempts = 2;
    guard.backoffBaseSeconds = 0.0;    // tests need no real backoff
    return guard;
}

} // namespace

TEST(GuardedSweep, MatchesPlainSweepWhenNothingFails)
{
    std::vector<RunSpec> specs = smallGrid();
    std::vector<SimResults> plain = runSweep(specs, 2);
    SweepOutcome guarded = runSweepGuarded(specs, fastGuard(), 2);

    EXPECT_TRUE(guarded.allCompleted());
    EXPECT_TRUE(guarded.failures.empty());
    ASSERT_EQ(guarded.results.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(guarded.completed[i], 1);
        EXPECT_EQ(guarded.results[i], plain[i]) << "spec " << i;
    }
}

TEST(GuardedSweep, TransientThrowHealsViaRetry)
{
    std::vector<RunSpec> specs = smallGrid();
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("throw@2", injector));
    SweepGuard guard = fastGuard();
    guard.injector = &injector;

    std::vector<SimResults> plain = runSweep(specs, 2);
    SweepOutcome guarded = runSweepGuarded(specs, guard, 2);

    EXPECT_TRUE(guarded.allCompleted());
    for (size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(guarded.results[i], plain[i])
            << "retry must not perturb results (spec " << i << ")";
}

TEST(GuardedSweep, TransientTimeoutHealsViaRetry)
{
    std::vector<RunSpec> specs = smallGrid();
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("timeout@1", injector));
    SweepGuard guard = fastGuard();
    guard.injector = &injector;

    std::vector<SimResults> plain = runSweep(specs, 2);
    SweepOutcome guarded = runSweepGuarded(specs, guard, 2);

    EXPECT_TRUE(guarded.allCompleted());
    for (size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(guarded.results[i], plain[i]) << "spec " << i;
}

TEST(GuardedSweep, CorruptSnapshotDegradesToLiveExecution)
{
    // Every benchmark has three consumers, so the sweep records shared
    // snapshots; corrupting run 0's copy must be *detected* (digest
    // check) and degraded to live execution — same results, no crash,
    // no retry consumed (the fallback happens within attempt 1).
    std::vector<RunSpec> specs = smallGrid();
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("corrupt@0", injector));
    SweepGuard guard = fastGuard();
    guard.maxAttempts = 1;    // prove no retry is needed
    guard.injector = &injector;

    std::vector<SimResults> plain = runSweep(specs, 2);
    SweepOutcome guarded = runSweepGuarded(specs, guard, 2);

    EXPECT_TRUE(guarded.allCompleted());
    for (size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(guarded.results[i], plain[i]) << "spec " << i;
}

TEST(GuardedSweep, PersistentFailureIsQuarantined)
{
    std::vector<RunSpec> specs = smallGrid();
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("throw@3x*", injector));
    SweepGuard guard = fastGuard();
    guard.injector = &injector;

    std::vector<SimResults> plain = runSweep(specs, 2);
    SweepOutcome guarded = runSweepGuarded(specs, guard, 2);

    EXPECT_FALSE(guarded.allCompleted());
    ASSERT_EQ(guarded.failures.size(), 1u);
    const SweepFailure &failure = guarded.failures.front();
    EXPECT_EQ(failure.index, 3u);
    EXPECT_EQ(failure.benchmark, specs[3].benchmark);
    EXPECT_EQ(failure.attempts, guard.maxAttempts);
    EXPECT_NE(failure.cause.find("injected fault"), std::string::npos);
    EXPECT_FALSE(failure.config.empty());

    for (size_t i = 0; i < specs.size(); ++i) {
        if (i == 3) {
            EXPECT_EQ(guarded.completed[i], 0);
            continue;
        }
        EXPECT_EQ(guarded.completed[i], 1);
        EXPECT_EQ(guarded.results[i], plain[i])
            << "a quarantined neighbour must not disturb spec " << i;
    }
}

TEST(GuardedSweep, OnRunCompleteFiresOncePerCompletedRun)
{
    std::vector<RunSpec> specs = smallGrid();
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("throw@5x*", injector));
    SweepGuard guard = fastGuard();
    guard.injector = &injector;

    std::vector<int> calls(specs.size(), 0);
    std::mutex mutex;
    guard.onRunComplete = [&](size_t index, const SimResults &results) {
        std::lock_guard<std::mutex> lock(mutex);
        ++calls[index];
        EXPECT_EQ(results.workload, specs[index].benchmark);
    };

    SweepOutcome guarded = runSweepGuarded(specs, guard, 2);
    for (size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(calls[i], i == 5 ? 0 : 1) << "spec " << i;
    EXPECT_EQ(guarded.failures.size(), 1u);
}

TEST(GuardedSweep, EmptyGridIsANoOp)
{
    SweepOutcome guarded = runSweepGuarded({}, fastGuard(), 2);
    EXPECT_TRUE(guarded.allCompleted());
    EXPECT_TRUE(guarded.results.empty());
}
