/**
 * @file
 * End-to-end fault-tolerance tests: checkpointed resume must make a
 * sweep killed at an arbitrary point byte-identical to an
 * uninterrupted one. The kill is a real one — the sweep runs in a
 * fork()ed child, the injected crash _Exit()s it mid-grid (after a run
 * completes but *before* it is journaled: the worst-ordered crash),
 * and the parent resumes from the surviving ledger.
 */

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "fault/injector.hh"
#include "fault/ledger.hh"
#include "fault/resilient_sweep.hh"
#include "report/record.hh"

using namespace specfetch;

namespace {

std::vector<RunSpec>
grid()
{
    SimConfig base;
    base.instructionBudget = 40'000;
    std::vector<RunSpec> specs;
    for (const char *name : {"li", "gcc"}) {
        for (FetchPolicy policy :
             {FetchPolicy::Oracle, FetchPolicy::Resume,
              FetchPolicy::Pessimistic}) {
            SimConfig config = base;
            config.policy = policy;
            specs.push_back(RunSpec{name, config});
        }
    }
    return specs;
}

class ResilientSweep : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        specs = grid();
        path = ::testing::TempDir() + "resilient.ledger";
        std::remove(path.c_str());
    }

    void TearDown() override { std::remove(path.c_str()); }

    ResilientSweepOptions
    options()
    {
        ResilientSweepOptions opts;
        opts.ledgerPath = path;
        opts.backoffBaseSeconds = 0.0;
        opts.parallelism = 2;
        // Deterministic record: results + config, no timing.
        opts.makeRecord = [this](size_t index, const SimResults &results) {
            return makeRunRecord(results, specs[index].config);
        };
        return opts;
    }

    /** Concatenated record dumps: the sweep's observable output. */
    static std::string
    dumpRecords(const ResilientSweepResult &result)
    {
        std::string out;
        for (const JsonValue &record : result.records) {
            out += record.dump();
            out += '\n';
        }
        return out;
    }

    /**
     * Run the sweep in a fork()ed child under @p injectorSpec and
     * expect the injected crash to kill it with kCrashExitCode. The
     * child forks before any sweep thread spawns, so the fork is safe.
     */
    void
    runChildExpectingCrash(const std::string &injectorSpec)
    {
        pid_t pid = fork();
        ASSERT_GE(pid, 0) << "fork failed";
        if (pid == 0) {
            FaultInjector injector;
            if (!FaultInjector::parse(injectorSpec, injector))
                _Exit(3);
            ResilientSweepOptions opts = options();
            opts.injector = &injector;
            opts.parallelism = 1;    // deterministic submission order
            runResilientSweep(specs, opts);
            _Exit(0);    // reached only if the injected crash missed
        }
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_EQ(WEXITSTATUS(status), kCrashExitCode)
            << "child should have died of the injected fault";
    }

    std::vector<RunSpec> specs;
    std::string path;
};

TEST_F(ResilientSweep, CleanRunJournalsEveryRun)
{
    ResilientSweepResult result = runResilientSweep(specs, options());
    EXPECT_TRUE(result.allCompleted());
    EXPECT_EQ(result.executedRuns, specs.size());
    EXPECT_EQ(result.resumedRuns, 0u);

    LedgerLoad load;
    ASSERT_TRUE(loadLedger(path, load));
    ASSERT_EQ(load.entries.size(), specs.size());
    EXPECT_EQ(load.corruptLines, 0u);
    EXPECT_FALSE(load.tornTail);
    // Journal order is completion order (the sweep is parallel); the
    // key *set* must cover the grid exactly.
    std::vector<std::string> journaled, expected;
    for (size_t i = 0; i < specs.size(); ++i) {
        journaled.push_back(load.entries[i].key);
        expected.push_back(sweepRunKey(specs[i]));
    }
    std::sort(journaled.begin(), journaled.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(journaled, expected);
}

TEST_F(ResilientSweep, FullResumeExecutesNothing)
{
    ResilientSweepResult clean = runResilientSweep(specs, options());

    ResilientSweepOptions opts = options();
    opts.resume = true;
    ResilientSweepResult resumed = runResilientSweep(specs, opts);

    EXPECT_EQ(resumed.resumedRuns, specs.size());
    EXPECT_EQ(resumed.executedRuns, 0u);
    EXPECT_EQ(dumpRecords(resumed), dumpRecords(clean));
}

TEST_F(ResilientSweep, ResumeAgainstForeignLedgerDegradesToFullRun)
{
    {
        SweepLedger ledger(path);
        JsonValue record = JsonValue::object();
        record.set("record", JsonValue::string("run"));
        ledger.append("someother:0123456789abcdef", record);
    }
    ResilientSweepOptions opts = options();
    opts.resume = true;
    ResilientSweepResult result = runResilientSweep(specs, opts);
    EXPECT_EQ(result.resumedRuns, 0u);
    EXPECT_EQ(result.executedRuns, specs.size());
    EXPECT_TRUE(result.allCompleted());
}

TEST_F(ResilientSweep, KillAndResumeIsByteIdentical)
{
    // The acceptance bar: kill the sweep at three distinct run
    // indices; each resume must reproduce the uninterrupted output
    // byte for byte.
    ResilientSweepResult clean = runResilientSweep(specs, options());
    std::string reference = dumpRecords(clean);
    ASSERT_TRUE(clean.allCompleted());

    for (size_t crash_index : {size_t(1), size_t(3), size_t(5)}) {
        std::remove(path.c_str());
        runChildExpectingCrash("crash@" + std::to_string(crash_index));
        if (HasFatalFailure())
            return;

        // The crash fires after run crash_index completes but before
        // its journal append: the ledger holds exactly the runs
        // before it.
        LedgerLoad load;
        ASSERT_TRUE(loadLedger(path, load));
        EXPECT_EQ(load.entries.size(), crash_index)
            << "crash@" << crash_index;

        ResilientSweepOptions opts = options();
        opts.resume = true;
        ResilientSweepResult resumed = runResilientSweep(specs, opts);
        EXPECT_TRUE(resumed.allCompleted());
        EXPECT_EQ(resumed.resumedRuns, crash_index);
        EXPECT_EQ(resumed.executedRuns, specs.size() - crash_index);
        EXPECT_EQ(dumpRecords(resumed), reference)
            << "resume after crash@" << crash_index
            << " is not byte-identical";
    }
}

TEST_F(ResilientSweep, TornLedgerHealsOnResume)
{
    ResilientSweepResult clean = runResilientSweep(specs, options());
    std::string reference = dumpRecords(clean);

    std::remove(path.c_str());
    runChildExpectingCrash("tear@2");
    if (HasFatalFailure())
        return;

    // The child died mid-append: the tail line is torn.
    LedgerLoad torn;
    ASSERT_TRUE(loadLedger(path, torn));
    EXPECT_TRUE(torn.tornTail);
    EXPECT_EQ(torn.entries.size(), 2u);

    ResilientSweepOptions opts = options();
    opts.resume = true;
    ResilientSweepResult resumed = runResilientSweep(specs, opts);
    EXPECT_TRUE(resumed.allCompleted());
    EXPECT_EQ(resumed.resumedRuns, 2u);
    EXPECT_EQ(dumpRecords(resumed), reference);

    // And the resume rewrote the ledger: the tear is gone.
    LedgerLoad healed;
    ASSERT_TRUE(loadLedger(path, healed));
    EXPECT_FALSE(healed.tornTail);
    EXPECT_EQ(healed.entries.size(), specs.size());
}

TEST_F(ResilientSweep, QuarantineDoesNotKillTheSweep)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("throw@4x*", injector));
    ResilientSweepOptions opts = options();
    opts.injector = &injector;
    opts.parallelism = 1;
    opts.maxAttempts = 2;
    opts.rerunCommand = [](size_t index) {
        return "rerun --index=" + std::to_string(index);
    };

    ResilientSweepResult result = runResilientSweep(specs, opts);
    EXPECT_FALSE(result.allCompleted());
    ASSERT_EQ(result.failures.size(), 1u);
    const SweepFailure &failure = result.failures.front();
    EXPECT_EQ(failure.index, 4u);
    EXPECT_EQ(failure.attempts, 2u);
    EXPECT_EQ(failure.rerunCommand, "rerun --index=4");
    EXPECT_NE(failure.cause.find("injected fault"), std::string::npos);
    EXPECT_TRUE(result.records[4].isNull());

    // Every other run completed and was journaled.
    LedgerLoad load;
    ASSERT_TRUE(loadLedger(path, load));
    EXPECT_EQ(load.entries.size(), specs.size() - 1);

    // A resume picks up only the quarantined run (fault gone now).
    ResilientSweepOptions retry = options();
    retry.resume = true;
    ResilientSweepResult resumed = runResilientSweep(specs, retry);
    EXPECT_TRUE(resumed.allCompleted());
    EXPECT_EQ(resumed.resumedRuns, specs.size() - 1);
    EXPECT_EQ(resumed.executedRuns, 1u);
}

} // namespace
