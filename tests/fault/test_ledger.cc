/**
 * @file
 * Write-ahead ledger tests: append/load round trips, CRC rejection of
 * flipped bytes, torn-tail recovery (the kill-during-append case), and
 * tolerance of corrupt interior lines.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fault/injector.hh"
#include "fault/ledger.hh"
#include "report/json.hh"
#include "util/checksum.hh"

using namespace specfetch;

namespace {

class LedgerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "sweep.ledger";
        std::remove(path.c_str());
    }

    void TearDown() override { std::remove(path.c_str()); }

    JsonValue
    record(uint64_t value)
    {
        JsonValue out = JsonValue::object();
        out.set("record", JsonValue::string("run"));
        out.set("value", JsonValue::integer(value));
        return out;
    }

    std::string
    slurp()
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        return buffer.str();
    }

    void
    spill(const std::string &content)
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << content;
    }

    std::string path;
};

TEST_F(LedgerTest, AppendLoadRoundTrip)
{
    {
        SweepLedger ledger(path);
        ASSERT_TRUE(ledger.ok());
        EXPECT_TRUE(ledger.append("k0", record(10)));
        EXPECT_TRUE(ledger.append("k1", record(11)));
        EXPECT_EQ(ledger.entriesWritten(), 2u);
    }
    LedgerLoad load;
    ASSERT_TRUE(loadLedger(path, load));
    ASSERT_EQ(load.entries.size(), 2u);
    EXPECT_EQ(load.entries[0].key, "k0");
    EXPECT_EQ(load.entries[1].key, "k1");
    EXPECT_EQ(load.entries[0].record, record(10));
    EXPECT_EQ(load.entries[1].record, record(11));
    EXPECT_EQ(load.corruptLines, 0u);
    EXPECT_FALSE(load.tornTail);
}

TEST_F(LedgerTest, MissingFileFailsWithReason)
{
    LedgerLoad load;
    std::string error;
    EXPECT_FALSE(loadLedger(path + ".nope", load, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST_F(LedgerTest, EmptyFileLoadsEmpty)
{
    spill("");
    LedgerLoad load;
    ASSERT_TRUE(loadLedger(path, load));
    EXPECT_TRUE(load.entries.empty());
    EXPECT_FALSE(load.tornTail);
}

TEST_F(LedgerTest, TornTailIsDroppedNotFatal)
{
    {
        SweepLedger ledger(path);
        ledger.append("k0", record(10));
        ledger.appendTorn("k1", record(11));
    }
    LedgerLoad load;
    ASSERT_TRUE(loadLedger(path, load));
    ASSERT_EQ(load.entries.size(), 1u);
    EXPECT_EQ(load.entries[0].key, "k0");
    EXPECT_TRUE(load.tornTail);
    EXPECT_EQ(load.corruptLines, 0u);
}

TEST_F(LedgerTest, FlippedByteFailsTheLineOnly)
{
    {
        SweepLedger ledger(path);
        ledger.append("k0", record(10));
        ledger.append("k1", record(11));
        ledger.append("k2", record(12));
    }
    std::string content = slurp();
    // Flip one payload byte of the middle line.
    size_t second_line = content.find('\n') + 1;
    content[second_line + 15] ^= 0x04;
    spill(content);

    LedgerLoad load;
    ASSERT_TRUE(loadLedger(path, load));
    ASSERT_EQ(load.entries.size(), 2u);
    EXPECT_EQ(load.entries[0].key, "k0");
    EXPECT_EQ(load.entries[1].key, "k2");
    EXPECT_EQ(load.corruptLines, 1u);
    EXPECT_FALSE(load.tornTail);
}

TEST_F(LedgerTest, GarbageLinesAreSkipped)
{
    {
        SweepLedger ledger(path);
        ledger.append("k0", record(10));
    }
    std::string content = "not a ledger line\nzz\n" + slurp() +
        "deadbeef {\"key\":\"x\"}\n";
    spill(content);

    LedgerLoad load;
    ASSERT_TRUE(loadLedger(path, load));
    ASSERT_EQ(load.entries.size(), 1u);
    EXPECT_EQ(load.entries[0].key, "k0");
    EXPECT_EQ(load.corruptLines, 3u);
}

TEST_F(LedgerTest, ChecksummedButMisshapenEntryIsRejected)
{
    // Lines whose CRC is honest but whose payload lacks the
    // {key: string, record: object} shape: rejected on shape, not
    // crashed on downstream.
    {
        SweepLedger ledger(path);
        ledger.append("good", record(1));
    }
    std::string content = slurp();
    for (const char *payload :
         {"[1,2,3]", "{\"key\":\"x\"}", "{\"key\":7,\"record\":{}}",
          "{\"key\":\"x\",\"record\":\"not an object\"}"}) {
        std::string text = payload;
        content += crcHex(crc32(text)) + " " + text + "\n";
    }
    spill(content);

    LedgerLoad load;
    ASSERT_TRUE(loadLedger(path, load));
    EXPECT_EQ(load.entries.size(), 1u);
    EXPECT_EQ(load.corruptLines, 4u);
}

TEST_F(LedgerTest, UnwritablePathReportsNotOk)
{
    SweepLedger ledger("/nonexistent-dir/sweep.ledger");
    EXPECT_FALSE(ledger.ok());
    EXPECT_FALSE(ledger.append("k", record(1)));
}

TEST_F(LedgerTest, InjectedEnospcFailsWithoutCorrupting)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("enospc@1", injector));
    {
        SweepLedger ledger(path);
        ledger.setInjector(&injector);
        EXPECT_TRUE(ledger.append("k0", record(0)));
        EXPECT_FALSE(ledger.append("k1", record(1))); // injected
        EXPECT_TRUE(ledger.append("k2", record(2)));
        EXPECT_EQ(ledger.entriesWritten(), 2u);
    }
    LedgerLoad load;
    ASSERT_TRUE(loadLedger(path, load));
    ASSERT_EQ(load.entries.size(), 2u);
    EXPECT_EQ(load.entries[0].key, "k0");
    EXPECT_EQ(load.entries[1].key, "k2");
    EXPECT_EQ(load.corruptLines, 0u);
    EXPECT_FALSE(load.tornTail);
}

TEST_F(LedgerTest, InjectedShortWriteResyncsNextAppend)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("shortwrite@1", injector));
    {
        SweepLedger ledger(path);
        ledger.setInjector(&injector);
        EXPECT_TRUE(ledger.append("k0", record(0)));
        EXPECT_FALSE(ledger.append("k1", record(1))); // torn prefix
        // The resync newline fences the torn frame off from this one.
        EXPECT_TRUE(ledger.append("k2", record(2)));
    }
    LedgerLoad load;
    ASSERT_TRUE(loadLedger(path, load));
    ASSERT_EQ(load.entries.size(), 2u);
    EXPECT_EQ(load.entries[0].key, "k0");
    EXPECT_EQ(load.entries[1].key, "k2");
    EXPECT_EQ(load.corruptLines, 1u); // the fenced torn prefix
    EXPECT_FALSE(load.tornTail);
}

TEST_F(LedgerTest, ShortWriteAtTailIsDroppedAsTorn)
{
    FaultInjector injector;
    ASSERT_TRUE(FaultInjector::parse("shortwrite@1", injector));
    {
        SweepLedger ledger(path);
        ledger.setInjector(&injector);
        EXPECT_TRUE(ledger.append("k0", record(0)));
        EXPECT_FALSE(ledger.append("k1", record(1)));
        // Process dies here: the torn frame is the final line.
    }
    LedgerLoad load;
    ASSERT_TRUE(loadLedger(path, load));
    ASSERT_EQ(load.entries.size(), 1u);
    EXPECT_EQ(load.entries[0].key, "k0");
    EXPECT_TRUE(load.tornTail);
}

TEST_F(LedgerTest, SigtermFlushKeepsJournaledRuns)
{
    // An orchestrator SIGTERM must not lose runs that already
    // completed: the signal-flush handler fsyncs the ledger before
    // the default disposition kills the process.
    pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        SweepLedger ledger(path);
        SweepLedger::installSignalFlush();
        for (uint64_t i = 0; i < 5; ++i) {
            std::string key = "k";
            key += std::to_string(i);
            ledger.append(key, record(i));
        }
        std::raise(SIGTERM);
        _exit(0); // unreachable: SIGTERM terminates after the flush
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGTERM);

    LedgerLoad load;
    ASSERT_TRUE(loadLedger(path, load));
    EXPECT_EQ(load.entries.size(), 5u);
    EXPECT_EQ(load.corruptLines, 0u);
    EXPECT_FALSE(load.tornTail);
}

} // namespace
