/** @file Unit tests for stats/stats.hh. */

#include "stats/stats.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(Counter, StartsAtZero)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, IncrementForms)
{
    Counter counter;
    ++counter;
    counter++;
    counter += 5;
    EXPECT_EQ(counter.value(), 7u);
}

TEST(Counter, PreIncrementReturnsSelf)
{
    Counter counter;
    Counter &returned = ++counter;
    EXPECT_EQ(&returned, &counter);
    EXPECT_EQ((++counter).value(), 2u);
}

TEST(Counter, PostIncrementReturnsValueBeforeBump)
{
    Counter counter;
    counter += 41;
    Counter old = counter++;
    EXPECT_EQ(old.value(), 41u);
    EXPECT_EQ(counter.value(), 42u);
}

TEST(Counter, CompoundAssignReturnsSelf)
{
    Counter counter;
    (counter += 2) += 3;
    EXPECT_EQ(counter.value(), 5u);
}

TEST(Counter, Reset)
{
    Counter counter;
    counter += 10;
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(RatioOf, Normal)
{
    EXPECT_DOUBLE_EQ(ratioOf(1, 4), 0.25);
    EXPECT_DOUBLE_EQ(ratioOf(0, 4), 0.0);
}

TEST(RatioOf, ZeroDenominatorIsZero)
{
    EXPECT_DOUBLE_EQ(ratioOf(5, 0), 0.0);
}

} // namespace
} // namespace specfetch
