/** @file Unit tests for stats/histogram.hh. */

#include "stats/histogram.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(Histogram, EmptyState)
{
    Histogram h(4, 10);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, BucketsFill)
{
    Histogram h(4, 10);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(39);
    ASSERT_EQ(h.buckets().size(), 5u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(4, 10);
    h.sample(40);
    h.sample(1000000);
    EXPECT_EQ(h.buckets().back(), 2u);
}

TEST(Histogram, SummaryStats)
{
    Histogram h(10, 5);
    h.sample(2);
    h.sample(4);
    h.sample(12);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 18u);
    EXPECT_EQ(h.minValue(), 2u);
    EXPECT_EQ(h.maxValue(), 12u);
    EXPECT_DOUBLE_EQ(h.mean(), 6.0);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h(4, 10);
    h.sample(5, 7);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.sum(), 35u);
    EXPECT_EQ(h.buckets()[0], 7u);
}

TEST(Histogram, ZeroWeightIgnored)
{
    Histogram h(4, 10);
    h.sample(5, 0);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, Percentile)
{
    Histogram h(10, 10);
    for (uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_LE(h.percentile(0.5), 59u);
    EXPECT_GE(h.percentile(0.5), 40u);
    EXPECT_GE(h.percentile(1.0), 90u);
}

TEST(Histogram, Reset)
{
    Histogram h(4, 10);
    h.sample(3);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.buckets()[0], 0u);
}

TEST(Histogram, RenderMentionsStats)
{
    Histogram h(4, 10);
    h.sample(3);
    h.sample(25);
    std::string out = h.render("lat");
    EXPECT_NE(out.find("lat"), std::string::npos);
    EXPECT_NE(out.find("n=2"), std::string::npos);
    EXPECT_NE(out.find("[0,10)"), std::string::npos);
    EXPECT_NE(out.find("[20,30)"), std::string::npos);
}

TEST(HistogramDeath, RejectsZeroBuckets)
{
    EXPECT_DEATH({ Histogram h(0, 10); }, "bucket");
}

TEST(HistogramDeath, RejectsZeroWidth)
{
    EXPECT_DEATH({ Histogram h(4, 0); }, "width");
}

} // namespace
} // namespace specfetch
