/** @file Unit tests for stats/stat_group.hh. */

#include "stats/stat_group.hh"

#include <gtest/gtest.h>

#include <map>

namespace specfetch {
namespace {

TEST(StatGroup, CountersVisitWithQualifiedNames)
{
    Counter hits;
    hits += 3;
    StatGroup group("cache");
    group.addCounter("hits", hits, "cache hits");

    std::map<std::string, double> seen;
    group.visit([&](const std::string &name, double value,
                    const std::string &) { seen[name] = value; });
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_DOUBLE_EQ(seen.at("cache.hits"), 3.0);
}

TEST(StatGroup, FormulaEvaluatesLazily)
{
    Counter hits;
    Counter total;
    StatGroup group("cache");
    group.addFormula("hit_rate",
                     [&] { return ratioOf(hits.value(), total.value()); },
                     "hit ratio");
    hits += 3;
    total += 4;
    std::map<std::string, double> seen;
    group.visit([&](const std::string &name, double value,
                    const std::string &) { seen[name] = value; });
    EXPECT_DOUBLE_EQ(seen.at("cache.hit_rate"), 0.75);
}

TEST(StatGroup, NestedGroupsQualifyNames)
{
    Counter c;
    c += 1;
    StatGroup child("l1");
    child.addCounter("misses", c, "");
    StatGroup parent("system");
    parent.addChild(child);

    std::map<std::string, double> seen;
    parent.visit([&](const std::string &name, double value,
                     const std::string &) { seen[name] = value; });
    EXPECT_EQ(seen.count("system.l1.misses"), 1u);
}

TEST(StatGroup, DumpContainsDescriptions)
{
    Counter c;
    c += 42;
    StatGroup group("g");
    group.addCounter("events", c, "number of events");
    std::string out = group.dump();
    EXPECT_NE(out.find("g.events"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
    EXPECT_NE(out.find("number of events"), std::string::npos);
}

TEST(StatGroup, DumpFormatsFractions)
{
    StatGroup group("g");
    group.addFormula("ratio", [] { return 0.125; }, "");
    std::string out = group.dump();
    EXPECT_NE(out.find("0.125000"), std::string::npos);
}

} // namespace
} // namespace specfetch
