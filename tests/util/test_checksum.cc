/**
 * @file
 * Checksum-layer tests: the CRC-32 must match the standard IEEE
 * check value (interoperability with any external tool reading the
 * ledger), hash64 must be deterministic, seed-separable and
 * avalanche-sensitive, and the hex tag must round-trip.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/checksum.hh"

using namespace specfetch;

TEST(Crc32, MatchesTheStandardCheckValue)
{
    // The canonical CRC-32/IEEE test vector.
    EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInputIsZero)
{
    EXPECT_EQ(crc32(std::string()), 0u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Crc32, SingleBitFlipChangesTheTag)
{
    std::string text = "the quick brown fox jumps over the lazy dog";
    uint32_t clean = crc32(text);
    for (size_t byte = 0; byte < text.size(); ++byte) {
        std::string flipped = text;
        flipped[byte] = static_cast<char>(flipped[byte] ^ 0x01);
        EXPECT_NE(crc32(flipped), clean) << "byte " << byte;
    }
}

TEST(CrcHex, RoundTripsAndIsFixedWidth)
{
    for (uint32_t value : {0u, 1u, 0xCBF43926u, 0xFFFFFFFFu, 0x00000300u}) {
        std::string hex = crcHex(value);
        EXPECT_EQ(hex.size(), 8u) << hex;
        uint32_t back = 0;
        ASSERT_TRUE(parseCrcHex(hex, back)) << hex;
        EXPECT_EQ(back, value);
    }
}

TEST(CrcHex, ParserRejectsGarbage)
{
    uint32_t out;
    EXPECT_FALSE(parseCrcHex("", out));
    EXPECT_FALSE(parseCrcHex("1234567", out));      // too short
    EXPECT_FALSE(parseCrcHex("123456789", out));    // too long
    EXPECT_FALSE(parseCrcHex("1234567g", out));     // non-hex
    EXPECT_FALSE(parseCrcHex("0x123456", out));     // no prefix form
}

TEST(Hash64, DeterministicAcrossCalls)
{
    std::string text = "record-once/replay-many";
    EXPECT_EQ(hash64(text), hash64(text));
    EXPECT_EQ(hash64(text, 7), hash64(text, 7));
}

TEST(Hash64, SeedSeparatesFamilies)
{
    std::string text = "identical input";
    EXPECT_NE(hash64(text, 1), hash64(text, 2));
}

TEST(Hash64, SensitiveToEveryByte)
{
    // All lengths through a few lanes plus tails, so both the 8-byte
    // lane path and the tail path are covered.
    for (size_t len : {1u, 3u, 7u, 8u, 9u, 16u, 17u, 31u}) {
        std::vector<uint8_t> bytes(len, 0xA5);
        uint64_t clean = hash64(bytes.data(), bytes.size());
        for (size_t i = 0; i < len; ++i) {
            bytes[i] ^= 0x10;
            EXPECT_NE(hash64(bytes.data(), bytes.size()), clean)
                << "len " << len << " byte " << i;
            bytes[i] ^= 0x10;
        }
    }
}

TEST(Hash64, EmptyInputsWithDistinctSeedsDiffer)
{
    EXPECT_NE(hash64(nullptr, 0, 1), hash64(nullptr, 0, 2));
}
