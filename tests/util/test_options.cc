/** @file Unit tests for util/options.hh. */

#include "util/options.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

OptionParser
makeParser()
{
    OptionParser opts("prog", "test parser");
    opts.addString("name", "default", "a string");
    opts.addCount("budget", 1000, "a count");
    opts.addSize("cache", 8192, "a size");
    opts.addDouble("ratio", 0.5, "a double");
    opts.addFlag("verbose", "a flag");
    return opts;
}

TEST(Options, DefaultsApply)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"prog"};
    ASSERT_TRUE(opts.parse(1, argv));
    EXPECT_EQ(opts.getString("name"), "default");
    EXPECT_EQ(opts.getCount("budget"), 1000u);
    EXPECT_EQ(opts.getSize("cache"), 8192u);
    EXPECT_DOUBLE_EQ(opts.getDouble("ratio"), 0.5);
    EXPECT_FALSE(opts.getFlag("verbose"));
    EXPECT_FALSE(opts.wasSet("name"));
}

TEST(Options, EqualsSyntax)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"prog", "--name=zed", "--budget=2K",
                          "--cache=32K", "--ratio=0.25"};
    ASSERT_TRUE(opts.parse(5, argv));
    EXPECT_EQ(opts.getString("name"), "zed");
    EXPECT_EQ(opts.getCount("budget"), 2000u);
    EXPECT_EQ(opts.getSize("cache"), 32768u);
    EXPECT_DOUBLE_EQ(opts.getDouble("ratio"), 0.25);
    EXPECT_TRUE(opts.wasSet("name"));
}

TEST(Options, SpaceSyntax)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"prog", "--name", "abc"};
    ASSERT_TRUE(opts.parse(3, argv));
    EXPECT_EQ(opts.getString("name"), "abc");
}

TEST(Options, BareFlag)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"prog", "--verbose"};
    ASSERT_TRUE(opts.parse(2, argv));
    EXPECT_TRUE(opts.getFlag("verbose"));
}

TEST(Options, FlagWithValue)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"prog", "--verbose=false"};
    ASSERT_TRUE(opts.parse(2, argv));
    EXPECT_FALSE(opts.getFlag("verbose"));
}

TEST(Options, Positionals)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"prog", "one", "--verbose", "two"};
    ASSERT_TRUE(opts.parse(4, argv));
    ASSERT_EQ(opts.positional().size(), 2u);
    EXPECT_EQ(opts.positional()[0], "one");
    EXPECT_EQ(opts.positional()[1], "two");
}

TEST(Options, UnknownOptionFails)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_FALSE(opts.parse(2, argv));
}

TEST(Options, BadCountFails)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"prog", "--budget=soon"};
    EXPECT_FALSE(opts.parse(2, argv));
}

TEST(Options, MissingValueFails)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"prog", "--name"};
    EXPECT_FALSE(opts.parse(2, argv));
}

TEST(Options, HelpReturnsFalse)
{
    OptionParser opts = makeParser();
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(opts.parse(2, argv));
}

TEST(Options, HelpTextMentionsAllOptions)
{
    OptionParser opts = makeParser();
    std::string help = opts.helpText();
    for (const char *name : {"name", "budget", "cache", "ratio",
                             "verbose", "help"}) {
        EXPECT_NE(help.find(name), std::string::npos) << name;
    }
}

} // namespace
} // namespace specfetch
