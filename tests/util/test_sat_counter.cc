/** @file Unit tests for util/sat_counter.hh. */

#include "util/sat_counter.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(SatCounter, DefaultIsWeaklyNotTaken)
{
    SatCounter counter;    // 2 bits
    EXPECT_EQ(counter.value(), 1u);
    EXPECT_FALSE(counter.predictTaken());
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter counter(2, 0);
    for (int i = 0; i < 10; ++i)
        counter.increment();
    EXPECT_EQ(counter.value(), 3u);
    EXPECT_TRUE(counter.predictTaken());
    EXPECT_TRUE(counter.isStrong());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter counter(2, 3);
    for (int i = 0; i < 10; ++i)
        counter.decrement();
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_FALSE(counter.predictTaken());
    EXPECT_TRUE(counter.isStrong());
}

TEST(SatCounter, HysteresisNeedsTwoFlips)
{
    SatCounter counter(2, 3);    // strongly taken
    counter.update(false);
    EXPECT_TRUE(counter.predictTaken());   // weakened but still taken
    counter.update(false);
    EXPECT_FALSE(counter.predictTaken());  // flipped after second miss
}

TEST(SatCounter, MidpointThreshold)
{
    // 2-bit: values 2 and 3 predict taken; 0 and 1 not.
    for (unsigned value = 0; value < 4; ++value) {
        SatCounter counter(2, value);
        EXPECT_EQ(counter.predictTaken(), value >= 2) << "value " << value;
    }
}

TEST(SatCounter, OneBitCounterFlipsImmediately)
{
    SatCounter counter(1, 0);
    EXPECT_FALSE(counter.predictTaken());
    counter.update(true);
    EXPECT_TRUE(counter.predictTaken());
    counter.update(false);
    EXPECT_FALSE(counter.predictTaken());
}

TEST(SatCounter, ThreeBitRange)
{
    SatCounter counter(3, 0);
    for (int i = 0; i < 100; ++i)
        counter.increment();
    EXPECT_EQ(counter.value(), 7u);
    EXPECT_EQ(counter.bits(), 3u);
}

TEST(SatCounter, InitialValueClampedToMax)
{
    SatCounter counter(2, 99);
    EXPECT_EQ(counter.value(), 3u);
}

TEST(SatCounterDeath, RejectsZeroWidth)
{
    EXPECT_DEATH({ SatCounter counter(0); }, "width");
}

TEST(SatCounterDeath, RejectsHugeWidth)
{
    EXPECT_DEATH({ SatCounter counter(9); }, "width");
}

} // namespace
} // namespace specfetch
