/** @file Unit tests for util/csv.hh. */

#include "util/csv.hh"

#include <gtest/gtest.h>

#include <sstream>

namespace specfetch {
namespace {

TEST(Csv, PlainRow)
{
    std::ostringstream out;
    CsvWriter writer(out);
    writer.writeRow({"a", "b", "c"});
    EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, EscapesCommas)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapesQuotes)
{
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapesNewlines)
{
    EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(Csv, PlainFieldUntouched)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(Csv, MixedRow)
{
    std::ostringstream out;
    CsvWriter writer(out);
    writer.writeRow({"x", "1,5", "q\"q"});
    EXPECT_EQ(out.str(), "x,\"1,5\",\"q\"\"q\"\n");
}

} // namespace
} // namespace specfetch
