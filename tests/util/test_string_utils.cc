/** @file Unit tests for util/string_utils.hh. */

#include "util/string_utils.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(StringUtils, SplitBasic)
{
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(StringUtils, SplitPreservesEmptyFields)
{
    auto parts = split(",x,,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "");
}

TEST(StringUtils, SplitNoSeparator)
{
    auto parts = split("hello", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "hello");
}

TEST(StringUtils, Trim)
{
    EXPECT_EQ(trim("  abc  "), "abc");
    EXPECT_EQ(trim("abc"), "abc");
    EXPECT_EQ(trim("\t x \n"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(StringUtils, ToLower)
{
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_EQ(toLower("123!X"), "123!x");
}

TEST(StringUtils, FormatFixed)
{
    EXPECT_EQ(formatFixed(1.2345, 2), "1.23");
    EXPECT_EQ(formatFixed(1.2355, 2), "1.24");
    EXPECT_EQ(formatFixed(0.0, 3), "0.000");
    EXPECT_EQ(formatFixed(-2.5, 1), "-2.5");
}

TEST(StringUtils, FormatWithCommas)
{
    EXPECT_EQ(formatWithCommas(0), "0");
    EXPECT_EQ(formatWithCommas(999), "999");
    EXPECT_EQ(formatWithCommas(1000), "1,000");
    EXPECT_EQ(formatWithCommas(1234567), "1,234,567");
    EXPECT_EQ(formatWithCommas(1000000000ull), "1,000,000,000");
}

TEST(StringUtils, ParseCountPlain)
{
    uint64_t v = 0;
    ASSERT_TRUE(parseCount("1234", v));
    EXPECT_EQ(v, 1234u);
}

TEST(StringUtils, ParseCountSuffixes)
{
    uint64_t v = 0;
    ASSERT_TRUE(parseCount("2K", v));
    EXPECT_EQ(v, 2000u);
    ASSERT_TRUE(parseCount("3M", v));
    EXPECT_EQ(v, 3'000'000u);
    ASSERT_TRUE(parseCount("1G", v));
    EXPECT_EQ(v, 1'000'000'000u);
    ASSERT_TRUE(parseCount("5m", v));    // case-insensitive
    EXPECT_EQ(v, 5'000'000u);
}

TEST(StringUtils, ParseSizeBinarySuffixes)
{
    uint64_t v = 0;
    ASSERT_TRUE(parseSize("8K", v));
    EXPECT_EQ(v, 8192u);
    ASSERT_TRUE(parseSize("32KB", v));
    EXPECT_EQ(v, 32768u);
    ASSERT_TRUE(parseSize("2M", v));
    EXPECT_EQ(v, 2u * 1024 * 1024);
}

TEST(StringUtils, ParseCountRejectsGarbage)
{
    uint64_t v = 0;
    EXPECT_FALSE(parseCount("", v));
    EXPECT_FALSE(parseCount("abc", v));
    EXPECT_FALSE(parseCount("12x", v));
    EXPECT_FALSE(parseCount("K", v));
    EXPECT_FALSE(parseCount("KB", v));
}

TEST(StringUtils, ParseBool)
{
    bool v = false;
    ASSERT_TRUE(parseBool("true", v));
    EXPECT_TRUE(v);
    ASSERT_TRUE(parseBool("Yes", v));
    EXPECT_TRUE(v);
    ASSERT_TRUE(parseBool("0", v));
    EXPECT_FALSE(v);
    ASSERT_TRUE(parseBool("off", v));
    EXPECT_FALSE(v);
    EXPECT_FALSE(parseBool("maybe", v));
}

} // namespace
} // namespace specfetch
