/** @file Unit tests for util/bit_ops.hh. */

#include "util/bit_ops.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(BitOps, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(4097));
    EXPECT_TRUE(isPowerOfTwo(uint64_t{1} << 63));
    EXPECT_FALSE(isPowerOfTwo(~uint64_t{0}));
}

TEST(BitOps, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4), 2u);
    EXPECT_EQ(log2Floor(1023), 9u);
    EXPECT_EQ(log2Floor(1024), 10u);
    EXPECT_EQ(log2Floor(uint64_t{1} << 63), 63u);
}

TEST(BitOps, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
    EXPECT_EQ(log2Ceil(1024), 10u);
    EXPECT_EQ(log2Ceil(1025), 11u);
}

TEST(BitOps, Log2RoundTripOnPowersOfTwo)
{
    for (unsigned bit = 0; bit < 64; ++bit) {
        uint64_t value = uint64_t{1} << bit;
        EXPECT_EQ(log2Floor(value), bit);
        EXPECT_EQ(log2Ceil(value), bit);
    }
}

TEST(BitOps, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(63), ~uint64_t{0} >> 1);
    EXPECT_EQ(mask(64), ~uint64_t{0});
    EXPECT_EQ(mask(100), ~uint64_t{0});
}

TEST(BitOps, Bits)
{
    EXPECT_EQ(bits(0xabcd, 0, 4), 0xdu);
    EXPECT_EQ(bits(0xabcd, 4, 4), 0xcu);
    EXPECT_EQ(bits(0xabcd, 8, 8), 0xabu);
    EXPECT_EQ(bits(0xff, 4, 0), 0u);
}

TEST(BitOps, AlignUpDown)
{
    EXPECT_EQ(alignUp(0, 32), 0u);
    EXPECT_EQ(alignUp(1, 32), 32u);
    EXPECT_EQ(alignUp(32, 32), 32u);
    EXPECT_EQ(alignUp(33, 32), 64u);
    EXPECT_EQ(alignDown(0, 32), 0u);
    EXPECT_EQ(alignDown(31, 32), 0u);
    EXPECT_EQ(alignDown(32, 32), 32u);
    EXPECT_EQ(alignDown(63, 32), 32u);
}

} // namespace
} // namespace specfetch
