/** @file Unit tests for util/table.hh. */

#include "util/table.hh"

#include <gtest/gtest.h>

namespace specfetch {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable table;
    table.setColumns({"Name", "Value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    std::string out = table.render();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, AlignsColumns)
{
    TextTable table;
    table.setColumns({"N", "V"});
    table.addRow({"aaa", "1"});
    table.addRow({"b", "22"});
    std::string out = table.render();
    // First column left-aligned, second right-aligned:
    // "aaa |  1" and "b   | 22".
    EXPECT_NE(out.find("aaa |  1"), std::string::npos) << out;
    EXPECT_NE(out.find("b   | 22"), std::string::npos) << out;
}

TEST(TextTable, SeparatorLine)
{
    TextTable table;
    table.setColumns({"A"});
    table.addRow({"1"});
    table.addSeparator();
    table.addRow({"2"});
    std::string out = table.render();
    // Header separator plus the explicit one.
    size_t first = out.find("-\n");
    EXPECT_NE(first, std::string::npos);
    EXPECT_NE(out.find("-\n", first + 1), std::string::npos);
}

TEST(TextTable, RowCount)
{
    TextTable table;
    table.setColumns({"A"});
    EXPECT_EQ(table.rowCount(), 0u);
    table.addRow({"1"});
    table.addSeparator();
    table.addRow({"2"});
    EXPECT_EQ(table.rowCount(), 3u);
}

TEST(TextTable, CustomAlignment)
{
    TextTable table;
    table.setColumns({"A", "B"});
    table.setAlign(1, TextTable::Align::Left);
    table.addRow({"x", "y"});
    table.addRow({"x", "longer"});
    std::string out = table.render();
    EXPECT_NE(out.find("x | y"), std::string::npos) << out;
}

TEST(TextTable, RenderCsvBasic)
{
    TextTable table;
    table.setColumns({"Name", "Value"});
    table.addRow({"alpha", "1"});
    table.addSeparator();    // separators are not CSV rows
    table.addRow({"b,with,commas", "2"});
    std::string csv = table.renderCsv();
    EXPECT_EQ(csv,
              "Name,Value\n"
              "alpha,1\n"
              "\"b,with,commas\",2\n");
}

TEST(TextTable, RenderCsvHeaderOnly)
{
    TextTable table;
    table.setColumns({"A", "B"});
    EXPECT_EQ(table.renderCsv(), "A,B\n");
}

TEST(TextTableDeath, MismatchedRowPanics)
{
    TextTable table;
    table.setColumns({"A", "B"});
    EXPECT_DEATH(table.addRow({"only one"}), "cells");
}

} // namespace
} // namespace specfetch
