/** @file Unit tests for util/logging.hh. */

#include "util/logging.hh"

#include <gtest/gtest.h>

#include <vector>

namespace specfetch {
namespace {

/** Captures messages instead of printing them. */
class CaptureLogger : public Logger
{
  public:
    void
    emit(Level level, const std::string &message) override
    {
        entries.push_back({level, message});
    }

    std::vector<std::pair<Level, std::string>> entries;
};

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { previous = Logger::exchange(&capture); }
    void TearDown() override { Logger::exchange(previous); }

    CaptureLogger capture;
    Logger *previous = nullptr;
};

TEST_F(LoggingTest, WarnGoesToLogger)
{
    warn("count=%d", 42);
    ASSERT_EQ(capture.entries.size(), 1u);
    EXPECT_EQ(capture.entries[0].first, Logger::Level::Warn);
    EXPECT_EQ(capture.entries[0].second, "count=42");
}

TEST_F(LoggingTest, InformFormatsStrings)
{
    inform("hello %s", "world");
    ASSERT_EQ(capture.entries.size(), 1u);
    EXPECT_EQ(capture.entries[0].first, Logger::Level::Inform);
    EXPECT_EQ(capture.entries[0].second, "hello world");
}

TEST_F(LoggingTest, HackLevel)
{
    hack("shortcut");
    ASSERT_EQ(capture.entries.size(), 1u);
    EXPECT_EQ(capture.entries[0].first, Logger::Level::Hack);
}

TEST_F(LoggingTest, FormatHandlesLongStrings)
{
    std::string big(5000, 'x');
    inform("%s", big.c_str());
    ASSERT_EQ(capture.entries.size(), 1u);
    EXPECT_EQ(capture.entries[0].second.size(), 5000u);
}

TEST_F(LoggingTest, ExchangeNullRestoresDefault)
{
    Logger *mine = Logger::exchange(nullptr);
    EXPECT_EQ(mine, &capture);
    // Restore for TearDown symmetry.
    Logger::exchange(&capture);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "boom 7");
}

TEST(LoggingDeath, PanicIfTriggersOnTrue)
{
    EXPECT_DEATH(panic_if(true, "condition failed"), "condition failed");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}

TEST(LoggingDeath, FatalIfFalseDoesNothing)
{
    fatal_if(false, "never happens");
    panic_if(false, "never happens");
    SUCCEED();
}

} // namespace
} // namespace specfetch
