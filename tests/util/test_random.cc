/** @file Unit and statistical tests for util/random.hh. */

#include "util/random.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace specfetch {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next64() == b.next64();
    EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedWorks)
{
    Rng rng(0);
    std::set<uint64_t> values;
    for (int i = 0; i < 32; ++i)
        values.insert(rng.next64());
    EXPECT_GT(values.size(), 30u);    // not stuck at a fixed point
}

TEST(Rng, ReseedRestartsStream)
{
    Rng rng(7);
    uint64_t first = rng.next64();
    rng.next64();
    rng.reseed(7);
    EXPECT_EQ(rng.next64(), first);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneIsZero)
{
    Rng rng(3);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform)
{
    Rng rng(11);
    const int buckets = 8;
    const int n = 80000;
    int counts[buckets] = {};
    for (int i = 0; i < n; ++i)
        counts[rng.nextBelow(buckets)]++;
    for (int b = 0; b < buckets; ++b) {
        EXPECT_NEAR(counts[b], n / buckets, n / buckets / 5)
            << "bucket " << b;
    }
}

TEST(Rng, NextRangeInclusiveBounds)
{
    Rng rng(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextRangeSingleton)
{
    Rng rng(5);
    EXPECT_EQ(rng.nextRange(42, 42), 42);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double v = rng.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, NextBoolMatchesProbability)
{
    Rng rng(13);
    int heads = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        heads += rng.nextBool(0.3);
    EXPECT_NEAR(heads / double(n), 0.3, 0.02);
}

TEST(Rng, NextBoolExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, NextLengthMeanAndMinimum)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        uint64_t v = rng.nextLength(6.0);
        ASSERT_GE(v, 1u);
        sum += static_cast<double>(v);
    }
    EXPECT_NEAR(sum / n, 6.0, 0.5);
}

TEST(Rng, NextLengthDegenerateMean)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextLength(1.0), 1u);
}

TEST(Rng, NextWeightedRespectsWeights)
{
    Rng rng(19);
    std::vector<double> weights{1.0, 3.0, 0.0};
    int counts[3] = {};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        counts[rng.nextWeighted(weights)]++;
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[1] / double(n), 0.75, 0.02);
}

TEST(Rng, NextZipfSkewsTowardHead)
{
    Rng rng(23);
    const size_t n = 10;
    const int draws = 50000;
    std::vector<int> counts(n, 0);
    for (int i = 0; i < draws; ++i)
        counts[rng.nextZipf(n, 1.0)]++;
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[4]);
    EXPECT_GT(counts[0], counts[n - 1] * 4);
}

TEST(Rng, NextZipfZeroExponentIsUniform)
{
    Rng rng(29);
    const size_t n = 4;
    const int draws = 40000;
    std::vector<int> counts(n, 0);
    for (int i = 0; i < draws; ++i)
        counts[rng.nextZipf(n, 0.0)]++;
    for (size_t k = 0; k < n; ++k)
        EXPECT_NEAR(counts[k], draws / 4.0, draws / 20.0);
}

TEST(Rng, ForkDivergesFromParent)
{
    Rng parent(31);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next64() == child.next64();
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace specfetch
