/**
 * @file
 * Regenerates paper Table 5: total ISPI per policy when one, two, and
 * four unresolved branches are allowed (8K cache, 5-cycle penalty).
 */

#include <cstdio>

#include "bench_support.hh"
#include "paper_data.hh"

using namespace specfetch;
using namespace specfetch::bench;

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "table5_speculation_depth",
                           "effect of speculation depth")) {
        return parseExitCode();
    }
    SimConfig base;
    base.instructionBudget = benchMain().budget;
    banner("Table 5", "effect of speculation depth", base);

    const unsigned depths[3] = {1, 2, 4};
    std::vector<RunSpec> specs;
    for (const std::string &name : benchmarkNames()) {
        for (unsigned depth : depths) {
            for (FetchPolicy policy : allPolicies()) {
                SimConfig config = base;
                config.maxUnresolved = depth;
                config.policy = policy;
                specs.push_back(RunSpec{name, config});
            }
        }
    }
    std::vector<SimResults> results = runSweepReported(specs);

    for (size_t d = 0; d < 3; ++d) {
        std::printf("--- %u unresolved branch%s ---\n", depths[d],
                    depths[d] == 1 ? "" : "es");
        TextTable table;
        table.setColumns({"Program", "Oracle", "Opt", "Res", "Pess",
                          "Dec"});
        std::vector<double> avg(5, 0.0);
        const auto &names = benchmarkNames();
        for (size_t b = 0; b < names.size(); ++b) {
            const paper::Table5Row &p = paper::kTable5[b];
            const double *paper_row = d == 0   ? p.depth1
                                      : d == 1 ? p.depth2
                                               : p.depth4;
            std::vector<std::string> row{names[b]};
            for (size_t pol = 0; pol < 5; ++pol) {
                const SimResults &r =
                    results[(b * 3 + d) * 5 + pol];
                avg[pol] += r.ispi();
                row.push_back(vsPaper(r.ispi(), paper_row[pol]));
            }
            table.addRow(row);
        }
        table.addSeparator();
        static const double paper_avg[3][5] = {
            {1.80, 1.89, 1.81, 2.14, 2.12},
            {1.52, 1.63, 1.52, 1.86, 1.84},
            {1.41, 1.55, 1.41, 1.75, 1.75},
        };
        std::vector<std::string> avg_row{"Average"};
        for (size_t pol = 0; pol < 5; ++pol)
            avg_row.push_back(
                vsPaper(avg[pol] / 13.0, paper_avg[d][pol]));
        table.addRow(avg_row);
        emitTable(table);
        std::printf("\n");
    }

    std::printf("shape check (paper §5.2.2): deeper speculation lowers "
                "ISPI, with the 1->2 step larger than 2->4.\n");
    return 0;
}
