/**
 * @file
 * Regenerates paper Figure 1: per-policy ISPI component breakdown on
 * the baseline machine (8K direct-mapped cache, 5-cycle miss penalty,
 * depth-4 speculation) for the paper's five representative programs,
 * plus suite-wide averages and the paper's headline comparisons.
 */

#include <cstdio>

#include "bench_support.hh"

using namespace specfetch;
using namespace specfetch::bench;

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "fig1_policy_breakdown",
                           "penalty breakdown, baseline architecture")) {
        return parseExitCode();
    }
    SimConfig base;
    base.instructionBudget = benchMain().budget;
    banner("Figure 1", "penalty breakdown, baseline architecture", base);

    std::vector<std::pair<std::string, SimConfig>> variants;
    for (FetchPolicy policy : allPolicies()) {
        SimConfig config = base;
        config.policy = policy;
        variants.emplace_back(toString(policy), config);
    }

    // The paper's five representative programs (Fig. 1), then the
    // suite average.
    std::vector<std::string> representative{"doduc", "gcc", "li",
                                            "groff", "lic"};
    printBreakdown(representative, variants);

    // Suite-wide ISPI averages per policy + headline ratios.
    std::vector<RunSpec> specs;
    for (const std::string &name : benchmarkNames())
        for (const auto &[label, config] : variants)
            specs.push_back(RunSpec{name, config});
    std::vector<SimResults> results = runSweepReported(specs);

    double sum[5] = {};
    size_t idx = 0;
    for (size_t b = 0; b < benchmarkNames().size(); ++b)
        for (size_t p = 0; p < 5; ++p)
            sum[p] += results[idx++].ispi();

    std::printf("\nsuite-average total ISPI by policy:\n");
    for (size_t p = 0; p < 5; ++p)
        std::printf("  %-12s %.3f\n",
                    toString(allPolicies()[p]).c_str(), sum[p] / 13.0);

    double oracle = sum[0] / 13, opt = sum[1] / 13, res = sum[2] / 13,
           pess = sum[3] / 13, dec = sum[4] / 13;
    std::printf("\nshape checks (paper §5.1.2):\n");
    std::printf("  Optimistic < Pessimistic: %s (opt %.3f vs pess %.3f; "
                "paper: ~12%% better)\n",
                opt < pess ? "yes" : "NO", opt, pess);
    std::printf("  Resume best, ~= Oracle:   %s (res %.3f vs oracle "
                "%.3f)\n",
                res <= opt && res <= pess ? "yes" : "NO", res, oracle);
    std::printf("  Decode ~= Pessimistic:    %s (dec %.3f vs pess "
                "%.3f)\n",
                std::abs(dec - pess) < 0.15 * pess ? "yes" : "NO", dec,
                pess);
    return 0;
}
