/**
 * @file
 * Shared command-line entry for every benchmark harness: one option
 * parser (budget, parallelism, JSONL/CSV export paths) plus the
 * process-wide report sinks and sweep wrappers that feed them.
 *
 * Usage pattern (every bench binary):
 *
 *   int main(int argc, char **argv) {
 *       if (!benchMain().parse(argc, argv, "fig1", "what it does"))
 *           return benchMain().parseFailed ? 1 : 0;
 *       SimConfig base;
 *       base.instructionBudget = benchMain().budget;
 *       ...
 *       auto results = runSweepReported(specs);   // exports per run
 *   }
 *
 * `--json <path>` appends one schema-v1 record per run as JSON Lines;
 * `--csv <path>` writes the same records flattened. Without either
 * flag the harness behaves exactly as before (tables on stdout only).
 */

#ifndef SPECFETCH_BENCH_BENCH_MAIN_HH_
#define SPECFETCH_BENCH_BENCH_MAIN_HH_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/adaptive_record.hh"
#include "adaptive/selector_kind.hh"
#include "check/check_level.hh"
#include "core/simulator.hh"
#include "core/sweep.hh"
#include "fault/injector.hh"
#include "obs/obs_record.hh"
#include "obs/progress.hh"
#include "obs/trace_event.hh"
#include "report/record.hh"
#include "report/report.hh"
#include "util/logging.hh"
#include "util/options.hh"

namespace specfetch {
namespace bench {

/** Default per-run instruction budget (SPECFETCH_BUDGET overrides). */
constexpr uint64_t kDefaultBudget = 4'000'000;

/** Retry counts beyond this are a typo, not a policy. */
constexpr uint64_t kMaxRetries = 16;

/** Parsed harness-wide options plus the open export sinks. */
class BenchMain
{
  public:
    /**
     * Parse the shared options. Returns false when the caller should
     * exit: on --help (parseFailed stays false, exit 0) or on a real
     * error (parseFailed set, exit 1).
     */
    bool
    parse(int argc, const char *const *argv, const std::string &name,
          const std::string &what, uint64_t fallbackBudget = kDefaultBudget)
    {
        OptionParser opts(name, what);
        opts.addCount("budget", benchBudget(fallbackBudget),
                      "instructions per run (default honours "
                      "SPECFETCH_BUDGET)");
        opts.addCount("parallelism", 0,
                      "sweep worker threads (0 = hardware concurrency)");
        opts.addString("json", "",
                       "write one JSONL record per run to this path");
        opts.addString("csv", "",
                       "write flattened per-run records to this CSV path");
        opts.addString("check", "off",
                       "invariant-audit level: off, cheap or paranoid");
        opts.addCount("checkpoint-interval", 100'000,
                      "paranoid-audit checkpoint spacing, instructions");
        opts.addString("ledger", "",
                       "journal completed runs to this write-ahead "
                       "ledger (enables --resume)");
        opts.addString("store", "",
                       "submit the grid to a sweep_serve daemon at this "
                       "Unix socket instead of simulating locally");
        opts.addFlag("resume",
                     "skip runs already journaled in --ledger and "
                     "re-run only the remainder");
        opts.addCount("retries", 3,
                      "attempts per run before quarantine (1.."
                      + std::to_string(kMaxRetries) + ")");
        opts.addDouble("run-timeout", 0.0,
                       "per-run watchdog budget in seconds (0 = off)");
        opts.addString("fault-inject", "",
                       "fault-injection spec, e.g. throw@5x2,crash@9 "
                       "(default honours SPECFETCH_FAULT_INJECT)");
        opts.addCount("sample-interval", 0,
                      "emit one timeseries epoch every N retired "
                      "instructions (0 = off; needs --json)");
        opts.addFlag("heatmap",
                     "emit the per-set icache occupancy/conflict "
                     "heatmap record per run (needs --json)");
        opts.addString("adaptive", "",
                       "per-epoch policy selection: static, threshold "
                       "or bandit (needs --json for choice logs)");
        opts.addCount("adaptive-interval", 50'000,
                      "adaptive decision epoch, retired instructions "
                      "(needs --adaptive)");
        opts.addCount("adaptive-seed", 1,
                      "bandit exploration seed (needs --adaptive)");
        opts.addString("trace-out", "",
                       "write Chrome trace-event spans (Perfetto/"
                       "about:tracing) to this JSON path");
        opts.addFlag("progress",
                     "heartbeat sweep progress (completed/retried/"
                     "quarantined, ETA) on stderr");
        opts.addString("progress-file", "",
                       "append schema-v1 progress rows to this JSONL "
                       "path");
        opts.addDouble("progress-interval", 2.0,
                       "progress heartbeat period in seconds");
        opts.addFlag("list-stats",
                     "list every exportable statistic (name + "
                     "description) and exit");
        if (!opts.parse(argc, argv)) {
            parseFailed = !wantedHelp(argc, argv);
            return false;
        }
        budget = opts.getCount("budget");
        if (budget == 0) {
            std::fprintf(stderr,
                         "error: --budget must be a positive "
                         "instruction count (got 0)\n");
            parseFailed = true;
            return false;
        }
        parallelism = static_cast<unsigned>(opts.getCount("parallelism"));
        if (opts.wasSet("parallelism") && parallelism == 0) {
            std::fprintf(stderr,
                         "error: --parallelism 0 is ambiguous; omit the "
                         "option to use hardware concurrency\n");
            parseFailed = true;
            return false;
        }
        if (!parseCheckLevel(opts.getString("check"), checkLevel)) {
            std::fprintf(stderr,
                         "error: --check expects off, cheap or paranoid "
                         "(got '%s')\n",
                         opts.getString("check").c_str());
            parseFailed = true;
            return false;
        }
        checkpointInterval = opts.getCount("checkpoint-interval");
        if (checkpointInterval == 0) {
            std::fprintf(stderr,
                         "error: --checkpoint-interval expects a "
                         "positive instruction count (got 0)\n");
            parseFailed = true;
            return false;
        }
        ledgerPath = opts.getString("ledger");
        storeSocket = opts.getString("store");
        if (!storeSocket.empty() && !ledgerPath.empty()) {
            std::fprintf(stderr,
                         "error: --store and --ledger are alternative "
                         "persistence paths; pick one\n");
            parseFailed = true;
            return false;
        }
        resume = opts.getFlag("resume");
        if (resume && ledgerPath.empty()) {
            std::fprintf(stderr,
                         "error: --resume needs --ledger to say which "
                         "ledger to resume from\n");
            parseFailed = true;
            return false;
        }
        uint64_t retriesRaw = opts.getCount("retries");
        if (retriesRaw < 1 || retriesRaw > kMaxRetries) {
            std::fprintf(stderr,
                         "error: --retries must be in [1, %llu] (got "
                         "%llu)\n",
                         static_cast<unsigned long long>(kMaxRetries),
                         static_cast<unsigned long long>(retriesRaw));
            parseFailed = true;
            return false;
        }
        retries = static_cast<unsigned>(retriesRaw);
        runTimeoutSeconds = opts.getDouble("run-timeout");
        if (runTimeoutSeconds < 0.0) {
            std::fprintf(stderr,
                         "error: --run-timeout must be non-negative "
                         "seconds (got %g)\n",
                         runTimeoutSeconds);
            parseFailed = true;
            return false;
        }
        std::string injectError;
        if (opts.wasSet("fault-inject")) {
            if (!FaultInjector::parse(opts.getString("fault-inject"),
                                      injector, &injectError)) {
                std::fprintf(stderr, "error: --fault-inject: %s\n",
                             injectError.c_str());
                parseFailed = true;
                return false;
            }
        } else if (!FaultInjector::fromEnv(injector, &injectError)) {
            std::fprintf(stderr, "error: %s: %s\n",
                         kFaultInjectEnv, injectError.c_str());
            parseFailed = true;
            return false;
        }
        if (!opts.getString("json").empty() &&
            opts.getString("json") == opts.getString("csv")) {
            std::fprintf(stderr,
                         "error: --json and --csv name the same path "
                         "(%s); the sinks would interleave\n",
                         opts.getString("json").c_str());
            parseFailed = true;
            return false;
        }
        if (!opts.getString("json").empty() &&
            !openJson(opts.getString("json"))) {
            parseFailed = true;
            return false;
        }
        if (!opts.getString("csv").empty()) {
            csv = std::make_unique<CsvReportWriter>(opts.getString("csv"));
            if (!csv->ok()) {
                std::fprintf(stderr, "error: cannot write %s\n",
                             csv->path().c_str());
                parseFailed = true;
                return false;
            }
        }
        if (opts.getFlag("list-stats")) {
            listStats();
            return false;    // exit 0, like --help
        }
        sampleInterval = opts.getCount("sample-interval");
        heatmap = opts.getFlag("heatmap");
        if ((sampleInterval > 0 || heatmap) && !storeSocket.empty()) {
            // Same replay argument as --ledger below: the store keeps
            // exactly one record per run key.
            std::fprintf(stderr,
                         "error: --sample-interval/--heatmap cannot be "
                         "combined with --store (observation rows are "
                         "not stored)\n");
            parseFailed = true;
            return false;
        }
        if ((sampleInterval > 0 || heatmap) && !ledgerPath.empty()) {
            // The ledger journals exactly one record per run key and
            // resume replays it verbatim; side-channel timeseries/
            // heatmap rows would not survive a resume byte-identically.
            std::fprintf(stderr,
                         "error: --sample-interval/--heatmap cannot be "
                         "combined with --ledger (observation rows are "
                         "not journaled; a resumed sweep would drop "
                         "them)\n");
            parseFailed = true;
            return false;
        }
        if (opts.wasSet("adaptive")) {
            if (!parseSelectorKind(opts.getString("adaptive"),
                                   adaptiveSelector) ||
                adaptiveSelector == SelectorKind::Off) {
                std::fprintf(stderr,
                             "error: --adaptive expects static, "
                             "threshold or bandit (got '%s')\n",
                             opts.getString("adaptive").c_str());
                parseFailed = true;
                return false;
            }
        }
        if ((opts.wasSet("adaptive-interval") ||
             opts.wasSet("adaptive-seed")) &&
            adaptiveSelector == SelectorKind::Off) {
            std::fprintf(stderr,
                         "error: --adaptive-interval/--adaptive-seed "
                         "need --adaptive to pick a selector\n");
            parseFailed = true;
            return false;
        }
        adaptiveInterval = opts.getCount("adaptive-interval");
        if (adaptiveInterval == 0) {
            std::fprintf(stderr,
                         "error: --adaptive-interval must be a positive "
                         "instruction count (got 0)\n");
            parseFailed = true;
            return false;
        }
        adaptiveSeed = opts.getCount("adaptive-seed");
        if (adaptiveSelector != SelectorKind::Off &&
            !storeSocket.empty()) {
            std::fprintf(stderr,
                         "error: --adaptive cannot be combined with "
                         "--store (choice-log rows are not stored)\n");
            parseFailed = true;
            return false;
        }
        if (adaptiveSelector != SelectorKind::Off && !ledgerPath.empty()) {
            // Same reason as --sample-interval: adaptive choice-log
            // rows are side-channel records the ledger cannot replay.
            std::fprintf(stderr,
                         "error: --adaptive cannot be combined with "
                         "--ledger (choice-log rows are not journaled; "
                         "a resumed sweep would drop them)\n");
            parseFailed = true;
            return false;
        }
        progressInterval = opts.getDouble("progress-interval");
        if (progressInterval <= 0.0) {
            std::fprintf(stderr,
                         "error: --progress-interval must be positive "
                         "seconds (got %g)\n",
                         progressInterval);
            parseFailed = true;
            return false;
        }
        progress = opts.getFlag("progress");
        progressFile = opts.getString("progress-file");
        benchName = name;
        traceOut = opts.getString("trace-out");
        if (!traceOut.empty()) {
            TraceEventSink::global().open(traceOut);
            // Flushed via atexit so spans from every sweep the harness
            // runs land in one document (static-destructor order would
            // be fragile here).
            std::atexit([] { TraceEventSink::global().close(); });
        }
        return true;
    }

    /** Open (or replace) the JSONL sink outside of parse(). */
    bool
    openJson(const std::string &path)
    {
        json = std::make_unique<JsonlWriter>(path);
        if (!json->ok()) {
            std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
            json.reset();
            return false;
        }
        return true;
    }

    bool exporting() const { return json != nullptr || csv != nullptr; }

    /** Send one record to every open sink. */
    void
    emit(const JsonValue &record)
    {
        if (json)
            json->write(record);
        if (csv)
            csv->write(record);
    }

    /** Export one run (record = results + manifest [+ timing]). */
    void
    emitRun(const SimResults &results, const SimConfig &config,
            const RunTiming *timing = nullptr,
            const Classification *classification = nullptr)
    {
        if (exporting())
            emit(makeRunRecord(results, config, timing, classification));
    }

    /** Export a whole sweep in submission order. */
    void
    emitSweep(const std::vector<RunSpec> &specs,
              const std::vector<SimResults> &results,
              const SweepTiming &timing)
    {
        if (!exporting())
            return;
        for (size_t i = 0; i < specs.size(); ++i) {
            RunTiming rt;
            rt.runSeconds = i < timing.perRunSeconds.size()
                ? timing.perRunSeconds[i]
                : 0.0;
            rt.workloadBuildSeconds = timing.workloadBuildSeconds;
            rt.snapshotRecordSeconds = timing.snapshotRecordSeconds;
            rt.sweepTotalSeconds = timing.totalSeconds;
            emitRun(results[i], specs[i].config, &rt);
        }
    }

    /** Print every exportable stat (the sampler/export surface). */
    static void
    listStats()
    {
        SimResults sample;
        std::printf("%-28s %s\n", "stat", "description");
        sample.visitStats([](const std::string &name,
                             const std::string &description,
                             bool isCounter) {
            std::printf("%-28s %s%s\n", name.c_str(),
                        description.c_str(),
                        isCounter ? "" : " [derived]");
        });
    }

    /** True when any per-run collector (src/obs) is armed. */
    bool observing() const { return sampleInterval > 0 || heatmap; }

    /** Arm the requested collectors on every spec of a sweep. */
    void
    applyObsConfig(std::vector<RunSpec> &specs) const
    {
        if (!observing())
            return;
        for (RunSpec &spec : specs) {
            spec.config.sampleInterval = sampleInterval;
            spec.config.setHeatmap = heatmap;
        }
    }

    /** True when --adaptive armed a per-epoch selector. */
    bool adaptiveArmed() const
    {
        return adaptiveSelector != SelectorKind::Off;
    }

    /** Arm the adaptive selector on every spec of a sweep. */
    void
    applyAdaptiveConfig(std::vector<RunSpec> &specs) const
    {
        if (!adaptiveArmed())
            return;
        for (RunSpec &spec : specs) {
            spec.config.adaptiveSelector = adaptiveSelector;
            spec.config.adaptiveInterval = adaptiveInterval;
            spec.config.adaptiveSeed = adaptiveSeed;
        }
    }

    /** Start the heartbeat over a sweep of @p totalRuns (no-op unless
     *  --progress/--progress-file was given). */
    void
    beginProgress(uint64_t totalRuns) const
    {
        if (!progress && progressFile.empty())
            return;
        ProgressReporter::Options options;
        options.toStderr = progress;
        options.filePath = progressFile;
        options.intervalSeconds = progressInterval;
        ProgressReporter::global().begin(options, totalRuns, benchName);
    }

    void
    endProgress() const
    {
        ProgressReporter::global().end();
    }

    /**
     * Export the observation rows of a sweep (timeseries + heatmap
     * records, JSONL only — their arrays have no sensible CSV form).
     */
    void
    emitObservations(const std::vector<RunSpec> &specs,
                     const std::vector<SimResults> &results,
                     const std::vector<RunObservations> &observations)
    {
        if (observations.empty())
            return;
        if (!json) {
            warn("--sample-interval/--heatmap/--adaptive produce JSONL "
                 "records; give --json to keep them");
            return;
        }
        for (size_t i = 0; i < observations.size(); ++i) {
            const RunObservations &obs = observations[i];
            if (!obs.epochs.empty()) {
                json->write(makeTimeseriesRecord(obs, results[i],
                                                 specs[i].config));
            }
            if (obs.heatmap) {
                json->write(makeHeatmapRecord(*obs.heatmap, results[i],
                                              specs[i].config));
            }
            if (obs.adaptive.enabled() && !obs.adaptive.choices.empty()) {
                json->write(makeAdaptiveRecord(obs.adaptive, results[i],
                                               specs[i].config));
            }
        }
    }

    uint64_t budget = kDefaultBudget;
    unsigned parallelism = 0;
    CheckLevel checkLevel = CheckLevel::Off;
    uint64_t checkpointInterval = 100'000;
    bool parseFailed = false;
    std::unique_ptr<JsonlWriter> json;
    std::unique_ptr<CsvReportWriter> csv;
    /** @name Fault-tolerance options (DESIGN.md §10, §15) @{ */
    std::string ledgerPath;
    /** Unix socket of a sweep_serve daemon (--store client mode). */
    std::string storeSocket;
    bool resume = false;
    unsigned retries = 3;
    double runTimeoutSeconds = 0.0;
    FaultInjector injector;
    /** @} */
    /** @name Adaptive-selection options (DESIGN.md §12) @{ */
    SelectorKind adaptiveSelector = SelectorKind::Off;
    uint64_t adaptiveInterval = 50'000;
    uint64_t adaptiveSeed = 1;
    /** @} */
    /** @name Observability options (DESIGN.md §11) @{ */
    uint64_t sampleInterval = 0;
    bool heatmap = false;
    std::string traceOut;
    bool progress = false;
    std::string progressFile;
    double progressInterval = 2.0;
    /** @} */
    /** Harness name (progress label). */
    std::string benchName;

  private:
    static bool
    wantedHelp(int argc, const char *const *argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h")
                return true;
        }
        return false;
    }
};

/** The process-wide harness state (one harness = one process). */
inline BenchMain &
benchMain()
{
    static BenchMain instance;
    return instance;
}

/** Exit code helper for the `if (!parse(...))` pattern. */
inline int
parseExitCode()
{
    return benchMain().parseFailed ? 1 : 0;
}

/**
 * runSweep + export: every result goes to the open sinks (with
 * per-run timing) before being returned in submission order.
 */
inline std::vector<SimResults>
runSweepReported(const std::vector<RunSpec> &specs)
{
    BenchMain &bm = benchMain();
    std::vector<RunSpec> audited = specs;
    if (bm.checkLevel != CheckLevel::Off) {
        for (RunSpec &spec : audited) {
            spec.config.checkLevel = bm.checkLevel;
            spec.config.checkpointInterval = bm.checkpointInterval;
        }
    }
    bm.applyObsConfig(audited);
    bm.applyAdaptiveConfig(audited);
    bm.beginProgress(audited.size());
    SweepTiming timing;
    std::vector<RunObservations> observations;
    bool collect = bm.observing() || bm.adaptiveArmed();
    std::vector<SimResults> results =
        runSweep(audited, bm.parallelism, &timing,
                 collect ? &observations : nullptr);
    bm.endProgress();
    bm.emitSweep(audited, results, timing);
    bm.emitObservations(audited, results, observations);
    return results;
}

/** Single-run convenience with the same export behavior. */
inline SimResults
runOneReported(const std::string &benchmark, const SimConfig &config)
{
    std::vector<RunSpec> specs{RunSpec{benchmark, config}};
    return runSweepReported(specs)[0];
}

} // namespace bench
} // namespace specfetch

#endif // SPECFETCH_BENCH_BENCH_MAIN_HH_
