/**
 * @file
 * Self-timed perf-regression harness for the simulator itself. It
 * times the stages the sweep pipeline is built from — workload
 * construction, the live executor, snapshot record, snapshot replay,
 * a live and a replayed full simulation, and a 10-spec policy grid —
 * and reports each as a throughput (work units per second, best of
 * --repeats wall-clock measurements).
 *
 * With --json it appends one schema-v1 "perf" record per stage:
 *
 *   {"schema_version":1,"record":"perf","stage":"sim_replay",
 *    "unit":"instructions","work":2000000,"seconds":0.05,
 *    "rate":4.0e7}
 *
 * preceded by one "perf_meta" record naming the benchmark, budget and
 * repeat count so a comparison (tools/perf_compare.py) can refuse to
 * diff runs measured under different settings. These guard the
 * "hundreds of millions of instructions per experiment" wall-clock
 * budget the table harnesses rely on; CI runs this as a warn-only
 * smoke check against bench/perf_baseline.json.
 *
 * Timing methodology (README "Performance methodology"): every stage
 * runs --repeats times and one statistic is kept — the minimum by
 * default (the least-contended observation; right for quick local A/B
 * runs) or the median with --stat median (robust against outliers in
 * both directions; what the gated CI comparison uses with >= 5
 * repeats). Stages run strictly sequentially, never overlapped.
 */

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/simulator.hh"
#include "core/sweep.hh"
#include "metrics/metrics.hh"
#include "report/json.hh"
#include "report/record.hh"
#include "report/report.hh"
#include "serve/result_store.hh"
#include "serve/service.hh"
#include "trace/snapshot.hh"
#include "util/options.hh"
#include "workload/executor.hh"
#include "workload/registry.hh"
#include "workload/workload.hh"

using namespace specfetch;

namespace {

/** Seconds elapsed running @p fn once. */
template <typename Fn>
double
timeOnce(Fn &&fn)
{
    auto begin = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - begin).count();
}

/** Which statistic summarises the repeated timings of a stage. */
enum class Stat
{
    /** Minimum: the least-contended observation; the stable statistic
     *  for quick local A/B runs. */
    Best,
    /** Median: robust to the occasional fast outlier as well as the
     *  slow ones; what the gated CI comparison uses, with enough
     *  repeats to make it meaningful (>= 5). */
    Median,
};

/** The chosen statistic over @p repeats timed runs of @p fn. */
template <typename Fn>
double
measure(unsigned repeats, Stat stat, Fn &&fn)
{
    std::vector<double> samples;
    samples.reserve(repeats);
    for (unsigned i = 0; i < repeats; ++i)
        samples.push_back(timeOnce(fn));
    std::sort(samples.begin(), samples.end());
    if (stat == Stat::Best)
        return samples.front();
    const size_t n = samples.size();
    return n % 2 == 1 ? samples[n / 2]
                      : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
}

/** One measured stage, ready to print and export. */
struct StageResult
{
    std::string stage;
    std::string unit;
    uint64_t work = 0;
    double seconds = 0.0;

    double
    rate() const
    {
        return seconds > 0.0 ? static_cast<double>(work) / seconds : 0.0;
    }
};

JsonValue
toRecord(const StageResult &r)
{
    JsonValue rec = JsonValue::object();
    rec.set("schema_version", JsonValue::integer(kReportSchemaVersion));
    rec.set("record", JsonValue::string("perf"));
    rec.set("stage", JsonValue::string(r.stage));
    rec.set("unit", JsonValue::string(r.unit));
    rec.set("work", JsonValue::integer(r.work));
    rec.set("seconds", JsonValue::number(r.seconds));
    rec.set("rate", JsonValue::number(r.rate()));
    return rec;
}

/** Defeat dead-code elimination without a compiler intrinsic. */
volatile uint64_t gSink = 0;

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts("perf_microbench",
                      "Time the simulator's pipeline stages and emit "
                      "schema-v1 perf records for regression tracking");
    opts.addCount("budget", benchBudget(2'000'000),
                  "instructions per stage (default honours "
                  "SPECFETCH_BUDGET)");
    opts.addCount("repeats", 3, "timed repetitions per stage");
    opts.addString("stat", "best",
                   "statistic over the repeats: 'best' (minimum; local "
                   "A/B runs) or 'median' (the gated CI comparison)");
    opts.addString("benchmark", "gcc", "workload profile to measure");
    opts.addString("json", "", "append schema-v1 perf records to this path");
    opts.addCount("sample-interval", 0,
                  "arm the interval sampler on the simulation stages "
                  "(0 = off; measures its overhead, see "
                  "tools/perf_compare.py --overhead)");
    opts.addFlag("serve-stage",
                 "also time the sweep service's store-hit path "
                 "(stage serve_hit; kept off the default stage list so "
                 "historical baselines keep their shape)");
    opts.addFlag("metrics",
                 "arm a MetricsRegistry on the serve stage (measures "
                 "instrumentation overhead, see tools/perf_compare.py "
                 "--metrics-overhead)");
    if (!opts.parse(argc, argv))
        return 1;

    const uint64_t budget = opts.getCount("budget");
    const unsigned repeats = static_cast<unsigned>(
        std::max<uint64_t>(1, opts.getCount("repeats")));
    const std::string benchmark = opts.getString("benchmark");
    const uint64_t sampleInterval = opts.getCount("sample-interval");
    const std::string statName = opts.getString("stat");
    if (statName != "best" && statName != "median") {
        std::fprintf(stderr, "error: --stat must be 'best' or 'median', "
                     "not '%s'\n", statName.c_str());
        return 1;
    }
    const Stat stat = statName == "median" ? Stat::Median : Stat::Best;

    // Open the sink before spending minutes measuring.
    std::unique_ptr<JsonlWriter> writer;
    if (!opts.getString("json").empty()) {
        writer = std::make_unique<JsonlWriter>(opts.getString("json"));
        if (!writer->ok()) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         opts.getString("json").c_str());
            return 1;
        }
    }

    const Workload &workload = *sharedWorkload(benchmark);
    SimConfig base;
    base.instructionBudget = budget;
    // Arms the sampler on sim_live/sim_replay/grid only; the epochs
    // are collected and dropped — this harness measures cost, not
    // content.
    base.sampleInterval = sampleInterval;

    std::vector<StageResult> results;

    // Stage: build the workload CFG from its profile (what sweeps pay
    // once per benchmark thanks to sharedWorkload()).
    {
        StageResult r{"workload_build", "builds", 1, 0.0};
        r.seconds = measure(repeats, stat, [&] {
            Workload w = buildWorkload(getProfile(benchmark));
            gSink = gSink + w.image.size();
        });
        results.push_back(r);
    }

    // Stage: the live architectural executor alone (the correct-path
    // generator every live run steps once per instruction).
    {
        StageResult r{"executor_step", "instructions", budget, 0.0};
        r.seconds = measure(repeats, stat, [&] {
            Executor executor(workload.cfg, base.runSeed);
            DynInst inst;
            uint64_t sum = 0;
            for (uint64_t i = 0; i < budget; ++i) {
                executor.next(inst);
                sum += inst.pc;
            }
            gSink = gSink + sum;
        });
        results.push_back(r);
    }

    // Stage: recording a correct-path snapshot from the executor.
    {
        StageResult r{"snapshot_record", "instructions", budget, 0.0};
        r.seconds = measure(repeats, stat, [&] {
            Executor executor(workload.cfg, base.runSeed);
            TraceSnapshot snap = TraceSnapshot::record(executor, budget);
            gSink = gSink + snap.byteSize();
        });
        results.push_back(r);
    }

    // Stage: replaying that snapshot through the replay cursor alone
    // (upper bound on how fast any replayed simulation can consume
    // its stream).
    Executor recorder(workload.cfg, base.runSeed);
    const TraceSnapshot snapshot = TraceSnapshot::record(recorder, budget);
    {
        StageResult r{"snapshot_replay", "instructions", budget, 0.0};
        r.seconds = measure(repeats, stat, [&] {
            SnapshotReplaySource source(snapshot);
            DynInst inst;
            uint64_t sum = 0;
            while (source.next(inst))
                sum += inst.pc;
            gSink = gSink + sum;
        });
        results.push_back(r);
    }

    // Stage: one full simulation fed by the live executor.
    {
        StageResult r{"sim_live", "instructions", budget, 0.0};
        r.seconds = measure(repeats, stat, [&] {
            SimResults res = runSimulation(workload, base);
            gSink = gSink + res.finalSlot;
        });
        results.push_back(r);
    }

    // Stage: the same simulation fed by the recorded snapshot (the
    // sweep fast path; results are bit-identical to sim_live).
    {
        StageResult r{"sim_replay", "instructions", budget, 0.0};
        r.seconds = measure(repeats, stat, [&] {
            SimResults res = runSimulation(workload, base, snapshot);
            gSink = gSink + res.finalSlot;
        });
        results.push_back(r);
    }

    // Stage: sim_live with the adaptive decision point armed via a
    // StaticSelector — the selector always re-picks the base policy,
    // so the wall-clock delta against sim_live is pure epoch-ticker
    // and choice-log bookkeeping, not policy-behavior differences
    // (tools/perf_compare.py --adaptive-overhead bounds it).
    {
        SimConfig adaptive = base;
        adaptive.adaptiveSelector = SelectorKind::Static;
        adaptive.adaptiveInterval = 50'000;
        StageResult r{"sim_adaptive", "instructions", budget, 0.0};
        r.seconds = measure(repeats, stat, [&] {
            SimResults res = runSimulation(workload, adaptive);
            gSink = gSink + res.finalSlot;
        });
        results.push_back(r);
    }

    // Stage: a serial 10-spec grid (5 policies x prefetch off/on) on
    // one benchmark — the record-once/replay-many sweep path end to
    // end, including the snapshot-record stage it amortizes.
    {
        std::vector<RunSpec> specs;
        for (int p = 0; p < 5; ++p) {
            for (int pf = 0; pf < 2; ++pf) {
                SimConfig config = base;
                config.policy = static_cast<FetchPolicy>(p);
                config.nextLinePrefetch = pf != 0;
                specs.push_back(RunSpec{benchmark, config});
            }
        }
        StageResult r{"grid", "instructions", budget * specs.size(), 0.0};
        r.seconds = measure(repeats, stat, [&] {
            std::vector<SimResults> res = runSweep(specs, 1);
            gSink = gSink + res.back().finalSlot;
        });
        results.push_back(r);
    }

    // Stage (opt-in): the sweep service's hot request path — a store
    // hit answered inline from submit(). One miss pre-populates the
    // store; the timed loop then measures pure parse + lookup +
    // respond per request, with or without telemetry armed
    // (--metrics), which is exactly the delta the ≤3% overhead gate
    // bounds.
    if (opts.getFlag("serve-stage")) {
        constexpr uint64_t kServeRequests = 2000;
        MetricsRegistry registry;
        MetricsRegistry *metricsPtr =
            opts.getFlag("metrics") ? &registry : nullptr;
        char dirTemplate[] = "/tmp/specfetch-perf-serve-XXXXXX";
        if (!::mkdtemp(dirTemplate)) {
            std::fprintf(stderr, "error: mkdtemp failed\n");
            return 1;
        }
        const std::string storeDir = dirTemplate;
        {
            ResultStore store;
            ResultStore::Options storeOptions;
            storeOptions.dir = storeDir;
            storeOptions.metrics = metricsPtr;
            std::string error;
            if (!store.open(storeOptions, &error)) {
                std::fprintf(stderr, "error: %s\n", error.c_str());
                return 1;
            }
            SweepService::Options serviceOptions;
            serviceOptions.workers = 1;
            serviceOptions.metrics = metricsPtr;
            SweepService service(store, serviceOptions);
            service.start();

            const std::string line =
                "{\"benchmark\":\"" + benchmark +
                "\",\"config\":{\"instruction_budget\":" +
                std::to_string(std::min<uint64_t>(budget, 50'000)) +
                "}}";
            std::mutex doneMutex;
            std::condition_variable doneWake;
            uint64_t answered = 0;
            auto responder = [&](const JsonValue &) {
                std::lock_guard<std::mutex> lock(doneMutex);
                ++answered;
                doneWake.notify_all();
            };
            service.submit(line, responder); // miss: populate the store
            {
                std::unique_lock<std::mutex> lock(doneMutex);
                doneWake.wait(lock, [&] { return answered >= 1; });
            }

            StageResult r{"serve_hit", "requests", kServeRequests, 0.0};
            r.seconds = measure(repeats, stat, [&] {
                for (uint64_t i = 0; i < kServeRequests; ++i)
                    service.submit(line, responder);
            });
            {
                std::unique_lock<std::mutex> lock(doneMutex);
                doneWake.wait(lock, [&] {
                    return answered >= 1 + kServeRequests * repeats;
                });
            }
            gSink = gSink + answered;
            results.push_back(r);
            service.drain();
            store.close(nullptr);
        }
        // Best-effort cleanup of the scratch store.
        std::string cleanup = "rm -rf '" + storeDir + "'";
        if (std::system(cleanup.c_str()) != 0)
            std::fprintf(stderr, "warning: could not remove %s\n",
                         storeDir.c_str());
    }

    std::printf("perf_microbench: %s, budget %llu, %s of %u\n",
                benchmark.c_str(),
                static_cast<unsigned long long>(budget),
                statName.c_str(), repeats);
    std::printf("%-16s %14s %12s %16s\n", "stage", "work", "seconds",
                "rate/s");
    for (const StageResult &r : results) {
        std::printf("%-16s %14llu %12.6f %16.0f\n", r.stage.c_str(),
                    static_cast<unsigned long long>(r.work), r.seconds,
                    r.rate());
    }

    if (writer) {
        JsonValue meta = JsonValue::object();
        meta.set("schema_version", JsonValue::integer(kReportSchemaVersion));
        meta.set("record", JsonValue::string("perf_meta"));
        meta.set("benchmark", JsonValue::string(benchmark));
        meta.set("budget", JsonValue::integer(budget));
        meta.set("repeats", JsonValue::integer(repeats));
        meta.set("stat", JsonValue::string(statName));
        // Kept conditional so baselines measured without the sampler
        // keep their historical shape.
        if (sampleInterval > 0)
            meta.set("sample_interval", JsonValue::integer(sampleInterval));
        // Same contract for the serve stage: the overhead comparison
        // (tools/perf_compare.py --metrics-overhead) demands proof of
        // which side had telemetry armed.
        if (opts.getFlag("serve-stage"))
            meta.set("metrics",
                     JsonValue::boolean(opts.getFlag("metrics")));
        writer->write(meta);
        for (const StageResult &r : results)
            writer->write(toRecord(r));
        std::printf("%zu perf records -> %s\n", results.size() + 1,
                    writer->path().c_str());
    }
    return 0;
}
