/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself:
 * simulation throughput per policy and the hot substrate operations
 * (cache probe, predictor lookup, executor step). These guard the
 * "hundreds of millions of instructions per experiment" budget the
 * table harnesses rely on.
 */

#include <benchmark/benchmark.h>

#include "branch/predictor.hh"
#include "cache/icache.hh"
#include "core/simulator.hh"
#include "workload/executor.hh"
#include "workload/registry.hh"

using namespace specfetch;

namespace {

const Workload &
gccWorkload()
{
    static const Workload workload = buildWorkload(getProfile("gcc"));
    return workload;
}

void
BM_ExecutorStep(benchmark::State &state)
{
    Executor executor(gccWorkload().cfg, 42);
    DynInst inst;
    for (auto _ : state) {
        executor.next(inst);
        benchmark::DoNotOptimize(inst);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutorStep);

void
BM_ICacheProbe(benchmark::State &state)
{
    ICache cache;
    for (Addr line = 0; line < 256; ++line)
        cache.insert(0x10000 + line * 32);
    Addr line = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(line));
        line = 0x10000 + ((line + 32) & 0x1fff);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ICacheProbe);

void
BM_PredictorLookup(benchmark::State &state)
{
    BranchPredictor predictor;
    Addr pc = 0x10000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            predictor.predict(pc, InstClass::CondBranch));
        pc = 0x10000 + ((pc + 4) & 0xfff);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredictorLookup);

void
BM_SimulateGcc(benchmark::State &state)
{
    FetchPolicy policy = static_cast<FetchPolicy>(state.range(0));
    SimConfig config;
    config.policy = policy;
    config.instructionBudget = 200'000;
    for (auto _ : state) {
        SimResults r = runSimulation(gccWorkload(), config);
        benchmark::DoNotOptimize(r.finalSlot);
    }
    state.SetItemsProcessed(state.iterations() *
                            config.instructionBudget);
    state.SetLabel(toString(policy));
}
BENCHMARK(BM_SimulateGcc)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void
BM_SimulateWithPrefetch(benchmark::State &state)
{
    SimConfig config;
    config.policy = FetchPolicy::Resume;
    config.nextLinePrefetch = true;
    config.instructionBudget = 200'000;
    for (auto _ : state) {
        SimResults r = runSimulation(gccWorkload(), config);
        benchmark::DoNotOptimize(r.finalSlot);
    }
    state.SetItemsProcessed(state.iterations() *
                            config.instructionBudget);
}
BENCHMARK(BM_SimulateWithPrefetch)->Unit(benchmark::kMillisecond);

void
BM_BuildWorkload(benchmark::State &state)
{
    for (auto _ : state) {
        Workload w = buildWorkload(getProfile("li"));
        benchmark::DoNotOptimize(w.image.size());
    }
}
BENCHMARK(BM_BuildWorkload)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
