/**
 * @file
 * Regenerates paper Table 3: 8K/32K direct-mapped miss rates plus the
 * branch-architecture ISPI components (PHT mispredict, BTB misfetch,
 * BTB target mispredict) at speculation depths 1 and 4.
 */

#include <cstdio>

#include "bench_support.hh"
#include "paper_data.hh"

using namespace specfetch;
using namespace specfetch::bench;

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "table3_characterization",
                           "cache and branch-prediction "
                           "characteristics")) {
        return parseExitCode();
    }
    SimConfig base;
    base.instructionBudget = benchMain().budget;
    base.policy = FetchPolicy::Oracle;
    banner("Table 3", "cache and branch-prediction characteristics",
           base);

    // Four runs per benchmark: {8K,B4}, {32K,B4}, {8K,B1} (8K run
    // also supplies the depth-4 branch ISPIs).
    std::vector<RunSpec> specs;
    for (const std::string &name : benchmarkNames()) {
        SimConfig cfg8 = base;
        specs.push_back(RunSpec{name, cfg8});

        SimConfig cfg32 = base;
        cfg32.icache.sizeBytes = 32 * 1024;
        specs.push_back(RunSpec{name, cfg32});

        SimConfig cfgB1 = base;
        cfgB1.maxUnresolved = 1;
        specs.push_back(RunSpec{name, cfgB1});
    }
    std::vector<SimResults> results = runSweepReported(specs);

    TextTable table;
    table.setColumns({"Program", "8K miss%", "32K miss%", "PHT B1",
                      "PHT B4", "MF B1", "MF B4", "BTB B1", "BTB B4"});

    std::vector<double> m8, m32, pht1, pht4, mf4;
    const auto &names = benchmarkNames();
    for (size_t i = 0; i < names.size(); ++i) {
        const SimResults &r8 = results[3 * i];
        const SimResults &r32 = results[3 * i + 1];
        const SimResults &rb1 = results[3 * i + 2];
        const paper::Table3Row &p = paper::kTable3[i];

        m8.push_back(r8.missRatePercent());
        m32.push_back(r32.missRatePercent());
        pht1.push_back(rb1.phtMispredictIspi());
        pht4.push_back(r8.phtMispredictIspi());
        mf4.push_back(r8.btbMisfetchIspi());

        table.addRow({names[i],
                      vsPaper(r8.missRatePercent(), p.miss8K),
                      vsPaper(r32.missRatePercent(), p.miss32K),
                      vsPaper(rb1.phtMispredictIspi(), p.phtIspiB1),
                      vsPaper(r8.phtMispredictIspi(), p.phtIspiB4),
                      vsPaper(rb1.btbMisfetchIspi(), p.misfetchIspiB1),
                      vsPaper(r8.btbMisfetchIspi(), p.misfetchIspiB4),
                      vsPaper(rb1.btbMispredictIspi(), p.btbMispIspiB1),
                      vsPaper(r8.btbMispredictIspi(), p.btbMispIspiB4)});
    }
    table.addSeparator();
    table.addRow({"Average", vsPaper(mean(m8), 3.70),
                  vsPaper(mean(m32), 0.97), vsPaper(mean(pht1), 0.32),
                  vsPaper(mean(pht4), 0.45), "",
                  vsPaper(mean(mf4), 0.18), "", ""});
    emitTable(table);

    std::printf("\nshape check: PHT ISPI grows from B1 to B4 "
                "(stale speculative history): %s\n",
                mean(pht4) > mean(pht1) ? "yes" : "NO");
    return 0;
}
