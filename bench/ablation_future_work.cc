/**
 * @file
 * The paper's §6 "further study" list, measured: profile-driven
 * basic-block reordering, a pipelined memory interface (multiple
 * overlapping fills), and target/combined prefetching (§2.2 related
 * work). Everything is reported as total ISPI under the Resume
 * policy on the baseline machine unless noted.
 */

#include <cstdio>

#include "bench_support.hh"
#include "core/simulator.hh"
#include "workload/reorder.hh"

using namespace specfetch;
using namespace specfetch::bench;

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "ablation_future_work",
                           "paper §6 further-study features",
                           kDefaultBudget / 2)) {
        return parseExitCode();
    }
    SimConfig base;
    base.instructionBudget = benchMain().budget;
    base.policy = FetchPolicy::Resume;
    banner("Ablation", "paper §6 further-study features", base);

    std::vector<std::string> benches{"gcc", "li", "groff", "cfront",
                                     "fpppp"};

    std::printf("--- profile-driven basic-block reordering ---\n");
    {
        TextTable table;
        table.setColumns({"Program", "miss% before", "after",
                          "ISPI before", "after", "delta%"});
        for (const std::string &name : benches) {
            Workload w = buildWorkload(getProfile(name));
            // Train on a different input (seed) than we evaluate on.
            Workload opt = reorderWorkload(w, /*profile_seed=*/7,
                                           /*profile_budget=*/1'000'000);
            SimResults before = runSimulation(w, base);
            SimResults after = runSimulation(opt, base);
            benchMain().emitRun(before, base);
            benchMain().emitRun(after, base);
            double delta =
                100.0 * (after.ispi() - before.ispi()) / before.ispi();
            table.addRow({name,
                          formatFixed(before.missRatePercent(), 2),
                          formatFixed(after.missRatePercent(), 2),
                          formatFixed(before.ispi(), 3),
                          formatFixed(after.ispi(), 3),
                          formatFixed(delta, 1)});
        }
        emitTable(table);
    }

    std::printf("\n--- pipelined memory interface (overlapping fills, "
                "20-cycle penalty, next-line prefetch) ---\n");
    {
        TextTable table;
        table.setColumns({"Program", "1 channel", "2", "4",
                          "bus ISPI @1", "@2", "@4"});
        for (const std::string &name : benches) {
            std::vector<std::string> row{name};
            std::vector<std::string> bus;
            for (unsigned channels : {1u, 2u, 4u}) {
                SimConfig config = base;
                config.missPenaltyCycles = 20;
                config.nextLinePrefetch = true;
                config.memoryChannels = channels;
                SimResults r = runOneReported(name, config);
                row.push_back(formatFixed(r.ispi(), 3));
                bus.push_back(
                    formatFixed(r.ispiOf(PenaltyKind::Bus), 3));
            }
            row.insert(row.end(), bus.begin(), bus.end());
            table.addRow(row);
        }
        emitTable(table);
    }

    std::printf("\n--- victim cache (Jouppi 90; recovers direct-mapped "
                "conflict misses on-chip) ---\n");
    {
        TextTable table;
        table.setColumns({"Program", "no victim", "4 entries",
                          "8 entries", "miss% base", "@4", "@8"});
        for (const std::string &name : benches) {
            std::vector<std::string> row{name};
            std::vector<std::string> miss;
            for (unsigned entries : {0u, 4u, 8u}) {
                SimConfig config = base;
                config.victimEntries = entries;
                SimResults r = runOneReported(name, config);
                row.push_back(formatFixed(r.ispi(), 3));
                miss.push_back(formatFixed(r.missRatePercent(), 2));
            }
            row.insert(row.end(), miss.begin(), miss.end());
            table.addRow(row);
        }
        emitTable(table);
    }

    std::printf("\n--- explicit L2 (the continuum between Figures 1 "
                "and 2) ---\n");
    {
        TextTable table;
        table.setColumns({"Program", "flat 5cyc", "L2 64K (5/20)",
                          "L2 16K", "flat 20cyc", "L2-64K miss%"});
        for (const std::string &name : benches) {
            SimConfig flat5 = base;
            SimConfig flat20 = base;
            flat20.missPenaltyCycles = 20;
            SimConfig l2big = base;
            l2big.l2Enabled = true;
            SimConfig l2small = l2big;
            l2small.l2Cache.sizeBytes = 16 * 1024;

            Workload w = buildWorkload(getProfile(name));
            SimResults r5 = runSimulation(w, flat5);
            SimResults r20 = runSimulation(w, flat20);
            SimResults rbig = runSimulation(w, l2big);
            SimResults rsmall = runSimulation(w, l2small);
            benchMain().emitRun(r5, flat5);
            benchMain().emitRun(r20, flat20);
            benchMain().emitRun(rbig, l2big);
            benchMain().emitRun(rsmall, l2small);
            table.addRow({name, formatFixed(r5.ispi(), 3),
                          formatFixed(rbig.ispi(), 3),
                          formatFixed(rsmall.ispi(), 3),
                          formatFixed(r20.ispi(), 3),
                          ""});
        }
        emitTable(table);
        std::printf("(an L2's hit rate decides which of the paper's "
                    "two regimes — and therefore which policy — "
                    "applies)\n");
    }

    std::printf("\n--- prefetch mechanism (Smith & Hsu comparison) ---\n");
    {
        TextTable table;
        table.setColumns({"Program", "none", "next-line (paper)",
                          "target", "combined", "stream", "miss% none",
                          "next-line", "target", "combined", "stream"});
        for (const std::string &name : benches) {
            std::vector<std::string> row{name};
            std::vector<std::string> miss;
            for (PrefetchKind kind :
                 {PrefetchKind::None, PrefetchKind::NextLine,
                  PrefetchKind::Target, PrefetchKind::Combined,
                  PrefetchKind::Stream}) {
                SimConfig config = base;
                config.prefetchKind = kind;
                SimResults r = runOneReported(name, config);
                row.push_back(formatFixed(r.ispi(), 3));
                miss.push_back(formatFixed(r.missRatePercent(), 2));
            }
            row.insert(row.end(), miss.begin(), miss.end());
            table.addRow(row);
        }
        emitTable(table);
        std::printf("\n(Smith & Hsu 92: next-line slightly beats "
                    "target; the combination wins overall. Jouppi 90: "
                    "stream buffers remove most sequential misses "
                    "without polluting the array.)\n");
    }
    return 0;
}
