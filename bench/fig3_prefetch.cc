/**
 * @file
 * Regenerates paper Figure 3: the effect of next-line prefetching on
 * Oracle, Resume, and Pessimistic at the baseline 5-cycle penalty.
 */

#include <cstdio>

#include "bench_support.hh"

using namespace specfetch;
using namespace specfetch::bench;

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "fig3_prefetch",
                           "next-line prefetching, 5-cycle penalty")) {
        return parseExitCode();
    }
    SimConfig base;
    base.instructionBudget = benchMain().budget;
    banner("Figure 3", "next-line prefetching, 5-cycle penalty", base);

    std::vector<std::pair<std::string, SimConfig>> variants;
    for (FetchPolicy policy :
         {FetchPolicy::Oracle, FetchPolicy::Resume,
          FetchPolicy::Pessimistic}) {
        SimConfig off = base;
        off.policy = policy;
        variants.emplace_back(toString(policy), off);
        SimConfig on = off;
        on.nextLinePrefetch = true;
        variants.emplace_back(toString(policy) + "+Pref", on);
    }

    std::vector<std::string> representative{"doduc", "gcc", "li",
                                            "groff", "lic"};
    printBreakdown(representative, variants);

    // Suite-wide averages for the shape checks.
    std::vector<RunSpec> specs;
    for (const std::string &name : benchmarkNames())
        for (const auto &[label, config] : variants)
            specs.push_back(RunSpec{name, config});
    std::vector<SimResults> results = runSweepReported(specs);

    double sum[6] = {};
    size_t idx = 0;
    for (size_t b = 0; b < benchmarkNames().size(); ++b)
        for (size_t v = 0; v < 6; ++v)
            sum[v] += results[idx++].ispi();
    for (double &s : sum)
        s /= 13.0;

    std::printf("\nsuite-average ISPI: Oracle %.3f/%.3f(+pref), "
                "Resume %.3f/%.3f, Pessimistic %.3f/%.3f\n",
                sum[0], sum[1], sum[2], sum[3], sum[4], sum[5]);
    std::printf("shape checks (paper §5.3):\n");
    std::printf("  prefetching helps every policy:      %s\n",
                sum[1] < sum[0] && sum[3] < sum[2] && sum[5] < sum[4]
                    ? "yes"
                    : "NO");
    std::printf("  Resume(no pref) ~ Pessimistic(pref): %s "
                "(%.3f vs %.3f)\n",
                std::abs(sum[2] - sum[5]) < 0.25 * sum[5] ? "yes" : "NO",
                sum[2], sum[5]);
    std::printf("  gaps compress with prefetching:      %s\n",
                (sum[5] - sum[3]) < (sum[4] - sum[2]) ? "yes" : "NO");
    return 0;
}
