/**
 * @file
 * Regenerates paper Figure 2: the same penalty breakdown as Figure 1
 * but with a 20-cycle I-cache miss penalty, where wrong-path traffic
 * turns from prefetching into bus poison and the conservative
 * policies catch up.
 */

#include <cstdio>

#include "bench_support.hh"

using namespace specfetch;
using namespace specfetch::bench;

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "fig2_long_latency",
                           "penalty breakdown, 20-cycle miss penalty")) {
        return parseExitCode();
    }
    SimConfig base;
    base.instructionBudget = benchMain().budget;
    base.missPenaltyCycles = 20;
    banner("Figure 2", "penalty breakdown, 20-cycle miss penalty", base);

    std::vector<std::pair<std::string, SimConfig>> variants;
    for (FetchPolicy policy : allPolicies()) {
        SimConfig config = base;
        config.policy = policy;
        variants.emplace_back(toString(policy), config);
    }

    std::vector<std::string> representative{"doduc", "gcc", "li",
                                            "groff", "lic"};
    printBreakdown(representative, variants);

    // Headline: at long latency Pessimistic beats Optimistic for the
    // branchy (C/C++) programs; Resume ~ Pessimistic on average.
    std::vector<std::string> branchy{"ditroff", "gcc", "li", "tex",
                                     "cfront", "db++", "groff", "idl",
                                     "lic", "porky"};
    std::vector<RunSpec> specs;
    for (const std::string &name : branchy)
        for (const auto &[label, config] : variants)
            specs.push_back(RunSpec{name, config});
    std::vector<SimResults> results = runSweepReported(specs);

    double sum[5] = {};
    size_t idx = 0;
    for (size_t b = 0; b < branchy.size(); ++b)
        for (size_t p = 0; p < 5; ++p)
            sum[p] += results[idx++].ispi();
    double n = static_cast<double>(branchy.size());
    double opt = sum[1] / n, res = sum[2] / n, pess = sum[3] / n;

    std::printf("\nC/C++-average total ISPI at 20 cycles: "
                "Opt %.3f, Res %.3f, Pess %.3f\n",
                opt, res, pess);
    std::printf("shape checks (paper §5.2.1):\n");
    std::printf("  Pessimistic <= Optimistic: %s (paper: 12-16%% "
                "better for C/C++)\n",
                pess <= opt ? "yes" : "NO");
    std::printf("  Resume ~= Pessimistic:     %s (within 15%%)\n",
                std::abs(res - pess) < 0.15 * pess ? "yes" : "NO");
    return 0;
}
