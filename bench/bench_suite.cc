/**
 * @file
 * The cross-PR trajectory runner: executes the full paper grid — all
 * 13 workload profiles × 5 fetch policies × {prefetch off, next-line
 * prefetch} — at a small fixed budget and exports one schema-v1 JSONL
 * record per run, each carrying the configuration manifest, every raw
 * counter, the ISPI decomposition, the workload's Table-4 miss
 * classification, and per-run wall-clock timing.
 *
 *   ./build/bench/bench_suite --json out.json
 *   ./build/bench/bench_suite                 # writes BENCH_results.json
 *
 * The output is what `BENCH_*.json` trajectory tracking consumes: 130
 * records whose counters are bit-reproducible for a given budget and
 * seed, with only the `timing` member varying between machines.
 */

#include <cstdio>

#include "bench_support.hh"
#include "core/miss_classifier.hh"
#include "workload/workload.hh"

using namespace specfetch;
using namespace specfetch::bench;

namespace {

/** Small default so the full grid stays CI-friendly. */
constexpr uint64_t kSuiteBudget = 500'000;

} // namespace

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "bench_suite",
                           "full policy/prefetch grid with JSONL export",
                           kSuiteBudget)) {
        return parseExitCode();
    }
    if (!benchMain().json && !benchMain().openJson("BENCH_results.json"))
        return 1;

    SimConfig base;
    base.instructionBudget = benchMain().budget;
    base.checkLevel = benchMain().checkLevel;
    banner("Bench suite",
           "13 profiles x 5 policies x {no prefetch, next-line}", base);

    const auto &names = benchmarkNames();

    // One Table-4 classification per profile (policy-independent), so
    // every record of that profile can carry the taxonomy.
    std::vector<Classification> classifications;
    classifications.reserve(names.size());
    for (const std::string &name : names) {
        Workload w = buildWorkload(getProfile(name));
        classifications.push_back(classifyMisses(w, base));
    }

    // Profile-major, policy-minor, prefetch-innermost grid.
    std::vector<RunSpec> specs;
    specs.reserve(names.size() * allPolicies().size() * 2);
    for (const std::string &name : names) {
        for (FetchPolicy policy : allPolicies()) {
            for (bool prefetch : {false, true}) {
                SimConfig config = base;
                config.policy = policy;
                config.nextLinePrefetch = prefetch;
                specs.push_back(RunSpec{name, config});
            }
        }
    }

    SweepTiming timing;
    std::vector<SimResults> results =
        runSweep(specs, benchMain().parallelism, &timing);

    for (size_t i = 0; i < specs.size(); ++i) {
        RunTiming rt;
        rt.runSeconds = timing.perRunSeconds[i];
        rt.workloadBuildSeconds = timing.workloadBuildSeconds;
        rt.snapshotRecordSeconds = timing.snapshotRecordSeconds;
        rt.sweepTotalSeconds = timing.totalSeconds;
        size_t profileIndex = i / (allPolicies().size() * 2);
        benchMain().emit(makeRunRecord(results[i], specs[i].config, &rt,
                                       &classifications[profileIndex]));
    }

    // Human-readable digest: suite-average ISPI per (policy, prefetch).
    TextTable table;
    table.setColumns({"policy", "ISPI", "ISPI+pref", "pref delta%"});
    size_t perProfile = allPolicies().size() * 2;
    for (size_t p = 0; p < allPolicies().size(); ++p) {
        double off = 0.0, on = 0.0;
        for (size_t b = 0; b < names.size(); ++b) {
            off += results[b * perProfile + p * 2].ispi();
            on += results[b * perProfile + p * 2 + 1].ispi();
        }
        off /= static_cast<double>(names.size());
        on /= static_cast<double>(names.size());
        table.addRow({toString(allPolicies()[p]), formatFixed(off, 3),
                      formatFixed(on, 3),
                      formatFixed(off == 0.0
                                      ? 0.0
                                      : 100.0 * (on - off) / off,
                                  1)});
    }
    emitTable(table);

    std::printf("\n%zu runs in %.2fs (workload build %.2fs, "
                "snapshot record %.2fs); %zu records -> %s\n",
                specs.size(), timing.totalSeconds,
                timing.workloadBuildSeconds,
                timing.snapshotRecordSeconds,
                benchMain().json->recordsWritten(),
                benchMain().json->path().c_str());
    return 0;
}
