/**
 * @file
 * The cross-PR trajectory runner: executes the full paper grid — all
 * 13 workload profiles × 5 fetch policies × {prefetch off, next-line
 * prefetch} — at a small fixed budget and exports one schema-v1 JSONL
 * record per run, each carrying the configuration manifest, every raw
 * counter, the ISPI decomposition, the workload's Table-4 miss
 * classification, and per-run wall-clock timing.
 *
 *   ./build/bench/bench_suite --json out.json
 *   ./build/bench/bench_suite                 # writes BENCH_results.json
 *
 * The output is what `BENCH_*.json` trajectory tracking consumes: 130
 * records whose counters are bit-reproducible for a given budget and
 * seed, with only the `timing` member varying between machines.
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <thread>
#include <utility>

#include "adaptive/oracle.hh"
#include "bench_support.hh"
#include "core/miss_classifier.hh"
#include "fault/resilient_sweep.hh"
#include "serve/socket.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

using namespace specfetch;
using namespace specfetch::bench;

namespace {

/** Small default so the full grid stays CI-friendly. */
constexpr uint64_t kSuiteBudget = 500'000;

/**
 * Fault-tolerant mode (--ledger [+ --resume]): the grid runs through
 * runResilientSweep — every completed run journaled, failing runs
 * quarantined, resumable after a crash. Records deliberately omit the
 * timing member (the lone nondeterministic part), so an interrupted +
 * resumed sweep's JSONL output is byte-identical to a clean one.
 */
int
runLedgered(const std::vector<RunSpec> &specs,
            const std::vector<Classification> &classifications,
            size_t perProfile)
{
    ResilientSweepOptions options;
    options.ledgerPath = benchMain().ledgerPath;
    options.resume = benchMain().resume;
    options.maxAttempts = benchMain().retries;
    options.runTimeoutSeconds = benchMain().runTimeoutSeconds;
    options.parallelism = benchMain().parallelism;
    if (!benchMain().injector.empty())
        options.injector = &benchMain().injector;
    options.makeRecord = [&](size_t index, const SimResults &results) {
        return makeRunRecord(results, specs[index].config, nullptr,
                             &classifications[index / perProfile]);
    };
    std::string rerun = "bench_suite --ledger=" + options.ledgerPath +
        " --resume --budget=" + std::to_string(benchMain().budget);
    options.rerunCommand = [rerun](size_t) { return rerun; };

    benchMain().beginProgress(specs.size());
    ResilientSweepResult sweep = runResilientSweep(specs, options);
    benchMain().endProgress();

    for (size_t i = 0; i < specs.size(); ++i) {
        if (sweep.completed[i])
            benchMain().emit(sweep.records[i]);
    }

    // Trailing manifest record: what ran and what was quarantined.
    // Deliberately free of timing and resumed-run counts so a clean
    // and a resumed sweep write identical bytes.
    JsonValue manifest = JsonValue::object();
    manifest.set("schema_version", JsonValue::integer(kReportSchemaVersion));
    manifest.set("record", JsonValue::string("sweep_manifest"));
    manifest.set("runs", JsonValue::integer(specs.size()));
    manifest.set("completed",
                 JsonValue::integer(specs.size() - sweep.failures.size()));
    JsonValue failures = JsonValue::array();
    for (const SweepFailure &failure : sweep.failures) {
        JsonValue entry = JsonValue::object();
        entry.set("index", JsonValue::integer(failure.index));
        entry.set("benchmark", JsonValue::string(failure.benchmark));
        entry.set("config", JsonValue::string(failure.config));
        entry.set("cause", JsonValue::string(failure.cause));
        entry.set("attempts", JsonValue::integer(failure.attempts));
        entry.set("rerun", JsonValue::string(failure.rerunCommand));
        failures.push(entry);
    }
    manifest.set("failures", failures);
    benchMain().emit(manifest);

    std::printf("\n%zu runs (%zu resumed from %s, %zu executed), "
                "%zu quarantined; %zu records -> %s\n",
                specs.size(), sweep.resumedRuns,
                options.ledgerPath.c_str(), sweep.executedRuns,
                sweep.failures.size(),
                benchMain().json->recordsWritten(),
                benchMain().json->path().c_str());
    for (const SweepFailure &failure : sweep.failures) {
        std::printf("  quarantined run %zu (%s): %s after %u attempts\n"
                    "    rerun: %s\n",
                    failure.index, failure.benchmark.c_str(),
                    failure.cause.c_str(), failure.attempts,
                    failure.rerunCommand.c_str());
    }
    // Quarantine is the success path of fault tolerance: the sweep
    // finished and said exactly what it could not do.
    return 0;
}

/**
 * Service-client mode (--store <socket>): the grid is submitted to a
 * running sweep_serve daemon instead of simulating locally. Responses
 * come back in request order; every `ok` response's run record is
 * emitted verbatim, so — because the daemon builds records exactly
 * like runLedgered (no timing) — the JSONL output of a fully
 * successful pass is byte-identical to a clean `--ledger` run of the
 * same grid, whether the daemon simulated the runs or served them
 * from its store.
 */
int
runStoreClient(const std::vector<RunSpec> &specs)
{
    const std::string &socketPath = benchMain().storeSocket;

    // Run records indexed by spec so the final emission is in grid
    // order no matter how many submission rounds it took.
    std::vector<JsonValue> runs(specs.size());
    std::vector<bool> haveRun(specs.size(), false);
    std::map<size_t, JsonValue> failuresByIndex;
    size_t cachedRuns = 0;

    auto recordFailure = [&](size_t index, const JsonValue *detail) {
        JsonValue entry = JsonValue::object();
        entry.set("index", JsonValue::integer(index));
        entry.set("benchmark",
                  JsonValue::string(specs[index].benchmark));
        entry.set("config",
                  JsonValue::string(specs[index].config.describe()));
        std::string cause = "service error";
        uint64_t attempts = 0;
        if (detail) {
            if (const JsonValue *message = detail->find("message"))
                cause = message->asString();
            if (const JsonValue *tried = detail->find("attempts"))
                attempts = tried->asUint();
        }
        entry.set("cause", JsonValue::string(cause));
        entry.set("attempts", JsonValue::integer(attempts));
        entry.set("rerun",
                  JsonValue::string("bench_suite --store=" + socketPath +
                                    " --budget=" +
                                    std::to_string(benchMain().budget)));
        failuresByIndex[index] = std::move(entry);
    };

    // Backpressure is an answer, not a failure: `overloaded` and
    // `deadline_exceeded` responses carry a backoff hint, so the
    // client sleeps it out and resubmits just the shed specs. Grids
    // larger than the daemon's admission bound drain in a few rounds;
    // terminal errors (run_failed, poisoned, ...) are never retried —
    // the daemon's guard already spent its attempts.
    std::vector<size_t> pending(specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        pending[i] = i;
    const unsigned maxRounds =
        benchMain().retries > 3 ? benchMain().retries : 3;
    for (unsigned round = 0; round < maxRounds && !pending.empty();
         ++round) {
        std::vector<std::string> requests;
        requests.reserve(pending.size());
        for (size_t index : pending) {
            JsonValue request = JsonValue::object();
            request.set("id", JsonValue::integer(index));
            request.set("benchmark",
                        JsonValue::string(specs[index].benchmark));
            request.set("config", toJson(specs[index].config));
            requests.push_back(request.dump());
        }
        std::vector<std::string> responses;
        std::string error;
        if (!serviceBatch(socketPath, requests, responses, &error)) {
            std::fprintf(stderr, "bench_suite: --store %s: %s\n",
                         socketPath.c_str(), error.c_str());
            return 1;
        }
        if (responses.size() != requests.size()) {
            std::fprintf(stderr,
                         "bench_suite: --store %s: %zu responses for "
                         "%zu requests\n",
                         socketPath.c_str(), responses.size(),
                         requests.size());
            return 1;
        }

        std::vector<size_t> retry;
        double backoffWait = 0.0;
        for (size_t i = 0; i < responses.size(); ++i) {
            size_t index = pending[i];
            JsonValue response;
            std::string parseError;
            const JsonValue *status = nullptr;
            if (!JsonValue::parse(responses[i], response, &parseError) ||
                !(status = response.find("status"))) {
                std::fprintf(stderr,
                             "bench_suite: --store: unparseable "
                             "response %zu: %s\n",
                             index, parseError.c_str());
                return 1;
            }
            if (status->asString() == "ok") {
                const JsonValue *run = response.find("run");
                panic_if(!run, "ok response without a run record");
                runs[index] = *run;
                haveRun[index] = true;
                const JsonValue *cached = response.find("cached");
                if (cached && cached->asBool())
                    ++cachedRuns;
                continue;
            }
            const JsonValue *detail = response.find("error");
            const JsonValue *type =
                detail ? detail->find("type") : nullptr;
            std::string kind = type ? type->asString() : "";
            bool transient = kind == "overloaded" ||
                             kind == "deadline_exceeded";
            if (transient && round + 1 < maxRounds) {
                retry.push_back(index);
                if (const JsonValue *hint =
                        detail->find("backoff_seconds")) {
                    if (hint->asDouble() > backoffWait)
                        backoffWait = hint->asDouble();
                }
                continue;
            }
            recordFailure(index, detail);
        }
        pending = std::move(retry);
        if (!pending.empty()) {
            std::fprintf(stderr,
                         "bench_suite: --store: %zu spec(s) shed; "
                         "retrying after %.2fs\n",
                         pending.size(),
                         backoffWait > 0.0 ? backoffWait : 0.1);
            std::this_thread::sleep_for(std::chrono::duration<double>(
                backoffWait > 0.0 ? backoffWait : 0.1));
        }
    }

    for (size_t i = 0; i < specs.size(); ++i)
        if (haveRun[i])
            benchMain().emit(runs[i]);

    JsonValue failures = JsonValue::array();
    for (auto &entry : failuresByIndex)
        failures.push(std::move(entry.second));
    size_t failureCount = failures.size();
    JsonValue manifest = JsonValue::object();
    manifest.set("schema_version",
                 JsonValue::integer(kReportSchemaVersion));
    manifest.set("record", JsonValue::string("sweep_manifest"));
    manifest.set("runs", JsonValue::integer(specs.size()));
    manifest.set("completed",
                 JsonValue::integer(specs.size() - failureCount));
    manifest.set("failures", failures);
    benchMain().emit(manifest);

    std::printf("\n%zu runs via %s (%zu served from the store, "
                "%zu failed); %zu records -> %s\n",
                specs.size(), socketPath.c_str(), cachedRuns,
                failureCount, benchMain().json->recordsWritten(),
                benchMain().json->path().c_str());
    // Like quarantine in runLedgered, a failed run is a reported
    // outcome, not a client crash.
    return 0;
}

/** Epoch length of the suite's adaptive column (20'000 retired
 *  instructions = 25 decision points at the column's 500K budget). */
constexpr uint64_t kAdaptiveInterval = 20'000;

/** Miss penalty of the adaptive column. The column runs a slightly
 *  faster memory than the paper-default 5-cycle grid: at 8 cycles the
 *  wrong-path traffic question is contested — the static policies
 *  finish close enough together that per-epoch selection is worth
 *  measuring — without the penalty dominating every other effect. */
constexpr unsigned kAdaptivePenalty = 8;

/** Exploration rate of the column's bandit runs. */
constexpr double kAdaptiveEpsilon = 0.05;

/**
 * The adaptive column of the grid (DESIGN.md §12): per profile, the
 * per-interval Oracle bound assembled from sampled static runs, plus
 * one Threshold and one Bandit adaptive run from the Resume base
 * policy. Each adaptive run is exported as a schema-v1 `adaptive`
 * record carrying its choice log and regret block; the stdout digest
 * reports the share of the (best static -> oracle) gap each selector
 * closed. On workloads where one policy wins every epoch the gap is
 * zero and 100% means the selector met the oracle bound exactly.
 *
 * The whole column (static reference runs included, so the bound and
 * the selectors see the same machine) runs at its own operating
 * point: kAdaptivePenalty, kAdaptiveInterval and a fixed 500K budget,
 * independent of the grid's --budget knob so the exported regret rows
 * are comparable across suite invocations.
 */
void
runAdaptiveColumn(const std::vector<std::string> &names,
                  const SimConfig &grid)
{
    const std::vector<FetchPolicy> &policies = allPolicies();

    SimConfig base = grid;
    base.instructionBudget = kSuiteBudget;
    base.missPenaltyCycles = kAdaptivePenalty;

    // Sampled static runs: the oracle's raw material.
    std::vector<RunSpec> staticSpecs;
    staticSpecs.reserve(names.size() * policies.size());
    for (const std::string &name : names) {
        for (FetchPolicy policy : policies) {
            SimConfig config = base;
            config.policy = policy;
            config.sampleInterval = kAdaptiveInterval;
            staticSpecs.push_back(RunSpec{name, config});
        }
    }
    std::vector<RunObservations> staticObs;
    std::vector<SimResults> staticResults = runSweep(
        staticSpecs, benchMain().parallelism, nullptr, &staticObs);

    // The online selectors, from the same Resume starting policy.
    const SelectorKind kinds[] = {SelectorKind::Threshold,
                                  SelectorKind::Bandit};
    std::vector<RunSpec> adaptiveSpecs;
    adaptiveSpecs.reserve(names.size() * 2);
    for (const std::string &name : names) {
        for (SelectorKind kind : kinds) {
            SimConfig config = base;
            config.policy = FetchPolicy::Resume;
            config.adaptiveSelector = kind;
            config.adaptiveInterval = kAdaptiveInterval;
            config.adaptiveEpsilon = kAdaptiveEpsilon;
            adaptiveSpecs.push_back(RunSpec{name, config});
        }
    }
    std::vector<RunObservations> adaptiveObs;
    std::vector<SimResults> adaptiveResults = runSweep(
        adaptiveSpecs, benchMain().parallelism, nullptr, &adaptiveObs);

    TextTable table;
    table.setColumns({"workload", "best static", "oracle", "thresh",
                      "gap%", "bandit", "gap%"});
    for (size_t b = 0; b < names.size(); ++b) {
        std::vector<std::vector<EpochRecord>> epochs;
        std::vector<double> staticIspi;
        for (size_t p = 0; p < policies.size(); ++p) {
            size_t i = b * policies.size() + p;
            epochs.push_back(std::move(staticObs[i].epochs));
            staticIspi.push_back(staticResults[i].ispi());
        }
        PerIntervalOracle oracle =
            buildPerIntervalOracle(policies, std::move(epochs),
                                   std::move(staticIspi),
                                   kAdaptiveInterval);

        double columnIspi[2] = {0.0, 0.0};
        double columnGap[2] = {0.0, 0.0};
        for (size_t k = 0; k < 2; ++k) {
            size_t i = b * 2 + k;
            AdaptiveRegret regret =
                computeRegret(adaptiveResults[i].ispi(), oracle);
            benchMain().json->write(
                makeAdaptiveRecord(adaptiveObs[i].adaptive,
                                   adaptiveResults[i],
                                   adaptiveSpecs[i].config, &regret));
            columnIspi[k] = regret.adaptiveIspi;
            columnGap[k] = 100.0 * regret.gapClosed;
        }
        table.addRow({names[b],
                      formatFixed(oracle.bestStaticIspi(), 3) + " (" +
                          shortName(oracle.bestStaticPolicy()) + ")",
                      formatFixed(oracle.oracleIspi, 3),
                      formatFixed(columnIspi[0], 3),
                      formatFixed(columnGap[0], 1),
                      formatFixed(columnIspi[1], 3),
                      formatFixed(columnGap[1], 1)});
    }
    std::printf("\nadaptive column (epoch %llu, penalty %u, base resume; "
                "gap%% = share of the best-static -> oracle gap closed):\n",
                static_cast<unsigned long long>(kAdaptiveInterval),
                kAdaptivePenalty);
    emitTable(table);
}

} // namespace

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "bench_suite",
                           "full policy/prefetch grid with JSONL export",
                           kSuiteBudget)) {
        return parseExitCode();
    }
    if (!benchMain().json && !benchMain().openJson("BENCH_results.json"))
        return 1;

    SimConfig base;
    base.instructionBudget = benchMain().budget;
    base.checkLevel = benchMain().checkLevel;
    base.checkpointInterval = benchMain().checkpointInterval;
    banner("Bench suite",
           "13 profiles x 5 policies x {no prefetch, next-line}", base);

    const auto &names = benchmarkNames();

    // One Table-4 classification per profile (policy-independent), so
    // every record of that profile can carry the taxonomy.
    std::vector<Classification> classifications;
    classifications.reserve(names.size());
    for (const std::string &name : names) {
        Workload w = buildWorkload(getProfile(name));
        classifications.push_back(classifyMisses(w, base));
    }

    // Profile-major, policy-minor, prefetch-innermost grid.
    std::vector<RunSpec> specs;
    specs.reserve(names.size() * allPolicies().size() * 2);
    for (const std::string &name : names) {
        for (FetchPolicy policy : allPolicies()) {
            for (bool prefetch : {false, true}) {
                SimConfig config = base;
                config.policy = policy;
                config.nextLinePrefetch = prefetch;
                specs.push_back(RunSpec{name, config});
            }
        }
    }

    if (!benchMain().ledgerPath.empty()) {
        return runLedgered(specs, classifications,
                           allPolicies().size() * 2);
    }
    if (!benchMain().storeSocket.empty())
        return runStoreClient(specs);
    if (!benchMain().injector.empty()) {
        warn("fault injection is active but no --ledger was given; "
             "directives are ignored in the unguarded path");
    }

    benchMain().applyObsConfig(specs);
    benchMain().applyAdaptiveConfig(specs);
    benchMain().beginProgress(specs.size());
    SweepTiming timing;
    std::vector<RunObservations> observations;
    bool collect =
        benchMain().observing() || benchMain().adaptiveArmed();
    std::vector<SimResults> results =
        runSweep(specs, benchMain().parallelism, &timing,
                 collect ? &observations : nullptr);
    benchMain().endProgress();

    for (size_t i = 0; i < specs.size(); ++i) {
        RunTiming rt;
        rt.runSeconds = timing.perRunSeconds[i];
        rt.workloadBuildSeconds = timing.workloadBuildSeconds;
        rt.snapshotRecordSeconds = timing.snapshotRecordSeconds;
        rt.sweepTotalSeconds = timing.totalSeconds;
        size_t profileIndex = i / (allPolicies().size() * 2);
        benchMain().emit(makeRunRecord(results[i], specs[i].config, &rt,
                                       &classifications[profileIndex]));
    }
    benchMain().emitObservations(specs, results, observations);

    // Human-readable digest: suite-average ISPI per (policy, prefetch).
    TextTable table;
    table.setColumns({"policy", "ISPI", "ISPI+pref", "pref delta%"});
    size_t perProfile = allPolicies().size() * 2;
    for (size_t p = 0; p < allPolicies().size(); ++p) {
        double off = 0.0, on = 0.0;
        for (size_t b = 0; b < names.size(); ++b) {
            off += results[b * perProfile + p * 2].ispi();
            on += results[b * perProfile + p * 2 + 1].ispi();
        }
        off /= static_cast<double>(names.size());
        on /= static_cast<double>(names.size());
        table.addRow({toString(allPolicies()[p]), formatFixed(off, 3),
                      formatFixed(on, 3),
                      formatFixed(off == 0.0
                                      ? 0.0
                                      : 100.0 * (on - off) / off,
                                  1)});
    }
    emitTable(table);

    runAdaptiveColumn(names, base);

    std::printf("\n%zu runs in %.2fs (workload build %.2fs, "
                "snapshot record %.2fs); %zu records -> %s\n",
                specs.size(), timing.totalSeconds,
                timing.workloadBuildSeconds,
                timing.snapshotRecordSeconds,
                benchMain().json->recordsWritten(),
                benchMain().json->path().c_str());
    return 0;
}
