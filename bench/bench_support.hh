/**
 * @file
 * Shared scaffolding for the table/figure regeneration harnesses:
 * budget handling, paper-vs-measured cell formatting, averages, and
 * the component-breakdown (stacked-bar) printer used by the figure
 * harnesses.
 */

#ifndef SPECFETCH_BENCH_BENCH_SUPPORT_HH_
#define SPECFETCH_BENCH_BENCH_SUPPORT_HH_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "util/csv.hh"

#include "bench_main.hh"
#include "core/results.hh"
#include "core/sweep.hh"
#include "util/string_utils.hh"
#include "util/table.hh"
#include "workload/registry.hh"

namespace specfetch {
namespace bench {

/** "measured/paper" cell, e.g. "1.83/2.02". */
inline std::string
vsPaper(double measured, double paper_value, int decimals = 2)
{
    return formatFixed(measured, decimals) + "/" +
           formatFixed(paper_value, decimals);
}

namespace detail {
/** Experiment slug set by banner(), consumed by emitTable(). */
inline std::string &
experimentSlug()
{
    static std::string slug = "experiment";
    return slug;
}
inline unsigned &
tableCounter()
{
    static unsigned counter = 0;
    return counter;
}
} // namespace detail

/** Print a harness banner with the experiment identity. */
inline void
banner(const std::string &experiment, const std::string &what,
       const SimConfig &config)
{
    std::string slug;
    for (char c : experiment)
        slug.push_back(c == ' ' ? '_'
                                : static_cast<char>(std::tolower(
                                      static_cast<unsigned char>(c))));
    detail::experimentSlug() = slug;
    detail::tableCounter() = 0;
    std::printf("=== %s: %s ===\n", experiment.c_str(), what.c_str());
    std::printf("machine: %s; budget %s instructions/run\n",
                config.describe().c_str(),
                formatWithCommas(config.instructionBudget).c_str());
    std::printf("cells are measured/paper unless noted\n\n");
}

/**
 * Print a table to stdout and, when SPECFETCH_CSV_DIR is set, also
 * write it as <dir>/<experiment>_<n>.csv for plotting.
 */
inline void
emitTable(const TextTable &table)
{
    std::fputs(table.render().c_str(), stdout);
    const char *dir = std::getenv("SPECFETCH_CSV_DIR");
    if (!dir || !*dir)
        return;
    std::string path = std::string(dir) + "/" +
                       detail::experimentSlug() + "_" +
                       std::to_string(detail::tableCounter()++) + ".csv";
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return;
    }
    out << table.renderCsv();
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

/**
 * Print per-benchmark component breakdowns for a set of policy
 * variants — the textual rendering of the paper's stacked-bar
 * figures. Rows are (benchmark × variant); columns the ISPI
 * components plus the total.
 */
inline void
printBreakdown(const std::vector<std::string> &benchmarks,
               const std::vector<std::pair<std::string, SimConfig>> &variants,
               const char *total_note = nullptr)
{
    std::vector<RunSpec> specs;
    for (const std::string &benchmark : benchmarks)
        for (const auto &[label, config] : variants)
            specs.push_back(RunSpec{benchmark, config});
    std::vector<SimResults> results = runSweepReported(specs);

    TextTable table;
    std::vector<std::string> columns{"program", "variant"};
    for (PenaltyKind kind : allPenaltyKinds())
        columns.push_back(toString(kind));
    columns.push_back("total ISPI");
    table.setColumns(columns);
    table.setAlign(1, TextTable::Align::Left);

    size_t index = 0;
    for (const std::string &benchmark : benchmarks) {
        for (const auto &[label, config] : variants) {
            const SimResults &r = results[index++];
            std::vector<std::string> row{benchmark, label};
            for (PenaltyKind kind : allPenaltyKinds())
                row.push_back(formatFixed(r.ispiOf(kind), 3));
            row.push_back(formatFixed(r.ispi(), 3));
            table.addRow(row);
        }
        if (&benchmark != &benchmarks.back())
            table.addSeparator();
    }
    emitTable(table);
    if (total_note)
        std::printf("\n%s\n", total_note);
}

} // namespace bench
} // namespace specfetch

#endif // SPECFETCH_BENCH_BENCH_SUPPORT_HH_
