/**
 * @file
 * Ablation (beyond the paper): branch-architecture sizing — BTB
 * capacity, PHT capacity/indexing, and the paper's "further study"
 * return-address stack. All reported as the resulting total ISPI
 * under the Resume policy on the baseline machine.
 */

#include <cstdio>

#include "bench_support.hh"
#include "core/simulator.hh"

using namespace specfetch;
using namespace specfetch::bench;

namespace {

SimResults
runVariant(const std::string &bench, const SimConfig &config)
{
    return runOneReported(bench, config);
}

} // namespace

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "ablation_branch_arch",
                           "branch architecture sizing",
                           kDefaultBudget / 2)) {
        return parseExitCode();
    }
    SimConfig base;
    base.instructionBudget = benchMain().budget;
    base.policy = FetchPolicy::Resume;
    banner("Ablation", "branch architecture sizing", base);

    std::vector<std::string> benches{"gcc", "li", "cfront", "idl"};

    std::printf("--- BTB entries (4-way, decoupled) ---\n");
    {
        TextTable table;
        table.setColumns({"Program", "16", "64 (paper)", "256",
                          "misfetch ISPI @16", "@64", "@256"});
        for (const std::string &name : benches) {
            std::vector<std::string> row{name};
            std::vector<std::string> misfetch;
            for (unsigned entries : {16u, 64u, 256u}) {
                SimConfig config = base;
                config.predictor.btbEntries = entries;
                SimResults r = runVariant(name, config);
                row.push_back(formatFixed(r.ispi(), 3));
                misfetch.push_back(
                    formatFixed(r.btbMisfetchIspi(), 3));
            }
            row.insert(row.end(), misfetch.begin(), misfetch.end());
            table.addRow(row);
        }
        emitTable(table);
    }

    std::printf("\n--- PHT entries (gshare) ---\n");
    {
        TextTable table;
        table.setColumns({"Program", "128", "512 (paper)", "4096",
                          "accuracy @128", "@512", "@4096"});
        for (const std::string &name : benches) {
            std::vector<std::string> row{name};
            std::vector<std::string> accuracy;
            for (unsigned entries : {128u, 512u, 4096u}) {
                SimConfig config = base;
                config.predictor.phtEntries = entries;
                SimResults r = runVariant(name, config);
                row.push_back(formatFixed(r.ispi(), 3));
                accuracy.push_back(
                    formatFixed(100.0 * r.condAccuracy(), 1));
            }
            row.insert(row.end(), accuracy.begin(), accuracy.end());
            table.addRow(row);
        }
        emitTable(table);
    }

    std::printf("\n--- PHT indexing (512 entries) ---\n");
    {
        TextTable table;
        table.setColumns({"Program", "gshare (paper)", "global-only",
                          "pc-only", "two-level local",
                          "combining (McFarling)"});
        for (const std::string &name : benches) {
            std::vector<std::string> row{name};
            for (PhtIndexing indexing :
                 {PhtIndexing::Gshare, PhtIndexing::GlobalOnly,
                  PhtIndexing::PcOnly, PhtIndexing::Local,
                  PhtIndexing::Combining}) {
                SimConfig config = base;
                config.predictor.phtIndexing = indexing;
                SimResults r = runVariant(name, config);
                row.push_back(formatFixed(r.ispi(), 3));
            }
            table.addRow(row);
        }
        emitTable(table);
    }

    std::printf("\n--- return-address stack (paper: none) ---\n");
    {
        TextTable table;
        table.setColumns({"Program", "no RAS (paper)", "RAS 8",
                          "RAS 16", "BTB-mispredict ISPI no-RAS",
                          "RAS 8", "RAS 16"});
        for (const std::string &name : benches) {
            std::vector<std::string> row{name};
            std::vector<std::string> target;
            for (unsigned depth : {0u, 8u, 16u}) {
                SimConfig config = base;
                config.predictor.rasDepth = depth;
                SimResults r = runVariant(name, config);
                row.push_back(formatFixed(r.ispi(), 3));
                target.push_back(
                    formatFixed(r.btbMispredictIspi(), 3));
            }
            row.insert(row.end(), target.begin(), target.end());
            table.addRow(row);
        }
        emitTable(table);
    }
    return 0;
}
