/**
 * @file
 * Regenerates paper Table 7: memory traffic of each policy *with*
 * next-line prefetching, as a ratio to Oracle *without* prefetching.
 */

#include <cstdio>

#include "bench_support.hh"
#include "paper_data.hh"

using namespace specfetch;
using namespace specfetch::bench;

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "table7_prefetch_traffic",
                           "memory traffic with next-line prefetching")) {
        return parseExitCode();
    }
    SimConfig base;
    base.instructionBudget = benchMain().budget;
    banner("Table 7", "memory traffic with next-line prefetching", base);

    std::vector<RunSpec> specs;
    for (const std::string &name : benchmarkNames()) {
        SimConfig baseline = base;
        baseline.policy = FetchPolicy::Oracle;
        specs.push_back(RunSpec{name, baseline});    // denominator

        for (FetchPolicy policy :
             {FetchPolicy::Oracle, FetchPolicy::Resume,
              FetchPolicy::Pessimistic}) {
            SimConfig config = base;
            config.policy = policy;
            config.nextLinePrefetch = true;
            specs.push_back(RunSpec{name, config});
        }
    }
    std::vector<SimResults> results = runSweepReported(specs);

    TextTable table;
    table.setColumns({"Program", "Oracle", "Resume", "Pessimistic"});
    std::vector<double> avg(3, 0.0);
    const auto &names = benchmarkNames();
    for (size_t b = 0; b < names.size(); ++b) {
        double denom = static_cast<double>(
            results[b * 4].memoryTransactions());
        std::vector<std::string> row{names[b]};
        for (size_t v = 0; v < 3; ++v) {
            double ratio = denom == 0.0
                ? 0.0
                : static_cast<double>(
                      results[b * 4 + 1 + v].memoryTransactions()) /
                      denom;
            avg[v] += ratio;
            row.push_back(vsPaper(ratio, paper::kTable7[b][v]));
        }
        table.addRow(row);
    }
    table.addSeparator();
    table.addRow({"Average", vsPaper(avg[0] / 13.0, 1.35),
                  vsPaper(avg[1] / 13.0, 1.56),
                  vsPaper(avg[2] / 13.0, 1.38)});
    emitTable(table);

    std::printf("\nshape check (paper §5.3): Resume generates the most "
                "traffic; Oracle/Pessimistic similar: %s\n",
                avg[1] > avg[0] && avg[1] > avg[2] ? "yes" : "NO");
    return 0;
}
