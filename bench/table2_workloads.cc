/**
 * @file
 * Regenerates paper Table 2: general information about the benchmark
 * workloads. For the synthetic stand-ins we report static footprint
 * and the measured dynamic branch percentage next to the paper's
 * value (instruction counts are whatever budget the harness runs;
 * the paper's full-run counts are echoed for reference).
 */

#include <cstdio>

#include "bench_support.hh"
#include "workload/executor.hh"
#include "workload/workload.hh"

using namespace specfetch;
using namespace specfetch::bench;

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "table2_workloads",
                           "benchmark characteristics")) {
        return parseExitCode();
    }
    uint64_t budget = benchMain().budget;
    SimConfig config;
    config.instructionBudget = budget;
    banner("Table 2", "benchmark characteristics", config);

    TextTable table;
    table.setColumns({"Program", "family", "static KB", "blocks",
                      "functions", "%Branches", "%cond", "paper Minst"});

    std::vector<double> branch_pct;
    for (const std::string &name : benchmarkNames()) {
        WorkloadProfile profile = getProfile(name);
        Workload w = buildWorkload(profile);

        Executor executor(w.cfg, 42);
        DynInst inst;
        for (uint64_t i = 0; i < budget; ++i)
            executor.next(inst);

        double measured = 100.0 * executor.branchFraction();
        branch_pct.push_back(measured);
        double cond = 100.0 *
            ratioOf(executor.condBranches.value(),
                    executor.instructions.value());

        const char *family =
            profile.family == LanguageFamily::Fortran ? "Fortran"
            : profile.family == LanguageFamily::C     ? "C"
                                                      : "C++";
        table.addRow({name, family,
                      formatFixed(
                          static_cast<double>(w.footprintBytes()) / 1024.0,
                          1),
                      std::to_string(w.cfg.blocks.size()),
                      std::to_string(w.cfg.functions.size()),
                      vsPaper(measured, profile.paperBranchPercent, 1),
                      formatFixed(cond, 1),
                      formatFixed(profile.paperInstMillions, 0)});

        if (benchMain().exporting()) {
            JsonValue record = JsonValue::object();
            record.set("schema_version",
                       JsonValue::integer(kReportSchemaVersion))
                .set("record", JsonValue::string("workload"))
                .set("workload", JsonValue::string(name))
                .set("family", JsonValue::string(family))
                .set("footprint_bytes",
                     JsonValue::integer(w.footprintBytes()))
                .set("blocks", JsonValue::integer(w.cfg.blocks.size()))
                .set("functions",
                     JsonValue::integer(w.cfg.functions.size()))
                .set("instructions",
                     JsonValue::integer(executor.instructions.value()))
                .set("branch_percent", JsonValue::number(measured))
                .set("cond_branch_percent", JsonValue::number(cond));
            benchMain().emit(record);
        }
    }
    table.addSeparator();
    table.addRow({"Average", "", "", "", "",
                  formatFixed(mean(branch_pct), 1), "", ""});
    emitTable(table);
    return 0;
}
