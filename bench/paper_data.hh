/**
 * @file
 * The paper's published numbers (Lee, Baer, Calder, Grunwald, ISCA
 * 1995), transcribed from Tables 2-7 so every harness can print
 * paper-vs-measured side by side. Order matches
 * workload::benchmarkNames(): doduc, fpppp, su2cor, ditroff, gcc, li,
 * tex, cfront, db++, groff, idl, lic, porky.
 */

#ifndef SPECFETCH_BENCH_PAPER_DATA_HH_
#define SPECFETCH_BENCH_PAPER_DATA_HH_

#include <cstddef>

namespace specfetch {
namespace paper {

constexpr size_t kNumBenchmarks = 13;

/** Table 3: instruction cache and branch prediction characteristics. */
struct Table3Row
{
    double miss8K, miss32K;
    double phtIspiB1, phtIspiB4;
    double misfetchIspiB1, misfetchIspiB4;
    double btbMispIspiB1, btbMispIspiB4;
};

constexpr Table3Row kTable3[kNumBenchmarks] = {
    // 8K, 32K, PHT B1, PHT B4, MF B1, MF B4, BTB B1, BTB B4
    {2.94, 0.48, 0.22, 0.37, 0.04, 0.04, 0.00, 0.00},    // doduc
    {7.27, 1.08, 0.08, 0.12, 0.01, 0.01, 0.00, 0.00},    // fpppp
    {1.33, 0.00, 0.08, 0.10, 0.00, 0.00, 0.00, 0.00},    // su2cor
    {3.18, 0.58, 0.44, 0.64, 0.22, 0.22, 0.00, 0.00},    // ditroff
    {4.48, 1.71, 0.53, 0.63, 0.28, 0.28, 0.05, 0.05},    // gcc
    {3.33, 0.06, 0.35, 0.54, 0.24, 0.24, 0.04, 0.04},    // li
    {2.85, 1.00, 0.27, 0.36, 0.11, 0.11, 0.03, 0.03},    // tex
    {7.24, 2.63, 0.50, 0.56, 0.34, 0.34, 0.05, 0.05},    // cfront
    {1.57, 0.42, 0.16, 0.41, 0.13, 0.13, 0.01, 0.01},    // db++
    {5.33, 1.68, 0.42, 0.57, 0.39, 0.38, 0.06, 0.06},    // groff
    {2.17, 0.67, 0.30, 0.49, 0.10, 0.11, 0.04, 0.05},    // idl
    {3.93, 1.68, 0.45, 0.56, 0.27, 0.27, 0.00, 0.00},    // lic
    {2.51, 0.66, 0.42, 0.48, 0.20, 0.20, 0.04, 0.04},    // porky
};

/** Table 4: miss-ratio categorization (percent of instructions). */
struct Table4Row
{
    double bothMiss, specPollute, specPrefetch, wrongPath, trafficRatio;
};

constexpr Table4Row kTable4[kNumBenchmarks] = {
    {2.58, 0.10, 0.36, 0.58, 1.11},    // doduc
    {7.18, 0.03, 0.08, 0.15, 1.01},    // fpppp
    {1.24, 0.01, 0.09, 0.10, 1.01},    // su2cor
    {2.27, 0.38, 0.92, 2.01, 1.46},    // ditroff
    {3.09, 0.48, 1.40, 3.25, 1.52},    // gcc
    {2.43, 0.42, 0.90, 2.05, 1.47},    // li
    {2.36, 0.25, 0.49, 1.24, 1.35},    // tex
    {5.22, 0.63, 2.02, 4.67, 1.45},    // cfront
    {1.15, 0.23, 0.42, 1.02, 1.52},    // db++
    {3.72, 0.70, 1.61, 3.95, 1.57},    // groff
    {1.67, 0.14, 0.49, 1.03, 1.31},    // idl
    {2.56, 0.36, 1.37, 2.62, 1.41},    // lic
    {1.81, 0.35, 0.70, 1.67, 1.53},    // porky
};

/** Table 5: total ISPI per policy at depths 1, 2, 4 (8K, 5 cycles). */
struct Table5Row
{
    double depth1[5];    // Oracle, Opt, Res, Pess, Dec
    double depth2[5];
    double depth4[5];
};

constexpr Table5Row kTable5[kNumBenchmarks] = {
    {{1.19, 1.20, 1.17, 1.46, 1.43},
     {1.10, 1.12, 1.08, 1.37, 1.35},
     {1.00, 1.02, 0.97, 1.27, 1.25}},    // doduc
    {{1.64, 1.64, 1.64, 2.24, 2.22},
     {1.59, 1.60, 1.59, 2.19, 2.18},
     {1.58, 1.59, 1.58, 2.18, 2.17}},    // fpppp
    {{0.46, 0.45, 0.45, 0.58, 0.56},
     {0.40, 0.39, 0.38, 0.52, 0.49},
     {0.37, 0.36, 0.36, 0.50, 0.47}},    // su2cor
    {{2.02, 2.09, 2.01, 2.35, 2.29},
     {1.68, 1.80, 1.67, 2.01, 1.96},
     {1.52, 1.68, 1.52, 1.84, 1.84}},    // ditroff
    {{2.33, 2.46, 2.34, 2.73, 2.71},
     {1.99, 2.19, 2.01, 2.40, 2.39},
     {1.87, 2.11, 1.88, 2.28, 2.30}},    // gcc
    {{2.04, 2.10, 2.01, 2.35, 2.31},
     {1.65, 1.72, 1.62, 1.98, 1.91},
     {1.54, 1.73, 1.54, 1.88, 1.86}},    // li
    {{1.28, 1.34, 1.28, 1.55, 1.52},
     {1.11, 1.19, 1.12, 1.38, 1.36},
     {1.07, 1.18, 1.07, 1.34, 1.33}},    // tex
    {{2.68, 2.88, 2.69, 3.32, 3.30},
     {2.45, 2.73, 2.46, 3.09, 3.10},
     {2.40, 2.73, 2.41, 3.06, 3.09}},    // cfront
    {{1.43, 1.50, 1.46, 1.58, 1.56},
     {1.00, 1.09, 1.03, 1.15, 1.15},
     {0.87, 0.98, 0.90, 1.02, 1.09}},    // db++
    {{2.53, 2.75, 2.59, 3.02, 2.99},
     {2.18, 2.47, 2.24, 2.67, 2.66},
     {2.09, 2.43, 2.15, 2.58, 2.60}},    // groff
    {{1.74, 1.79, 1.74, 1.94, 1.93},
     {1.30, 1.35, 1.29, 1.51, 1.49},
     {1.09, 1.15, 1.07, 1.30, 1.28}},    // idl
    {{2.13, 2.22, 2.10, 2.48, 2.46},
     {1.77, 1.89, 1.72, 2.13, 2.11},
     {1.63, 1.78, 1.57, 2.00, 2.01}},    // lic
    {{2.00, 2.11, 2.02, 2.24, 2.23},
     {1.49, 1.61, 1.50, 1.74, 1.72},
     {1.25, 1.40, 1.26, 1.50, 1.51}},    // porky
};

/** Table 6: total ISPI per policy, 32K cache, depth 4, 5 cycles. */
constexpr double kTable6[kNumBenchmarks][5] = {
    {0.52, 0.53, 0.51, 0.56, 0.57},    // doduc
    {0.35, 0.35, 0.35, 0.44, 0.44},    // fpppp
    {0.12, 0.12, 0.12, 0.12, 0.12},    // su2cor
    {1.03, 1.08, 1.01, 1.10, 1.10},    // ditroff
    {1.33, 1.43, 1.32, 1.49, 1.51},    // gcc
    {0.89, 1.04, 0.92, 0.90, 0.96},    // li
    {0.70, 0.74, 0.69, 0.80, 0.80},    // tex
    {1.50, 1.70, 1.50, 1.74, 1.79},    // cfront
    {0.65, 0.69, 0.65, 0.69, 0.69},    // db++
    {1.39, 1.56, 1.43, 1.55, 1.58},    // groff
    {0.79, 0.82, 0.77, 0.85, 0.85},    // idl
    {1.19, 1.29, 1.17, 1.36, 1.37},    // lic
    {0.89, 0.93, 0.88, 0.95, 0.97},    // porky
};

/** Table 7: memory-traffic ratio with next-line prefetching, relative
 *  to Oracle without prefetching (Oracle, Resume, Pessimistic). */
constexpr double kTable7[kNumBenchmarks][3] = {
    {1.22, 1.28, 1.23},    // doduc
    {1.02, 1.03, 1.03},    // fpppp
    {1.26, 1.27, 1.26},    // su2cor
    {1.41, 1.68, 1.47},    // ditroff
    {1.39, 1.62, 1.45},    // gcc
    {1.29, 1.62, 1.29},    // li
    {1.34, 1.54, 1.38},    // tex
    {1.35, 1.56, 1.39},    // cfront
    {1.43, 1.74, 1.47},    // db++
    {1.46, 1.71, 1.49},    // groff
    {1.64, 1.81, 1.67},    // idl
    {1.28, 1.52, 1.32},    // lic
    {1.51, 1.83, 1.54},    // porky
};

} // namespace paper
} // namespace specfetch

#endif // SPECFETCH_BENCH_PAPER_DATA_HH_
