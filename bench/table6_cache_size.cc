/**
 * @file
 * Regenerates paper Table 6: total ISPI with a 32K direct-mapped
 * cache (5-cycle penalty, depth 4): larger caches shrink every
 * policy's penalty and compress the gaps between them.
 */

#include <cstdio>

#include "bench_support.hh"
#include "paper_data.hh"

using namespace specfetch;
using namespace specfetch::bench;

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "table6_cache_size",
                           "effect of cache size (32K)")) {
        return parseExitCode();
    }
    SimConfig base;
    base.instructionBudget = benchMain().budget;
    base.icache.sizeBytes = 32 * 1024;
    banner("Table 6", "effect of cache size (32K)", base);

    std::vector<RunSpec> specs;
    for (const std::string &name : benchmarkNames()) {
        for (FetchPolicy policy : allPolicies()) {
            SimConfig config = base;
            config.policy = policy;
            specs.push_back(RunSpec{name, config});
        }
    }
    std::vector<SimResults> results = runSweepReported(specs);

    TextTable table;
    table.setColumns({"Program", "Oracle", "Opt", "Res", "Pess", "Dec"});
    std::vector<double> avg(5, 0.0);
    const auto &names = benchmarkNames();
    for (size_t b = 0; b < names.size(); ++b) {
        std::vector<std::string> row{names[b]};
        for (size_t pol = 0; pol < 5; ++pol) {
            const SimResults &r = results[b * 5 + pol];
            avg[pol] += r.ispi();
            row.push_back(vsPaper(r.ispi(), paper::kTable6[b][pol]));
        }
        table.addRow(row);
    }
    table.addSeparator();
    static const double paper_avg[5] = {0.87, 0.94, 0.87, 0.97, 0.98};
    std::vector<std::string> avg_row{"Average"};
    for (size_t pol = 0; pol < 5; ++pol)
        avg_row.push_back(vsPaper(avg[pol] / 13.0, paper_avg[pol]));
    table.addRow(avg_row);
    emitTable(table);

    std::printf("\nshape check (paper §5.2.3): policy gaps compress at "
                "32K — Resume-vs-Pessimistic gap %.1f%% (paper: ~10%% "
                "at 32K vs ~19%% at 8K)\n",
                100.0 * (avg[3] - avg[2]) / avg[2]);
    return 0;
}
