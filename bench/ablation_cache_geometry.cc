/**
 * @file
 * Ablation (beyond the paper): how associativity and line size change
 * the policy comparison. The paper fixes a direct-mapped 32-byte-line
 * cache; DESIGN.md calls out both as modeling choices worth
 * stressing: associativity removes the conflict misses that the
 * synthetic Fortran kernels rely on, and line size changes how much
 * code one next-line prefetch covers.
 */

#include <cstdio>

#include "bench_support.hh"
#include "core/simulator.hh"

using namespace specfetch;
using namespace specfetch::bench;

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "ablation_cache_geometry",
                           "cache geometry (associativity, line size)",
                           kDefaultBudget / 2)) {
        return parseExitCode();
    }
    SimConfig base;
    base.instructionBudget = benchMain().budget;
    banner("Ablation", "cache geometry (associativity, line size)",
           base);

    std::vector<std::string> benches{"fpppp", "gcc", "groff", "li"};

    std::printf("--- associativity (8K, 32B lines, Resume) ---\n");
    {
        TextTable table;
        table.setColumns({"Program", "1-way miss%", "2-way", "4-way",
                          "1-way ISPI", "2-way", "4-way"});
        for (const std::string &name : benches) {
            std::vector<std::string> row{name};
            std::vector<std::string> ispis;
            for (unsigned ways : {1u, 2u, 4u}) {
                SimConfig config = base;
                config.policy = FetchPolicy::Resume;
                config.icache.ways = ways;
                SimResults r = runOneReported(name, config);
                row.push_back(formatFixed(r.missRatePercent(), 2));
                ispis.push_back(formatFixed(r.ispi(), 3));
            }
            row.insert(row.end(), ispis.begin(), ispis.end());
            table.addRow(row);
        }
        emitTable(table);
    }

    std::printf("\n--- line size (8K direct-mapped, Resume, "
                "prefetch on) ---\n");
    {
        TextTable table;
        table.setColumns({"Program", "16B ISPI", "32B", "64B",
                          "16B traffic", "32B", "64B"});
        for (const std::string &name : benches) {
            std::vector<std::string> row{name};
            std::vector<std::string> traffic;
            for (unsigned bytes : {16u, 32u, 64u}) {
                SimConfig config = base;
                config.policy = FetchPolicy::Resume;
                config.nextLinePrefetch = true;
                config.icache.lineBytes = bytes;
                SimResults r = runOneReported(name, config);
                row.push_back(formatFixed(r.ispi(), 3));
                traffic.push_back(
                    formatWithCommas(r.memoryTransactions()));
            }
            row.insert(row.end(), traffic.begin(), traffic.end());
            table.addRow(row);
        }
        emitTable(table);
    }
    return 0;
}
