/**
 * @file
 * Regenerates paper Figure 4: next-line prefetching with a 20-cycle
 * miss penalty — where even Oracle can lose because demand misses
 * queue behind prefetches on the blocking bus.
 */

#include <cstdio>

#include "bench_support.hh"

using namespace specfetch;
using namespace specfetch::bench;

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "fig4_prefetch_long_latency",
                           "next-line prefetching, 20-cycle penalty")) {
        return parseExitCode();
    }
    SimConfig base;
    base.instructionBudget = benchMain().budget;
    base.missPenaltyCycles = 20;
    banner("Figure 4", "next-line prefetching, 20-cycle penalty", base);

    std::vector<std::pair<std::string, SimConfig>> variants;
    for (FetchPolicy policy :
         {FetchPolicy::Oracle, FetchPolicy::Resume,
          FetchPolicy::Pessimistic}) {
        SimConfig off = base;
        off.policy = policy;
        variants.emplace_back(toString(policy), off);
        SimConfig on = off;
        on.nextLinePrefetch = true;
        variants.emplace_back(toString(policy) + "+Pref", on);
    }

    std::vector<std::string> representative{"doduc", "gcc", "li",
                                            "groff", "lic"};
    printBreakdown(representative, variants);

    std::vector<RunSpec> specs;
    for (const std::string &name : benchmarkNames())
        for (const auto &[label, config] : variants)
            specs.push_back(RunSpec{name, config});
    std::vector<SimResults> results = runSweepReported(specs);

    double ispi_sum[6] = {};
    double bus_sum[6] = {};
    size_t idx = 0;
    for (size_t b = 0; b < benchmarkNames().size(); ++b) {
        for (size_t v = 0; v < 6; ++v) {
            ispi_sum[v] += results[idx].ispi();
            bus_sum[v] += results[idx].ispiOf(PenaltyKind::Bus);
            ++idx;
        }
    }
    for (size_t v = 0; v < 6; ++v) {
        ispi_sum[v] /= 13.0;
        bus_sum[v] /= 13.0;
    }

    std::printf("\nsuite-average ISPI (bus component): "
                "Oracle %.3f(%.3f) / +pref %.3f(%.3f); "
                "Resume %.3f(%.3f) / +pref %.3f(%.3f); "
                "Pess %.3f(%.3f) / +pref %.3f(%.3f)\n",
                ispi_sum[0], bus_sum[0], ispi_sum[1], bus_sum[1],
                ispi_sum[2], bus_sum[2], ispi_sum[3], bus_sum[3],
                ispi_sum[4], bus_sum[4], ispi_sum[5], bus_sum[5]);

    std::printf("shape checks (paper §5.3, Figure 4):\n");
    std::printf("  prefetch inflates the bus component at long "
                "latency: %s\n",
                bus_sum[1] > bus_sum[0] && bus_sum[5] > bus_sum[4]
                    ? "yes"
                    : "NO");
    std::printf("  prefetch is no longer a clear win (some policy "
                "hurt or barely helped): %s\n",
                ispi_sum[1] > ispi_sum[0] * 0.97 ||
                        ispi_sum[3] > ispi_sum[2] * 0.97 ||
                        ispi_sum[5] > ispi_sum[4] * 0.97
                    ? "yes"
                    : "NO");
    return 0;
}
