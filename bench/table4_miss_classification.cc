/**
 * @file
 * Regenerates paper Table 4: categorization of misses into Both Miss,
 * Spec Pollute, Spec Prefetch, and Wrong Path (percent of
 * instructions), plus the Optimistic/Oracle traffic ratio.
 */

#include <cstdio>

#include "bench_support.hh"
#include "core/miss_classifier.hh"
#include "paper_data.hh"
#include "workload/workload.hh"

using namespace specfetch;
using namespace specfetch::bench;

int
main(int argc, char **argv)
{
    if (!benchMain().parse(argc, argv, "table4_miss_classification",
                           "miss-ratio categorization "
                           "(Oracle vs Optimistic)")) {
        return parseExitCode();
    }
    SimConfig config;
    config.instructionBudget = benchMain().budget;
    banner("Table 4", "miss-ratio categorization (Oracle vs Optimistic)",
           config);

    TextTable table;
    table.setColumns({"Program", "BM", "SPo", "SPr", "WP", "TR"});

    std::vector<double> bm, spo, spr, wp, tr;
    const auto &names = benchmarkNames();
    for (size_t i = 0; i < names.size(); ++i) {
        Workload w = buildWorkload(getProfile(names[i]));
        Classification c = classifyMisses(w, config);
        if (benchMain().exporting())
            benchMain().emit(makeClassificationRecord(c, config));
        const paper::Table4Row &p = paper::kTable4[i];

        bm.push_back(c.bothMissPercent());
        spo.push_back(c.specPollutePercent());
        spr.push_back(c.specPrefetchPercent());
        wp.push_back(c.wrongPathPercent());
        tr.push_back(c.trafficRatio());

        table.addRow({names[i],
                      vsPaper(c.bothMissPercent(), p.bothMiss),
                      vsPaper(c.specPollutePercent(), p.specPollute),
                      vsPaper(c.specPrefetchPercent(), p.specPrefetch),
                      vsPaper(c.wrongPathPercent(), p.wrongPath),
                      vsPaper(c.trafficRatio(), p.trafficRatio)});
    }
    table.addSeparator();
    table.addRow({"Average", vsPaper(mean(bm), 2.87),
                  vsPaper(mean(spo), 0.32), vsPaper(mean(spr), 0.83),
                  vsPaper(mean(wp), 1.87), vsPaper(mean(tr), 1.36)});
    emitTable(table);

    std::printf("\nshape check: prefetch effect beats pollution "
                "(SPr > SPo on average): %s\n",
                mean(spr) > mean(spo) ? "yes" : "NO");
    return 0;
}
