/**
 * @file
 * The sweep daemon (DESIGN.md §15): a crash-safe result store behind
 * a SweepService, serving JSONL requests over a Unix-domain socket or
 * stdin/stdout.
 *
 *   # one-shot, stdio transport
 *   printf '%s\n' '{"id":1,"benchmark":"gcc"}' | sweep_serve --store dir
 *
 *   # daemon, socket transport
 *   sweep_serve --store dir --socket /tmp/sweep.sock --workers 4 &
 *   tools/sweep_client.py --socket /tmp/sweep.sock requests.jsonl
 *
 * SIGTERM/SIGINT drain gracefully: intake stops, admitted requests
 * finish and are answered, the store is fsync'd and closed with its
 * clean-shutdown marker. kill -9 at any instant is also survivable —
 * the next open replays the segments and loses at most the put that
 * was in flight.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <thread>
#include <vector>

#include <unistd.h>

#include "fault/injector.hh"
#include "metrics/flusher.hh"
#include "metrics/metrics.hh"
#include "obs/progress.hh"
#include "obs/trace_event.hh"
#include "serve/result_store.hh"
#include "serve/service.hh"
#include "serve/socket.hh"
#include "util/logging.hh"
#include "util/options.hh"

using namespace specfetch;

namespace {

std::atomic<bool> gStop{false};

extern "C" void
stopSignalHandler(int)
{
    gStop.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    OptionParser opts("sweep_serve",
                      "Serve sweep requests from a crash-safe result "
                      "store (JSONL over stdio or a Unix socket)");
    opts.addString("store", "", "result store directory (required)");
    opts.addString("socket", "",
                   "Unix-domain socket path (default: serve stdin/stdout "
                   "once and exit)");
    opts.addCount("workers", 2, "simulation worker threads");
    opts.addCount("queue-bound", 64,
                  "admitted-request bound; excess requests are shed "
                  "with an 'overloaded' error");
    opts.addCount("retries", 3, "attempts per run before it fails");
    opts.addDouble("backoff", 0.05, "retry/backoff-hint base (seconds)");
    opts.addDouble("run-timeout", 0.0,
                   "per-run watchdog budget in seconds (0 = none)");
    opts.addDouble("request-deadline", 0.0,
                   "per-request deadline from admission in seconds "
                   "(0 = none)");
    opts.addCount("poison-threshold", 3,
                  "terminal failures before a key is quarantined");
    opts.addSize("max-segment-bytes", 4 * 1024 * 1024,
                 "rotate the store's append segment past this size");
    opts.addFlag("compact", "compact the store after opening it");
    opts.addString("fault-inject", "",
                   "fault spec (see --help of bench_suite); indices name "
                   "executed-run ordinals for run faults and put ordinals "
                   "for store faults");
    opts.addString("health-file", "",
                   "append schema-v1 'health' JSONL heartbeats here");
    opts.addDouble("health-interval", 2.0, "heartbeat period (seconds)");
    opts.addFlag("health-stderr", "human heartbeat line on stderr");
    opts.addString("metrics-out", "",
                   "write schema-v1 'metrics' JSONL snapshots here "
                   "(counters, gauges, latency histograms)");
    opts.addDouble("metrics-interval", 2.0,
                   "metrics snapshot period (seconds)");
    opts.addString("trace-out", "",
                   "write a Chrome trace-event JSON file with one "
                   "queue+execute span pair per executed request");
    if (!opts.parse(argc, argv))
        return 1;
    if (opts.getString("store").empty()) {
        std::fprintf(stderr, "sweep_serve: --store is required\n");
        return 1;
    }

    FaultInjector injector;
    std::string faultError;
    if (!FaultInjector::parse(opts.getString("fault-inject"), injector,
                              &faultError)) {
        std::fprintf(stderr, "sweep_serve: %s\n", faultError.c_str());
        return 1;
    }
    if (injector.empty() &&
        !FaultInjector::fromEnv(injector, &faultError)) {
        std::fprintf(stderr, "sweep_serve: %s\n", faultError.c_str());
        return 1;
    }

    // The registry is always live so an `{"op":"stats"}` request works
    // without any flag; a disabled --metrics-out only skips the file.
    MetricsRegistry metrics;

    // Tracing must be on before the workers start so their first
    // dequeue already records spans.
    const std::string traceOut = opts.getString("trace-out");
    if (!traceOut.empty())
        TraceEventSink::global().open(traceOut);

    ResultStore::Options storeOptions;
    storeOptions.dir = opts.getString("store");
    storeOptions.maxSegmentBytes = opts.getSize("max-segment-bytes");
    storeOptions.metrics = &metrics;
    if (!injector.empty())
        storeOptions.injector = &injector;
    ResultStore store;
    std::string error;
    if (!store.open(storeOptions, &error)) {
        std::fprintf(stderr, "sweep_serve: %s\n", error.c_str());
        return 1;
    }
    ResultStore::Stats storeStats = store.stats();
    std::fprintf(stderr,
                 "sweep_serve: store '%s' open: %llu records, "
                 "generation %llu%s%s%s\n",
                 storeOptions.dir.c_str(),
                 static_cast<unsigned long long>(storeStats.records),
                 static_cast<unsigned long long>(storeStats.generation),
                 storeStats.recovered ? ", recovered (no clean marker)"
                                      : "",
                 storeStats.tornTail ? ", dropped a torn tail line" : "",
                 storeStats.staleGenerationsRemoved > 0
                     ? ", removed stale generations"
                     : "");
    if (storeStats.corruptFrames > 0) {
        std::fprintf(stderr,
                     "sweep_serve: quarantined %llu corrupt frames "
                     "(see %s/%s)\n",
                     static_cast<unsigned long long>(
                         storeStats.corruptFrames),
                     storeOptions.dir.c_str(), kStoreQuarantineFile);
    }
    if (opts.getFlag("compact") && !store.compact(&error)) {
        std::fprintf(stderr, "sweep_serve: compact: %s\n", error.c_str());
        return 1;
    }

    SweepService::Options serviceOptions;
    serviceOptions.workers =
        static_cast<unsigned>(opts.getCount("workers"));
    serviceOptions.queueBound =
        static_cast<size_t>(opts.getCount("queue-bound"));
    serviceOptions.maxAttempts =
        static_cast<unsigned>(opts.getCount("retries"));
    serviceOptions.backoffBaseSeconds = opts.getDouble("backoff");
    serviceOptions.runTimeoutSeconds = opts.getDouble("run-timeout");
    serviceOptions.requestDeadlineSeconds =
        opts.getDouble("request-deadline");
    serviceOptions.poisonThreshold =
        static_cast<unsigned>(opts.getCount("poison-threshold"));
    if (!injector.empty())
        serviceOptions.injector = &injector;
    serviceOptions.metrics = &metrics;
    SweepService service(store, serviceOptions);

    MetricsFlusher flusher;
    if (!opts.getString("metrics-out").empty()) {
        MetricsFlusher::Options flusherOptions;
        flusherOptions.filePath = opts.getString("metrics-out");
        flusherOptions.intervalSeconds = opts.getDouble("metrics-interval");
        if (flusher.begin(flusherOptions,
                          [&service](uint64_t seq, double elapsedSeconds,
                                     bool final) {
                              return service.metricsRecord(
                                  "sweep_serve", seq, elapsedSeconds,
                                  final);
                          })) {
            // The first record in the file is the open-time recovery
            // summary, so any log starts with what the store found.
            flusher.emitRecord(store.openSummaryRecord());
        }
    }

    bool heartbeat = opts.getFlag("health-stderr") ||
                     !opts.getString("health-file").empty();
    if (heartbeat) {
        ProgressReporter::Options health;
        health.toStderr = opts.getFlag("health-stderr");
        health.filePath = opts.getString("health-file");
        health.intervalSeconds = opts.getDouble("health-interval");
        health.recordName = "health";
        health.extraMembers = [&service](JsonValue &row) {
            service.healthMembers(row);
        };
        ProgressReporter::global().begin(health, /*totalRuns=*/0,
                                         "sweep_serve");
    }

    std::signal(SIGTERM, stopSignalHandler);
    std::signal(SIGINT, stopSignalHandler);
    std::signal(SIGPIPE, SIG_IGN);

    service.start();

    const std::string socketPath = opts.getString("socket");
    if (socketPath.empty()) {
        serveStream(STDIN_FILENO, STDOUT_FILENO, service, &gStop);
    } else {
        UnixSocketServer listener;
        if (!listener.listen(socketPath, &error)) {
            std::fprintf(stderr, "sweep_serve: %s\n", error.c_str());
            return 1;
        }
        std::fprintf(stderr, "sweep_serve: listening on %s\n",
                     socketPath.c_str());
        MetricCounter &accepts = metrics.counter("socket.accepts");
        std::vector<std::thread> connections;
        while (!gStop.load()) {
            int client = listener.accept(/*pollSeconds=*/0.2);
            if (client < 0)
                continue;
            accepts.add(1);
            connections.emplace_back([client, &service] {
                serveStream(client, client, service, &gStop);
                ::close(client);
            });
        }
        listener.close();
        for (std::thread &connection : connections)
            connection.join();
    }

    // Graceful drain: finish admitted work, answer it, then make the
    // store durable with its clean-shutdown marker.
    service.drain();
    if (heartbeat)
        ProgressReporter::global().end();
    flusher.end();
    if (!traceOut.empty())
        TraceEventSink::global().close();
    if (!store.close(&error)) {
        std::fprintf(stderr, "sweep_serve: close: %s\n", error.c_str());
        return 1;
    }
    SweepService::Stats stats = service.statsSnapshot();
    std::fprintf(stderr,
                 "sweep_serve: done: %llu requests, %llu hits, "
                 "%llu deduped, %llu executed, %llu shed, %llu failed\n",
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.deduped),
                 static_cast<unsigned long long>(stats.executed),
                 static_cast<unsigned long long>(stats.shed),
                 static_cast<unsigned long long>(stats.failed));
    return 0;
}
