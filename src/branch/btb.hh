/**
 * @file
 * Branch target buffer.
 *
 * The paper's baseline (§4.1) uses a *decoupled* 64-entry 4-way
 * set-associative BTB: it supplies target addresses for predicted-
 * taken branches but carries no direction state (direction comes from
 * the PHT for every conditional branch, BTB hit or not). Entries are
 * inserted *speculatively* after decode for predicted-taken branches.
 */

#ifndef SPECFETCH_BRANCH_BTB_HH_
#define SPECFETCH_BRANCH_BTB_HH_

#include <cstdint>
#include <vector>

#include "isa/types.hh"
#include "stats/stats.hh"

namespace specfetch {

/** Result of a BTB probe. */
struct BtbLookup
{
    bool hit = false;
    Addr target = 0;
};

/**
 * Set-associative target buffer with true-LRU replacement.
 */
class Btb
{
  public:
    /**
     * @param entries Total entries (power of two).
     * @param ways    Associativity; must divide entries.
     */
    Btb(unsigned entries = 64, unsigned ways = 4);

    /** Probe at fetch time; updates LRU on hit. */
    BtbLookup lookup(Addr pc);

    /** Probe without perturbing replacement state (for inspection). */
    BtbLookup peek(Addr pc) const;

    /**
     * Insert/refresh the mapping pc -> target (decode-time
     * speculative update for predicted-taken branches).
     */
    void insert(Addr pc, Addr target);

    /** Invalidate any entry for @p pc. */
    void invalidate(Addr pc);

    unsigned numEntries() const { return entries; }
    unsigned numWays() const { return ways; }
    unsigned numSets() const { return sets; }

    /** @name Statistics @{ */
    Counter lookups;
    Counter hits;
    Counter insertions;
    Counter evictions;
    /** @} */

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        uint64_t lastUse = 0;
    };

    unsigned setIndex(Addr pc) const;
    Addr tagOf(Addr pc) const;

    unsigned entries = 0;
    unsigned ways = 0;
    unsigned sets = 0;
    unsigned indexBits = 0;
    std::vector<Entry> table;     // sets * ways, set-major
    uint64_t useClock = 0;
};

} // namespace specfetch

#endif // SPECFETCH_BRANCH_BTB_HH_
