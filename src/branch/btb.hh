/**
 * @file
 * Branch target buffer.
 *
 * The paper's baseline (§4.1) uses a *decoupled* 64-entry 4-way
 * set-associative BTB: it supplies target addresses for predicted-
 * taken branches but carries no direction state (direction comes from
 * the PHT for every conditional branch, BTB hit or not). Entries are
 * inserted *speculatively* after decode for predicted-taken branches.
 */

#ifndef SPECFETCH_BRANCH_BTB_HH_
#define SPECFETCH_BRANCH_BTB_HH_

#include <cstdint>
#include <vector>

#include "isa/types.hh"
#include "stats/stats.hh"

namespace specfetch {

/** Result of a BTB probe. */
struct BtbLookup
{
    bool hit = false;
    Addr target = 0;
};

/**
 * Set-associative target buffer with true-LRU replacement.
 */
class Btb
{
  public:
    /**
     * @param entries Total entries (power of two).
     * @param ways    Associativity; must divide entries.
     */
    Btb(unsigned entries = 64, unsigned ways = 4);

    /**
     * Probe at fetch time; updates LRU on hit. Inline: the predictor
     * probes the BTB once per control instruction (correct and wrong
     * path), inside the simulator's hot loop.
     */
    BtbLookup
    lookup(Addr pc)
    {
        ++lookups;
        Entry *base = &table[setIndex(pc) * ways];
        Addr tag = tagOf(pc);
        for (unsigned w = 0; w < ways; ++w) {
            Entry &entry = base[w];
            if (entry.valid && entry.tag == tag) {
                entry.lastUse = ++useClock;
                ++hits;
                return BtbLookup{true, entry.target};
            }
        }
        return BtbLookup{};
    }

    /** Probe without perturbing replacement state (for inspection). */
    BtbLookup peek(Addr pc) const;

    /**
     * Insert/refresh the mapping pc -> target (decode-time
     * speculative update for predicted-taken branches). Inline: one
     * insert per predicted-taken branch on both paths, right next to
     * lookup() in the simulator's per-control-instruction hot loop.
     */
    void
    insert(Addr pc, Addr target)
    {
        ++insertions;
        Entry *base = &table[setIndex(pc) * ways];
        Addr tag = tagOf(pc);

        // Refresh an existing entry in place.
        for (unsigned w = 0; w < ways; ++w) {
            if (base[w].valid && base[w].tag == tag) {
                base[w].target = target;
                base[w].lastUse = ++useClock;
                return;
            }
        }

        // Fill an invalid way, else evict true-LRU.
        Entry *victim = &base[0];
        for (unsigned w = 0; w < ways; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
            if (base[w].lastUse < victim->lastUse)
                victim = &base[w];
        }
        if (victim->valid)
            ++evictions;
        victim->valid = true;
        victim->tag = tag;
        victim->target = target;
        victim->lastUse = ++useClock;
    }

    /** Invalidate any entry for @p pc. */
    void invalidate(Addr pc);

    unsigned numEntries() const { return entries; }
    unsigned numWays() const { return ways; }
    unsigned numSets() const { return sets; }

    /** @name Statistics @{ */
    Counter lookups;
    Counter hits;
    Counter insertions;
    Counter evictions;
    /** @} */

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        uint64_t lastUse = 0;
    };

    unsigned
    setIndex(Addr pc) const
    {
        return static_cast<unsigned>((pc / kInstBytes) & (sets - 1));
    }

    Addr tagOf(Addr pc) const { return (pc / kInstBytes) >> indexBits; }

    unsigned entries = 0;
    unsigned ways = 0;
    unsigned sets = 0;
    unsigned indexBits = 0;
    std::vector<Entry> table;     // sets * ways, set-major
    uint64_t useClock = 0;
};

} // namespace specfetch

#endif // SPECFETCH_BRANCH_BTB_HH_
