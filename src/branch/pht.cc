#include "branch/pht.hh"

#include "util/bit_ops.hh"
#include "util/logging.hh"

namespace specfetch {

Pht::Pht(unsigned _entries, unsigned counter_bits, PhtIndexing _indexing,
         unsigned local_entries)
    : entries(_entries), historyBits(log2Floor(_entries)),
      indexing(_indexing), counters(_entries, SatCounter(counter_bits))
{
    fatal_if(!isPowerOfTwo(entries), "PHT entries must be a power of two");
    if (indexing == PhtIndexing::Local) {
        fatal_if(!isPowerOfTwo(local_entries),
                 "local history table entries must be a power of two");
        localHistories.assign(local_entries, 0);
        localIndexBits = log2Floor(local_entries);
    }
    if (indexing == PhtIndexing::Combining) {
        bimodal.assign(entries, SatCounter(counter_bits));
        // Chooser starts neutral-to-gshare (weakly selecting the
        // global component, McFarling's initialization).
        chooser.assign(entries, SatCounter(2, 2));
    }
}

} // namespace specfetch
