#include "branch/pht.hh"

#include "util/bit_ops.hh"
#include "util/logging.hh"

namespace specfetch {

Pht::Pht(unsigned _entries, unsigned counter_bits, PhtIndexing _indexing,
         unsigned local_entries)
    : entries(_entries), historyBits(log2Floor(_entries)),
      indexing(_indexing), counters(_entries, SatCounter(counter_bits))
{
    fatal_if(!isPowerOfTwo(entries), "PHT entries must be a power of two");
    if (indexing == PhtIndexing::Local) {
        fatal_if(!isPowerOfTwo(local_entries),
                 "local history table entries must be a power of two");
        localHistories.assign(local_entries, 0);
        localIndexBits = log2Floor(local_entries);
    }
    if (indexing == PhtIndexing::Combining) {
        bimodal.assign(entries, SatCounter(counter_bits));
        // Chooser starts neutral-to-gshare (weakly selecting the
        // global component, McFarling's initialization).
        chooser.assign(entries, SatCounter(2, 2));
    }
}

unsigned
Pht::gshareIndex(Addr pc) const
{
    return static_cast<unsigned>((ghr ^ (pc / kInstBytes)) &
                                 mask(historyBits));
}

unsigned
Pht::pcIndex(Addr pc) const
{
    return static_cast<unsigned>((pc / kInstBytes) & mask(historyBits));
}

unsigned
Pht::indexFor(Addr pc) const
{
    uint64_t pc_bits = pc / kInstBytes;
    uint64_t index = 0;
    switch (indexing) {
      case PhtIndexing::Gshare:
        index = ghr ^ pc_bits;
        break;
      case PhtIndexing::GlobalOnly:
        index = ghr;
        break;
      case PhtIndexing::PcOnly:
        index = pc_bits;
        break;
      case PhtIndexing::Local:
        index = localHistories[pc_bits & mask(localIndexBits)];
        break;
      case PhtIndexing::Combining:
        index = ghr ^ pc_bits;    // the gshare component's index
        break;
    }
    return static_cast<unsigned>(index & mask(historyBits));
}

bool
Pht::predict(Addr pc) const
{
    ++predictions;
    if (indexing == PhtIndexing::Combining) {
        bool use_gshare = chooser[pcIndex(pc)].predictTaken();
        return use_gshare ? counters[gshareIndex(pc)].predictTaken()
                          : bimodal[pcIndex(pc)].predictTaken();
    }
    return counters[indexFor(pc)].predictTaken();
}

void
Pht::update(Addr pc, bool taken)
{
    ++updates;
    // Train the counter at the index formed from the *architectural*
    // history (all older branches resolved). Under deep speculation a
    // fetch-time predict() for this branch may have read a different,
    // stale index — that mismatch is precisely the PHT degradation the
    // paper attributes to speculative execution (Table 3, B1 vs B4).
    if (indexing == PhtIndexing::Combining) {
        // Both components train on every branch; the chooser trains
        // only when they disagree, toward whichever was right
        // (McFarling 93).
        bool g = counters[gshareIndex(pc)].predictTaken();
        bool b = bimodal[pcIndex(pc)].predictTaken();
        if (g != b)
            chooser[pcIndex(pc)].update(g == taken);
        counters[gshareIndex(pc)].update(taken);
        bimodal[pcIndex(pc)].update(taken);
    } else {
        counters[indexFor(pc)].update(taken);
    }
    ghr = ((ghr << 1) | (taken ? 1 : 0)) & mask(historyBits);
    if (indexing == PhtIndexing::Local) {
        uint64_t &history =
            localHistories[(pc / kInstBytes) & mask(localIndexBits)];
        history = ((history << 1) | (taken ? 1 : 0)) & mask(historyBits);
    }
}

} // namespace specfetch
