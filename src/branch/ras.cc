#include "branch/ras.hh"

#include "util/logging.hh"

namespace specfetch {

ReturnAddressStack::ReturnAddressStack(unsigned depth) : slots(depth, 0)
{
    fatal_if(depth == 0, "RAS depth must be positive");
}

void
ReturnAddressStack::push(Addr return_addr)
{
    ++pushes;
    topIndex = static_cast<unsigned>((topIndex + 1) % slots.size());
    slots[topIndex] = return_addr;
    if (occupancy < slots.size())
        ++occupancy;
    else
        ++overflows;
}

Addr
ReturnAddressStack::pop()
{
    ++pops;
    if (occupancy == 0) {
        ++underflows;
        return 0;
    }
    Addr result = slots[topIndex];
    topIndex =
        static_cast<unsigned>((topIndex + slots.size() - 1) % slots.size());
    --occupancy;
    return result;
}

Addr
ReturnAddressStack::top() const
{
    return occupancy == 0 ? 0 : slots[topIndex];
}

} // namespace specfetch
