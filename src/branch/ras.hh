/**
 * @file
 * Return address stack (extension; off in the paper's baseline).
 *
 * The paper routes return-target prediction through the BTB alone. A
 * RAS is the natural "future work" refinement for call-heavy C++
 * codes, so we provide one as an optional component and evaluate it in
 * bench/ablation_ras.
 */

#ifndef SPECFETCH_BRANCH_RAS_HH_
#define SPECFETCH_BRANCH_RAS_HH_

#include <vector>

#include "isa/types.hh"
#include "stats/stats.hh"

namespace specfetch {

/**
 * Fixed-depth circular return-address stack. Overflow wraps (oldest
 * entry is overwritten); underflow predicts 0 (a guaranteed miss).
 */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned depth = 8);

    /** Push the return address of a call. */
    void push(Addr return_addr);

    /** Pop a predicted return target; 0 when empty. */
    Addr pop();

    /** Top of stack without popping; 0 when empty. */
    Addr top() const;

    bool empty() const { return occupancy == 0; }
    unsigned size() const { return occupancy; }
    unsigned depth() const { return static_cast<unsigned>(slots.size()); }

    /** @name Statistics @{ */
    Counter pushes;
    Counter pops;
    Counter underflows;
    Counter overflows;
    /** @} */

  private:
    std::vector<Addr> slots;
    unsigned topIndex = 0;
    unsigned occupancy = 0;
};

} // namespace specfetch

#endif // SPECFETCH_BRANCH_RAS_HH_
