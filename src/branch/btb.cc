#include "branch/btb.hh"

#include "util/bit_ops.hh"
#include "util/logging.hh"

namespace specfetch {

Btb::Btb(unsigned _entries, unsigned _ways)
    : entries(_entries), ways(_ways), sets(_entries / _ways),
      indexBits(log2Floor(_entries / _ways)), table(_entries)
{
    fatal_if(entries == 0 || ways == 0, "BTB must have entries and ways");
    fatal_if(entries % ways != 0, "BTB ways must divide entries");
    fatal_if(!isPowerOfTwo(sets), "BTB set count must be a power of two");
}

unsigned
Btb::setIndex(Addr pc) const
{
    return static_cast<unsigned>(bits(pc / kInstBytes, 0, indexBits));
}

Addr
Btb::tagOf(Addr pc) const
{
    return (pc / kInstBytes) >> indexBits;
}

BtbLookup
Btb::lookup(Addr pc)
{
    ++lookups;
    Entry *base = &table[setIndex(pc) * ways];
    Addr tag = tagOf(pc);
    for (unsigned w = 0; w < ways; ++w) {
        Entry &entry = base[w];
        if (entry.valid && entry.tag == tag) {
            entry.lastUse = ++useClock;
            ++hits;
            return BtbLookup{true, entry.target};
        }
    }
    return BtbLookup{};
}

BtbLookup
Btb::peek(Addr pc) const
{
    const Entry *base = &table[setIndex(pc) * ways];
    Addr tag = tagOf(pc);
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return BtbLookup{true, base[w].target};
    }
    return BtbLookup{};
}

void
Btb::insert(Addr pc, Addr target)
{
    ++insertions;
    Entry *base = &table[setIndex(pc) * ways];
    Addr tag = tagOf(pc);

    // Refresh an existing entry in place.
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].target = target;
            base[w].lastUse = ++useClock;
            return;
        }
    }

    // Fill an invalid way, else evict true-LRU.
    Entry *victim = &base[0];
    for (unsigned w = 0; w < ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim->valid)
        ++evictions;
    victim->valid = true;
    victim->tag = tag;
    victim->target = target;
    victim->lastUse = ++useClock;
}

void
Btb::invalidate(Addr pc)
{
    Entry *base = &table[setIndex(pc) * ways];
    Addr tag = tagOf(pc);
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            base[w].valid = false;
    }
}

} // namespace specfetch
