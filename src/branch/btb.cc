#include "branch/btb.hh"

#include "util/bit_ops.hh"
#include "util/logging.hh"

namespace specfetch {

Btb::Btb(unsigned _entries, unsigned _ways)
    : entries(_entries), ways(_ways), sets(_entries / _ways),
      indexBits(log2Floor(_entries / _ways)), table(_entries)
{
    fatal_if(entries == 0 || ways == 0, "BTB must have entries and ways");
    fatal_if(entries % ways != 0, "BTB ways must divide entries");
    fatal_if(!isPowerOfTwo(sets), "BTB set count must be a power of two");
}

BtbLookup
Btb::peek(Addr pc) const
{
    const Entry *base = &table[setIndex(pc) * ways];
    Addr tag = tagOf(pc);
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return BtbLookup{true, base[w].target};
    }
    return BtbLookup{};
}

void
Btb::invalidate(Addr pc)
{
    Entry *base = &table[setIndex(pc) * ways];
    Addr tag = tagOf(pc);
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            base[w].valid = false;
    }
}

} // namespace specfetch
