/**
 * @file
 * Pattern history table for conditional-branch direction prediction.
 *
 * The paper's baseline models McFarling's gshare: a 512-entry table of
 * 2-bit saturating counters indexed by the XOR of the global history
 * register and the branch address. Crucially (paper §4.2), the PHT is
 * *non-speculative*: the global history register and counters are
 * updated only when a branch resolves. With deep speculation this
 * means predictions are made with stale history — the source of the
 * PHT-ISPI growth from depth 1 to depth 4 in Table 3.
 */

#ifndef SPECFETCH_BRANCH_PHT_HH_
#define SPECFETCH_BRANCH_PHT_HH_

#include <cstdint>
#include <vector>

#include "isa/types.hh"
#include "stats/stats.hh"
#include "util/sat_counter.hh"

namespace specfetch {

/** Indexing scheme for the PHT. */
enum class PhtIndexing : uint8_t
{
    Gshare,     ///< (history XOR pc) — McFarling 93; baseline
    GlobalOnly, ///< history only — degenerate two-level (Pan et al.)
    PcOnly,     ///< pc only — bimodal (Smith 81)
    Local,      ///< two-level with per-branch history (Yeh & Patt 92,
                ///< §2.1 related work): a PC-indexed table of local
                ///< histories indexes the shared counter table
    Combining,  ///< McFarling 93 (§2.1): gshare + bimodal tables with
                ///< a PC-indexed chooser that learns, per branch,
                ///< which component to trust
};

/**
 * Global-history pattern table with resolve-time updates.
 */
class Pht
{
  public:
    /**
     * @param entries     Table size (power of two); baseline 512.
     * @param counter_bits Width of each saturating counter; baseline 2.
     * @param indexing    Index construction; baseline Gshare.
     */
    /**
     * @param entries        Counter-table size (power of two).
     * @param counter_bits   Saturating-counter width; baseline 2.
     * @param indexing       Index construction; baseline Gshare.
     * @param local_entries  Per-branch history table size for the
     *                       Local scheme (power of two).
     */
    explicit Pht(unsigned entries = 512, unsigned counter_bits = 2,
                 PhtIndexing indexing = PhtIndexing::Gshare,
                 unsigned local_entries = 1024);

    /** Predict direction for the conditional branch at @p pc using the
     *  *current* (architectural, resolve-updated) history. */
    bool predict(Addr pc) const;

    /**
     * Resolve-time training: update the counter the prediction was
     * read from and then shift the outcome into the history register.
     * @param pc     Branch address.
     * @param taken  Actual direction.
     */
    void update(Addr pc, bool taken);

    /** History register value (low @ref historyBits bits). */
    uint64_t history() const { return ghr; }
    unsigned historyWidth() const { return historyBits; }
    unsigned numEntries() const { return entries; }

    /** @name Statistics @{ */
    mutable Counter predictions;
    Counter updates;
    /** @} */

  private:
    unsigned indexFor(Addr pc) const;

    unsigned entries = 0;
    unsigned historyBits = 0;
    PhtIndexing indexing;
    std::vector<SatCounter> counters;
    uint64_t ghr = 0;
    /** Per-branch histories (Local scheme only; resolve-updated like
     *  the global register, so deep speculation reads stale local
     *  history too). */
    std::vector<uint64_t> localHistories;
    unsigned localIndexBits = 0;
    /** Combining scheme: second (bimodal) table + chooser. */
    std::vector<SatCounter> bimodal;
    std::vector<SatCounter> chooser;

    unsigned gshareIndex(Addr pc) const;
    unsigned pcIndex(Addr pc) const;
};

} // namespace specfetch

#endif // SPECFETCH_BRANCH_PHT_HH_
