/**
 * @file
 * Pattern history table for conditional-branch direction prediction.
 *
 * The paper's baseline models McFarling's gshare: a 512-entry table of
 * 2-bit saturating counters indexed by the XOR of the global history
 * register and the branch address. Crucially (paper §4.2), the PHT is
 * *non-speculative*: the global history register and counters are
 * updated only when a branch resolves. With deep speculation this
 * means predictions are made with stale history — the source of the
 * PHT-ISPI growth from depth 1 to depth 4 in Table 3.
 */

#ifndef SPECFETCH_BRANCH_PHT_HH_
#define SPECFETCH_BRANCH_PHT_HH_

#include <cstdint>
#include <vector>

#include "isa/types.hh"
#include "stats/stats.hh"
#include "util/bit_ops.hh"
#include "util/sat_counter.hh"

namespace specfetch {

/** Indexing scheme for the PHT. */
enum class PhtIndexing : uint8_t
{
    Gshare,     ///< (history XOR pc) — McFarling 93; baseline
    GlobalOnly, ///< history only — degenerate two-level (Pan et al.)
    PcOnly,     ///< pc only — bimodal (Smith 81)
    Local,      ///< two-level with per-branch history (Yeh & Patt 92,
                ///< §2.1 related work): a PC-indexed table of local
                ///< histories indexes the shared counter table
    Combining,  ///< McFarling 93 (§2.1): gshare + bimodal tables with
                ///< a PC-indexed chooser that learns, per branch,
                ///< which component to trust
};

/**
 * Global-history pattern table with resolve-time updates.
 */
class Pht
{
  public:
    /**
     * @param entries     Table size (power of two); baseline 512.
     * @param counter_bits Width of each saturating counter; baseline 2.
     * @param indexing    Index construction; baseline Gshare.
     */
    /**
     * @param entries        Counter-table size (power of two).
     * @param counter_bits   Saturating-counter width; baseline 2.
     * @param indexing       Index construction; baseline Gshare.
     * @param local_entries  Per-branch history table size for the
     *                       Local scheme (power of two).
     */
    explicit Pht(unsigned entries = 512, unsigned counter_bits = 2,
                 PhtIndexing indexing = PhtIndexing::Gshare,
                 unsigned local_entries = 1024);

    /**
     * Predict direction for the conditional branch at @p pc using the
     * *current* (architectural, resolve-updated) history. Inline: one
     * call per conditional branch on both the correct and the wrong
     * path — the hottest predictor entry point.
     */
    bool
    predict(Addr pc) const
    {
        ++predictions;
        if (indexing == PhtIndexing::Combining) {
            bool use_gshare = chooser[pcIndex(pc)].predictTaken();
            return use_gshare ? counters[gshareIndex(pc)].predictTaken()
                              : bimodal[pcIndex(pc)].predictTaken();
        }
        return counters[indexFor(pc)].predictTaken();
    }

    /**
     * Resolve-time training: update the counter the prediction was
     * read from and then shift the outcome into the history register.
     * Inline: one call per resolved conditional branch, paired with
     * predict() in the simulator's per-branch hot path.
     * @param pc     Branch address.
     * @param taken  Actual direction.
     */
    void
    update(Addr pc, bool taken)
    {
        ++updates;
        // Train the counter at the index formed from the *architectural*
        // history (all older branches resolved). Under deep speculation
        // a fetch-time predict() for this branch may have read a
        // different, stale index — that mismatch is precisely the PHT
        // degradation the paper attributes to speculative execution
        // (Table 3, B1 vs B4).
        if (indexing == PhtIndexing::Combining) {
            // Both components train on every branch; the chooser trains
            // only when they disagree, toward whichever was right
            // (McFarling 93).
            bool g = counters[gshareIndex(pc)].predictTaken();
            bool b = bimodal[pcIndex(pc)].predictTaken();
            if (g != b)
                chooser[pcIndex(pc)].update(g == taken);
            counters[gshareIndex(pc)].update(taken);
            bimodal[pcIndex(pc)].update(taken);
        } else {
            counters[indexFor(pc)].update(taken);
        }
        ghr = ((ghr << 1) | (taken ? 1 : 0)) & mask(historyBits);
        if (indexing == PhtIndexing::Local) {
            uint64_t &history =
                localHistories[(pc / kInstBytes) & mask(localIndexBits)];
            history = ((history << 1) | (taken ? 1 : 0)) &
                      mask(historyBits);
        }
    }

    /** History register value (low @ref historyBits bits). */
    uint64_t history() const { return ghr; }
    unsigned historyWidth() const { return historyBits; }
    unsigned numEntries() const { return entries; }

    /** @name Statistics @{ */
    mutable Counter predictions;
    Counter updates;
    /** @} */

  private:
    unsigned
    indexFor(Addr pc) const
    {
        uint64_t pc_bits = pc / kInstBytes;
        uint64_t index = 0;
        switch (indexing) {
          case PhtIndexing::Gshare:
            index = ghr ^ pc_bits;
            break;
          case PhtIndexing::GlobalOnly:
            index = ghr;
            break;
          case PhtIndexing::PcOnly:
            index = pc_bits;
            break;
          case PhtIndexing::Local:
            index = localHistories[pc_bits & mask(localIndexBits)];
            break;
          case PhtIndexing::Combining:
            index = ghr ^ pc_bits;    // the gshare component's index
            break;
        }
        return static_cast<unsigned>(index & mask(historyBits));
    }

    unsigned entries = 0;
    unsigned historyBits = 0;
    PhtIndexing indexing;
    std::vector<SatCounter> counters;
    uint64_t ghr = 0;
    /** Per-branch histories (Local scheme only; resolve-updated like
     *  the global register, so deep speculation reads stale local
     *  history too). */
    std::vector<uint64_t> localHistories;
    unsigned localIndexBits = 0;
    /** Combining scheme: second (bimodal) table + chooser. */
    std::vector<SatCounter> bimodal;
    std::vector<SatCounter> chooser;

    unsigned
    gshareIndex(Addr pc) const
    {
        return static_cast<unsigned>((ghr ^ (pc / kInstBytes)) &
                                     mask(historyBits));
    }

    unsigned
    pcIndex(Addr pc) const
    {
        return static_cast<unsigned>((pc / kInstBytes) & mask(historyBits));
    }
};

} // namespace specfetch

#endif // SPECFETCH_BRANCH_PHT_HH_
