/**
 * @file
 * Decoupled branch predictor facade (paper §2.1, §4.1).
 *
 * Direction for every conditional branch comes from the PHT whether or
 * not the branch hits in the BTB (the *decoupled* design of Calder &
 * Grunwald 94, as in the PowerPC 604); the BTB only supplies targets.
 * The BTB is updated speculatively at decode; the PHT only at resolve.
 */

#ifndef SPECFETCH_BRANCH_PREDICTOR_HH_
#define SPECFETCH_BRANCH_PREDICTOR_HH_

#include "branch/btb.hh"
#include "branch/pht.hh"
#include "branch/ras.hh"
#include "isa/instruction.hh"
#include "stats/stats.hh"

namespace specfetch {

/** What the fetch unit knows about a branch the moment it fetches it. */
struct Prediction
{
    /** Predicted direction (always true for unconditional control). */
    bool taken = false;
    /** True when a target was available at fetch (BTB/RAS hit). */
    bool targetKnown = false;
    /** The predicted destination; valid when targetKnown. */
    Addr target = 0;
};

/**
 * How a fetched branch turns out, and when the front end finds out.
 */
enum class BranchOutcome : uint8_t
{
    Correct,          ///< fetch continued on the right path
    Misfetch,         ///< right direction, target only at decode (8 slots)
    DirMispredict,    ///< wrong direction, fixed at resolve (16 slots)
    TargetMispredict, ///< wrong indirect target, fixed at resolve (16)
};

/** Configuration for the composite predictor. */
struct PredictorConfig
{
    unsigned btbEntries = 64;
    unsigned btbWays = 4;
    unsigned phtEntries = 512;
    unsigned phtCounterBits = 2;
    PhtIndexing phtIndexing = PhtIndexing::Gshare;
    /** Local-history table entries (Local indexing only). */
    unsigned phtLocalEntries = 1024;
    /** Return-address stack (extension; the paper's baseline has none
     *  and predicts returns through the BTB). 0 disables. */
    unsigned rasDepth = 0;
};

/**
 * The composite fetch predictor: PHT direction + BTB target (+
 * optional RAS for returns).
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const PredictorConfig &config = {});

    /**
     * Fetch-time prediction for the control instruction at @p pc.
     * Perturbs BTB LRU state (a real lookup) and, when the RAS is
     * enabled, speculatively pops/pushes it.
     */
    Prediction predict(Addr pc, InstClass cls);

    /**
     * Decode-time update (speculative; also runs for wrong-path
     * instructions that reach decode before a squash): inserts
     * predicted-taken direct branches into the BTB with their
     * now-computed static target.
     */
    void onDecode(Addr pc, const StaticInst &inst, bool predicted_taken);

    /**
     * Resolve-time update for correct-path branches: trains the PHT
     * for conditionals and installs resolved indirect targets.
     */
    void onResolve(const DynInst &inst);

    /**
     * Classify the fetch-time prediction against the dynamic truth.
     * @param prediction  What predict() returned at fetch.
     * @param inst        The correct-path instruction record.
     */
    static BranchOutcome classify(const Prediction &prediction,
                                  const DynInst &inst);

    /** Issue-slot penalty charged for an outcome on the baseline
     *  machine (0 / 8 / 16; paper §4.1). */
    static unsigned penaltySlots(BranchOutcome outcome);

    const Btb &btb() const { return btbUnit; }
    const Pht &pht() const { return phtUnit; }
    bool hasRas() const { return rasEnabled; }
    const ReturnAddressStack &ras() const { return rasUnit; }

  private:
    Btb btbUnit;
    Pht phtUnit;
    bool rasEnabled = false;
    ReturnAddressStack rasUnit;
};

} // namespace specfetch

#endif // SPECFETCH_BRANCH_PREDICTOR_HH_
