/**
 * @file
 * Decoupled branch predictor facade (paper §2.1, §4.1).
 *
 * Direction for every conditional branch comes from the PHT whether or
 * not the branch hits in the BTB (the *decoupled* design of Calder &
 * Grunwald 94, as in the PowerPC 604); the BTB only supplies targets.
 * The BTB is updated speculatively at decode; the PHT only at resolve.
 */

#ifndef SPECFETCH_BRANCH_PREDICTOR_HH_
#define SPECFETCH_BRANCH_PREDICTOR_HH_

#include "branch/btb.hh"
#include "branch/pht.hh"
#include "branch/ras.hh"
#include "isa/instruction.hh"
#include "stats/stats.hh"

namespace specfetch {

/** What the fetch unit knows about a branch the moment it fetches it. */
struct Prediction
{
    /** Predicted direction (always true for unconditional control). */
    bool taken = false;
    /** True when a target was available at fetch (BTB/RAS hit). */
    bool targetKnown = false;
    /** The predicted destination; valid when targetKnown. */
    Addr target = 0;
};

/**
 * How a fetched branch turns out, and when the front end finds out.
 */
enum class BranchOutcome : uint8_t
{
    Correct,          ///< fetch continued on the right path
    Misfetch,         ///< right direction, target only at decode (8 slots)
    DirMispredict,    ///< wrong direction, fixed at resolve (16 slots)
    TargetMispredict, ///< wrong indirect target, fixed at resolve (16)
};

/** Configuration for the composite predictor. */
struct PredictorConfig
{
    unsigned btbEntries = 64;
    unsigned btbWays = 4;
    unsigned phtEntries = 512;
    unsigned phtCounterBits = 2;
    PhtIndexing phtIndexing = PhtIndexing::Gshare;
    /** Local-history table entries (Local indexing only). */
    unsigned phtLocalEntries = 1024;
    /** Return-address stack (extension; the paper's baseline has none
     *  and predicts returns through the BTB). 0 disables. */
    unsigned rasDepth = 0;
};

/**
 * The composite fetch predictor: PHT direction + BTB target (+
 * optional RAS for returns).
 */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const PredictorConfig &config = {});

    /**
     * Fetch-time prediction for the control instruction at @p pc.
     * Perturbs BTB LRU state (a real lookup) and, when the RAS is
     * enabled, speculatively pops/pushes it. Inline (along with
     * onDecode): one call per control instruction on both paths —
     * the per-branch hot path of the whole simulator.
     */
    Prediction
    predict(Addr pc, InstClass cls)
    {
        Prediction result;
        switch (cls) {
          case InstClass::Plain:
            return result;

          case InstClass::CondBranch: {
            result.taken = phtUnit.predict(pc);
            if (result.taken) {
                BtbLookup hit = btbUnit.lookup(pc);
                result.targetKnown = hit.hit;
                result.target = hit.target;
            }
            return result;
          }

          case InstClass::Jump:
          case InstClass::Call: {
            result.taken = true;
            BtbLookup hit = btbUnit.lookup(pc);
            result.targetKnown = hit.hit;
            result.target = hit.target;
            if (cls == InstClass::Call && rasEnabled)
                rasUnit.push(pc + kInstBytes);
            return result;
          }

          case InstClass::Return: {
            result.taken = true;
            if (rasEnabled) {
                Addr predicted = rasUnit.pop();
                result.targetKnown = predicted != 0;
                result.target = predicted;
            } else {
                BtbLookup hit = btbUnit.lookup(pc);
                result.targetKnown = hit.hit;
                result.target = hit.target;
            }
            return result;
          }

          case InstClass::IndirectJump: {
            result.taken = true;
            BtbLookup hit = btbUnit.lookup(pc);
            result.targetKnown = hit.hit;
            result.target = hit.target;
            return result;
          }

          case InstClass::IndirectCall: {
            // Virtual dispatch: the target comes from the BTB; the
            // return address is pushed like any call.
            result.taken = true;
            BtbLookup hit = btbUnit.lookup(pc);
            result.targetKnown = hit.hit;
            result.target = hit.target;
            if (rasEnabled)
                rasUnit.push(pc + kInstBytes);
            return result;
          }
        }
        return result;
    }

    /**
     * Decode-time update (speculative; also runs for wrong-path
     * instructions that reach decode before a squash): inserts
     * predicted-taken direct branches into the BTB with their
     * now-computed static target.
     */
    void
    onDecode(Addr pc, const StaticInst &inst, bool predicted_taken)
    {
        // Decode produces the target of direct control flow; the paper
        // inserts predicted-taken branches into the BTB at this point,
        // speculatively. Indirect targets are not known until resolve.
        if (hasStaticTarget(inst.cls) && predicted_taken)
            btbUnit.insert(pc, inst.target);
    }

    /**
     * Resolve-time update for correct-path branches: trains the PHT
     * for conditionals and installs resolved indirect targets.
     * Inline: one call per resolved control instruction, the third
     * per-branch predictor entry point on the simulator's hot path.
     */
    void
    onResolve(const DynInst &inst)
    {
        if (inst.cls == InstClass::CondBranch)
            phtUnit.update(inst.pc, inst.taken);
        // Indirect control records its resolved target for next time;
        // returns go through the BTB only when the RAS is disabled
        // (paper baseline).
        if (inst.cls == InstClass::IndirectJump ||
            inst.cls == InstClass::IndirectCall ||
            (inst.cls == InstClass::Return && !rasEnabled)) {
            btbUnit.insert(inst.pc, inst.target);
        }
    }

    /**
     * Classify the fetch-time prediction against the dynamic truth.
     * Inline: called once per correct-path control instruction.
     * @param prediction  What predict() returned at fetch.
     * @param inst        The correct-path instruction record.
     */
    static BranchOutcome
    classify(const Prediction &prediction, const DynInst &inst)
    {
        switch (inst.cls) {
          case InstClass::Plain:
            return BranchOutcome::Correct;

          case InstClass::CondBranch:
            if (prediction.taken != inst.taken)
                return BranchOutcome::DirMispredict;
            if (!inst.taken)
                return BranchOutcome::Correct;
            // Predicted and actually taken: fetch needed the target.
            if (prediction.targetKnown && prediction.target == inst.target)
                return BranchOutcome::Correct;
            return BranchOutcome::Misfetch;

          case InstClass::Jump:
          case InstClass::Call:
            if (prediction.targetKnown && prediction.target == inst.target)
                return BranchOutcome::Correct;
            return BranchOutcome::Misfetch;

          case InstClass::Return:
          case InstClass::IndirectJump:
          case InstClass::IndirectCall:
            // The register value is only available at resolve: a wrong
            // or missing predicted target costs the full mispredict
            // penalty.
            if (prediction.targetKnown && prediction.target == inst.target)
                return BranchOutcome::Correct;
            return BranchOutcome::TargetMispredict;
        }
        return BranchOutcome::Correct;
    }

    /** Issue-slot penalty charged for an outcome on the baseline
     *  machine (0 / 8 / 16; paper §4.1). */
    static unsigned
    penaltySlots(BranchOutcome outcome)
    {
        switch (outcome) {
          case BranchOutcome::Correct:
            return 0;
          case BranchOutcome::Misfetch:
            return 8;       // two cycles to decode/compute the target
          case BranchOutcome::DirMispredict:
          case BranchOutcome::TargetMispredict:
            return 16;      // four cycles to resolve
        }
        return 0;
    }

    const Btb &btb() const { return btbUnit; }
    const Pht &pht() const { return phtUnit; }
    bool hasRas() const { return rasEnabled; }
    const ReturnAddressStack &ras() const { return rasUnit; }

  private:
    Btb btbUnit;
    Pht phtUnit;
    bool rasEnabled = false;
    ReturnAddressStack rasUnit;
};

} // namespace specfetch

#endif // SPECFETCH_BRANCH_PREDICTOR_HH_
