#include "branch/predictor.hh"

#include "util/logging.hh"

namespace specfetch {

BranchPredictor::BranchPredictor(const PredictorConfig &config)
    : btbUnit(config.btbEntries, config.btbWays),
      phtUnit(config.phtEntries, config.phtCounterBits, config.phtIndexing,
              config.phtLocalEntries),
      rasEnabled(config.rasDepth > 0),
      rasUnit(config.rasDepth > 0 ? config.rasDepth : 1)
{
}

Prediction
BranchPredictor::predict(Addr pc, InstClass cls)
{
    Prediction result;
    switch (cls) {
      case InstClass::Plain:
        return result;

      case InstClass::CondBranch: {
        result.taken = phtUnit.predict(pc);
        if (result.taken) {
            BtbLookup hit = btbUnit.lookup(pc);
            result.targetKnown = hit.hit;
            result.target = hit.target;
        }
        return result;
      }

      case InstClass::Jump:
      case InstClass::Call: {
        result.taken = true;
        BtbLookup hit = btbUnit.lookup(pc);
        result.targetKnown = hit.hit;
        result.target = hit.target;
        if (cls == InstClass::Call && rasEnabled)
            rasUnit.push(pc + kInstBytes);
        return result;
      }

      case InstClass::Return: {
        result.taken = true;
        if (rasEnabled) {
            Addr predicted = rasUnit.pop();
            result.targetKnown = predicted != 0;
            result.target = predicted;
        } else {
            BtbLookup hit = btbUnit.lookup(pc);
            result.targetKnown = hit.hit;
            result.target = hit.target;
        }
        return result;
      }

      case InstClass::IndirectJump: {
        result.taken = true;
        BtbLookup hit = btbUnit.lookup(pc);
        result.targetKnown = hit.hit;
        result.target = hit.target;
        return result;
      }

      case InstClass::IndirectCall: {
        // Virtual dispatch: the target comes from the BTB; the return
        // address is pushed like any call.
        result.taken = true;
        BtbLookup hit = btbUnit.lookup(pc);
        result.targetKnown = hit.hit;
        result.target = hit.target;
        if (rasEnabled)
            rasUnit.push(pc + kInstBytes);
        return result;
      }
    }
    return result;
}

void
BranchPredictor::onDecode(Addr pc, const StaticInst &inst,
                          bool predicted_taken)
{
    // Decode produces the target of direct control flow; the paper
    // inserts predicted-taken branches into the BTB at this point,
    // speculatively. Indirect targets are not known until resolve.
    if (hasStaticTarget(inst.cls) && predicted_taken)
        btbUnit.insert(pc, inst.target);
}

void
BranchPredictor::onResolve(const DynInst &inst)
{
    if (inst.cls == InstClass::CondBranch)
        phtUnit.update(inst.pc, inst.taken);
    // Indirect control records its resolved target for next time;
    // returns go through the BTB only when the RAS is disabled
    // (paper baseline).
    if (inst.cls == InstClass::IndirectJump ||
        inst.cls == InstClass::IndirectCall ||
        (inst.cls == InstClass::Return && !rasEnabled)) {
        btbUnit.insert(inst.pc, inst.target);
    }
}

BranchOutcome
BranchPredictor::classify(const Prediction &prediction, const DynInst &inst)
{
    switch (inst.cls) {
      case InstClass::Plain:
        return BranchOutcome::Correct;

      case InstClass::CondBranch:
        if (prediction.taken != inst.taken)
            return BranchOutcome::DirMispredict;
        if (!inst.taken)
            return BranchOutcome::Correct;
        // Predicted and actually taken: fetch needed the target.
        if (prediction.targetKnown && prediction.target == inst.target)
            return BranchOutcome::Correct;
        return BranchOutcome::Misfetch;

      case InstClass::Jump:
      case InstClass::Call:
        if (prediction.targetKnown && prediction.target == inst.target)
            return BranchOutcome::Correct;
        return BranchOutcome::Misfetch;

      case InstClass::Return:
      case InstClass::IndirectJump:
      case InstClass::IndirectCall:
        // The register value is only available at resolve: a wrong or
        // missing predicted target costs the full mispredict penalty.
        if (prediction.targetKnown && prediction.target == inst.target)
            return BranchOutcome::Correct;
        return BranchOutcome::TargetMispredict;
    }
    return BranchOutcome::Correct;
}

unsigned
BranchPredictor::penaltySlots(BranchOutcome outcome)
{
    switch (outcome) {
      case BranchOutcome::Correct:
        return 0;
      case BranchOutcome::Misfetch:
        return 8;       // two cycles to decode/compute the target
      case BranchOutcome::DirMispredict:
      case BranchOutcome::TargetMispredict:
        return 16;      // four cycles to resolve
    }
    return 0;
}

} // namespace specfetch
