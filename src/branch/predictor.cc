#include "branch/predictor.hh"

#include "util/logging.hh"

namespace specfetch {

BranchPredictor::BranchPredictor(const PredictorConfig &config)
    : btbUnit(config.btbEntries, config.btbWays),
      phtUnit(config.phtEntries, config.phtCounterBits, config.phtIndexing,
              config.phtLocalEntries),
      rasEnabled(config.rasDepth > 0),
      rasUnit(config.rasDepth > 0 ? config.rasDepth : 1)
{
}

} // namespace specfetch
