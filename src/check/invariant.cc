#include "check/invariant.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "adaptive/adaptive_log.hh"
#include "branch/predictor.hh"
#include "cache/bus.hh"
#include "cache/icache.hh"
#include "cache/line_buffer.hh"
#include "cache/prefetch_unit.hh"
#include "core/config.hh"
#include "core/miss_classifier.hh"
#include "core/results.hh"
#include "report/record.hh"
#include "util/string_utils.hh"

namespace specfetch {

std::string
toString(CheckLevel level)
{
    switch (level) {
      case CheckLevel::Off:      return "off";
      case CheckLevel::Cheap:    return "cheap";
      case CheckLevel::Paranoid: return "paranoid";
    }
    return "unknown";
}

bool
parseCheckLevel(const std::string &text, CheckLevel &out)
{
    std::string lower = toLower(text);
    if (lower == "off" || lower == "none") {
        out = CheckLevel::Off;
        return true;
    }
    if (lower == "cheap") {
        out = CheckLevel::Cheap;
        return true;
    }
    if (lower == "paranoid") {
        out = CheckLevel::Paranoid;
        return true;
    }
    return false;
}

InvariantAuditor::InvariantAuditor(CheckLevel level) : auditLevel(level) {}

void
InvariantAuditor::add(Invariant invariant)
{
    registered.push_back(std::move(invariant));
}

size_t
InvariantAuditor::runChecks(const AuditContext &context)
{
    size_t before = violationList.size();
    for (const Invariant &invariant : registered) {
        if (invariant.minLevel <= auditLevel && invariant.check)
            invariant.check(context, *this);
    }
    return violationList.size() - before;
}

void
InvariantAuditor::violation(const std::string &invariant,
                            const std::string &detail, JsonValue counters)
{
    violationList.push_back(
        InvariantViolation{invariant, detail, std::move(counters)});
}

JsonValue
InvariantAuditor::reportJson(const SimConfig &config) const
{
    JsonValue entries = JsonValue::array();
    for (const InvariantViolation &v : violationList) {
        JsonValue entry = JsonValue::object();
        entry.set("invariant", JsonValue::string(v.invariant))
            .set("detail", JsonValue::string(v.detail))
            .set("counters", v.counters);
        entries.push(std::move(entry));
    }

    JsonValue record = JsonValue::object();
    record.set("schema_version", JsonValue::integer(kReportSchemaVersion))
        .set("record", JsonValue::string("audit"))
        .set("check_level", JsonValue::string(specfetch::toString(auditLevel)))
        .set("violations", JsonValue::integer(violationList.size()))
        .set("config", toJson(config))
        .set("violation_list", std::move(entries));
    return record;
}

std::string
InvariantAuditor::emitReport(const SimConfig &config) const
{
    std::string serialized = reportJson(config).dump();
    std::fprintf(stderr, "invariant-audit: %s\n", serialized.c_str());

    const char *path = std::getenv(kReportPathEnv);
    if (!path || !*path)
        return "";
    std::ofstream out(path, std::ios::app);
    if (out)
        out << serialized << '\n';
    return path;
}

namespace {

JsonValue
counterObject(
    std::initializer_list<std::pair<const char *, uint64_t>> values)
{
    JsonValue out = JsonValue::object();
    for (const auto &[name, value] : values)
        out.set(name, JsonValue::integer(value));
    return out;
}

/**
 * ISPI decomposition (Figures 1-4): every slot since the stats reset
 * is either an issued instruction or a slot charged to exactly one
 * penalty component, so the component sum must reproduce the slot
 * clock. This is the identity behind "total ISPI = stacked bars".
 */
void
checkIspiDecomposition(const AuditContext &ctx, InvariantAuditor &auditor)
{
    if (!ctx.stats)
        return;
    uint64_t lost = ctx.stats->penalty.totalSlots();
    uint64_t elapsed = static_cast<uint64_t>(ctx.now - ctx.statsBaseSlot);
    if (ctx.stats->instructions + lost == elapsed)
        return;
    auditor.violation(
        "ispi-decomposition",
        "instructions + penalty slots must equal the elapsed slot clock",
        counterObject({{"instructions", ctx.stats->instructions},
                       {"penalty_slots_total", lost},
                       {"elapsed_slots", elapsed}}));
}

/**
 * Bus accounting (Table 7 traffic): every bus transaction since the
 * stats reset is a demand fill, a wrong-path fill, or a prefetch.
 */
void
checkBusAccounting(const AuditContext &ctx, InvariantAuditor &auditor)
{
    if (!ctx.stats || !ctx.bus)
        return;
    uint64_t bus_seen =
        ctx.bus->transactions.value() - ctx.busBaseTransactions;
    uint64_t prefetches = ctx.prefetchesIssuedNow - ctx.prefetchBaseline;
    uint64_t accounted = ctx.stats->demandFills + ctx.stats->wrongFills +
                         prefetches;
    if (bus_seen == accounted)
        return;
    auditor.violation(
        "bus-accounting",
        "bus transactions must equal demand + wrong-path fills + prefetches",
        counterObject({{"bus_transactions", bus_seen},
                       {"demand_fills", ctx.stats->demandFills},
                       {"wrong_fills", ctx.stats->wrongFills},
                       {"prefetches_issued", prefetches}}));
}

/** Tag-store consistency: defer to the array's own structural audit. */
void
checkIcacheConsistency(const AuditContext &ctx, InvariantAuditor &auditor)
{
    if (!ctx.icache)
        return;
    for (const std::string &problem : ctx.icache->audit()) {
        auditor.violation("icache-consistency", problem,
                          counterObject({}));
    }
}

/** RAS occupancy can never exceed the configured depth. */
void
checkRasBound(const AuditContext &ctx, InvariantAuditor &auditor)
{
    if (!ctx.predictor || !ctx.predictor->hasRas())
        return;
    const ReturnAddressStack &ras = ctx.predictor->ras();
    if (ras.size() <= ras.depth())
        return;
    auditor.violation(
        "ras-depth-bound",
        "return-address-stack occupancy exceeds its configured depth",
        counterObject({{"occupancy", ras.size()}, {"depth", ras.depth()}}));
}

/**
 * Fill buffers hold *missing* lines: a resume-buffer, prefetch-buffer
 * or stream-head entry must never alias a line resident in the array
 * (that would double-count capacity and corrupt the miss taxonomy).
 */
void
checkBufferAliasing(const AuditContext &ctx, InvariantAuditor &auditor)
{
    if (!ctx.icache)
        return;
    auto aliased = [&](const char *which, Addr line) {
        auditor.violation(
            "buffer-no-alias",
            std::string(which) + " entry aliases a resident cache line",
            counterObject({{"line_addr", line}}));
    };
    if (ctx.resumeBuffer && ctx.resumeBuffer->valid() &&
        ctx.icache->contains(ctx.resumeBuffer->lineAddr())) {
        aliased("resume buffer", ctx.resumeBuffer->lineAddr());
    }
    if (ctx.prefetcher && ctx.prefetcher->buffer().valid()) {
        Addr line = ctx.prefetcher->buffer().lineAddr();
        if (ctx.icache->contains(line))
            aliased("prefetch buffer", line);
        if (ctx.resumeBuffer && ctx.resumeBuffer->valid() &&
            ctx.resumeBuffer->lineAddr() == line) {
            auditor.violation(
                "buffer-no-alias",
                "prefetch buffer duplicates the resume buffer entry",
                counterObject({{"line_addr", line}}));
        }
    }
}

/**
 * Adaptive switching contract (DESIGN.md §12): policy switches happen
 * only on epoch boundaries, so the choice log's epoch ids must run
 * 0..n-1, every window must start where the previous ended on an
 * exact interval multiple, every non-final window must span exactly
 * one interval, the applied-switch counter must match the log, and at
 * end-of-run the windows must tile the measured region — the interval
 * instruction counts sum to the retired total.
 */
void
checkAdaptiveEpochTiling(const AuditContext &ctx, InvariantAuditor &auditor)
{
    if (!ctx.adaptiveLog || !ctx.adaptiveLog->enabled() ||
        ctx.adaptiveLog->choices.empty()) {
        return;
    }
    const AdaptiveLog &log = *ctx.adaptiveLog;
    auto bad = [&](const char *detail, const AdaptiveChoice &choice) {
        auditor.violation(
            "adaptive-epoch-tiling", detail,
            counterObject({{"epoch", choice.epoch},
                           {"first_instruction", choice.firstInstruction},
                           {"last_instruction", choice.lastInstruction},
                           {"interval", log.interval}}));
    };

    uint64_t expected_first = 0;
    uint64_t switches = 0;
    for (size_t i = 0; i < log.choices.size(); ++i) {
        const AdaptiveChoice &choice = log.choices[i];
        if (choice.epoch != i)
            bad("choice epoch ids must run 0..n-1 in order", choice);
        if (choice.firstInstruction != expected_first)
            bad("choice window must start where the previous ended",
                choice);
        if (choice.firstInstruction % log.interval != 0)
            bad("policy switch off the epoch-boundary grid", choice);
        bool final_choice = i + 1 == log.choices.size();
        if (!final_choice &&
            choice.lastInstruction - choice.firstInstruction !=
                log.interval) {
            bad("non-final epoch must span exactly one interval", choice);
        }
        if (choice.lastInstruction < choice.firstInstruction)
            bad("choice window runs backwards", choice);
        if (i > 0 && choice.policy != log.choices[i - 1].policy)
            ++switches;
        expected_first = choice.lastInstruction;
    }
    // A switch applied at the most recent boundary is not derivable
    // from the log until the epoch running under the new policy
    // closes, so a mid-run audit may see the counter one ahead.
    bool pendingSwitch = !ctx.endOfRun && log.switches == switches + 1;
    if (switches != log.switches && !pendingSwitch) {
        auditor.violation(
            "adaptive-epoch-tiling",
            "applied-switch counter disagrees with the choice log",
            counterObject({{"counted", switches},
                           {"logged", log.switches}}));
    }
    // Mid-run (paranoid checkpoints) the current epoch is still open;
    // only at end-of-run must the log cover every retired instruction.
    if (ctx.endOfRun && ctx.stats &&
        expected_first != ctx.stats->instructions) {
        auditor.violation(
            "adaptive-epoch-tiling",
            "choice windows must tile the run exactly (sum of interval "
            "instruction counts == retired total)",
            counterObject({{"covered", expected_first},
                           {"retired", ctx.stats->instructions}}));
    }
}

} // namespace

InvariantAuditor
InvariantAuditor::standard(CheckLevel level)
{
    InvariantAuditor auditor(level);
    auditor.add(Invariant{"ispi-decomposition", "Figures 1-4",
                          CheckLevel::Cheap, checkIspiDecomposition});
    auditor.add(Invariant{"bus-accounting", "Table 7 (traffic)",
                          CheckLevel::Cheap, checkBusAccounting});
    auditor.add(Invariant{"icache-consistency", "§4.1 cache geometry",
                          CheckLevel::Cheap, checkIcacheConsistency});
    auditor.add(Invariant{"ras-depth-bound", "RAS extension",
                          CheckLevel::Cheap, checkRasBound});
    auditor.add(Invariant{"adaptive-epoch-tiling", "DESIGN.md §12",
                          CheckLevel::Cheap, checkAdaptiveEpochTiling});
    auditor.add(Invariant{"buffer-no-alias", "§3 resume/prefetch buffers",
                          CheckLevel::Paranoid, checkBufferAliasing});
    return auditor;
}

void
auditClassification(const Classification &classification,
                    const SimResults &optimistic,
                    uint64_t bus_transactions, InvariantAuditor &auditor)
{
    const Classification &c = classification;

    if (c.instructions != optimistic.instructions) {
        auditor.violation(
            "table4-conservation",
            "classification instruction count diverges from the run",
            counterObject({{"classified", c.instructions},
                           {"run", optimistic.instructions}}));
    }

    // Optimistic-path misses partition into Both Miss + Spec Pollute.
    if (c.bothMiss + c.specPollute != optimistic.demandMisses) {
        auditor.violation(
            "table4-conservation",
            "both_miss + spec_pollute must equal the run's demand misses",
            counterObject({{"both_miss", c.bothMiss},
                           {"spec_pollute", c.specPollute},
                           {"demand_misses", optimistic.demandMisses}}));
    }

    // Wrong Path counts exactly the serviced wrong-path fills.
    if (c.wrongPath != optimistic.wrongFills) {
        auditor.violation(
            "table4-conservation",
            "wrong_path must equal the run's serviced wrong-path fills",
            counterObject({{"wrong_path", c.wrongPath},
                           {"wrong_fills", optimistic.wrongFills}}));
    }

    // Traffic ratio numerator: optimistic misses = all bus transfers
    // of the (prefetch-free) classification run.
    if (c.optimisticMisses() != bus_transactions) {
        auditor.violation(
            "table4-traffic-numerator",
            "optimistic misses must match the bus transfer counter",
            counterObject({{"optimistic_misses", c.optimisticMisses()},
                           {"bus_transactions", bus_transactions}}));
    }
}

void
auditSweepDeterminism(const std::vector<SimResults> &parallel,
                      const std::vector<SimResults> &serial,
                      InvariantAuditor &auditor)
{
    if (parallel.size() != serial.size()) {
        auditor.violation(
            "sweep-determinism",
            "parallel and serial sweeps returned different run counts",
            JsonValue::object()
                .set("parallel", JsonValue::integer(parallel.size()))
                .set("serial", JsonValue::integer(serial.size())));
        return;
    }
    for (size_t i = 0; i < parallel.size(); ++i) {
        if (parallel[i] == serial[i])
            continue;
        JsonValue counters = JsonValue::object();
        counters.set("spec_index", JsonValue::integer(i))
            .set("parallel", toJson(parallel[i]))
            .set("serial", toJson(serial[i]));
        auditor.violation(
            "sweep-determinism",
            "parallel sweep result diverges from its serial re-run",
            std::move(counters));
    }
}

} // namespace specfetch
