/**
 * @file
 * Audit level of the correctness-check subsystem.
 *
 * Kept free of other includes so core/config.hh can carry a
 * CheckLevel without pulling the audit machinery into every
 * translation unit.
 */

#ifndef SPECFETCH_CHECK_CHECK_LEVEL_HH_
#define SPECFETCH_CHECK_CHECK_LEVEL_HH_

#include <cstdint>
#include <string>

namespace specfetch {

/**
 * How much invariant auditing a run performs.
 *
 *  - Off:      no checks (production-speed runs);
 *  - Cheap:    end-of-run accounting identities only;
 *  - Paranoid: end-of-run checks plus structural audits at
 *              configurable instruction-count checkpoints, and
 *              serial-vs-parallel sweep cross-validation.
 */
enum class CheckLevel : uint8_t
{
    Off,
    Cheap,
    Paranoid,
};

/** Display name ("off", "cheap", "paranoid"). */
std::string toString(CheckLevel level);

/** Parse a level name (case-insensitive). False on unknown names. */
bool parseCheckLevel(const std::string &text, CheckLevel &out);

} // namespace specfetch

#endif // SPECFETCH_CHECK_CHECK_LEVEL_HH_
