/**
 * @file
 * The correctness-audit subsystem: registered invariants over the
 * simulator's accounting identities and structural state.
 *
 * The paper's headline numbers are accounting identities — ISPI must
 * equal the sum of its six penalty components (Figures 1-4), and the
 * Table 4 miss taxonomy must conserve total misses — so the auditor
 * makes those identities executable: the fetch engine runs the
 * registered checks at end-of-run (CheckLevel::Cheap) and additionally
 * at instruction-count checkpoints (CheckLevel::Paranoid), and
 * classifyMisses / runSweep audit their own outputs the same way.
 *
 * A violation is a simulator bug, never a user error: the run stops
 * with a structured JSON report (schema of src/report/) naming the
 * invariant, the run manifest, and the offending counter values. The
 * report goes to stderr and, when $SPECFETCH_AUDIT_REPORT names a
 * path, to that file (CI uploads it as a failure artifact).
 */

#ifndef SPECFETCH_CHECK_INVARIANT_HH_
#define SPECFETCH_CHECK_INVARIANT_HH_

#include <functional>
#include <string>
#include <vector>

#include "check/check_level.hh"
#include "isa/types.hh"
#include "report/json.hh"

namespace specfetch {

struct AdaptiveLog;
struct SimConfig;
struct SimResults;
struct Classification;
class ICache;
class LineBuffer;
class PrefetchUnit;
class BranchPredictor;
class MemoryBus;

/**
 * Everything the standard invariants inspect, captured by the fetch
 * engine at an instruction boundary. All pointers are borrowed and
 * may be null for contexts built outside the engine (a check that
 * needs a missing component skips silently).
 */
struct AuditContext
{
    const SimConfig *config = nullptr;
    const SimResults *stats = nullptr;

    /** Current slot clock. */
    Slot now = 0;
    /** Slot clock at the last stats reset (warmup boundary). */
    Slot statsBaseSlot = 0;
    /** Bus transactions at the last stats reset. */
    uint64_t busBaseTransactions = 0;
    /** Prefetches issued at the last stats reset. */
    uint64_t prefetchBaseline = 0;
    /** Live prefetches-issued count (stats carry it only at the end). */
    uint64_t prefetchesIssuedNow = 0;

    const ICache *icache = nullptr;
    const LineBuffer *resumeBuffer = nullptr;
    const PrefetchUnit *prefetcher = nullptr;
    const BranchPredictor *predictor = nullptr;
    const MemoryBus *bus = nullptr;
    /** Adaptive choice log (null when selection is off). */
    const AdaptiveLog *adaptiveLog = nullptr;

    /** True at end-of-run, false at a paranoid checkpoint. */
    bool endOfRun = false;
};

/** One failed check: which invariant, what happened, which counters. */
struct InvariantViolation
{
    std::string invariant;
    std::string detail;
    /** The offending counter values, as a JSON object. */
    JsonValue counters;
};

/**
 * A registered invariant. @p provenance names the paper table or
 * figure whose numbers the identity protects (DESIGN.md lists all).
 */
struct Invariant
{
    std::string name;
    std::string provenance;
    CheckLevel minLevel = CheckLevel::Cheap;
    std::function<void(const AuditContext &, class InvariantAuditor &)>
        check;
};

/**
 * Runs registered invariants over audit contexts and collects
 * violations. Construct via standard() for the built-in set, or
 * default-construct and add() custom invariants (tests do both).
 */
class InvariantAuditor
{
  public:
    explicit InvariantAuditor(CheckLevel level = CheckLevel::Cheap);

    /** The built-in engine invariants, registered in DESIGN.md order. */
    static InvariantAuditor standard(CheckLevel level);

    void add(Invariant invariant);

    /**
     * Run every registered invariant whose minLevel is enabled at this
     * auditor's level. Returns the number of new violations.
     */
    size_t runChecks(const AuditContext &context);

    /** Record a violation (called by invariant check functions). */
    void violation(const std::string &invariant, const std::string &detail,
                   JsonValue counters);

    bool clean() const { return violationList.empty(); }
    const std::vector<InvariantViolation> &violations() const
    {
        return violationList;
    }
    const std::vector<Invariant> &invariants() const
    {
        return registered;
    }
    CheckLevel level() const { return auditLevel; }

    /**
     * Structured violation report: schema-v1 "audit" record with the
     * run manifest and one entry per violation.
     */
    JsonValue reportJson(const SimConfig &config) const;

    /**
     * Write reportJson to stderr and, when $SPECFETCH_AUDIT_REPORT is
     * set, append it to that path. Returns the file path written
     * (empty when the env var is unset).
     */
    std::string emitReport(const SimConfig &config) const;

    /** Environment variable naming the report file. */
    static constexpr const char *kReportPathEnv = "SPECFETCH_AUDIT_REPORT";

  private:
    CheckLevel auditLevel;
    std::vector<Invariant> registered;
    std::vector<InvariantViolation> violationList;
};

/**
 * Table-4 conservation checks (paper §5.1.1): the taxonomy must
 * conserve the optimistic run's misses, and the traffic ratio's
 * numerator must match the bus transfer counter. Violations land in
 * @p auditor.
 *
 * @param classification   The taxonomy under audit.
 * @param optimistic       The timed Optimistic run it was derived from.
 * @param bus_transactions Bus transfer counter of that run.
 */
void auditClassification(const Classification &classification,
                         const SimResults &optimistic,
                         uint64_t bus_transactions,
                         InvariantAuditor &auditor);

/**
 * Serial-vs-parallel sweep cross-validation (paranoid sweeps): every
 * result of the parallel run must be bit-identical to its serial
 * re-run. Mismatches land in @p auditor, one violation per diverging
 * spec index.
 */
void auditSweepDeterminism(const std::vector<SimResults> &parallel,
                           const std::vector<SimResults> &serial,
                           InvariantAuditor &auditor);

} // namespace specfetch

#endif // SPECFETCH_CHECK_INVARIANT_HH_
