/**
 * @file
 * Request validation and canonicalization for the sweep service
 * (DESIGN.md §15). One JSONL request line either parses into a fully
 * validated, canonical ServiceRequest — benchmark known, configuration
 * manifest strictly understood, semantic validation passed — or
 * yields a typed ServiceError. Nothing in between, and never a crash:
 * the service's front door must survive arbitrary bytes.
 */

#ifndef SPECFETCH_SERVE_REQUEST_HH_
#define SPECFETCH_SERVE_REQUEST_HH_

#include <string>

#include "core/config.hh"
#include "report/json.hh"
#include "report/serve_record.hh"

namespace specfetch {

/** One validated, canonicalized request. */
struct ServiceRequest
{
    /** Opaque client echo ("id" member); null when absent. */
    JsonValue id;
    /**
     * Control request (`{"op":"stats"}`): answered from the live
     * telemetry snapshot without touching the store or the queue.
     * benchmark/config/key are empty then.
     */
    bool statsOp = false;
    std::string benchmark;
    /** Canonical configuration (defaults + the request's manifest). */
    SimConfig config;
    /** Content address: sweepRunKey({benchmark, config}). */
    std::string key;
};

/**
 * Parse one request line. Accepted members: "id" (any value, echoed),
 * "benchmark" (required, must name a registered workload), "config"
 * (optional manifest, strict configFromJson) — or "id" plus
 * "op":"stats", the control request that asks for a metrics snapshot
 * (DESIGN.md §16; mixing "op" with run members is rejected). Unknown
 * members are rejected — a request the service does not fully
 * understand must not be silently simulated as something else. On
 * failure @p error is filled (MalformedJson or BadRequest) and
 * @p out.id still carries any id that could be salvaged, so the error
 * response can echo it.
 */
bool parseServiceRequest(const std::string &line, ServiceRequest &out,
                         ServiceError &error);

} // namespace specfetch

#endif // SPECFETCH_SERVE_REQUEST_HH_
